"""Hypothesis property tests over the system's core invariants (DESIGN.md §invariants).

These generate random bipartite graphs, workloads, and mutation sequences
and assert the paper's correctness conditions hold for every construction
algorithm and decision mode.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.aggregates import Max, Sum, TopK
from repro.core.engine import EAGrEngine
from repro.core.overlay import Decision
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.dataflow.costs import CostModel
from repro.dataflow.frequencies import FrequencyModel, compute_push_pull_frequencies
from repro.dataflow.mincut import assignment_cost, decide_dataflow, partition_value, solve_dmp
from repro.graph.bipartite import BipartiteGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.neighborhoods import Neighborhood
from repro.overlay.iob import build_iob
from repro.overlay.vnm import build_vnm

from tests.conftest import make_events, play_and_check

# -- strategies -------------------------------------------------------------

bipartite_graphs = st.integers(min_value=0, max_value=10_000).map(
    lambda seed: _random_bipartite(seed)
)


def _random_bipartite(seed):
    rng = random.Random(seed)
    num_writers = rng.randrange(3, 16)
    num_readers = rng.randrange(2, 14)
    writers = [f"w{i}" for i in range(num_writers)]
    inputs = {}
    for i in range(num_readers):
        size = rng.randrange(1, num_writers + 1)
        inputs[f"r{i}"] = tuple(rng.sample(writers, size))
    return BipartiteGraph(inputs)


def _random_dag(seed):
    rng = random.Random(seed)
    n = rng.randrange(2, 10)
    weights = {v: float(rng.randrange(-15, 16)) for v in range(n)}
    edges = [(u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < 0.35]
    return weights, edges


# -- invariant 1: overlay correctness ----------------------------------------


@settings(max_examples=30, deadline=None)
@given(bipartite_graphs, st.sampled_from(["vnm", "vnm_a", "vnm_n"]))
def test_duplicate_sensitive_overlays_cover_exactly(ag, variant):
    result = build_vnm(ag, variant=variant, iterations=4)
    result.overlay.validate(ag)


@settings(max_examples=30, deadline=None)
@given(bipartite_graphs)
def test_duplicate_insensitive_overlays_cover_at_least_once(ag):
    result = build_vnm(ag, variant="vnm_d", iterations=4)
    result.overlay.validate(ag, duplicate_insensitive=True)


@settings(max_examples=30, deadline=None)
@given(bipartite_graphs)
def test_iob_overlays_cover_exactly(ag):
    result = build_iob(ag, iterations=2)
    result.overlay.validate(ag)


# -- invariant 2/3: decisions ------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_dmp_solution_valid_and_beats_extremes(seed):
    weights, edges = _random_dag(seed)
    push, pull = solve_dmp(weights, edges)
    assert not any(u in pull and v in push for u, v in edges)
    value = partition_value(weights, push, pull)
    all_nodes = set(weights)
    assert value >= partition_value(weights, all_nodes, set()) - 1e-9
    assert value >= partition_value(weights, set(), all_nodes) - 1e-9


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(bipartite_graphs, st.floats(min_value=0.05, max_value=20.0))
def test_decisions_consistent_and_cheapest(ag, ratio):
    overlay = build_vnm(ag, variant="vnm_a", iterations=3).overlay
    nodes = set()
    for reader, ws in ag.reader_inputs.items():
        nodes.add(reader)
        nodes.update(ws)
    frequencies = FrequencyModel.uniform(nodes, read=1.0, write=ratio)
    cost_model = CostModel.constant_linear()
    decide_dataflow(overlay, frequencies, cost_model)
    assert overlay.decisions_consistent()
    fh, fl = compute_push_pull_frequencies(overlay, frequencies)
    optimal = assignment_cost(overlay, fh, fl, cost_model)
    for extreme in (Decision.PUSH, Decision.PULL):
        trial = overlay.copy()
        trial.set_all_decisions(extreme)
        assert optimal <= assignment_cost(trial, fh, fl, cost_model) + 1e-9


# -- invariant 4: engine equivalence ------------------------------------------


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=1_000),
    st.sampled_from(["vnm_a", "vnm_n", "iob", "identity"]),
    st.sampled_from(["mincut", "all_push", "all_pull"]),
)
def test_engine_matches_oracle_on_random_graphs(seed, algorithm, dataflow):
    rng = random.Random(seed)
    graph = DynamicGraph()
    n = rng.randrange(5, 18)
    for node in range(n):
        graph.add_node(node)
    for _ in range(rng.randrange(n, 4 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    query = EgoQuery(
        aggregate=Sum(), window=TupleWindow(rng.randrange(1, 4)),
        neighborhood=Neighborhood.in_neighbors(),
    )
    engine = EAGrEngine(graph, query, overlay_algorithm=algorithm, dataflow=dataflow)
    events = make_events(list(range(n)), 120, seed=seed)
    play_and_check(engine, events)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=1_000))
def test_topk_engine_matches_oracle(seed):
    rng = random.Random(seed)
    graph = DynamicGraph()
    for node in range(10):
        graph.add_node(node)
    for _ in range(30):
        u, v = rng.randrange(10), rng.randrange(10)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    query = EgoQuery(aggregate=TopK(3), window=TupleWindow(3))
    engine = EAGrEngine(graph, query, overlay_algorithm="vnm_n")
    events = make_events(list(range(10)), 150, seed=seed, vocabulary=4)
    play_and_check(engine, events)


# -- invariant 5: dynamic maintenance ------------------------------------------


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=1_000))
def test_maintained_engine_matches_oracle_under_churn(seed):
    rng = random.Random(seed)
    graph = DynamicGraph()
    for node in range(12):
        graph.add_node(node)
    for _ in range(30):
        u, v = rng.randrange(12), rng.randrange(12)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    query = EgoQuery(aggregate=Sum())
    engine = EAGrEngine(graph, query, overlay_algorithm="vnm_a", maintain=True)
    for step in range(25):
        action = rng.random()
        if action < 0.5:
            u, v = rng.randrange(12), rng.randrange(12)
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)
        else:
            edges = list(graph.edges())
            if edges:
                u, v = rng.choice(edges)
                graph.remove_edge(u, v)
        node = rng.randrange(12)
        engine.write(node, float(rng.randrange(9)))
        reader = rng.randrange(12)
        assert engine.read(reader) == engine.reference_read(reader)
