"""Tests for the measurement harness and table reporting utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.harness import WorkloadResult, run_segmented, run_workload
from repro.bench.reporting import format_cell, format_table
from repro.core.aggregates import Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import paper_figure1
from repro.graph.streams import ReadEvent, WriteEvent


class TestWorkloadResult:
    def make(self, latencies):
        return WorkloadResult(
            events=10, elapsed_seconds=2.0, reads=len(latencies), writes=5,
            read_latencies=list(latencies),
        )

    def test_throughput(self):
        assert self.make([]).throughput == 5.0

    def test_zero_elapsed(self):
        result = WorkloadResult(events=1, elapsed_seconds=0.0, reads=0, writes=1)
        assert result.throughput == 0.0

    def test_percentiles(self):
        result = self.make([float(i) for i in range(1, 101)])
        assert result.latency_percentile(0) == 1.0
        assert result.latency_percentile(100) == 100.0
        assert 49.0 <= result.latency_percentile(50) <= 52.0

    def test_percentile_empty(self):
        assert self.make([]).latency_percentile(95) == 0.0

    def test_average_and_worst(self):
        result = self.make([1.0, 3.0])
        assert result.average_read_latency == 2.0
        assert result.worst_read_latency == 3.0

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40))
    def test_percentile_monotone(self, latencies):
        result = self.make(latencies)
        values = [result.latency_percentile(p) for p in (0, 25, 50, 75, 95, 100)]
        assert values == sorted(values)
        assert values[-1] == result.worst_read_latency


class TestRunWorkload:
    def engine(self):
        return EAGrEngine(
            paper_figure1(), EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        )

    def events(self):
        return [
            WriteEvent("c", 2.0, timestamp=1),
            ReadEvent("a", timestamp=2),
            WriteEvent("d", 3.0, timestamp=3),
            ReadEvent("a", timestamp=4),
        ]

    def test_counts(self):
        result = run_workload(self.engine(), self.events())
        assert result.reads == 2
        assert result.writes == 2
        assert result.events == 4
        assert result.throughput > 0
        assert result.read_latencies == []

    def test_latency_mode_records_per_read(self):
        result = run_workload(self.engine(), self.events(), measure_latency=True)
        assert len(result.read_latencies) == 2
        assert all(l >= 0 for l in result.read_latencies)

    def test_run_segmented(self):
        durations = run_segmented(self.engine(), self.events() * 5, segment_size=4)
        assert len(durations) == 5
        assert all(d >= 0 for d in durations)


class TestReporting:
    def test_format_cell_int(self):
        assert format_cell(1234567) == "1,234,567"

    def test_format_cell_float(self):
        assert format_cell(3.14159) == "3.142"
        assert format_cell(1e-5) == "1.000e-05"
        assert format_cell(123456.0) == "1.235e+05"
        assert format_cell(0.0) == "0.000"

    def test_format_cell_string(self):
        assert format_cell("abc") == "abc"

    def test_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["longer", 23]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows equally wide

    def test_table_without_title(self):
        table = format_table(["x"], [[1]])
        assert table.splitlines()[0].startswith("x")
