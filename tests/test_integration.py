"""End-to-end integration tests tying the whole pipeline together.

Beyond per-read correctness (covered by the oracle tests), these verify the
paper's *systems* claims at a work-count level — counting aggregate
operations instead of wall time, so they stay robust on any machine:

* the shared overlay performs strictly less work than the no-sharing
  baselines on balanced workloads (the Figure 14 mechanism),
* decided dataflow beats all-push on write-heavy and all-pull on read-heavy
  workloads (the Figure 13(b) mechanism),
* the full feature stack (sharing + splitting + adaptivity + maintenance)
  composes without breaking correctness.
"""

import pytest

from repro.core.aggregates import Max, Sum, TopK
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery, QueryMode
from repro.core.windows import TimeWindow, TupleWindow
from repro.dataflow.frequencies import FrequencyModel
from repro.graph.generators import community_graph, social_graph, web_graph
from repro.graph.neighborhoods import Neighborhood
from repro.workload import WorkloadSpec, generate_events, warmup_writes

from tests.conftest import make_events, play_and_check


@pytest.fixture(scope="module")
def web():
    return web_graph(300, 6, copy_probability=0.95, seed=4)


def run(engine, events):
    for event in events:
        if hasattr(event, "value"):
            engine.write(event.node, event.value, event.timestamp)
        else:
            engine.read(event.node)
    return engine.counters


class TestWorkSavings:
    def make(self, graph, algorithm, dataflow, ratio=1.0):
        nodes = list(graph.nodes())
        query = EgoQuery(aggregate=Sum(), neighborhood=Neighborhood.in_neighbors())
        frequencies = FrequencyModel.uniform(
            nodes, read=1.0 / (1.0 + ratio), write=ratio / (1.0 + ratio)
        )
        return EAGrEngine(
            graph, query, overlay_algorithm=algorithm, dataflow=dataflow,
            frequencies=frequencies,
        )

    def test_overlay_beats_both_baselines_at_ratio_one(self, web):
        nodes = list(web.nodes())
        events = generate_events(nodes, WorkloadSpec(num_events=4000, seed=3))
        work = {}
        for name, algorithm, dataflow in (
            ("all-pull", "identity", "all_pull"),
            ("all-push", "identity", "all_push"),
            ("eagr", "vnm_a", "mincut"),
        ):
            counters = run(self.make(web, algorithm, dataflow), events)
            work[name] = counters.work
        assert work["eagr"] < work["all-pull"]
        assert work["eagr"] < work["all-push"]

    def test_decided_overlay_beats_forced_overlay_decisions(self, web):
        nodes = list(web.nodes())
        events = generate_events(nodes, WorkloadSpec(num_events=4000, seed=5))
        work = {}
        for dataflow in ("all_push", "all_pull", "mincut"):
            counters = run(self.make(web, "vnm_a", dataflow), events)
            work[dataflow] = counters.work
        assert work["mincut"] <= min(work["all_push"], work["all_pull"])

    def test_crossover_with_ratio(self, web):
        """All-pull wins write-heavy, all-push wins read-heavy (Fig 14(a))."""
        nodes = list(web.nodes())
        write_heavy = generate_events(
            nodes, num_events=3000, write_read_ratio=20.0, seed=6
        )
        read_heavy = generate_events(
            nodes, num_events=3000, write_read_ratio=0.05, seed=7
        )
        pull = self.make(web, "identity", "all_pull")
        push = self.make(web, "identity", "all_push")
        assert run(pull, write_heavy).work < run(push, write_heavy).work
        pull2 = self.make(web, "identity", "all_pull")
        push2 = self.make(web, "identity", "all_push")
        assert run(push2, read_heavy).work < run(pull2, read_heavy).work


class TestFullStackComposition:
    def test_everything_on_at_once(self):
        graph = community_graph(num_communities=4, community_size=12, seed=9)
        nodes = list(graph.nodes())
        query = EgoQuery(
            aggregate=TopK(3), window=TupleWindow(3),
            neighborhood=Neighborhood.in_neighbors(),
        )
        engine = EAGrEngine(
            graph, query, overlay_algorithm="vnm_n",
            frequencies=FrequencyModel.zipf(nodes, seed=10),
            enable_splitting=True, adaptive=True, maintain=True,
        )
        play_and_check(engine, make_events(nodes, 400, seed=11, vocabulary=6))
        graph.add_edge(0, 30)
        graph.remove_node(17)
        play_and_check(
            engine,
            make_events([n for n in nodes if n != 17], 400, seed=12, vocabulary=6),
        )

    def test_continuous_mode_end_to_end(self):
        graph = social_graph(120, 5, seed=13)
        nodes = list(graph.nodes())
        query = EgoQuery(
            aggregate=Sum(), neighborhood=Neighborhood.in_neighbors(),
            mode=QueryMode.CONTINUOUS,
        )
        engine = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        play_and_check(engine, make_events(nodes, 500, seed=14))
        # Continuous: every read is answered from materialized state.
        assert engine.counters.pull_ops == 0

    def test_time_window_quickstart_scenario(self):
        graph = social_graph(100, 5, seed=15)
        nodes = list(graph.nodes())
        query = EgoQuery(
            aggregate=Mean() if False else Sum(), window=TimeWindow(50.0),
        )
        engine = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        play_and_check(engine, make_events(nodes, 600, seed=16))

    def test_max_on_web_graph_with_vnm_d(self, web):
        nodes = list(web.nodes())
        query = EgoQuery(aggregate=Max(), window=TupleWindow(2))
        engine = EAGrEngine(graph=web, query=query, overlay_algorithm="vnm_d")
        assert engine.sharing_index() > 0.2
        play_and_check(engine, make_events(nodes, 500, seed=17))


from repro.core.aggregates import Mean  # noqa: E402  (used above lazily)
