"""Tests for the H(k)/L(k) cost models and calibration."""

import pytest

from repro.core.aggregates import Max, Sum, TopK
from repro.dataflow.costs import CostModel, calibrate, _fit_affine


class TestCostModel:
    def test_constant_linear(self):
        model = CostModel.constant_linear(push_unit=2.0, pull_unit=3.0)
        assert model.push_cost(10) == 2.0
        assert model.pull_cost(10) == 30.0

    def test_k_clamped_to_one(self):
        model = CostModel.constant_linear()
        assert model.pull_cost(0) == 1.0
        assert model.pull_cost(-5) == 1.0

    def test_log_linear(self):
        model = CostModel.log_linear()
        assert model.push_cost(1) == 1.0
        assert model.push_cost(8) == pytest.approx(4.0)

    def test_for_aggregate_uses_defaults(self):
        model = CostModel.for_aggregate(Sum())
        assert model.push_cost(100) == 1.0
        assert model.pull_cost(100) == 100.0
        max_model = CostModel.for_aggregate(Max())
        assert max_model.push_cost(8) > 1.0

    def test_scaling(self):
        model = CostModel.constant_linear().scaled(push_scale=1.0, pull_scale=10.0)
        assert model.pull_cost(2) == 20.0
        assert model.push_cost(2) == 1.0

    def test_for_aggregate_scale_ratio(self):
        base = CostModel.for_aggregate(TopK(3))
        scaled = CostModel.for_aggregate(TopK(3), pull_scale=5.0)
        assert scaled.pull_cost(4) == pytest.approx(5.0 * base.pull_cost(4))


class TestFit:
    def test_affine_fit_exact(self):
        slope, intercept = _fit_affine([1.0, 2.0, 3.0], [5.0, 7.0, 9.0])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(3.0)

    def test_constant_data(self):
        slope, intercept = _fit_affine([2.0, 2.0], [5.0, 5.0])
        assert slope == 0.0
        assert intercept == 5.0


class TestCalibration:
    def test_calibrated_pull_grows_with_k(self):
        model = calibrate(Sum(), ks=(1, 4, 16), repetitions=50)
        assert model.pull_cost(16) > model.pull_cost(1)

    def test_calibrated_push_positive(self):
        model = calibrate(Sum(), ks=(1, 4), repetitions=50)
        assert model.push_cost(10) > 0

    def test_lattice_aggregate_gets_log_push(self):
        model = calibrate(Max(), ks=(1, 4), repetitions=50)
        assert model.push_cost(16) > model.push_cost(1)

    def test_description_names_aggregate(self):
        model = calibrate(TopK(2), ks=(1, 2), repetitions=10)
        assert "topk" in model.description
