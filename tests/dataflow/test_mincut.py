"""Tests for the DMP min-cut reduction and the decision pipeline."""

import itertools
import random

import pytest

from repro.core.overlay import Decision, Overlay
from repro.dataflow.costs import CostModel
from repro.dataflow.frequencies import FrequencyModel
from repro.dataflow.mincut import (
    DataflowStats,
    assignment_cost,
    decide_dataflow,
    node_weights,
    partition_value,
    solve_dmp,
)
from repro.graph.bipartite import build_bipartite
from repro.graph.generators import paper_figure1, random_graph
from repro.graph.neighborhoods import Neighborhood
from repro.overlay.vnm import build_vnm


def brute_force_dmp(weights, edges):
    """Enumerate all valid partitions (exponential; tests only)."""
    nodes = list(weights)
    best = None
    best_value = float("-inf")
    for mask in itertools.product([0, 1], repeat=len(nodes)):
        push = {n for n, bit in zip(nodes, mask) if bit}
        pull = {n for n in nodes if n not in push}
        if any(u in pull and v in push for u, v in edges):
            continue  # violates: no edge from Y to X
        value = partition_value(weights, push, pull)
        if value > best_value:
            best_value = value
            best = (push, pull)
    return best, best_value


class TestSolveDMP:
    def test_all_positive_goes_push(self):
        weights = {1: 2.0, 2: 3.0}
        push, pull = solve_dmp(weights, [(1, 2)])
        assert push == {1, 2} and pull == set()

    def test_all_negative_goes_pull(self):
        weights = {1: -2.0, 2: -3.0}
        push, pull = solve_dmp(weights, [(1, 2)])
        assert pull == {1, 2}

    def test_conflict_resolved_optimally(self):
        # Upstream wants pull (-10), downstream wants push (+3):
        # cheapest sacrifice is pushing... no — putting both in pull loses 3,
        # both in push loses 10; and (pull->push) is forbidden.
        weights = {1: -10.0, 2: 3.0}
        push, pull = solve_dmp(weights, [(1, 2)])
        assert pull == {1, 2}

    def test_conflict_other_direction(self):
        weights = {1: -3.0, 2: 10.0}
        push, pull = solve_dmp(weights, [(1, 2)])
        assert push == {1, 2}

    def test_zero_weights_allowed(self):
        weights = {1: 0.0, 2: 5.0, 3: -5.0}
        push, pull = solve_dmp(weights, [(1, 2), (1, 3)])
        value = partition_value(weights, push, pull)
        _, best = brute_force_dmp(weights, [(1, 2), (1, 3)])
        assert value == pytest.approx(best)

    def test_matches_brute_force_on_random_dags(self):
        rng = random.Random(13)
        for trial in range(40):
            n = rng.randrange(2, 9)
            nodes = list(range(n))
            weights = {v: float(rng.randrange(-20, 21)) for v in nodes}
            edges = [
                (u, v)
                for u in nodes
                for v in nodes
                if u < v and rng.random() < 0.3  # u < v keeps it a DAG
            ]
            push, pull = solve_dmp(weights, edges)
            assert not any(u in pull and v in push for u, v in edges)
            got = partition_value(weights, push, pull)
            _, best = brute_force_dmp(weights, edges)
            assert got == pytest.approx(best), f"trial {trial}"


class TestNodeWeights:
    def make_overlay(self):
        ov = Overlay()
        w = ov.add_writer("w")
        r = ov.add_reader("r")
        pa = ov.add_partial()
        ov.add_edge(w, pa)
        ov.add_edge(pa, r)
        return ov, w, pa, r

    def test_writers_excluded(self):
        ov, w, pa, r = self.make_overlay()
        weights = node_weights(
            ov, [1.0] * 3, [1.0] * 3, CostModel.constant_linear()
        )
        assert w not in weights
        assert pa in weights and r in weights

    def test_weight_is_pull_minus_push(self):
        ov, w, pa, r = self.make_overlay()
        fh = [0.0] * 3
        fl = [0.0] * 3
        fh[pa], fl[pa] = 2.0, 5.0
        weights = node_weights(ov, fh, fl, CostModel.constant_linear())
        # fan-in of pa is 1: PULL = 5*1, PUSH = 2*1.
        assert weights[pa] == pytest.approx(3.0)

    def test_force_push_dominates(self):
        ov, w, pa, r = self.make_overlay()
        fh = [100.0] * 3
        fl = [0.0] * 3
        weights = node_weights(
            ov, fh, fl, CostModel.constant_linear(), force_push={r}
        )
        assert weights[r] > 0
        push, pull = solve_dmp(weights, [(pa, r)])
        assert r in push


class TestDecideDataflow:
    def build(self, ratio):
        graph = paper_figure1()
        ag = build_bipartite(graph, Neighborhood.in_neighbors())
        overlay = build_vnm(ag, variant="vnm_a", iterations=4).overlay
        frequencies = FrequencyModel.uniform(
            graph.nodes(), read=1.0, write=ratio
        )
        return overlay, frequencies

    def test_decisions_consistent(self):
        overlay, frequencies = self.build(1.0)
        stats = decide_dataflow(overlay, frequencies)
        assert overlay.decisions_consistent()
        assert stats.push_nodes + stats.pull_nodes == stats.nodes_total

    def test_read_heavy_pushes_readers(self):
        overlay, frequencies = self.build(0.001)
        decide_dataflow(overlay, frequencies)
        pushes = sum(
            1
            for h in overlay.reader_handles()
            if overlay.decisions[h] is Decision.PUSH
        )
        assert pushes == len(overlay.reader_of)

    def test_write_heavy_pulls_readers(self):
        overlay, frequencies = self.build(1000.0)
        decide_dataflow(overlay, frequencies)
        pulls = sum(
            1
            for h in overlay.reader_handles()
            if overlay.decisions[h] is Decision.PULL
        )
        assert pulls == len(overlay.reader_of)

    def test_pruning_does_not_change_decisions(self):
        """Theorem 4.2: P1/P2 never compromise optimality."""
        for ratio in (0.1, 1.0, 10.0):
            overlay_a, frequencies = self.build(ratio)
            overlay_b = overlay_a.copy()
            cost_model = CostModel.constant_linear()
            decide_dataflow(overlay_a, frequencies, cost_model, use_pruning=True)
            decide_dataflow(overlay_b, frequencies, cost_model, use_pruning=False)
            assert overlay_a.decisions == overlay_b.decisions

    def test_pruning_shrinks_problem(self):
        overlay, frequencies = self.build(1.0)
        stats = decide_dataflow(overlay, frequencies)
        assert stats.nodes_after_pruning <= stats.nodes_total
        assert stats.num_components >= 0

    def test_force_push_readers(self):
        overlay, frequencies = self.build(1000.0)  # write-heavy
        decide_dataflow(overlay, frequencies, force_push_readers=True)
        for h in overlay.reader_handles():
            assert overlay.decisions[h] is Decision.PUSH
        assert overlay.decisions_consistent()

    def test_total_cost_reported(self):
        overlay, frequencies = self.build(1.0)
        stats = decide_dataflow(overlay, frequencies)
        assert stats.total_cost > 0

    def test_optimal_cost_at_most_baselines(self):
        """The min-cut decisions never cost more than all-push or all-pull."""
        from repro.dataflow.frequencies import compute_push_pull_frequencies

        for seed in (1, 2, 3):
            graph = random_graph(20, 80, seed=seed)
            ag = build_bipartite(graph, Neighborhood.in_neighbors())
            overlay = build_vnm(ag, variant="vnm_a", iterations=3).overlay
            frequencies = FrequencyModel.zipf(graph.nodes(), seed=seed)
            cost_model = CostModel.constant_linear()
            fh, fl = compute_push_pull_frequencies(overlay, frequencies)
            decide_dataflow(overlay, frequencies, cost_model)
            optimal = assignment_cost(overlay, fh, fl, cost_model)
            overlay.set_all_decisions(Decision.PUSH)
            all_push = assignment_cost(overlay, fh, fl, cost_model)
            overlay.set_all_decisions(Decision.PULL)
            all_pull = assignment_cost(overlay, fh, fl, cost_model)
            assert optimal <= all_push + 1e-9
            assert optimal <= all_pull + 1e-9
