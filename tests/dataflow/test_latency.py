"""Tests for latency-constrained dataflow decisions (future-work extension)."""

import pytest

from repro.core.overlay import Decision, Overlay
from repro.dataflow.costs import CostModel
from repro.dataflow.frequencies import FrequencyModel, compute_push_pull_frequencies
from repro.dataflow.latency import (
    decide_dataflow_with_latency_budget,
    estimated_read_latency,
    read_latency_profile,
)
from repro.dataflow.mincut import assignment_cost, decide_dataflow
from repro.graph.bipartite import build_bipartite
from repro.graph.generators import paper_figure1, random_graph
from repro.graph.neighborhoods import Neighborhood
from repro.overlay.vnm import build_vnm


def build(ratio=50.0, seed=1):
    """A write-heavy setting: unconstrained decisions leave readers pull."""
    graph = random_graph(25, 110, seed=seed)
    ag = build_bipartite(graph, Neighborhood.in_neighbors())
    overlay = build_vnm(ag, variant="vnm_a", iterations=4).overlay
    frequencies = FrequencyModel.uniform(graph.nodes(), read=1.0, write=ratio)
    return graph, overlay, frequencies


class TestLatencyEstimate:
    def test_push_reader_is_free(self):
        _, overlay, frequencies = build(ratio=0.001)  # read-heavy: all push
        decide_dataflow(overlay, frequencies)
        model = CostModel.constant_linear()
        for handle in overlay.reader_of.values():
            if overlay.decisions[handle] is Decision.PUSH:
                assert estimated_read_latency(overlay, handle, model) == 0.0

    def test_pull_reader_pays_upstream(self):
        _, overlay, frequencies = build(ratio=1000.0)  # write-heavy: pulls
        decide_dataflow(overlay, frequencies)
        model = CostModel.constant_linear()
        profile = read_latency_profile(overlay, model)
        assert max(profile.values()) > 0.0

    def test_latency_counts_each_pull_node_once(self):
        # Diamond: r pulls i1 and i2, both pulling the same pa.
        overlay = Overlay()
        w = overlay.add_writer("w")
        pa = overlay.add_partial()
        i1, i2 = overlay.add_partial(), overlay.add_partial()
        r = overlay.add_reader("r")
        overlay.add_edge(w, pa)
        overlay.add_edge(pa, i1)
        overlay.add_edge(pa, i2)
        overlay.add_edge(i1, r)
        overlay.add_edge(i2, r)
        model = CostModel.constant_linear()
        # All pull: r (fan-in 2) + i1 + i2 + pa = 2 + 1 + 1 + 1.
        assert estimated_read_latency(overlay, r, model) == 5.0


class TestBudgetedDecisions:
    def test_zero_budget_forces_all_push(self):
        _, overlay, frequencies = build(ratio=1000.0)
        decide_dataflow_with_latency_budget(overlay, frequencies, latency_budget=0.0)
        model = CostModel.constant_linear()
        for handle in overlay.reader_of.values():
            assert estimated_read_latency(overlay, handle, model) == 0.0
        assert overlay.decisions_consistent()

    def test_infinite_budget_matches_unconstrained(self):
        _, overlay_a, frequencies = build(ratio=7.0, seed=3)
        overlay_b = overlay_a.copy()
        decide_dataflow(overlay_a, frequencies)
        decide_dataflow_with_latency_budget(
            overlay_b, frequencies, latency_budget=float("inf")
        )
        assert overlay_a.decisions == overlay_b.decisions

    def test_budget_enforced(self):
        _, overlay, frequencies = build(ratio=1000.0, seed=4)
        model = CostModel.constant_linear()
        budget = 6.0
        decide_dataflow_with_latency_budget(
            overlay, frequencies, latency_budget=budget, cost_model=model
        )
        profile = read_latency_profile(overlay, model)
        assert all(latency <= budget for latency in profile.values())
        assert overlay.decisions_consistent()

    def test_tighter_budget_costs_more_throughput(self):
        model = CostModel.constant_linear()
        costs = []
        for budget in (float("inf"), 10.0, 0.0):
            _, overlay, frequencies = build(ratio=200.0, seed=5)
            decide_dataflow_with_latency_budget(
                overlay, frequencies, latency_budget=budget, cost_model=model
            )
            fh, fl = compute_push_pull_frequencies(overlay, frequencies)
            costs.append(assignment_cost(overlay, fh, fl, model))
        assert costs[0] <= costs[1] <= costs[2]

    def test_budget_validation(self):
        _, overlay, frequencies = build()
        with pytest.raises(ValueError):
            decide_dataflow_with_latency_budget(overlay, frequencies, -1.0)

    def test_engine_results_correct_under_budget(self):
        from repro.core.aggregates import Sum
        from repro.core.engine import EAGrEngine
        from repro.core.query import EgoQuery
        from tests.conftest import make_events, play_and_check

        graph = random_graph(20, 80, seed=6)
        engine = EAGrEngine(
            graph, EgoQuery(aggregate=Sum()), overlay_algorithm="vnm_a",
            frequencies=FrequencyModel.uniform(graph.nodes(), read=1.0, write=50.0),
        )
        decide_dataflow_with_latency_budget(
            engine.overlay, engine.frequencies, latency_budget=3.0,
        )
        engine.runtime.rebuild()
        play_and_check(engine, make_events(list(graph.nodes()), 250, seed=7))
