"""Tests for the linear-time greedy decision alternative (Section 4.6)."""

import random

import pytest

from repro.core.overlay import Decision
from repro.dataflow.costs import CostModel
from repro.dataflow.frequencies import FrequencyModel, compute_push_pull_frequencies
from repro.dataflow.greedy import greedy_dataflow
from repro.dataflow.mincut import assignment_cost, decide_dataflow
from repro.graph.bipartite import build_bipartite
from repro.graph.generators import paper_figure1, random_graph
from repro.graph.neighborhoods import Neighborhood
from repro.overlay.vnm import build_vnm


def build_overlay(seed=1, nodes=20, edges=80):
    graph = random_graph(nodes, edges, seed=seed)
    ag = build_bipartite(graph, Neighborhood.in_neighbors())
    overlay = build_vnm(ag, variant="vnm_a", iterations=3).overlay
    return graph, overlay


class TestGreedy:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_always_consistent(self, seed):
        graph, overlay = build_overlay(seed=seed)
        frequencies = FrequencyModel.zipf(graph.nodes(), seed=seed)
        greedy_dataflow(overlay, frequencies)
        assert overlay.decisions_consistent()

    def test_agrees_with_optimal_when_no_conflicts(self):
        # Uniform extreme ratios produce conflict-free instances where the
        # greedy and the min-cut must coincide.
        for ratio in (0.001, 1000.0):
            graph = paper_figure1()
            ag = build_bipartite(graph, Neighborhood.in_neighbors())
            overlay_g = build_vnm(ag, variant="vnm_a", iterations=3).overlay
            overlay_m = overlay_g.copy()
            frequencies = FrequencyModel.uniform(graph.nodes(), read=1.0, write=ratio)
            greedy_dataflow(overlay_g, frequencies)
            decide_dataflow(overlay_m, frequencies)
            assert overlay_g.decisions == overlay_m.decisions

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_cost_close_to_optimal(self, seed):
        graph, overlay = build_overlay(seed=seed)
        frequencies = FrequencyModel.zipf(graph.nodes(), seed=seed + 100)
        cost_model = CostModel.constant_linear()
        fh, fl = compute_push_pull_frequencies(overlay, frequencies)
        optimal_overlay = overlay.copy()
        decide_dataflow(optimal_overlay, frequencies, cost_model)
        optimal = assignment_cost(optimal_overlay, fh, fl, cost_model)
        stats = greedy_dataflow(overlay, frequencies, cost_model)
        assert stats.total_cost >= optimal - 1e-9  # optimal is a lower bound
        assert stats.total_cost <= optimal * 2.0 + 1e-9  # and greedy is close

    def test_force_push_readers(self):
        graph, overlay = build_overlay(seed=7)
        frequencies = FrequencyModel.uniform(graph.nodes(), read=0.001, write=100.0)
        greedy_dataflow(overlay, frequencies, force_push_readers=True)
        for handle in overlay.reader_handles():
            assert overlay.decisions[handle] is Decision.PUSH
        assert overlay.decisions_consistent()

    def test_stats_counts(self):
        graph, overlay = build_overlay(seed=8)
        frequencies = FrequencyModel.uniform(graph.nodes())
        stats = greedy_dataflow(overlay, frequencies)
        assert stats.push_nodes + stats.pull_nodes == stats.nodes_total
