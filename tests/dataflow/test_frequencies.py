"""Tests for push/pull frequency propagation (Section 4.1)."""

import pytest

from repro.core.overlay import Overlay
from repro.dataflow.frequencies import FrequencyModel, compute_push_pull_frequencies


def diamond_overlay():
    """w1, w2 -> i -> r1, r2   (plus w3 -> r2)."""
    ov = Overlay()
    w = {n: ov.add_writer(n) for n in ("w1", "w2", "w3")}
    r1, r2 = ov.add_reader("r1"), ov.add_reader("r2")
    i = ov.add_partial()
    ov.add_edge(w["w1"], i)
    ov.add_edge(w["w2"], i)
    ov.add_edge(i, r1)
    ov.add_edge(i, r2)
    ov.add_edge(w["w3"], r2)
    return ov, w, i, (r1, r2)


class TestPropagation:
    def test_push_frequencies_sum_downstream(self):
        ov, w, i, (r1, r2) = diamond_overlay()
        frequencies = FrequencyModel(
            write={"w1": 3.0, "w2": 4.0, "w3": 10.0},
            read={"r1": 1.0, "r2": 2.0},
        )
        fh, fl = compute_push_pull_frequencies(ov, frequencies)
        assert fh[i] == 7.0
        assert fh[r1] == 7.0
        assert fh[r2] == 17.0

    def test_pull_frequencies_sum_upstream(self):
        ov, w, i, (r1, r2) = diamond_overlay()
        frequencies = FrequencyModel(
            write={"w1": 3.0, "w2": 4.0, "w3": 10.0},
            read={"r1": 1.0, "r2": 2.0},
        )
        fh, fl = compute_push_pull_frequencies(ov, frequencies)
        assert fl[i] == 3.0  # both readers' pulls land on i
        assert fl[w["w1"]] == 3.0
        assert fl[w["w3"]] == 2.0

    def test_negative_edges_move_data_too(self):
        ov = Overlay()
        w1 = ov.add_writer("w1")
        r = ov.add_reader("r")
        ov.add_edge(w1, r, sign=-1)
        frequencies = FrequencyModel(write={"w1": 5.0}, read={"r": 2.0})
        fh, fl = compute_push_pull_frequencies(ov, frequencies)
        assert fh[r] == 5.0
        assert fl[w1] == 2.0

    def test_missing_nodes_default_zero(self):
        ov, w, i, (r1, r2) = diamond_overlay()
        fh, fl = compute_push_pull_frequencies(ov, FrequencyModel())
        assert all(v == 0.0 for v in fh)
        assert all(v == 0.0 for v in fl)


class TestFrequencyModel:
    def test_uniform(self):
        model = FrequencyModel.uniform(["a", "b"], read=2.0, write=3.0)
        assert model.read_freq("a") == 2.0
        assert model.write_freq("b") == 3.0
        assert model.read_freq("ghost") == 0.0

    def test_zipf_totals(self):
        nodes = list(range(50))
        model = FrequencyModel.zipf(
            nodes, total_events=10_000, write_read_ratio=1.0, seed=3
        )
        writes = sum(model.write.values())
        reads = sum(model.read.values())
        assert writes == pytest.approx(5_000)
        assert reads == pytest.approx(5_000)

    def test_zipf_ratio(self):
        nodes = list(range(50))
        model = FrequencyModel.zipf(
            nodes, total_events=9_000, write_read_ratio=2.0, seed=3
        )
        assert sum(model.write.values()) == pytest.approx(6_000)
        assert sum(model.read.values()) == pytest.approx(3_000)

    def test_zipf_is_skewed(self):
        nodes = list(range(100))
        model = FrequencyModel.zipf(nodes, alpha=1.0, seed=4)
        values = sorted(model.write.values(), reverse=True)
        assert values[0] > 10 * values[-1]

    def test_zipf_read_linear_in_write(self):
        nodes = list(range(30))
        model = FrequencyModel.zipf(nodes, write_read_ratio=3.0, seed=5)
        for node in nodes:
            assert model.read_freq(node) == pytest.approx(
                model.write_freq(node) / 3.0
            )

    def test_from_trace(self):
        model = FrequencyModel.from_trace(
            [("read", "a"), ("write", "a"), ("write", "a"), ("read", "b")]
        )
        assert model.read_freq("a") == 1.0
        assert model.write_freq("a") == 2.0
        assert model.read_freq("b") == 1.0

    def test_scaled(self):
        model = FrequencyModel.uniform(["a"], read=2.0, write=4.0)
        scaled = model.scaled(read_scale=10.0, write_scale=0.5)
        assert scaled.read_freq("a") == 20.0
        assert scaled.write_freq("a") == 2.0

    def test_zipf_empty_nodes(self):
        model = FrequencyModel.zipf([])
        assert model.read == {} and model.write == {}
