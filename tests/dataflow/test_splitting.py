"""Tests for partial pre-computation by node splitting (Section 4.7)."""

import pytest

from repro.core.aggregates import Sum
from repro.core.overlay import NodeKind, Overlay
from repro.core.query import EgoQuery
from repro.dataflow.costs import CostModel
from repro.dataflow.frequencies import FrequencyModel
from repro.dataflow.splitting import best_split, split_nodes
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import random_graph
from repro.graph.neighborhoods import Neighborhood


class TestBestSplit:
    def test_figure7_shape(self):
        # Figure 7's shape with numbers that actually favour a split under
        # H(k)=1: four quiet inputs and one very hot input, few pulls.
        # Unsplit: push costs 110, pull costs 10*L(5)=50.  Splitting the
        # quiet four: 10 pushes + 10*L(2)=20 -> 30.
        model = CostModel.constant_linear()
        choice = best_split([1.0, 2.0, 3.0, 4.0, 100.0], pull_freq=10.0,
                            push_freq=110.0, cost_model=model)
        assert choice is not None
        split_at, cost = choice
        assert split_at == 4
        unsplit = min(110.0 * 1.0, 10.0 * 5.0)
        assert cost < unsplit

    def test_uniform_inputs_do_not_split(self):
        model = CostModel.constant_linear()
        assert best_split([5.0] * 6, 5.0, 30.0, model) is None

    def test_small_fan_in_never_splits(self):
        model = CostModel.constant_linear()
        assert best_split([1.0, 100.0], 10.0, 101.0, model) is None

    def test_cost_is_minimum_over_prefixes(self):
        model = CostModel.constant_linear()
        freqs = [0.1, 0.2, 30.0, 40.0]
        choice = best_split(freqs, pull_freq=8.0, push_freq=70.3, cost_model=model)
        if choice is not None:
            split_at, cost = choice
            prefix = sum(freqs[:split_at])
            expected = prefix * model.push_cost(split_at) + 8.0 * model.pull_cost(
                len(freqs) - split_at + 1
            )
            assert cost == pytest.approx(expected)


class TestSplitNodes:
    def figure7_overlay(self):
        """An aggregation node with four quiet writers and one hot one."""
        ag = BipartiteGraph({"r": ("a", "b", "c", "d", "e")})
        overlay = Overlay.identity(ag)
        frequencies = FrequencyModel(
            read={"r": 10.0},
            write={"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0, "e": 100.0},
        )
        return ag, overlay, frequencies

    def test_creates_split_node(self):
        ag, overlay, frequencies = self.figure7_overlay()
        created = split_nodes(overlay, frequencies)
        assert len(created) == 1
        new = created[0]
        assert overlay.kinds[new] is NodeKind.PARTIAL
        # The quiet four moved behind the new node.
        assert overlay.fan_in(new) == 4
        overlay.validate(ag)

    def test_hot_input_stays_direct(self):
        ag, overlay, frequencies = self.figure7_overlay()
        split_nodes(overlay, frequencies)
        r = overlay.reader_of["r"]
        e = overlay.writer_of["e"]
        assert overlay.has_edge(e, r)

    def test_no_split_on_uniform(self):
        ag = BipartiteGraph({"r": ("a", "b", "c", "d")})
        overlay = Overlay.identity(ag)
        frequencies = FrequencyModel.uniform(["a", "b", "c", "d", "r"])
        assert split_nodes(overlay, frequencies) == []

    def test_negative_input_nodes_skipped(self):
        ag = BipartiteGraph({"r": ("a", "b", "c")})
        overlay = Overlay()
        handles = {w: overlay.add_writer(w) for w in ("a", "b", "c", "x")}
        r = overlay.add_reader("r")
        pa = overlay.add_partial()
        for w in ("a", "b", "c", "x"):
            overlay.add_edge(handles[w], pa)
        overlay.add_edge(pa, r)
        overlay.add_edge(handles["x"], r, sign=-1)
        frequencies = FrequencyModel(
            read={"r": 50.0},
            write={"a": 0.1, "b": 0.2, "c": 0.3, "x": 90.0},
        )
        created = split_nodes(overlay, frequencies)
        # r has a negative input: skipped; pa has uniform-ish quiet inputs
        # but may legitimately split — correctness must hold either way.
        overlay.validate(ag)
        for handle in created:
            assert all(s > 0 for s in overlay.inputs[handle].values())

    def test_execution_equivalence_after_splitting(self):
        from repro.core.engine import EAGrEngine
        from tests.conftest import make_events, play_and_check

        graph = random_graph(25, 120, seed=31)
        frequencies = FrequencyModel.zipf(graph.nodes(), seed=5)
        query = EgoQuery(aggregate=Sum(), neighborhood=Neighborhood.in_neighbors())
        engine = EAGrEngine(
            graph, query, overlay_algorithm="identity",
            frequencies=frequencies, enable_splitting=True,
        )
        assert engine.split_handles  # splitting actually happened
        play_and_check(engine, make_events(list(graph.nodes()), 300, seed=32))
