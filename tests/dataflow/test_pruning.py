"""Tests for the P1/P2 pruning rules and component splitting."""

from repro.dataflow.pruning import connected_components, prune


class TestP1:
    def test_source_with_positive_weight_pruned_push(self):
        result = prune({1: 5.0, 2: -1.0}, [(1, 2)])
        assert 1 in result.pushed

    def test_cascade(self):
        # 1 -> 2 -> 3, all positive: P1 unravels the whole chain.
        result = prune({1: 1.0, 2: 1.0, 3: 1.0}, [(1, 2), (2, 3)])
        assert result.pushed == {1, 2, 3}
        assert result.nodes_after == 0

    def test_positive_sink_not_pruned_by_p1(self):
        # 1 (negative) -> 2 (positive): 2 has an incoming edge, P1 can't
        # touch it; 2 has no outgoing edge but is positive, P2 can't either.
        result = prune({1: -1.0, 2: 1.0}, [(1, 2)])
        assert result.remaining_nodes == {1, 2}


class TestP2:
    def test_sink_with_negative_weight_pruned_pull(self):
        result = prune({1: 5.0, 2: -1.0}, [(1, 2)])
        assert 2 in result.pulled

    def test_cascade(self):
        result = prune({1: -1.0, 2: -1.0, 3: -1.0}, [(1, 2), (2, 3)])
        assert result.pulled == {1, 2, 3}


class TestInteraction:
    def test_conflicted_pair_survives(self):
        # pull-leaning upstream of push-leaning: genuinely conflicted.
        result = prune({1: -3.0, 2: 5.0}, [(1, 2)])
        assert result.remaining_nodes == {1, 2}
        assert result.remaining_edges == [(1, 2)]

    def test_zero_weight_source_pruned(self):
        result = prune({1: 0.0, 2: -5.0}, [(1, 2)])
        assert 1 in result.pushed

    def test_zero_weight_sink_pruned(self):
        result = prune({1: 5.0, 2: 0.0}, [(1, 2)])
        assert 2 in result.pulled or 2 in result.pushed

    def test_alternating_rules_unravel(self):
        #  a(+) -> b(-) -> c(+) -> d(-): P2 removes d, then c becomes a
        #  positive sink... no — c is positive with no outgoing after d:
        #  only P1/P2 conditions apply; walk it through.
        weights = {"a": 1.0, "b": -1.0, "c": 1.0, "d": -1.0}
        edges = [("a", "b"), ("b", "c"), ("c", "d")]
        result = prune(weights, edges)
        assert "a" in result.pushed  # source, positive
        assert "d" in result.pulled  # sink, negative
        # b and c form the conflicted core.
        assert result.remaining_nodes == {"b", "c"}

    def test_counts(self):
        result = prune({1: 1.0, 2: -1.0, 3: -3.0, 4: 4.0}, [(2, 3), (3, 4), (2, 4)])
        assert result.nodes_before == 4
        assert result.nodes_after == result.nodes_before - len(result.pushed) - len(
            result.pulled
        )

    def test_empty_input(self):
        result = prune({}, [])
        assert result.nodes_after == 0


class TestComponents:
    def test_disjoint_components(self):
        comps = connected_components([1, 2, 3, 4], [(1, 2), (3, 4)])
        sizes = sorted(len(members) for members, _ in comps)
        assert sizes == [2, 2]

    def test_direction_ignored(self):
        comps = connected_components([1, 2, 3], [(2, 1), (2, 3)])
        assert len(comps) == 1

    def test_isolated_nodes_are_singletons(self):
        comps = connected_components([1, 2, 3], [])
        assert len(comps) == 3

    def test_edges_assigned_to_their_component(self):
        comps = connected_components([1, 2, 3, 4], [(1, 2), (3, 4)])
        for members, edges in comps:
            for u, v in edges:
                assert u in members and v in members
