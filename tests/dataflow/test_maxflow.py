"""Tests for the from-scratch max-flow implementations."""

import random

import pytest

from repro.dataflow.maxflow import INF, FlowNetwork, edmonds_karp


class TestDinicBasics:
    def test_single_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 5.0)
        assert net.max_flow(0, 1) == 5.0

    def test_series_bottleneck(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 10.0)
        net.add_edge(1, 2, 3.0)
        assert net.max_flow(0, 2) == 3.0

    def test_parallel_paths(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3.0)
        net.add_edge(1, 3, 3.0)
        net.add_edge(0, 2, 4.0)
        net.add_edge(2, 3, 4.0)
        assert net.max_flow(0, 3) == 7.0

    def test_classic_clrs_network(self):
        # CLRS Figure 26.1: max flow 23.
        net = FlowNetwork(6)
        net.add_edge(0, 1, 16)
        net.add_edge(0, 2, 13)
        net.add_edge(1, 2, 10)
        net.add_edge(2, 1, 4)
        net.add_edge(1, 3, 12)
        net.add_edge(3, 2, 9)
        net.add_edge(2, 4, 14)
        net.add_edge(4, 3, 7)
        net.add_edge(3, 5, 20)
        net.add_edge(4, 5, 4)
        assert net.max_flow(0, 5) == 23.0

    def test_disconnected(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 5.0)
        assert net.max_flow(0, 2) == 0.0

    def test_infinite_capacity_path(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, INF)
        net.add_edge(1, 2, 8.0)
        assert net.max_flow(0, 2) == 8.0

    def test_zero_capacity_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 0.0)
        assert net.max_flow(0, 1) == 0.0


class TestValidation:
    def test_negative_capacity(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1.0)

    def test_out_of_range(self):
        net = FlowNetwork(2)
        with pytest.raises(IndexError):
            net.add_edge(0, 5, 1.0)

    def test_source_equals_sink(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.max_flow(0, 0)

    def test_too_small(self):
        with pytest.raises(ValueError):
            FlowNetwork(1)


class TestMinCut:
    def test_residual_reachability_is_source_side(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 10.0)
        net.add_edge(1, 2, 1.0)  # the cut
        net.add_edge(2, 3, 10.0)
        net.max_flow(0, 3)
        assert net.residual_reachable(0) == {0, 1}

    def test_cut_capacity_equals_flow(self):
        rng = random.Random(7)
        for trial in range(20):
            n = rng.randrange(4, 10)
            edges = []
            net = FlowNetwork(n)
            for _ in range(rng.randrange(5, 25)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                cap = float(rng.randrange(1, 10))
                edges.append((u, v, cap))
                net.add_edge(u, v, cap)
            flow = net.max_flow(0, n - 1)
            source_side = net.residual_reachable(0)
            cut = sum(c for u, v, c in edges if u in source_side and v not in source_side)
            assert flow == pytest.approx(cut)


class TestCrossValidation:
    def test_dinic_matches_edmonds_karp_on_random_networks(self):
        rng = random.Random(99)
        for trial in range(40):
            n = rng.randrange(4, 12)
            edges = []
            net = FlowNetwork(n)
            for _ in range(rng.randrange(4, 30)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                cap = float(rng.randrange(1, 12))
                edges.append((u, v, cap))
                net.add_edge(u, v, cap)
            expected = edmonds_karp(n, edges, 0, n - 1)
            assert net.max_flow(0, n - 1) == pytest.approx(expected)
