"""Tests for workload generation: Zipf sampling, mixing, drifting traces."""

import pytest

from repro.graph.streams import ReadEvent, WriteEvent
from repro.workload import (
    DriftSpec,
    WorkloadSpec,
    ZipfDriftSampler,
    ZipfSampler,
    drifting_trace,
    generate_events,
    phase_frequencies,
    warmup_writes,
)


class TestZipfSampler:
    def test_deterministic(self):
        s1 = ZipfSampler(list(range(20)), seed=3)
        s2 = ZipfSampler(list(range(20)), seed=3)
        assert s1.sample_many(50) == s2.sample_many(50)

    def test_skew(self):
        sampler = ZipfSampler(list(range(100)), alpha=1.2, seed=5)
        counts = {}
        for node in sampler.sample_many(5000):
            counts[node] = counts.get(node, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] > 20 * (5000 / 100 / 20)  # head way above uniform

    def test_alpha_zero_uniformish(self):
        sampler = ZipfSampler(list(range(10)), alpha=0.0, seed=5)
        counts = {}
        for node in sampler.sample_many(5000):
            counts[node] = counts.get(node, 0) + 1
        assert max(counts.values()) < 3 * min(counts.values())

    def test_expected_frequencies_sum(self):
        sampler = ZipfSampler(list(range(30)), seed=7)
        expected = sampler.expected_frequencies(1000.0)
        assert sum(expected.values()) == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler([])
        with pytest.raises(ValueError):
            ZipfSampler([1], alpha=-1.0)


class TestMixer:
    def test_count_and_determinism(self):
        nodes = list(range(10))
        spec = WorkloadSpec(num_events=500, seed=9)
        e1 = generate_events(nodes, spec)
        e2 = generate_events(nodes, spec)
        assert len(e1) == 500
        assert e1 == e2

    def test_ratio_controls_write_fraction(self):
        nodes = list(range(10))
        for ratio, low, high in ((0.1, 0.03, 0.18), (1.0, 0.42, 0.58), (10.0, 0.85, 0.97)):
            events = generate_events(
                nodes, num_events=2000, write_read_ratio=ratio, seed=4
            )
            writes = sum(1 for e in events if isinstance(e, WriteEvent))
            assert low < writes / len(events) < high

    def test_timestamps_increase(self):
        events = generate_events(list(range(5)), num_events=100, seed=2)
        stamps = [e.timestamp for e in events]
        assert stamps == sorted(stamps)

    def test_custom_value_factory(self):
        events = generate_events(
            list(range(5)), num_events=50, write_read_ratio=100.0, seed=2,
            value_factory=lambda rng: "tag",
        )
        assert all(e.value == "tag" for e in events if isinstance(e, WriteEvent))

    def test_spec_and_overrides_exclusive(self):
        with pytest.raises(TypeError):
            generate_events([1], WorkloadSpec(), num_events=5)

    def test_warmup_covers_all_nodes(self):
        events = warmup_writes(list(range(7)), per_node=2)
        assert len(events) == 14
        touched = {e.node for e in events}
        assert touched == set(range(7))


class TestDriftingTrace:
    def test_counts_and_nodes(self):
        events, drifting = drifting_trace(list(range(20)), num_events=1000, seed=3)
        assert len(events) == 1000
        assert drifting
        assert set(drifting) <= set(range(20))

    def test_drift_inverts_mix_for_target_nodes(self):
        spec = DriftSpec(
            num_events=20_000, base_write_read_ratio=9.0,
            drifted_write_read_ratio=1 / 9.0, drifting_fraction=0.2, seed=6,
        )
        events, drifting = drifting_trace(list(range(20)), spec)
        half = len(events) // 2
        drift_set = set(drifting)

        def write_fraction(chunk):
            relevant = [e for e in chunk if e.node in drift_set]
            writes = sum(1 for e in relevant if isinstance(e, WriteEvent))
            return writes / max(1, len(relevant))

        assert write_fraction(events[:half]) > 0.75
        assert write_fraction(events[half:]) < 0.35

    def test_non_drifting_nodes_stable(self):
        spec = DriftSpec(num_events=20_000, base_write_read_ratio=1.0, seed=6)
        events, drifting = drifting_trace(list(range(20)), spec)
        half = len(events) // 2
        stable = set(range(20)) - set(drifting)

        def write_fraction(chunk):
            relevant = [e for e in chunk if e.node in stable]
            writes = sum(1 for e in relevant if isinstance(e, WriteEvent))
            return writes / max(1, len(relevant))

        assert abs(write_fraction(events[:half]) - write_fraction(events[half:])) < 0.1

    def test_phase_frequencies(self):
        events = [
            WriteEvent("a", 1, timestamp=1),
            ReadEvent("b", timestamp=2),
            WriteEvent("a", 2, timestamp=3),
            ReadEvent("a", timestamp=4),
        ]
        phases = phase_frequencies(events, num_phases=2)
        assert len(phases) == 2
        reads1, writes1 = phases[0]
        assert writes1 == {"a": 1.0}
        assert reads1 == {"b": 1.0}

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            phase_frequencies([], num_phases=0)


class TestZipfDriftSampler:
    def test_deterministic(self):
        s1 = ZipfDriftSampler(list(range(40)), seed=9, period=50)
        s2 = ZipfDriftSampler(list(range(40)), seed=9, period=50)
        assert s1.sample_many(300) == s2.sample_many(300)

    def test_phase_advances_with_consumption(self):
        sampler = ZipfDriftSampler(list(range(20)), seed=11, period=25)
        assert sampler.phase == 0
        sampler.sample_many(25)
        assert sampler.phase == 1
        sampler.sample_many(60)
        assert sampler.phase == 3

    def test_rotate_slides_the_hot_set(self):
        nodes = list(range(60))
        sampler = ZipfDriftSampler(
            nodes, alpha=1.2, seed=13, period=100, schedule="rotate", stride=15
        )
        hot0 = sampler.hot_nodes(5, phase=0)
        hot1 = sampler.hot_nodes(5, phase=1)
        hot4 = sampler.hot_nodes(5, phase=4)
        assert hot0 != hot1
        # stride 15 over 60 nodes: four phases complete one revolution.
        assert hot4 == hot0

    def test_step_jumps_the_hot_set(self):
        nodes = list(range(80))
        sampler = ZipfDriftSampler(
            nodes, alpha=1.2, seed=17, period=100, schedule="step"
        )
        hots = [tuple(sampler.hot_nodes(5, phase=p)) for p in range(4)]
        assert len(set(hots)) == 4  # fresh shuffle every phase

    def test_samples_concentrate_on_the_phase_hot_set(self):
        nodes = list(range(50))
        sampler = ZipfDriftSampler(
            nodes, alpha=1.3, seed=19, period=2000, schedule="step"
        )
        hot = set(sampler.hot_nodes(10, phase=0))
        draws = sampler.sample_many(2000)
        in_hot = sum(1 for node in draws if node in hot)
        # 10/50 nodes uniform would catch ~20%; the Zipf head dominates.
        assert in_hot / len(draws) > 0.5

    def test_expected_frequencies_track_the_phase(self):
        nodes = list(range(30))
        sampler = ZipfDriftSampler(
            nodes, alpha=1.0, seed=21, period=10, schedule="step"
        )
        for phase in (0, 3):
            freq = sampler.expected_frequencies(600.0, phase=phase)
            assert sum(freq.values()) == pytest.approx(600.0)
            top = max(freq, key=freq.get)
            assert top == sampler.hot_nodes(1, phase=phase)[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfDriftSampler([])
        with pytest.raises(ValueError):
            ZipfDriftSampler([1], alpha=-0.5)
        with pytest.raises(ValueError):
            ZipfDriftSampler([1], period=0)
        with pytest.raises(ValueError):
            ZipfDriftSampler([1], schedule="sawtooth")
