"""The TCP gateway end-to-end: real sockets, real clients, real resume.

Everything here goes through actual TCP connections to a
:class:`~repro.serve.gateway.GatewayServer` fronting an in-process
deployment — the wire protocol, request correlation, subscription
pumps, flow control and reconnect-with-resume are exercised exactly as
a remote client would drive them.  The 1000-subscription acceptance
test lives in ``test_gateway_load.py`` (separate process driver).
"""

import socket
import struct
import time

import pytest

from repro.core.aggregates import Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import random_graph
from repro.serve import (
    EAGrClient,
    EAGrServer,
    GatewayClosed,
    GatewayServer,
    ResumeGapError,
    ServeError,
)
from repro.serve.frames import LENGTH_PREFIX

from tests.serve.faultlib import assert_contiguous, deadline, wait_until


def make_query(window=None):
    return EgoQuery(aggregate=Sum(), window=window or TupleWindow(1))


@pytest.fixture()
def deployment():
    graph = random_graph(30, 140, seed=81)
    server = EAGrServer(
        graph, make_query(), num_shards=2, executor="inprocess",
        overlay_algorithm="vnm_a",
    )
    gateway = GatewayServer(server)
    gateway.start()
    yield graph, server, gateway
    gateway.close()
    server.close()


def drain_stream(stream, count, timeout=10.0, idle=0.3):
    """Collect at least ``count`` notifications from a client stream."""
    out = []
    deadline_at = time.monotonic() + timeout
    while len(out) < count:
        note = stream.get(timeout=min(idle, deadline_at - time.monotonic()))
        if note is not None:
            out.append(note)
        elif time.monotonic() >= deadline_at:
            raise AssertionError(
                f"collected {len(out)}/{count} notifications in {timeout}s"
            )
    out.extend(stream.poll())
    return out


class TestRoundTrip:
    def test_write_read_parity_with_oracle(self, deployment):
        graph, server, gateway = deployment
        oracle = EAGrEngine(graph, make_query(), overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        host, port = gateway.address
        with EAGrClient(host, port, client_id="rt") as client:
            assert client.server_info["num_shards"] == server.num_shards
            assert client.server_info["binary_frames"] == server.binary_frames
            for round_ in range(4):
                batch = [
                    (n, float(round_ + i % 3), float(round_))
                    for i, n in enumerate(nodes[:11])
                ]
                assert client.write_batch(batch) == len(batch)
                oracle.write_batch(batch)
            server.drain()
            assert client.read_batch(nodes) == oracle.read_batch(nodes)

    def test_non_packable_batch_rides_pickle_fallback(self, deployment):
        graph, server, gateway = deployment
        nodes = list(graph.nodes())
        host, port = gateway.address
        with EAGrClient(host, port, client_id="px") as client:
            # 2-tuples (server assigns timestamps) fail the WriteFrame
            # gate client-side and must still apply.
            assert client.write_batch([(nodes[0], 3.0), (nodes[1], 4.0)]) == 2
            server.drain()
            assert client.read_batch([nodes[0]]) == server.read_batch([nodes[0]])

    def test_server_error_surfaces_in_caller(self, deployment):
        graph, server, gateway = deployment
        host, port = gateway.address
        with EAGrClient(host, port, client_id="err") as client:
            server.close()
            with pytest.raises(ServeError):
                client.write_batch([(0, 1.0, 1.0)])


class TestSubscriptions:
    def test_live_stream_contiguous_stamps(self, deployment):
        graph, server, gateway = deployment
        nodes = list(graph.nodes())
        host, port = gateway.address
        with EAGrClient(host, port, client_id="sub") as client:
            stream = client.subscribe(nodes)
            assert set(stream.snapshot) == set(nodes)
            total = 0
            for round_ in range(5):
                batch = [(n, float(round_ + 1), float(round_)) for n in nodes[:7]]
                client.write_batch(batch)
            server.drain()
            wait_until(
                lambda: server.notifications_delivered > 0,
                desc="notifications delivered",
            )
            expected = int(server.notifications_delivered)
            notes = drain_stream(stream, expected)
            assert_contiguous([n.stamp for n in notes], tag="live stream:")
            assert all(n.subscriber == "sub" for n in notes)

    def test_two_subscribers_one_connection(self, deployment):
        graph, server, gateway = deployment
        nodes = list(graph.nodes())
        host, port = gateway.address
        with EAGrClient(host, port, client_id="base") as client:
            a = client.subscribe(nodes[:5], subscriber="a")
            b = client.subscribe(nodes[:5], subscriber="b")
            client.write_batch([(n, 9.0, 1.0) for n in nodes])
            server.drain()
            notes_a = drain_stream(a, 1)
            notes_b = drain_stream(b, 1)
            assert {n.subscriber for n in notes_a} == {"a"}
            assert {n.subscriber for n in notes_b} == {"b"}
            assert_contiguous([n.stamp for n in notes_a], tag="sub a:")
            assert_contiguous([n.stamp for n in notes_b], tag="sub b:")

    def test_resume_gap_maps_to_real_exception(self, deployment):
        graph, server, gateway = deployment
        host, port = gateway.address
        with EAGrClient(host, port, client_id="gap") as client:
            client.subscribe(list(graph.nodes())[:3])
            with pytest.raises(ResumeGapError):
                client.subscribe(resume_from=10_000)


class TestReconnect:
    def test_drop_resume_gap_free(self, deployment):
        """Kill the TCP connection mid-stream; a new client with the old
        stream's resume token continues with no gap and no duplicate."""
        graph, server, gateway = deployment
        nodes = list(graph.nodes())
        host, port = gateway.address
        with deadline(60, "gateway reconnect"):
            c1 = EAGrClient(host, port, client_id="w")
            s1 = c1.subscribe(nodes, auto_ack=False)
            for round_ in range(3):
                c1.write_batch(
                    [(n, float(round_ + 1), float(round_)) for n in nodes[:5]]
                )
            server.drain()
            pre = drain_stream(s1, 1)
            token = s1.resume_token
            assert token >= pre[-1].stamp
            c1.drop()  # unclean network cut, no goodbye
            wait_until(
                lambda: gateway.connections == 0, desc="gateway saw the cut"
            )
            # the world keeps moving while the client is gone
            with EAGrClient(host, port, client_id="other") as writer:
                for round_ in range(3, 6):
                    writer.write_batch(
                        [(n, float(round_ + 1), float(round_)) for n in nodes[:5]]
                    )
            server.drain()
            c2 = EAGrClient(host, port, client_id="w")
            s2 = c2.subscribe(resume_from=token, auto_ack=False)
            expected_total = int(server.notifications_delivered)
            post = drain_stream(s2, expected_total - token)
            # the resumed stream is exactly the suffix after the token:
            # original stamps, no gap, no duplicate
            assert [n.stamp for n in post] == list(
                range(token + 1, expected_total + 1)
            )
            # and the client's merged view covers everything once
            merged = sorted({n.stamp for n in pre} | set(range(1, token + 1))
                            | {n.stamp for n in post})
            assert_contiguous(merged, tag="reconnect:")
            assert max(merged) == expected_total
            # the severed stream fails loudly, never silently ends
            with pytest.raises(GatewayClosed):
                s1.get(timeout=1.0)
            c2.close()

    def test_gateway_restart_clients_resume(self, deployment):
        """Bouncing the *gateway* (not the server) preserves resume — the
        journals live in the server."""
        graph, server, gateway = deployment
        nodes = list(graph.nodes())
        host, port = gateway.address
        c1 = EAGrClient(host, port, client_id="w")
        s1 = c1.subscribe(nodes, auto_ack=False)
        c1.write_batch([(n, 2.0, 1.0) for n in nodes[:5]])
        server.drain()
        notes = drain_stream(s1, 1)
        token = s1.resume_token
        gateway.close()
        c1.close()
        server.write_batch([(n, 7.0, 2.0) for n in nodes[:5]])
        server.drain()
        gw2 = GatewayServer(server)
        gw2.start()
        try:
            h2, p2 = gw2.address
            with EAGrClient(h2, p2, client_id="w") as c2:
                s2 = c2.subscribe(resume_from=token, auto_ack=False)
                expected_total = int(server.notifications_delivered)
                post = drain_stream(s2, expected_total - token)
                merged = sorted(set(range(1, token + 1)) | {n.stamp for n in post})
                assert_contiguous(merged, tag="gateway restart:")
        finally:
            gw2.close()


class TestFlowControl:
    def test_slow_consumer_pauses_and_stays_bounded(self):
        """A consumer that never acks pauses its connection at the
        in-flight budget: the backlog accumulates in the *server's
        journal*, the gateway's per-connection memory stays bounded, and
        manual acks later drain the whole stream gap-free."""
        graph = random_graph(30, 140, seed=82)
        server = EAGrServer(
            graph, make_query(), num_shards=2, executor="inprocess",
            overlay_algorithm="vnm_a", journal_capacity=100_000,
        )
        budget = 2000
        gateway = GatewayServer(server, max_inflight_bytes=budget)
        gateway.start()
        try:
            host, port = gateway.address
            nodes = list(graph.nodes())
            with deadline(90, "slow consumer"):
                client = EAGrClient(host, port, client_id="slow")
                stream = client.subscribe(nodes, auto_ack=False)
                for round_ in range(30):
                    client.write_batch(
                        [(n, float(round_), float(round_ + 10)) for n in nodes]
                    )
                server.drain()
                wait_until(
                    lambda: server.metrics()["server"]["gw_stream_pauses"] >= 1,
                    desc="stream paused at the budget",
                )
                # bounded: un-acked wire bytes never exceed budget + one frame
                for conn in list(gateway._connections):
                    assert conn.inflight <= budget + 65536
                # the backlog is journal-side, not gateway-side
                backlog = server.resume_horizon("slow")
                assert server.last_stamp("slow") > 0
                # drain with manual acks: pause/resume cycles must splice
                # gap-free
                seen = []
                idle = 0
                while idle < 8:
                    notes = stream.poll()
                    if notes:
                        idle = 0
                        seen.extend(notes)
                        stream.ack()
                    else:
                        idle += 1
                        time.sleep(0.1)
                        if seen:
                            stream.ack()
                assert_contiguous([n.stamp for n in seen], tag="slow consumer:")
                metrics = server.metrics()["server"]
                assert metrics["gw_stream_pauses"] >= 1
                assert metrics["gw_stream_resumes"] >= 1
                assert len(seen) == int(server.notifications_delivered)
                client.close()
        finally:
            gateway.close()
            server.close()


class TestProtocol:
    def test_unknown_frame_kind_is_reported(self, deployment):
        graph, server, gateway = deployment
        host, port = gateway.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            payload = bytes([250]) + b"garbage"
            sock.sendall(LENGTH_PREFIX.pack(len(payload)) + payload)
            header = sock.recv(4)
            (length,) = LENGTH_PREFIX.unpack(header)
            reply = b""
            while len(reply) < length:
                reply += sock.recv(length - len(reply))
            from repro.serve.frames import K_ERROR, decode_control
            assert reply[0] == K_ERROR
            rid, kind, message, subscriber = decode_control(reply)
            assert kind == "GatewayError"
            assert "unknown frame kind" in message
        wait_until(
            lambda: server.metrics()["server"]["gw_protocol_errors"] >= 1,
            desc="protocol error counted",
        )

    def test_oversized_frame_rejected_and_connection_dropped(self, deployment):
        graph, server, gateway = deployment
        host, port = gateway.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(LENGTH_PREFIX.pack(gateway._max_frame + 1))
            # gateway answers with an error frame, then hangs up
            data = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                data += chunk
            assert data  # the error frame arrived before the close

    def test_metrics_ride_the_existing_exposition(self, deployment):
        graph, server, gateway = deployment
        host, port = gateway.address
        with EAGrClient(host, port, client_id="m") as client:
            client.write_batch([(list(graph.nodes())[0], 1.0, 1.0)])
        wait_until(
            lambda: gateway.connections == 0, desc="connection torn down"
        )
        snap = server.metrics()["server"]
        assert snap["gw_connections_opened"] >= 1
        assert snap["gw_connections_active"] == 0
        assert snap["gw_frames_in"] >= 2
        assert snap["gw_frames_out"] >= 2
        assert snap["gw_bytes_in"] > 0 and snap["gw_bytes_out"] > 0
