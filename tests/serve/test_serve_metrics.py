"""The metrics plane end-to-end: registry wiring, slab scrapes, the
write→notify latency pipeline, replay hygiene, and the exposition paths.

The latency tests pin the plane's one subtle invariant: an ingress
timestamp taken in ``write_batch`` must ride the frame through routing,
outbox coalescing, the transport, the shard's change report and the
journal — and must be **zeroed** on every replay path (WAL recovery,
shard restart redo, journal resume), because a replayed notification
measured against a dead epoch's clock is a bogus sample.
"""

import math
import time
import urllib.error
import urllib.request

import pytest

from repro.core.aggregates import Sum
from repro.core.query import EgoQuery
from repro.graph.generators import random_graph
from repro.serve import EAGrServer
from repro.serve import frames as _frames

#: Ingress stamps ride the binary frame plane; without numpy the frames
#: (and therefore the latency pipeline) are unavailable by design.
HAS_BINARY = _frames._np is not None
needs_latency = pytest.mark.skipif(
    not HAS_BINARY,
    reason="write→notify stamps ride binary frames, which need numpy",
)


def make_server(graph, query, num_shards=2, **kwargs):
    kwargs.setdefault("executor", "inprocess")
    kwargs.setdefault("overlay_algorithm", "vnm_a")
    return EAGrServer(graph, query, num_shards=num_shards, **kwargs)


def make_latency_server(graph, query, **kwargs):
    """A server whose latency pipeline is live regardless of the
    ``EAGR_BINARY_FRAMES`` codec matrix this suite runs under."""
    kwargs.setdefault("binary_frames", True)
    return make_server(graph, query, **kwargs)


def drive(server, nodes, rounds=4, width=25):
    for r in range(rounds):
        server.write_batch([(n, 1.0 + r, None) for n in nodes[:width]])
    server.drain()


@pytest.fixture
def graph():
    return random_graph(40, 180, seed=91)


@pytest.fixture
def query():
    return EgoQuery(aggregate=Sum())


LATENCY_FIELDS = ("count", "sum", "p50", "p95", "p99")


@needs_latency
class TestLatencyPipeline:
    def test_inprocess_latency_sampled(self, graph, query):
        with make_latency_server(graph, query) as server:
            nodes = list(graph.nodes())
            server.subscribe("watcher", nodes[:6])
            drive(server, nodes)
            lat = server.server_stats()["write_notify_latency"]
            assert lat["count"] > 0
            for field in LATENCY_FIELDS:
                assert math.isfinite(lat[field])
            assert 0.0 < lat["p50"] <= lat["p95"] <= lat["p99"] < 3600.0

    def test_shm_binary_path_latency_and_slab_scrape(self, graph, query):
        """The acceptance path: real worker processes, binary frames on
        the shm ring, latency measured end-to-end and shard metrics
        scraped from the slabs without any control message."""
        with make_latency_server(
            graph, query, executor="process", transport="shm",
            binary_frames=True,
        ) as server:
            assert server.transport == "shm" and server.binary_frames
            nodes = list(graph.nodes())
            server.subscribe("watcher", nodes[:6])
            drive(server, nodes, rounds=6)
            time.sleep(0.2)  # let workers publish their slabs

            lat = server.server_stats()["write_notify_latency"]
            assert lat["count"] > 0
            assert 0.0 < lat["p99"] < 3600.0

            m = server.metrics()
            assert set(m["shards"]) == {"0", "1"}
            for sid, shard in m["shards"].items():
                assert shard["shard_batches_applied"] > 0, sid
                assert shard["shard_writes_applied"] > 0, sid
                assert shard["shard_apply_seconds"]["count"] > 0, sid
            # Ring occupancy gauges come straight from the ring headers.
            for ring in m["rings"].values():
                assert ring["pushed"] > 0
                assert ring["pushed"] >= ring["popped"]

    def test_timestamped_writes_carry_ingress(self, graph, query):
        """Explicit-timestamp batches take the door-pack fast path into a
        binary WriteFrame; the stamp must ride that path too."""
        with make_latency_server(graph, query) as server:
            nodes = list(graph.nodes())
            server.subscribe("watcher", nodes[:6])
            t = 0.0
            for r in range(4):
                batch = []
                for n in nodes[:25]:
                    t += 1.0
                    batch.append((n, 1.0 + r, t))
                server.write_batch(batch)
            server.drain()
            lat = server.server_stats()["write_notify_latency"]
            assert lat["count"] > 0
            assert lat["p99"] < 3600.0


@needs_latency
class TestReplayHygiene:
    def test_wal_recovery_replays_without_latency_samples(
        self, graph, query, tmp_path
    ):
        wal_dir = str(tmp_path / "wal")
        with make_latency_server(graph, query, wal_dir=wal_dir) as server:
            nodes = list(graph.nodes())
            server.subscribe("watcher", nodes[:6])
            drive(server, nodes)
            live = server.server_stats()["write_notify_latency"]
            assert live["count"] > 0

        with make_latency_server(graph, query, wal_dir=wal_dir) as revived:
            revived.subscribe("watcher", resume_from=0)
            revived.drain()
            assert revived.recovered_batches > 0
            lat = revived.server_stats()["write_notify_latency"]
            assert lat["count"] == 0, (
                "WAL replay produced write→notify samples from a dead "
                f"epoch's clock: {lat}"
            )
            # Fresh traffic after recovery samples normally again.
            drive(revived, nodes, rounds=2)
            lat = revived.server_stats()["write_notify_latency"]
            assert lat["count"] > 0
            assert 0.0 < lat["p99"] < 3600.0
            assert lat["sum"] >= 0.0

    def test_journal_resume_replays_without_latency_samples(
        self, graph, query
    ):
        with make_latency_server(graph, query) as server:
            nodes = list(graph.nodes())
            sub = server.subscribe("watcher", nodes[:6])
            drive(server, nodes)
            notes = sub.poll()
            assert notes
            baseline = server.server_stats()["write_notify_latency"]["count"]

            server.disconnect("watcher")
            resumed = server.subscribe("watcher", resume_from=0)
            replayed = resumed.poll()
            assert [n.stamp for n in replayed] == [n.stamp for n in notes]
            after = server.server_stats()["write_notify_latency"]["count"]
            assert after == baseline, "journal replay re-observed latency"

    def test_restart_redo_replays_without_latency_samples(self, graph, query):
        with make_latency_server(graph, query) as server:
            nodes = list(graph.nodes())
            server.subscribe("watcher", nodes[:6])
            drive(server, nodes)
            baseline = server.server_stats()["write_notify_latency"]["count"]
            server.restart_shard(0)
            server.drain()
            after = server.server_stats()["write_notify_latency"]
            assert after["count"] == baseline
            assert after["sum"] >= 0.0


class TestMetricsSnapshot:
    def test_snapshot_shape(self, graph, query, tmp_path):
        with make_server(
            graph, query, wal_dir=str(tmp_path / "wal")
        ) as server:
            nodes = list(graph.nodes())
            server.subscribe("watcher", nodes[:6])
            drive(server, nodes)
            m = server.metrics()
            assert m["enabled"] is True
            server_m = m["server"]
            assert server_m["srv_write_batches"] > 0
            assert server_m["srv_route_seconds"]["count"] > 0
            assert server_m["wal_append_seconds"]["count"] > 0
            assert m["wal"]["enabled"] and m["wal"]["total_bytes"] > 0
            assert m["wal"]["appends"] > 0 and m["wal"]["fsyncs"] > 0
            assert m["journal"]["subscribers"] == 1
            assert m["journal"]["notes"] > 0
            assert isinstance(m["slow_ops"], list)
            # include_buckets threads down to every histogram summary.
            rich = server.metrics(include_buckets=True)
            buckets = rich["server"]["srv_write_notify_seconds"]["buckets"]
            assert len(buckets) == 48

    def test_metrics_off_parity(self, graph, query):
        """metrics=False must not change results, and every stats field
        tests or dashboards key on must still be present (zeroed)."""
        nodes = list(graph.nodes())
        with make_server(graph, query) as on, make_server(
            graph, query, metrics=False
        ) as off:
            assert on.metrics_enabled and not off.metrics_enabled
            on.subscribe("watcher", nodes[:6])
            off.subscribe("watcher", nodes[:6])
            drive(on, nodes)
            drive(off, nodes)
            assert on.read_batch(nodes) == off.read_batch(nodes)

            stats = off.server_stats()
            assert stats["metrics_enabled"] is False
            lat = stats["write_notify_latency"]
            for field in LATENCY_FIELDS:
                assert lat[field] == 0.0
            m = off.metrics()
            assert m["enabled"] is False
            assert m["shards"] == {}

    def test_env_var_gates_metrics(self, graph, query, monkeypatch):
        monkeypatch.setenv("EAGR_METRICS", "0")
        with make_server(graph, query) as server:
            assert not server.metrics_enabled
        monkeypatch.setenv("EAGR_METRICS", "1")
        with make_server(graph, query) as server:
            assert server.metrics_enabled
        # Explicit argument beats the environment.
        with make_server(graph, query, metrics=False) as server:
            assert not server.metrics_enabled

    def test_server_stats_compat_keys(self, graph, query):
        """server_stats() is now a view over metrics(); the pre-existing
        consumer contract must hold key for key."""
        with make_server(graph, query) as server:
            nodes = list(graph.nodes())
            drive(server, nodes, rounds=1)
            stats = server.server_stats()
            for key in (
                "num_shards", "executor", "transport", "assignment",
                "replication_factor", "shard_sizes", "writes_sent",
                "writes_delivered", "shm_reads", "notifications_delivered",
                "coalesced_flushes", "restarts", "replayed_batches",
                "wal", "wal_bytes", "recovered_batches", "binary_frames",
                "shard_io", "codec_mix", "metrics_enabled",
                "write_notify_latency",
            ):
                assert key in stats, key
            assert isinstance(stats["shard_io"], list)
            assert len(stats["shard_io"]) == 2


class TestExposition:
    def test_prometheus_render(self, graph, query):
        from repro.obs import MetricsExporter

        with make_server(graph, query) as server:
            nodes = list(graph.nodes())
            server.subscribe("watcher", nodes[:6])
            drive(server, nodes)
            text = MetricsExporter(server).render()
            assert "# TYPE eagr_server_srv_write_notify_seconds histogram" in text
            assert 'eagr_shards_shard_apply_seconds_count{shard="0"}' in text
            assert 'le="+Inf"' in text
            # Exposition never carries structured-only leaves.
            assert "slow_ops" not in text

    def test_http_endpoint(self, graph, query):
        with make_server(graph, query) as server:
            nodes = list(graph.nodes())
            server.subscribe("watcher", nodes[:6])
            drive(server, nodes)
            endpoint = server.metrics_http()
            try:
                url = f"http://127.0.0.1:{endpoint.port}/metrics"
                body = urllib.request.urlopen(url).read().decode()
                assert "eagr_server_writes_sent" in body
                missing = urllib.request.urlopen(
                    f"http://127.0.0.1:{endpoint.port}/nope"
                )
            except urllib.error.HTTPError as err:
                assert err.code == 404
            else:
                pytest.fail(f"expected 404, got {missing.status}")
            finally:
                endpoint.shutdown()
