"""Sacrificial subprocess for the kill -9 WAL crash schedules.

``test_wal_recovery.py`` spawns this script in its own session
(process group), lets it ingest a seeded write workload against
``EAGrServer(wal_dir=...)``, and then the *whole group* dies —
front-end, flusher thread, spawn workers — either by the script's own
``os.kill(0, SIGKILL)`` after N acknowledged batches, or earlier inside
an armed WAL fault (torn append, crash-after-append, crash inside
compaction, crash during a recovery replay).  Nothing here ever calls
``close()``: the only durable trace is the WAL directory plus the
progress file, which is exactly the contract under test.

Progress protocol — one JSON line per event, flushed *and fsynced*
before the action it promises, so the verifying test can reconstruct
what the dead process had acknowledged:

* ``["booted", {"recovered": N}]`` — server constructed (``N`` batches
  recovered from a prior epoch's WAL, 0 on a fresh directory).
* ``["subscribed", null]`` — the ``"watcher"`` subscription is live.
* ``["intent", [[node, value], ...]]`` — about to submit this batch.
* ``["ack", k]`` — ``write_batch`` returned for the k-th batch (it is
  durable: the server fsynced its ``W`` record before returning).
* ``["kill", null]`` — about to SIGKILL the process group.

An ``intent`` without a matching ``ack`` is the ambiguous in-flight
batch: the crash landed between submission and acknowledgement, and
recovery may legitimately surface either outcome.

Not a test module (no ``test_`` prefix); also imported by the verifier
for :func:`build_env`, so the workload is defined in exactly one place.
"""

import argparse
import json
import os
import random
import signal
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

SUBSCRIBER = "watcher"


def build_env():
    """The deployment every driver phase and the verifying test share."""
    from repro.core.aggregates import Sum
    from repro.core.query import EgoQuery
    from repro.core.windows import TupleWindow
    from repro.graph.generators import random_graph

    graph = random_graph(14, 52, seed=41)
    query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
    return graph, query


def make_batches(seed, count, nodes):
    """The seeded workload: deterministic, so the verifier regenerates
    the exact batches from ``(seed, count)`` for its oracle replay."""
    rng = random.Random(seed)
    batches = []
    for _ in range(count):
        batches.append(
            [
                (rng.choice(nodes), float(rng.randint(1, 9)))
                for _ in range(2 + rng.randrange(4))
            ]
        )
    return batches


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--wal-dir", required=True)
    parser.add_argument("--progress", required=True)
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument("--executor", default="inprocess")
    parser.add_argument("--checkpoint-interval", type=int, default=3)
    parser.add_argument("--segment-bytes", type=int, default=None)
    parser.add_argument("--compact-bytes", type=int, default=None)
    # Armed WAL faults (all fire as a process-group SIGKILL out here):
    parser.add_argument("--torn-append-at", type=int, default=None)
    parser.add_argument("--crash-after-appends", type=int, default=None)
    parser.add_argument(
        "--crash-in-compact",
        choices=["before_replace", "after_replace"],
        default=None,
    )
    parser.add_argument("--crash-after-replay", type=int, default=None)
    args = parser.parse_args()

    graph, query = build_env()
    nodes = sorted(graph.nodes())

    faults = {"exit": True}
    if args.torn_append_at is not None:
        faults["torn_append_at"] = args.torn_append_at
    if args.crash_after_appends is not None:
        faults["crash_after_appends"] = args.crash_after_appends
    if args.crash_in_compact is not None:
        faults["crash_in_compact"] = args.crash_in_compact
    if args.crash_after_replay is not None:
        faults["crash_after_replay_batches"] = args.crash_after_replay
    wal_options = {"faults": faults}
    if args.segment_bytes is not None:
        wal_options["segment_bytes"] = args.segment_bytes
    if args.compact_bytes is not None:
        wal_options["compact_min_bytes"] = args.compact_bytes

    progress = open(args.progress, "a")

    def record(kind, payload=None):
        progress.write(json.dumps([kind, payload]) + "\n")
        progress.flush()
        os.fsync(progress.fileno())

    from repro.serve import EAGrServer

    server = EAGrServer(
        graph,
        query,
        num_shards=2,
        executor=args.executor,
        overlay_algorithm="identity",
        dataflow="all_push",
        wal_dir=args.wal_dir,
        wal_options=wal_options,
        checkpoint_interval=args.checkpoint_interval,
        reply_timeout=60.0,
    )
    record("booted", {"recovered": server.recovered_batches})
    if not server._wal.recovered:
        # First epoch only: later phases inherit the persisted watches.
        server.subscribe(SUBSCRIBER, nodes)
        record("subscribed")

    for index, batch in enumerate(
        make_batches(args.seed, args.batches, nodes)
    ):
        record("intent", [[node, value] for node, value in batch])
        server.write_batch(batch)
        record("ack", index + 1)

    # Mid-ingest kill: acknowledged batches are durable in the WAL, but
    # outboxes, shard queues and workers are full of in-flight state —
    # exactly the window cold recovery must absorb.
    record("kill")
    os.kill(0, signal.SIGKILL)


if __name__ == "__main__":
    main()
