"""EAGrServer behavior on the deterministic in-process executor.

Everything here runs without worker processes: the in-process executor
dispatches each request synchronously, so these tests pin down routing,
equivalence, subscription, coalescing and shutdown semantics with no
scheduling nondeterminism.  The process-boundary behavior of the same
code paths is covered in ``test_executors.py``.
"""

import pytest

from repro.core.aggregates import Mean, Sum, TopK
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import paper_figure1, random_graph
from repro.serve import EAGrServer, ServeError
from repro.serve.messages import OP_READ

from tests.conftest import make_events


def make_server(graph, query, num_shards=2, **kwargs):
    kwargs.setdefault("executor", "inprocess")
    kwargs.setdefault("overlay_algorithm", "vnm_a")
    return EAGrServer(graph, query, num_shards=num_shards, **kwargs)


class TestEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_reads_match_single_engine(self, num_shards):
        graph = random_graph(30, 140, seed=81)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(2))
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        with make_server(graph, query, num_shards=num_shards) as server:
            events = make_events(list(graph.nodes()), 400, seed=82)
            batch = []
            for event in events:
                if hasattr(event, "value"):
                    batch.append((event.node, event.value, event.timestamp))
                else:
                    if batch:
                        server.write_batch(batch)
                        single.write_batch(batch)
                        batch = []
                    assert server.read(event.node) == single.read(event.node)
            if batch:
                server.write_batch(batch)
                single.write_batch(batch)
            nodes = list(graph.nodes())
            assert server.read_batch(nodes) == single.read_batch(nodes)

    def test_object_aggregate_across_shards(self):
        graph = random_graph(25, 100, seed=83)
        query = EgoQuery(aggregate=TopK(3), window=TupleWindow(3))
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        with make_server(graph, query, num_shards=3) as server:
            writes = [
                (n, float(i % 5)) for i, n in enumerate(graph.nodes())
            ] * 3
            server.write_batch(writes)
            single.write_batch(writes)
            nodes = list(graph.nodes())
            assert server.read_batch(nodes) == single.read_batch(nodes)

    def test_unknown_reader_returns_identity(self):
        graph = paper_figure1()
        with make_server(graph, EgoQuery(aggregate=Sum())) as server:
            assert server.read("ghost") == 0.0
            assert server.read_batch(["ghost", "a"])[0] == 0.0

    def test_user_predicate_folds_into_partition(self):
        graph = paper_figure1()
        query = EgoQuery(aggregate=Sum(), predicate=lambda v: v in ("a", "b"))
        with make_server(graph, query) as server:
            assert set(server.reader_shard) == {"a", "b"}
            server.write_batch([("d", 5.0)])
            assert server.read("a") == 5.0
            assert server.read("g") == 0.0  # filtered reader


class TestSubscriptions:
    def test_notifies_exactly_changed_egos(self):
        graph = random_graph(30, 140, seed=85)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        oracle = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=3) as server:
            warm = [(n, 1.0) for n in nodes]
            server.write_batch(warm)
            oracle.write_batch(warm)
            server.drain()
            sub = server.subscribe("watcher", nodes)
            assert sub.snapshot == dict(zip(nodes, oracle.read_batch(nodes)))
            assert sub.poll() == []  # baseline produces no notifications

            before = dict(zip(nodes, oracle.read_batch(nodes)))
            batch = [(nodes[0], 4.0), (nodes[7], 2.5)]
            server.write_batch(batch)
            oracle.write_batch(batch)
            server.drain()
            after = dict(zip(nodes, oracle.read_batch(nodes)))
            expected = {n for n in nodes if before[n] != after[n]}

            notes = sub.poll()
            assert {note.ego for note in notes} == expected
            for note in notes:
                assert note.value == after[note.ego]
                assert note.subscriber == "watcher"

    def test_stamps_strictly_monotone_per_subscriber(self):
        graph = random_graph(30, 140, seed=86)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=4) as server:
            sub = server.subscribe("w", nodes)
            for round_ in range(5):
                server.write_batch([(n, float(round_ + 2)) for n in nodes[:9]])
            server.drain()
            notes = sub.poll()
            assert notes
            stamps = [note.stamp for note in notes]
            assert stamps == sorted(stamps)
            assert len(set(stamps)) == len(stamps)

    def test_unsubscribe_stops_delivery(self):
        graph = random_graph(20, 80, seed=87)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query) as server:
            sub = server.subscribe("w", nodes)
            server.write_batch([(nodes[0], 2.0)])
            server.drain()
            assert sub.poll()
            server.unsubscribe("w")
            server.write_batch([(nodes[0], 9.0)])
            server.drain()
            assert sub.poll() == []

    def test_partial_unsubscribe_keeps_other_egos(self):
        graph = random_graph(20, 80, seed=88)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query) as server:
            server.write_batch([(n, 1.0) for n in nodes])
            server.drain()
            sub = server.subscribe("w", nodes)
            server.unsubscribe("w", [nodes[0]])
            server.write_batch([(n, 5.0) for n in nodes])
            server.drain()
            egos = {note.ego for note in sub.poll()}
            assert nodes[0] not in egos
            assert egos  # other egos still notify

    def test_two_subscribers_stamped_independently(self):
        graph = random_graph(20, 80, seed=89)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query) as server:
            sub_a = server.subscribe("a", nodes)
            sub_b = server.subscribe("b", nodes[:5])
            server.write_batch([(n, 3.0) for n in nodes])
            server.drain()
            notes_a, notes_b = sub_a.poll(), sub_b.poll()
            assert notes_a and notes_b
            assert [n.stamp for n in notes_a] == list(
                range(1, len(notes_a) + 1)
            )
            assert [n.stamp for n in notes_b] == list(
                range(1, len(notes_b) + 1)
            )

    def test_mean_notification_values_finalized(self):
        graph = random_graph(20, 80, seed=90)
        query = EgoQuery(aggregate=Mean(), window=TupleWindow(2))
        oracle = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        with make_server(graph, query) as server:
            sub = server.subscribe("w", nodes)
            batch = [(n, float(i % 3)) for i, n in enumerate(nodes)]
            server.write_batch(batch)
            oracle.write_batch(batch)
            server.drain()
            after = dict(zip(nodes, oracle.read_batch(nodes)))
            for note in sub.poll():
                assert note.value == after[note.ego]


class TestCoalescingAndBackpressure:
    def test_backed_up_shard_coalesces_without_loss(self):
        graph = random_graph(25, 100, seed=91)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=2) as server:
            # Simulate a backed-up shard: refuse N non-blocking submits.
            refusals = {"left": 3}
            ex = server._executors[0]
            original = ex.try_submit

            def flaky_try_submit(request):
                if refusals["left"] > 0:
                    refusals["left"] -= 1
                    return False
                return original(request)

            ex.try_submit = flaky_try_submit
            try:
                for i in range(6):
                    batch = [(n, float(i + 1)) for n in nodes]
                    server.write_batch(batch)
                    single.write_batch(batch)
                assert server.coalesced_flushes >= 1
                # Reads force a blocking flush: nothing was dropped.
                assert server.read_batch(nodes) == single.read_batch(nodes)
            finally:
                ex.try_submit = original

    def test_background_flusher_delivers_parked_writes(self):
        """A refused flush retries from the flusher thread: an idle
        producer's subscribers still get notified without further calls."""
        graph = random_graph(20, 80, seed=95)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=1) as server:
            sub = server.subscribe("w", nodes)
            ex = server._executors[0]
            original = ex.try_submit
            refusals = {"left": 2}

            def flaky_try_submit(request):
                if refusals["left"] > 0:
                    refusals["left"] -= 1
                    return False
                return original(request)

            ex.try_submit = flaky_try_submit
            try:
                server.write_batch([(nodes[0], 42.0)])
                # No further server calls: only the flusher can deliver.
                note = sub.get(timeout=5.0)
                assert note is not None
            finally:
                ex.try_submit = original

    def test_coalesce_cap_forces_blocking_flush(self):
        graph = random_graph(20, 80, seed=92)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(
            graph, query, num_shards=1, coalesce_max=4
        ) as server:
            ex = server._executors[0]
            original = ex.try_submit
            ex.try_submit = lambda request: False  # permanently backed up
            try:
                for i in range(12):
                    server.write_batch([(nodes[0], float(i))])
                # The cap bounded the outbox: a blocking flush happened.
                assert len(server._outbox[0]) < 12
            finally:
                ex.try_submit = original
                server.flush()


class TestLifecycle:
    def test_close_flushes_pending_writes(self):
        graph = random_graph(20, 80, seed=93)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        server = make_server(graph, query, num_shards=2)
        nodes = list(graph.nodes())
        ex = server._executors[0]
        ex.try_submit = lambda request: False  # trap writes in the outbox
        server.write_batch([(n, 2.0) for n in nodes])
        assert any(server._outbox)
        ex.try_submit = lambda request: (ex.submit(request), True)[1]
        server.close()
        # In-process executors keep their host alive after close: the
        # trapped writes must have reached the shard engines.
        applied = sum(h.engine.counters.writes for h in
                      (e.host for e in server._executors))
        assert applied > 0
        server.close()  # idempotent

    def test_closed_server_rejects_requests(self):
        graph = paper_figure1()
        server = make_server(graph, EgoQuery(aggregate=Sum()))
        server.close()
        with pytest.raises(RuntimeError):
            server.write_batch([("c", 1.0)])
        with pytest.raises(RuntimeError):
            server.read("a")
        with pytest.raises(RuntimeError):
            server.subscribe("w", ["a"])

    def test_async_write_error_surfaces_on_drain(self):
        graph = paper_figure1()
        server = make_server(graph, EgoQuery(aggregate=Sum()))
        # Inject a malformed read request directly: the shard replies
        # R_ERR with no waiting caller, which drain() must surface.
        server._executors[0].submit((OP_READ, server._next_seq(), None))
        with pytest.raises(ServeError):
            server.drain()
        server.drain()  # errors were consumed; barrier is clean again
        server.close()


class TestIntrospection:
    def test_stats_and_describe(self):
        graph = random_graph(25, 100, seed=94)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        with make_server(graph, query, num_shards=3) as server:
            server.write_batch([(n, 1.0) for n in graph.nodes()])
            server.drain()
            stats = server.stats()
            assert len(stats) == 3
            assert sum(s["writes"] for s in stats) == server.writes_delivered
            assert sum(server.shard_sizes()) == len(server.reader_shard)
            assert server.replication_factor >= 1.0
            assert "EAGrServer" in server.describe()
