"""EAGrServer behavior on the deterministic in-process executor.

Everything here runs without worker processes: the in-process executor
dispatches each request synchronously, so these tests pin down routing,
equivalence, subscription, coalescing and shutdown semantics with no
scheduling nondeterminism.  The process-boundary behavior of the same
code paths is covered in ``test_executors.py``.
"""

import pytest

from repro.core.aggregates import Mean, Sum, TopK
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import paper_figure1, random_graph
from repro.serve import EAGrServer, ServeError
from repro.serve.messages import OP_READ

from tests.conftest import make_events
from tests.serve.faultlib import collect, refuse_submits


def make_server(graph, query, num_shards=2, **kwargs):
    kwargs.setdefault("executor", "inprocess")
    kwargs.setdefault("overlay_algorithm", "vnm_a")
    return EAGrServer(graph, query, num_shards=num_shards, **kwargs)


class TestEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_reads_match_single_engine(self, num_shards):
        graph = random_graph(30, 140, seed=81)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(2))
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        with make_server(graph, query, num_shards=num_shards) as server:
            events = make_events(list(graph.nodes()), 400, seed=82)
            batch = []
            for event in events:
                if hasattr(event, "value"):
                    batch.append((event.node, event.value, event.timestamp))
                else:
                    if batch:
                        server.write_batch(batch)
                        single.write_batch(batch)
                        batch = []
                    assert server.read(event.node) == single.read(event.node)
            if batch:
                server.write_batch(batch)
                single.write_batch(batch)
            nodes = list(graph.nodes())
            assert server.read_batch(nodes) == single.read_batch(nodes)

    def test_object_aggregate_across_shards(self):
        graph = random_graph(25, 100, seed=83)
        query = EgoQuery(aggregate=TopK(3), window=TupleWindow(3))
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        with make_server(graph, query, num_shards=3) as server:
            writes = [
                (n, float(i % 5)) for i, n in enumerate(graph.nodes())
            ] * 3
            server.write_batch(writes)
            single.write_batch(writes)
            nodes = list(graph.nodes())
            assert server.read_batch(nodes) == single.read_batch(nodes)

    def test_unknown_reader_returns_identity(self):
        graph = paper_figure1()
        with make_server(graph, EgoQuery(aggregate=Sum())) as server:
            assert server.read("ghost") == 0.0
            assert server.read_batch(["ghost", "a"])[0] == 0.0

    def test_user_predicate_folds_into_partition(self):
        graph = paper_figure1()
        query = EgoQuery(aggregate=Sum(), predicate=lambda v: v in ("a", "b"))
        with make_server(graph, query) as server:
            assert set(server.reader_shard) == {"a", "b"}
            server.write_batch([("d", 5.0)])
            assert server.read("a") == 5.0
            assert server.read("g") == 0.0  # filtered reader


class TestSubscriptions:
    def test_notifies_exactly_changed_egos(self):
        graph = random_graph(30, 140, seed=85)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        oracle = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=3) as server:
            warm = [(n, 1.0) for n in nodes]
            server.write_batch(warm)
            oracle.write_batch(warm)
            server.drain()
            sub = server.subscribe("watcher", nodes)
            assert sub.snapshot == dict(zip(nodes, oracle.read_batch(nodes)))
            assert sub.poll() == []  # baseline produces no notifications

            before = dict(zip(nodes, oracle.read_batch(nodes)))
            batch = [(nodes[0], 4.0), (nodes[7], 2.5)]
            server.write_batch(batch)
            oracle.write_batch(batch)
            server.drain()
            after = dict(zip(nodes, oracle.read_batch(nodes)))
            expected = {n for n in nodes if before[n] != after[n]}

            notes = sub.poll()
            assert {note.ego for note in notes} == expected
            for note in notes:
                assert note.value == after[note.ego]
                assert note.subscriber == "watcher"

    def test_stamps_strictly_monotone_per_subscriber(self):
        graph = random_graph(30, 140, seed=86)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=4) as server:
            sub = server.subscribe("w", nodes)
            for round_ in range(5):
                server.write_batch([(n, float(round_ + 2)) for n in nodes[:9]])
            server.drain()
            notes = sub.poll()
            assert notes
            stamps = [note.stamp for note in notes]
            assert stamps == sorted(stamps)
            assert len(set(stamps)) == len(stamps)

    def test_unsubscribe_stops_delivery(self):
        graph = random_graph(20, 80, seed=87)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query) as server:
            sub = server.subscribe("w", nodes)
            server.write_batch([(nodes[0], 2.0)])
            server.drain()
            assert sub.poll()
            server.unsubscribe("w")
            server.write_batch([(nodes[0], 9.0)])
            server.drain()
            assert sub.poll() == []

    def test_partial_unsubscribe_keeps_other_egos(self):
        graph = random_graph(20, 80, seed=88)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query) as server:
            server.write_batch([(n, 1.0) for n in nodes])
            server.drain()
            sub = server.subscribe("w", nodes)
            server.unsubscribe("w", [nodes[0]])
            server.write_batch([(n, 5.0) for n in nodes])
            server.drain()
            egos = {note.ego for note in sub.poll()}
            assert nodes[0] not in egos
            assert egos  # other egos still notify

    def test_two_subscribers_stamped_independently(self):
        graph = random_graph(20, 80, seed=89)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query) as server:
            sub_a = server.subscribe("a", nodes)
            sub_b = server.subscribe("b", nodes[:5])
            server.write_batch([(n, 3.0) for n in nodes])
            server.drain()
            notes_a, notes_b = sub_a.poll(), sub_b.poll()
            assert notes_a and notes_b
            assert [n.stamp for n in notes_a] == list(
                range(1, len(notes_a) + 1)
            )
            assert [n.stamp for n in notes_b] == list(
                range(1, len(notes_b) + 1)
            )

    def test_mean_notification_values_finalized(self):
        graph = random_graph(20, 80, seed=90)
        query = EgoQuery(aggregate=Mean(), window=TupleWindow(2))
        oracle = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        with make_server(graph, query) as server:
            sub = server.subscribe("w", nodes)
            batch = [(n, float(i % 3)) for i, n in enumerate(nodes)]
            server.write_batch(batch)
            oracle.write_batch(batch)
            server.drain()
            after = dict(zip(nodes, oracle.read_batch(nodes)))
            for note in sub.poll():
                assert note.value == after[note.ego]


class TestCoalescingAndBackpressure:
    def test_backed_up_shard_coalesces_without_loss(self):
        graph = random_graph(25, 100, seed=91)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=2) as server:
            # Simulate a backed-up shard: refuse N non-blocking submits.
            with refuse_submits(server._executors[0], 3):
                for i in range(6):
                    batch = [(n, float(i + 1)) for n in nodes]
                    server.write_batch(batch)
                    single.write_batch(batch)
                assert server.coalesced_flushes >= 1
                # Reads force a blocking flush: nothing was dropped.
                assert server.read_batch(nodes) == single.read_batch(nodes)

    def test_background_flusher_delivers_parked_writes(self):
        """A refused flush retries from the flusher thread: an idle
        producer's subscribers still get notified without further calls."""
        graph = random_graph(20, 80, seed=95)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=1) as server:
            sub = server.subscribe("w", nodes)
            with refuse_submits(server._executors[0], 2) as refusals:
                server.write_batch([(nodes[0], 42.0)])
                # No further server calls: only the flusher can deliver.
                notes = collect(sub, count=1, timeout=10.0)
                assert notes
                assert refusals["left"] == 0

    def test_coalesce_cap_forces_blocking_flush(self):
        graph = random_graph(20, 80, seed=92)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(
            graph, query, num_shards=1, coalesce_max=4
        ) as server:
            with refuse_submits(server._executors[0], 10**9):
                for i in range(12):
                    server.write_batch([(nodes[0], float(i))])
                # The cap bounded the outbox: a blocking flush happened.
                assert len(server._outbox[0]) < 12
            server.flush()


class TestDurability:
    """Checkpoint/restart and resume on the deterministic executor (the
    process-boundary versions live in test_crash_restart.py)."""

    def test_killed_shard_restarts_exactly_from_checkpoint(self):
        graph = random_graph(24, 110, seed=181)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=2) as server:
            sub = server.subscribe("w", nodes)
            for value in (1.0, 2.0):
                batch = [(n, value) for n in nodes]
                server.write_batch(batch)
                single.write_batch(batch)
            server.checkpoint()
            batch = [(n, 5.0) for n in nodes]
            server.write_batch(batch)  # post-checkpoint: redo-log only
            single.write_batch(batch)
            server.drain()
            seen = sub.poll()
            server._executors[0].kill()  # all shard-0 state gone
            assert not server._executors[0].alive()
            replayed = server.restart_shard(0)
            assert replayed >= 1
            server.drain()
            # exact recovery: reads match the never-crashed oracle ...
            assert server.read_batch(nodes) == single.read_batch(nodes)
            # ... and no notification was re-delivered for the replay:
            # the suppression path engaged for shard 0's re-derived notices
            assert sub.poll() == []
            assert server.notifications_suppressed >= 1
            assert server.restarts == 1
            # the stream continues seamlessly
            server.write_batch([(nodes[0], 9.0)])
            server.drain()
            more = sub.poll()
            assert more
            stamps = [n.stamp for n in seen + more]
            assert stamps == list(range(1, len(stamps) + 1))

    def test_writes_accepted_while_dead_survive_restart(self):
        graph = random_graph(20, 80, seed=182)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=2) as server:
            server._executors[0].kill()
            for value in (1.0, 4.0):  # accepted into outbox/redo while dead
                batch = [(n, value) for n in nodes]
                server.write_batch(batch)
                single.write_batch(batch)
            server.restart_shard(0)
            server.drain()
            assert server.read_batch(nodes) == single.read_batch(nodes)

    def test_resume_replays_notifications_counter(self):
        graph = random_graph(20, 80, seed=183)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=2) as server:
            sub = server.subscribe("w", nodes)
            server.write_batch([(n, 2.0) for n in nodes])
            server.drain()
            seen = sub.poll()
            assert seen
            server.disconnect("w")
            server.write_batch([(n, 6.0) for n in nodes])
            server.drain()
            assert sub.poll() == []  # severed queue stays silent
            resumed = server.subscribe("w", resume_from=seen[-1].stamp)
            replay = resumed.poll()
            assert replay
            assert server.notifications_replayed == len(replay)
            assert [n.stamp for n in seen + replay] == list(
                range(1, len(seen) + len(replay) + 1)
            )

    def test_ack_releases_journal_prefix(self):
        graph = random_graph(20, 80, seed=184)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=2) as server:
            sub = server.subscribe("w", nodes)
            server.write_batch([(n, 3.0) for n in nodes])
            server.drain()
            notes = sub.poll()
            released = server.ack("w", notes[-1].stamp)
            assert released == len(notes)
            server.disconnect("w")
            # resuming below the acked mark is a hard error, not a gap
            from repro.serve import ResumeGapError

            with pytest.raises(ResumeGapError):
                server.subscribe("w", resume_from=0)
            server.subscribe("w", resume_from=notes[-1].stamp)

    def test_plain_subscribe_after_disconnect_reattaches_queue(self):
        """The documented ResumeGapError recovery path — re-baseline with
        a plain subscribe — must restore live delivery, not return a
        handle wired to a severed queue."""
        graph = random_graph(20, 80, seed=186)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=2) as server:
            server.subscribe("w", nodes)
            server.write_batch([(n, 2.0) for n in nodes])
            server.drain()
            server.disconnect("w")
            fresh = server.subscribe("w", nodes)  # re-baseline, no resume
            server.write_batch([(n, 7.0) for n in nodes])
            server.drain()
            assert fresh.poll()  # live again

    def test_ack_beyond_delivered_rejected(self):
        graph = random_graph(20, 80, seed=187)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(graph, query, num_shards=2) as server:
            sub = server.subscribe("w", nodes)
            server.write_batch([(n, 2.0) for n in nodes])
            server.drain()
            notes = sub.poll()
            with pytest.raises(ValueError):
                server.ack("w", notes[-1].stamp + 1000)
            # the journal is unharmed: delivery continues
            server.write_batch([(n, 8.0) for n in nodes])
            server.drain()
            more = sub.poll()
            assert more and more[0].stamp == notes[-1].stamp + 1

    def test_auto_checkpoint_skips_dead_shard(self):
        """With checkpoint_interval armed, writes to a dead shard keep
        parking (no raise from the auto-checkpoint path) until restart."""
        graph = random_graph(20, 80, seed=188)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        with make_server(
            graph, query, num_shards=2, checkpoint_interval=2
        ) as server:
            server._executors[0].kill()
            for i in range(6):  # well past the interval
                batch = [(n, float(i + 1)) for n in nodes]
                server.write_batch(batch)
                single.write_batch(batch)
            server.restart_shard(0)
            server.drain()
            assert server.read_batch(nodes) == single.read_batch(nodes)

    def test_auto_checkpoint_bounds_redo_log(self):
        graph = random_graph(20, 80, seed=185)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        with make_server(
            graph, query, num_shards=2, checkpoint_interval=3
        ) as server:
            for i in range(12):
                server.write_batch([(n, float(i + 1)) for n in nodes])
            assert all(
                len(log) <= 3 for log in server._write_log
            ), [len(log) for log in server._write_log]
            assert set(server._checkpoints) == {0, 1}


class TestLifecycle:
    def test_close_flushes_pending_writes(self):
        graph = random_graph(20, 80, seed=93)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        server = make_server(graph, query, num_shards=2)
        nodes = list(graph.nodes())
        ex = server._executors[0]
        ex.try_submit = lambda request: False  # trap writes in the outbox
        server.write_batch([(n, 2.0) for n in nodes])
        assert any(server._outbox)
        ex.try_submit = lambda request: (ex.submit(request), True)[1]
        server.close()
        # In-process executors keep their host alive after close: the
        # trapped writes must have reached the shard engines.
        applied = sum(h.engine.counters.writes for h in
                      (e.host for e in server._executors))
        assert applied > 0
        server.close()  # idempotent

    def test_closed_server_rejects_requests(self):
        graph = paper_figure1()
        server = make_server(graph, EgoQuery(aggregate=Sum()))
        server.close()
        with pytest.raises(RuntimeError):
            server.write_batch([("c", 1.0)])
        with pytest.raises(RuntimeError):
            server.read("a")
        with pytest.raises(RuntimeError):
            server.subscribe("w", ["a"])

    def test_async_write_error_surfaces_on_drain(self):
        graph = paper_figure1()
        server = make_server(graph, EgoQuery(aggregate=Sum()))
        # Inject a malformed read request directly: the shard replies
        # R_ERR with no waiting caller, which drain() must surface.
        server._executors[0].submit((OP_READ, server._next_seq(), None))
        with pytest.raises(ServeError):
            server.drain()
        server.drain()  # errors were consumed; barrier is clean again
        server.close()


class TestIntrospection:
    def test_stats_and_describe(self):
        graph = random_graph(25, 100, seed=94)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        with make_server(graph, query, num_shards=3) as server:
            server.write_batch([(n, 1.0) for n in graph.nodes()])
            server.drain()
            stats = server.stats()
            assert len(stats) == 3
            assert sum(s["writes"] for s in stats) == server.writes_delivered
            assert sum(server.shard_sizes()) == len(server.reader_shard)
            assert server.replication_factor >= 1.0
            assert "EAGrServer" in server.describe()


class TestSubscriptionGetDeadline:
    def test_never_notified_get_returns_none_within_bound(self):
        """``get(timeout=...)`` on a subscription that is never notified
        must return ``None`` no later than its absolute deadline."""
        import time

        graph = paper_figure1()
        with make_server(graph, EgoQuery(aggregate=Sum())) as server:
            sub = server.subscribe("quiet", ["a"])
            t0 = time.monotonic()
            assert sub.get(timeout=0.4) is None
            elapsed = time.monotonic() - t0
            assert 0.35 <= elapsed < 2.0, elapsed

    def test_zero_and_negative_timeouts_do_not_block(self):
        import time

        graph = paper_figure1()
        with make_server(graph, EgoQuery(aggregate=Sum())) as server:
            sub = server.subscribe("quiet", ["a"])
            t0 = time.monotonic()
            assert sub.get(timeout=0.0) is None
            assert sub.get(timeout=-1.0) is None
            assert time.monotonic() - t0 < 1.0


class TestFlushFailurePoisonsServer:
    """An acked write must be durable: the first *background* flush
    failure has to stop ``write_batch`` from succeed-acking further
    batches (the same contract as a WAL fsync failure), until
    ``restart_shard`` recovers the shard."""

    def test_flush_failure_blocks_later_acks_until_restart(self):
        import time

        from tests.serve.faultlib import wait_until

        graph = random_graph(20, 80, seed=95)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        server = make_server(graph, query, num_shards=2)
        try:
            nodes = list(graph.nodes())
            ex = server._executors[0]
            original = ex.try_submit
            # Step 1: park a batch in shard 0's outbox (refused submit).
            ex.try_submit = lambda request: False
            server.write_batch([(n, 1.0) for n in nodes])
            assert server._outbox[0]
            # Step 2: the flush retry hits a hard failure, not a refusal.
            def explode(request):
                raise OSError("injected: shard transport broken")

            ex.try_submit = explode
            wait_until(
                lambda: server._poisoned is not None,
                desc="flush failure poisons the server",
            )
            # Step 3: no write may succeed-ack behind the failed flush.
            with pytest.raises(ServeError, match="poisoned"):
                server.write_batch([(nodes[0], 2.0)])
            with pytest.raises(ServeError):
                server.drain()
            # Step 4: restart_shard is the recovery path: it replays the
            # redo log, clears the failure, and acceptance resumes.
            ex.try_submit = original
            server.restart_shard(0)
            assert server._poisoned is None
            server.write_batch([(nodes[0], 3.0)])
            server.drain()
            assert server.read(nodes[0]) is not None
        finally:
            server.close()

    def test_poison_is_first_failure_wins_across_shards(self):
        from tests.serve.faultlib import wait_until

        graph = random_graph(20, 80, seed=96)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        server = make_server(graph, query, num_shards=2)
        try:
            nodes = list(graph.nodes())
            for shard_id in (0, 1):
                ex = server._executors[shard_id]
                ex.try_submit = lambda request: False
            server.write_batch([(n, 1.0) for n in nodes])
            for shard_id in (0, 1):
                def explode(request):
                    raise OSError("injected")

                server._executors[shard_id].try_submit = explode
            wait_until(
                lambda: server._flush_failed == {0, 1},
                desc="both shards marked failed",
            )
            # recovery of only one shard keeps the server poisoned
            server.restart_shard(0)
            assert server._poisoned is not None
            with pytest.raises(ServeError, match="poisoned"):
                server.write_batch([(nodes[0], 2.0)])
            server.restart_shard(1)
            assert server._poisoned is None
            server.write_batch([(nodes[0], 2.0)])
            # the injected failures are still on record; one drain
            # surfaces and consumes them, after which the barrier is clean
            with pytest.raises(ServeError):
                server.drain()
            server.drain()
        finally:
            server.close()


class TestInProcessSerialization:
    """The synchronous executor must honor the worker-loop contract.

    The queue transports serialize every shard request through a
    single-threaded loop; ``InProcessShardExecutor`` runs requests on
    the *calling* thread instead, so concurrent front-end callers (the
    gateway's call pool is the first real one) would interleave inside
    the shard host's unguarded engine state without an explicit lock.
    """

    def test_concurrent_control_calls_never_overlap_in_host(self):
        import threading
        import time
        from concurrent.futures import ThreadPoolExecutor as Pool

        graph = random_graph(40, 200, seed=11)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        server = EAGrServer(
            graph, query, num_shards=2, executor="inprocess",
            overlay_algorithm="vnm_a",
        )
        try:
            nodes = list(graph.nodes())
            notifiable = [n for n in nodes if graph.in_degree(n) > 0]
            guard = threading.Lock()
            overlaps = []

            def instrument(host):
                # Serialization is per shard: two shards may (and do)
                # run concurrently, but no two requests may interleave
                # inside one host.
                orig = host.handle
                overlap = {"active": 0, "max": 0}
                overlaps.append(overlap)

                def spy(request):
                    with guard:
                        overlap["active"] += 1
                        overlap["max"] = max(
                            overlap["max"], overlap["active"]
                        )
                    try:
                        time.sleep(0.001)  # widen any unserialized window
                        return orig(request)
                    finally:
                        with guard:
                            overlap["active"] -= 1

                host.handle = spy

            for shard_id in range(server.num_shards):
                instrument(server._executors[shard_id].host)

            def hammer(i):
                node = notifiable[i % len(notifiable)]
                server.subscribe(f"c{i}", [node])
                return server.read_batch([node])

            with Pool(max_workers=8) as pool:
                list(pool.map(hammer, range(64)))
            server.write_batch([(n, 5.0, 5.0) for n in nodes])
            server.drain()

            for shard_id, overlap in enumerate(overlaps):
                assert overlap["max"] == 1, (
                    f"{overlap['max']} threads interleaved inside "
                    f"shard {shard_id}'s host"
                )
            # every subscriber's watched ego changed once: one delivery each
            for i in range(64):
                sub = server._subs[f"c{i}"]
                assert sub.stamp == 1, (f"c{i}", sub.stamp)
        finally:
            server.close()
