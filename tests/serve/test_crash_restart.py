"""Crash/restart under real ``multiprocessing`` spawn workers.

Each seeded schedule kills a real shard worker process at a deterministic
point mid-batch — either on *receiving* a write batch (lost unapplied) or
after *applying* it but before the acknowledgement leaves (the worst
window) — restarts it from its ``ShardSpec`` + checkpoint, replays the
redo log, and asserts the delivery contract end to end: a subscriber that
reconnects with ``resume_from=N`` receives exactly the notifications with
stamps ``> N``, in order, with no gaps and no duplicates, and the
recovered shard's reads are byte-equal to a single-process oracle that
never crashed.

One 2-shard process server is shared across all seeds (worker boots are
the dominant cost); every seed gets a fresh subscriber, so stamp streams
are independent, and shard 0 is re-checkpointed at the start of each
schedule so redo logs stay short.  Shard 1 is never killed — its
uninterrupted service is asserted implicitly through the oracle equality.

All waits are condition-based (``faultlib``): after ``drain()`` returns,
every notice from earlier batches is already in the subscriber queues
(the reply stream is FIFO per shard and the drain reply trails them), so
``poll()`` is deterministic, not racy.
"""

import random

import pytest

from repro.core.aggregates import Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import random_graph
from repro.serve import EAGrServer

from tests.serve.faultlib import (
    arm_kill_point,
    assert_contiguous,
    assert_spliced_stream,
    assert_subsequence,
    disarm,
    kill_shard,
    transitions_by_ego,
    wait_dead,
)

NUM_SEEDS = 20


@pytest.fixture(scope="module")
def crashpad():
    """One process-mode deployment + the accumulated accepted-batch log."""
    graph = random_graph(14, 52, seed=41)
    query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
    server = EAGrServer(
        graph,
        query,
        num_shards=2,
        executor="process",
        overlay_algorithm="identity",
        dataflow="all_push",
        reply_timeout=30.0,
    )
    env = {
        "graph": graph,
        "query": query,
        "server": server,
        "nodes": list(graph.nodes()),
        "batches": [],  # every accepted batch, in acceptance order
    }
    yield env
    server.close()


def write_random_batch(env, rng):
    """Write one random batch; returns True when it reached shard 0
    (deterministic kill points count only batches the doomed worker
    actually receives)."""
    server = env["server"]
    nodes = env["nodes"]
    batch = [
        (rng.choice(nodes), float(rng.randint(1, 9)))
        for _ in range(rng.randint(2, 6))
    ]
    server.write_batch(batch)
    env["batches"].append(batch)
    return any(
        0 in server.writer_shards.get(node, ()) for node, _ in batch
    )


def fresh_oracle(env):
    return EAGrEngine(
        env["graph"], env["query"],
        overlay_algorithm="identity", dataflow="all_push",
    )


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_seeded_crash_restart_resume(seed, crashpad):
    env = crashpad
    server = env["server"]
    nodes = env["nodes"]
    rng = random.Random(1000 + seed)
    name = f"watcher-{seed}"
    tag = f"seed {seed}:"

    # Short redo log + fresh restart baseline for this schedule.
    server.checkpoint()
    sub = server.subscribe(name, nodes)
    sub_batch = len(env["batches"])

    # -- pre-crash traffic --------------------------------------------------
    for _ in range(rng.randint(1, 3)):
        write_random_batch(env, rng)
    server.drain()
    seen = sub.poll()

    # -- deterministic mid-batch kill --------------------------------------
    kill_after = rng.random() < 0.5
    nth = rng.randint(1, 3)
    if kill_after:
        arm_kill_point(server, 0, after=nth, rng_tag=tag)
    else:
        arm_kill_point(server, 0, before=nth, rng_tag=tag)
    fatal_sent = 0
    while fatal_sent < nth:
        if write_random_batch(env, rng):
            fatal_sent += 1
    wait_dead(server, 0)
    # writes accepted while the worker is a corpse land in the redo log
    for _ in range(rng.randint(0, 2)):
        write_random_batch(env, rng)

    # -- recovery -----------------------------------------------------------
    disarm(server, 0)
    server.restart_shard(0)
    server.drain()
    seen += sub.poll()

    # -- disconnect / resume ------------------------------------------------
    if seen and rng.random() < 0.8:
        resume_from = seen[rng.randrange(len(seen))].stamp
    else:
        resume_from = seen[-1].stamp if seen else 0
    server.disconnect(name)
    resumed = server.subscribe(name, resume_from=resume_from)
    merged = assert_spliced_stream(seen, resume_from, resumed.poll(), tag=tag)

    # live delivery splices in with no gap after the replay
    write_random_batch(env, rng)
    server.drain()
    merged += resumed.poll()
    assert_contiguous([n.stamp for n in merged], tag=f"{tag} final view:")

    # -- oracle equivalence -------------------------------------------------
    oracle = fresh_oracle(env)
    history = transitions_by_ego(env["batches"], oracle, nodes)
    final = dict(zip(nodes, oracle.read_batch(nodes)))
    assert dict(zip(nodes, server.read_batch(nodes))) == final, (
        f"{tag} recovered reads diverge from the never-crashed oracle"
    )
    per_ego = {}
    for note in merged:
        per_ego.setdefault(note.ego, []).append(note.value)
    for ego, values in per_ego.items():
        transitions = [
            value for index, value in history[ego] if index >= sub_batch
        ]
        # Coalesced batches may collapse intermediate transitions, and the
        # crash window may re-derive then suppress — but delivered values
        # must be an ordered subsequence of true transitions, ending at
        # the true final value.
        assert_subsequence(values, transitions, tag=f"{tag} ego {ego!r}:")
        assert values[-1] == final[ego], (
            f"{tag} ego {ego!r} last delivered {values[-1]} != final "
            f"{final[ego]}"
        )
    server.unsubscribe(name)


def test_external_kill_recovers_without_checkpoint(crashpad):
    """SIGTERM a worker that was never checkpointed in its current epoch:
    restart must rebuild from the spec alone and replay the entire redo
    log (extends the dead-worker coverage of test_executors.py — the
    worker death here is external, not a cooperative kill point)."""
    env = crashpad
    server = env["server"]
    nodes = env["nodes"]
    rng = random.Random(99)

    server.checkpoint()
    sub = server.subscribe("external-kill-watcher", nodes)
    for _ in range(3):
        write_random_batch(env, rng)
    kill_shard(server, 0)
    for _ in range(2):
        write_random_batch(env, rng)  # accepted while dead
    server.restart_shard(0)
    server.drain()
    notes = sub.poll()
    assert_contiguous([n.stamp for n in notes], tag="external kill:")

    oracle = fresh_oracle(env)
    for batch in env["batches"]:
        oracle.write_batch(batch)
    assert server.read_batch(nodes) == oracle.read_batch(nodes)
    final = dict(zip(nodes, oracle.read_batch(nodes)))
    last_per_ego = {}
    for note in notes:
        last_per_ego[note.ego] = note.value
    for ego, value in last_per_ego.items():
        assert value == final[ego]
    server.unsubscribe("external-kill-watcher")


def test_dead_shard_read_fails_fast_then_recovers(crashpad):
    """A read routed at a dead worker surfaces as an error in well under
    the full reply timeout, and the same read succeeds after restart."""
    import time

    from repro.serve import ServeError

    env = crashpad
    server = env["server"]
    shard0_nodes = [
        n for n, s in server.reader_shard.items() if s == 0
    ]
    assert shard0_nodes
    server.checkpoint()
    kill_shard(server, 0)
    started = time.monotonic()
    with pytest.raises((ServeError, RuntimeError)):
        server.read(shard0_nodes[0])
    assert time.monotonic() - started < server._reply_timeout / 2
    server.restart_shard(0)
    oracle = fresh_oracle(env)
    for batch in env["batches"]:
        oracle.write_batch(batch)
    assert server.read(shard0_nodes[0]) == oracle.read(shard0_nodes[0])
