"""Shared fixtures for the serve-layer suites.

Every test in ``tests/serve`` runs under a hard SIGALRM watchdog: a hung
bounded queue (the classic deadlock shape in a front-end/worker protocol)
becomes a loud :class:`~tests.serve.faultlib.FaultTimeout` in two minutes
instead of stalling the whole CI job until its outer timeout.  Tests that
need longer (none should) can re-arm with ``faultlib.deadline`` inside.
"""

import pytest

from tests.serve.faultlib import deadline

WATCHDOG_SECONDS = 120.0


@pytest.fixture(autouse=True)
def serve_watchdog(request):
    with deadline(WATCHDOG_SECONDS, desc=request.node.nodeid):
        yield
