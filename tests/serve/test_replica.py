"""The warm read-replica tier: WAL tailing, staleness bounds, promotion.

A :class:`ReplicaServer` is attached to a live primary's ``wal_dir`` and
held to its contract:

* **Watermark-consistent reads.**  Once the replica has consumed the log
  (``max_lag_bytes=0``), its reads equal the primary's — and every read
  is taken under the apply lock, so it reflects a whole-batch boundary,
  never a torn mix.
* **Explicit staleness.**  A read whose lag bound cannot be met inside
  its wait raises :class:`StaleReadError` instead of silently answering
  stale.
* **Self-healing compaction race.**  The primary compacting segments out
  from under the tailer forces a snapshot rebuild (``resets`` counts
  them), after which reads are still exact.
* **Promotion without losing acknowledged batches.**  After the primary
  dies uncleanly, ``promote()`` drains the log and boots a full
  ``EAGrServer`` over it — reads equal the oracle over everything the
  dead primary acknowledged, and the dead epoch's subscription resumes
  gap-free.  While the primary is still alive, promotion is *refused*
  (:class:`WalLockedError`) — split-brain is not raced.

Everything runs in-process (the replica's engines are in-process by
design; the primary uses the inprocess executor for speed — the WAL
bytes it writes are identical to the process-mode deployment's).
"""

import random

import pytest

from repro.core.aggregates import Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import random_graph
from repro.serve import (
    EAGrServer,
    ReplicaError,
    ReplicaServer,
    StaleReadError,
    WalLockedError,
)

from tests.serve.faultlib import assert_contiguous, wait_until

ENGINE_OPTS = dict(overlay_algorithm="identity", dataflow="all_push")


@pytest.fixture()
def deployment(tmp_path):
    graph = random_graph(14, 52, seed=41)
    query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
    server = EAGrServer(
        graph,
        query,
        num_shards=2,
        executor="inprocess",
        wal_dir=str(tmp_path / "wal"),
        checkpoint_interval=4,
        **ENGINE_OPTS,
    )
    env = {
        "graph": graph,
        "query": query,
        "server": server,
        "nodes": sorted(graph.nodes()),
        "wal_dir": str(tmp_path / "wal"),
        "batches": [],
    }
    yield env
    if not env["server"]._closed:
        env["server"].close()


def write_batches(env, rng, count):
    for _ in range(count):
        batch = [
            (rng.choice(env["nodes"]), float(rng.randint(1, 9)))
            for _ in range(rng.randint(2, 5))
        ]
        env["server"].write_batch(batch)
        env["batches"].append(batch)
    env["server"].drain()


def fresh_oracle(env):
    oracle = EAGrEngine(env["graph"], env["query"], **ENGINE_OPTS)
    for batch in env["batches"]:
        oracle.write_batch(batch)
    return oracle


def attach_replica(env, **kwargs):
    return ReplicaServer(
        env["graph"], env["query"], env["wal_dir"], **ENGINE_OPTS, **kwargs
    )


def crash_primary(env):
    """Abandon the primary without ``close()`` — the in-process stand-in
    for kill -9: no executor teardown, no final flush; only the flock
    is dropped (the kernel would do that for a real dead process)."""
    server = env["server"]
    server._stop_flusher.set()
    server._flusher.join(timeout=5)
    server._wal.close()
    server._closed = True


def test_replica_reads_equal_primary_and_oracle(deployment):
    env = deployment
    rng = random.Random(11)
    write_batches(env, rng, 6)
    with attach_replica(env) as replica:
        reads = replica.read_batch(env["nodes"], max_lag_bytes=0)
        assert reads == env["server"].read_batch(env["nodes"])
        assert reads == fresh_oracle(env).read_batch(env["nodes"])
        # The watermark is exactly the primary's per-shard batch position
        # once the lag is zero — reads correspond to a whole-batch state.
        assert replica.watermark() == dict(
            enumerate(env["server"]._batch_no)
        )
        stats = replica.stats()
        assert stats["batches_applied"] > 0
        assert stats["lag_bytes"] == 0


def test_replica_follows_progressive_writes(deployment):
    env = deployment
    rng = random.Random(23)
    write_batches(env, rng, 2)
    with attach_replica(env) as replica:
        for _round in range(4):
            write_batches(env, rng, 2)
            reads = replica.read_batch(env["nodes"], max_lag_bytes=0)
            assert reads == fresh_oracle(env).read_batch(env["nodes"])


def test_stale_read_refused_when_bound_unmeetable(deployment):
    env = deployment
    rng = random.Random(31)
    write_batches(env, rng, 3)
    replica = attach_replica(env)
    try:
        replica.read_batch(env["nodes"], max_lag_bytes=0)  # caught up
        # Freeze the tailer, then advance the primary: the lag bound is
        # now unmeetable and the read must refuse, not serve stale.
        replica._stop.set()
        replica._thread.join(timeout=5)
        write_batches(env, rng, 2)
        assert replica.lag_bytes() > 0
        with pytest.raises(StaleReadError):
            replica.read_batch(env["nodes"], max_lag_bytes=0, wait=0.2)
        # A permissive bound still answers (explicitly stale-tolerant).
        stale = replica.read_batch(
            env["nodes"], max_lag_bytes=1 << 30, wait=0.2
        )
        assert len(stale) == len(env["nodes"])
    finally:
        replica.close()


def test_replica_survives_compaction_race(deployment):
    env = deployment
    rng = random.Random(47)
    write_batches(env, rng, 5)
    with attach_replica(env) as replica:
        replica.read_batch(env["nodes"], max_lag_bytes=0)
        # Compact the log out from under the tailer's cursor: it must
        # re-anchor at the snapshot and rebuild — not corrupt or wedge.
        env["server"].checkpoint()
        assert env["server"]._wal.maybe_compact(force=True)
        write_batches(env, rng, 4)
        reads = replica.read_batch(env["nodes"], max_lag_bytes=0)
        assert reads == fresh_oracle(env).read_batch(env["nodes"])
        wait_until(
            lambda: replica.resets >= 1, desc="snapshot rebuild after compaction"
        )


def test_promotion_after_primary_death_loses_nothing(deployment):
    env = deployment
    rng = random.Random(59)
    env["server"].subscribe("watcher", env["nodes"])
    write_batches(env, rng, 7)
    replica = attach_replica(env)
    replica.read_batch(env["nodes"], max_lag_bytes=0)

    crash_primary(env)
    promoted = replica.promote(executor="inprocess")
    try:
        with pytest.raises(ReplicaError):
            replica.read_batch(env["nodes"])  # the old handle is retired
        promoted.drain()
        assert promoted.read_batch(env["nodes"]) == fresh_oracle(
            env
        ).read_batch(env["nodes"])

        # The dead epoch's subscription state came along: resume replays
        # the journal gap-free and live delivery continues the stream.
        resumed = promoted.subscribe("watcher", resume_from=0)
        merged = resumed.poll()
        batch = [(rng.choice(env["nodes"]), 7.5) for _ in range(3)]
        promoted.write_batch(batch)
        env["batches"].append(batch)
        promoted.drain()
        merged += resumed.poll()
        assert merged
        assert_contiguous([note.stamp for note in merged], tag="promoted:")
        assert promoted.read_batch(env["nodes"]) == fresh_oracle(
            env
        ).read_batch(env["nodes"])
    finally:
        promoted.close()


def test_promotion_refused_while_primary_alive(deployment):
    env = deployment
    rng = random.Random(67)
    write_batches(env, rng, 3)
    replica = attach_replica(env)
    try:
        with pytest.raises(WalLockedError):
            replica.promote(executor="inprocess")
    finally:
        replica.close()
        # The primary was never disturbed by the refused promotion.
        assert env["server"].read_batch(env["nodes"]) == fresh_oracle(
            env
        ).read_batch(env["nodes"])
