"""Whole-server kill -9 → cold-restart recovery, across seeded schedules.

Each schedule spawns ``wal_driver.py`` in its own session (process
group), lets it ingest a seeded workload against
``EAGrServer(wal_dir=...)``, and then the whole group dies by SIGKILL —
either the driver's own mid-ingest suicide after N acknowledged
batches, or earlier inside an armed WAL disk fault: a torn append, a
crash straight after one, a crash inside checkpoint-gated compaction
(both sides of the atomic rename), or — in the double-crash schedules —
a second boot that dies *during its own recovery replay*.

The verifier then cold-boots ``EAGrServer(wal_dir=...)`` in-process and
holds it to the acceptance contract:

* **Zero lost acknowledged batches.**  Recovered reads equal a fresh
  single-process oracle replay of some prefix of the driver's intents
  that covers every acknowledged batch.  (The one in-flight intent the
  crash interrupted may legitimately land either way — the driver's
  progress protocol makes the ambiguity window exactly one batch wide.)
* **Stamp-exact resumption.**  ``subscribe("watcher", resume_from=0)``
  replays the dead epoch's journal gap- and duplicate-free, fresh live
  traffic splices in with contiguous stamps, and every delivered value
  stream is an ordered subsequence of the oracle's true transitions
  ending at the true final value.

Schedules mix both executors: ``process`` runs real spawn workers (the
kill takes down a whole worker tree), ``inprocess`` keeps the sacrifice
cheap while still exercising every WAL code path.
"""

import json
import random
import signal
import subprocess
import sys

import pytest

from repro.core.engine import EAGrEngine
from repro.serve import EAGrServer

from tests.serve import wal_driver
from tests.serve.faultlib import (
    assert_contiguous,
    assert_subsequence,
    transitions_by_ego,
)

DRIVER = wal_driver.__file__

# One entry per crash schedule.  ``expect_early`` asserts the armed WAL
# fault actually fired (the driver died before its own planned suicide),
# so a mistuned fault point fails loudly instead of silently degrading
# into a plain kill.  ``recrash`` adds a second driver phase that boots
# from the WAL and is killed after submitting that many replay batches —
# crash-mid-recovery, verified to be harmless by the third boot.
SCHEDULES = [
    # plain mid-ingest kill -9 after N acknowledged batches
    dict(id="kill-proc-a", seed=2000, executor="process", batches=4, ckpt=2),
    dict(id="kill-inproc-a", seed=2001, executor="inprocess", batches=5, ckpt=3),
    dict(id="kill-proc-b", seed=2002, executor="process", batches=6, ckpt=4),
    dict(id="kill-inproc-b", seed=2003, executor="inprocess", batches=7, ckpt=2),
    dict(id="kill-inproc-c", seed=2004, executor="inprocess", batches=8, ckpt=3),
    # never checkpointed: recovery replays the full log
    dict(id="kill-proc-nockpt", seed=2005, executor="process", batches=5, ckpt=100),
    dict(id="kill-inproc-nockpt", seed=2006, executor="inprocess", batches=9, ckpt=100),
    # checkpointed every batch: recovery is almost pure checkpoint restore
    dict(id="kill-inproc-tight", seed=2007, executor="inprocess", batches=6, ckpt=1),
    # torn / short appends mid-write_batch (the ambiguous in-flight batch)
    dict(id="torn-append", seed=3001, executor="inprocess", batches=8, ckpt=3,
         torn_at=12, expect_early=True),
    dict(id="torn-append-nockpt", seed=3002, executor="inprocess", batches=8,
         ckpt=100, torn_at=15, expect_early=True),
    dict(id="crash-post-append", seed=3003, executor="inprocess", batches=8,
         ckpt=3, crash_appends=14, expect_early=True),
    # crash inside checkpoint-gated compaction, both sides of the rename
    dict(id="compact-before-rename", seed=4001, executor="inprocess",
         batches=12, ckpt=2, compact_bytes=2000,
         crash_compact="before_replace", expect_early=True),
    dict(id="compact-after-rename", seed=4002, executor="inprocess",
         batches=12, ckpt=2, compact_bytes=2000,
         crash_compact="after_replace", expect_early=True),
    # double crash: the second boot dies during its own recovery replay
    dict(id="recrash-early", seed=5001, executor="inprocess", batches=7,
         ckpt=100, recrash=1),
    dict(id="recrash-proc", seed=5002, executor="process", batches=6,
         ckpt=100, recrash=2),
    dict(id="recrash-ckpt", seed=5003, executor="inprocess", batches=9,
         ckpt=3, recrash=2),
    dict(id="recrash-late", seed=5004, executor="inprocess", batches=8,
         ckpt=100, recrash=3),
]


def spawn_phase(tmp_path, sched, phase, extra_args):
    """Run one sacrificial driver phase; returns its progress events.

    The driver runs as its own session leader, so its ``os.kill(0,
    SIGKILL)`` — or the WAL fault's — takes down the entire group
    including spawn workers, and cannot touch the pytest process.
    """
    progress = tmp_path / f"progress-{phase}.jsonl"
    log_path = tmp_path / f"driver-{phase}.log"
    cmd = [
        sys.executable,
        DRIVER,
        "--wal-dir", str(tmp_path / "wal"),
        "--progress", str(progress),
        "--seed", str(sched["seed"]),
        "--executor", sched["executor"],
        "--checkpoint-interval", str(sched["ckpt"]),
        *extra_args,
    ]
    with open(log_path, "wb") as log:
        proc = subprocess.Popen(
            cmd, stdout=log, stderr=subprocess.STDOUT, start_new_session=True
        )
        returncode = proc.wait(timeout=90)
    assert returncode == -signal.SIGKILL, (
        f"{sched['id']} phase {phase}: driver exited {returncode} instead of "
        f"dying by SIGKILL:\n{log_path.read_text()}"
    )
    events = []
    if progress.exists():
        with open(progress) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    return events


def phase_one_args(sched):
    args = ["--batches", str(sched["batches"])]
    if sched.get("compact_bytes") is not None:
        args += ["--compact-bytes", str(sched["compact_bytes"])]
    if sched.get("torn_at") is not None:
        args += ["--torn-append-at", str(sched["torn_at"])]
    if sched.get("crash_appends") is not None:
        args += ["--crash-after-appends", str(sched["crash_appends"])]
    if sched.get("crash_compact") is not None:
        args += ["--crash-in-compact", sched["crash_compact"]]
    return args


@pytest.mark.parametrize(
    "sched", SCHEDULES, ids=[sched["id"] for sched in SCHEDULES]
)
def test_kill9_cold_restart_recovers(tmp_path, sched):
    tag = f"{sched['id']}:"
    events = spawn_phase(tmp_path, sched, 1, phase_one_args(sched))

    kinds = [kind for kind, _payload in events]
    assert kinds[0] == "booted" and events[0][1]["recovered"] == 0, (
        f"{tag} first epoch must boot fresh: {events[:1]}"
    )
    assert "subscribed" in kinds, f"{tag} driver died before subscribing"
    if sched.get("expect_early"):
        assert "kill" not in kinds, (
            f"{tag} armed WAL fault never fired — the schedule degenerated "
            f"into a plain kill (tune the fault point)"
        )
    intents = [
        [(node, value) for node, value in payload]
        for kind, payload in events
        if kind == "intent"
    ]
    acked = sum(1 for kind in kinds if kind == "ack")
    assert intents, f"{tag} driver died before submitting anything"
    assert acked >= len(intents) - 1, (
        f"{tag} progress protocol broken: {len(intents)} intents, {acked} acks"
    )

    if sched.get("recrash"):
        # Crash-mid-recovery: a second boot replays the redo suffix and
        # is killed after ``recrash`` replay submissions.  It must not
        # write anything that confuses the next recovery.
        spawn_phase(
            tmp_path,
            sched,
            2,
            ["--batches", "0", "--crash-after-replay", str(sched["recrash"])],
        )

    graph, query = wal_driver.build_env()
    nodes = sorted(graph.nodes())
    server = EAGrServer(
        graph,
        query,
        num_shards=2,
        executor="inprocess",
        overlay_algorithm="identity",
        dataflow="all_push",
        wal_dir=str(tmp_path / "wal"),
        checkpoint_interval=sched["ckpt"],
    )
    try:
        server.drain()
        reads = server.read_batch(nodes)

        # Zero lost acknowledged batches: the recovered state must equal
        # an oracle replay of a prefix covering every acked batch; only
        # the single in-flight intent may land either way.
        applied = None
        for count in range(len(intents), acked - 1, -1):
            oracle = EAGrEngine(
                graph, query,
                overlay_algorithm="identity", dataflow="all_push",
            )
            for batch in intents[:count]:
                oracle.write_batch(batch)
            if oracle.read_batch(nodes) == reads:
                applied = count
                break
        assert applied is not None, (
            f"{tag} recovered reads match no prefix covering all "
            f"{acked} acknowledged batches"
        )

        # Stamp-exact resumption: full journal replay, then live traffic
        # splicing in with contiguous stamps.
        resumed = server.subscribe(wal_driver.SUBSCRIBER, resume_from=0)
        replayed = resumed.poll()
        rng = random.Random(sched["seed"] + 99)
        extra = [
            (rng.choice(nodes), float(rng.randint(1, 9))) for _ in range(4)
        ]
        server.write_batch(extra)
        server.drain()
        merged = replayed + resumed.poll()
        assert merged, f"{tag} nothing delivered across crash + recovery"
        assert_contiguous([note.stamp for note in merged], tag=f"{tag} merged:")

        batches = intents[:applied] + [extra]
        oracle = EAGrEngine(
            graph, query, overlay_algorithm="identity", dataflow="all_push"
        )
        history = transitions_by_ego(batches, oracle, nodes)
        final = dict(zip(nodes, oracle.read_batch(nodes)))
        assert dict(zip(nodes, server.read_batch(nodes))) == final, (
            f"{tag} post-recovery reads diverge from the never-crashed oracle"
        )
        per_ego = {}
        for note in merged:
            per_ego.setdefault(note.ego, []).append(note.value)
        for ego, values in per_ego.items():
            transitions = [value for _index, value in history[ego]]
            assert_subsequence(values, transitions, tag=f"{tag} ego {ego!r}:")
            assert values[-1] == final[ego], (
                f"{tag} ego {ego!r} last delivered {values[-1]} != final "
                f"{final[ego]}"
            )
    finally:
        server.close()
