"""The gateway's scale acceptance test: 1000 live TCP subscriptions.

A separate client process (``gateway_load_driver.py``) opens 100 real
TCP connections x 10 subscribers each against one gateway, drives write
waves through it, force-drops a connection mid-stream, and resumes its
streams with their tokens — asserting per-subscriber stamp contiguity
(no gap, no duplicate) across the cut.  The parent only hosts the
deployment and parses the driver's one-line JSON verdict.
"""

import json
import os
import subprocess
import sys

from repro.core.aggregates import Sum
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import random_graph
from repro.serve import EAGrServer, GatewayServer

from tests.serve.faultlib import deadline

DRIVER = os.path.join(os.path.dirname(__file__), "gateway_load_driver.py")


def test_thousand_concurrent_subscriptions(tmp_path):
    graph = random_graph(60, 300, seed=7)
    query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
    server = EAGrServer(
        graph, query, num_shards=2, executor="inprocess",
        overlay_algorithm="vnm_a", journal_capacity=50_000,
    )
    gateway = GatewayServer(server, max_inflight_bytes=1 << 22)
    host, port = gateway.start()
    try:
        # Writes go to every node; subscriptions only to egos that can
        # actually notify.  Edges are directed (N(x) = {y | y -> x}), so
        # an in-degree-0 ego holds the identity value forever — watching
        # one would (correctly) wait for a notification that can never
        # arrive.
        nodes = list(graph.nodes())
        notifiable = [n for n in nodes if graph.in_degree(n) > 0]
        config = {
            "host": host,
            "port": port,
            "nodes": nodes,
            "sub_nodes": notifiable,
            "connections": 100,
            "subs_per_conn": 10,
            "waves_before": 3,
            "waves_after": 3,
            "timeout": 120.0,
        }
        config_path = tmp_path / "load.json"
        config_path.write_text(json.dumps(config))
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(DRIVER), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        # Re-arm the suite watchdog: 1000 real TCP subscriptions on a
        # loaded CI box can exceed the 120s default without being hung.
        with deadline(420.0, "gateway 1000-subscription load"):
            proc = subprocess.run(
                [sys.executable, DRIVER, str(config_path)],
                capture_output=True, text=True, timeout=400, env=env,
            )
        assert proc.returncode == 0, (
            f"driver failed\nstdout: {proc.stdout[-2000:]}\n"
            f"stderr: {proc.stderr[-4000:]}"
        )
        verdict = json.loads(proc.stdout.strip().splitlines()[-1])
        assert verdict["ok"] is True
        assert verdict["subscriptions"] >= 1000
        assert verdict["resumed"] == 10
        assert verdict["notes"] >= 1000 * 6
        snap = server.metrics()["server"]
        assert snap["gw_connections_opened"] >= 102
        assert snap["gw_notes_sent"] >= 6000
    finally:
        gateway.close()
        server.close()
