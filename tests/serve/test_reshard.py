"""Live resharding: reader migration with no lost or duplicated notice.

``EAGrServer.reshard(plan)`` splices reader sets between running shards
(quiesce → checkpoint → splice → atomic swap → release).  This suite
pins the contract on the deterministic in-process executor plus one
process-executor pass:

* reads equal a never-resharded oracle before, across and after moves;
* a subscriber's stream stays stamp-contiguous and value-exact across a
  migration (the oracle replay of ``transitions_by_ego``);
* writes are never blocked by a migration — ``write_batch`` completes
  *from inside the migration's own fault hooks*;
* a failure before the hand-over point aborts cleanly (old partition
  intact, retry succeeds); the WAL ``P`` record makes recovery land
  entirely before or after the swap (kill -9 schedules live in
  ``test_reshard_faults.py``);
* the load-driven policy (``propose_rebalance`` / ``rebalance()``)
  proposes hot→cold writer-closure moves and stays quiet when balanced.

Timing note: after a reshard the affected workers are *freshly booted*
(spawn takes ~1s under the process executor), and ``flush()`` does not
wait for application — so every post-reshard assertion uses counted
``collect(sub, count=N)`` waits, never idle-based drains.
"""

import threading

import pytest

from repro.core.aggregates import Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import community_graph, random_graph
from repro.core.partition import mincut_assignment
from repro.serve import EAGrServer, ReshardPlan, ServeError
from repro.serve.reshard import plan_from_assignment, propose_rebalance, RebalancePolicy

from tests.serve.faultlib import (
    assert_contiguous,
    assert_subsequence,
    collect,
    deadline,
    transitions_by_ego,
)


def make_server(graph, query, num_shards=3, **kwargs):
    kwargs.setdefault("executor", "inprocess")
    kwargs.setdefault("overlay_algorithm", "identity")
    kwargs.setdefault("dataflow", "all_push")
    return EAGrServer(graph, query, num_shards=num_shards, **kwargs)


def build_env(seed=41):
    graph = random_graph(16, 60, seed=seed)
    query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
    return graph, query


def make_batches(nodes, count, seed=7, size=5):
    import random

    rng = random.Random(seed)
    return [
        [(rng.choice(nodes), float(rng.randint(1, 9))) for _ in range(size)]
        for _ in range(count)
    ]


def cross_shard_plan(server, movers=4):
    """Move the first ``movers`` readers of shard 0 to the last shard."""
    dst = server.num_shards - 1
    moves = {}
    for node in sorted(server.reader_shard, key=repr):
        if server.reader_shard[node] == 0:
            moves[node] = dst
            if len(moves) >= movers:
                break
    assert moves, "shard 0 owns no readers in this seed"
    return moves


class TestBasicMigration:
    def test_reads_preserved_across_moves(self):
        graph, query = build_env()
        nodes = sorted(graph.nodes())
        oracle = EAGrEngine(graph, query, overlay_algorithm="identity",
                            dataflow="all_push")
        with make_server(graph, query) as server:
            batches = make_batches(nodes, 6, seed=11)
            for batch in batches[:3]:
                server.write_batch(batch)
                oracle.write_batch(batch)
            moves = cross_shard_plan(server)
            summary = server.reshard(moves)
            assert summary["moved"] == len(moves)
            assert summary["epoch"] == 1
            assert server.partition_epoch == 1
            for node, dst in moves.items():
                assert server.reader_shard[node] == dst
            assert server.read_batch(nodes) == oracle.read_batch(nodes)
            for batch in batches[3:]:
                server.write_batch(batch)
                oracle.write_batch(batch)
            server.drain()
            assert server.read_batch(nodes) == oracle.read_batch(nodes)

    def test_reshard_plan_object_and_back(self):
        graph, query = build_env(seed=42)
        with make_server(graph, query) as server:
            moves = cross_shard_plan(server, movers=3)
            plan = ReshardPlan(moves=moves, kind="migrate", reason="test")
            assert len(plan) == len(moves) and bool(plan)
            server.reshard(plan)
            # Move them home again: a second migration over the same egos.
            back = {node: 0 for node in moves}
            summary = server.reshard(back)
            assert summary["epoch"] == 2
            assert all(server.reader_shard[n] == 0 for n in moves)

    def test_noop_and_filtered_plans(self):
        graph, query = build_env(seed=43)
        with make_server(graph, query) as server:
            assert server.reshard({})["moved"] == 0
            some = next(iter(server.reader_shard))
            stay = {some: server.reader_shard[some]}  # already there
            ghost = {"never-a-reader": 1}
            assert server.reshard(stay)["moved"] == 0
            assert server.reshard(ghost)["moved"] == 0
            assert server.partition_epoch == 0

    def test_invalid_destination(self):
        graph, query = build_env(seed=44)
        with make_server(graph, query) as server:
            some = next(iter(server.reader_shard))
            with pytest.raises(ValueError):
                server.reshard({some: 99})

    def test_replication_windows(self):
        graph, query = build_env(seed=45)
        nodes = sorted(graph.nodes())
        with make_server(graph, query) as server:
            planned = server.replication_factor
            assert planned >= 1.0
            for batch in make_batches(nodes, 4, seed=46):
                server.write_batch(batch)
            server.drain()
            observed = server.observed_replication_factor
            assert observed > 0.0
            stats = server.server_stats()
            assert stats["replication_factor"] == planned
            assert stats["observed_replication_factor"] == observed
            # A reshard opens a fresh observation window: with no writes
            # in it yet, the observed factor reports the new plan.
            server.reshard(cross_shard_plan(server, movers=2))
            assert (
                server.observed_replication_factor
                == server.replication_factor
            )

    def test_shm_reads_after_shard_growth(self):
        """Regression: a migration that grows a shard past its value-store
        segment's capacity makes the rebuilt worker recreate the segment —
        larger, under the *same* name — so the front-end must drop its
        zero-copy read attachment instead of gathering out-of-range
        handles from the stale, smaller mapping."""
        graph, query = build_env(seed=48)
        nodes = sorted(graph.nodes())
        oracle = EAGrEngine(graph, query, overlay_algorithm="identity",
                            dataflow="all_push")
        with make_server(graph, query, executor="process") as server:
            for batch in make_batches(nodes, 3, seed=49):
                server.write_batch(batch)
                oracle.write_batch(batch)
            server.drain()
            assert server.read_batch(nodes) == oracle.read_batch(nodes)
            # Every reader lands on the last shard: its overlay (readers
            # plus writer closures) outgrows the boot-time segment.
            dst = server.num_shards - 1
            moves = {
                node: dst
                for node, shard in server.reader_shard.items()
                if shard != dst
            }
            assert server.reshard(moves)["moved"] == len(moves)
            server.drain()
            assert server.read_batch(nodes) == oracle.read_batch(nodes)
            for batch in make_batches(nodes, 2, seed=50):
                server.write_batch(batch)
                oracle.write_batch(batch)
            server.drain()
            assert server.read_batch(nodes) == oracle.read_batch(nodes)

    def test_shard_load_rows(self):
        graph, query = build_env(seed=47)
        with make_server(graph, query) as server:
            rows = server.server_stats()["shard_load"]
            assert len(rows) == server.num_shards
            for row in rows:
                assert set(row) >= {
                    "shard", "readers", "busy_fraction", "applied_eps",
                    "ring_depth", "outbox_pending",
                }
            assert sum(row["readers"] for row in rows) == len(server.reader_shard)


class TestNotificationStream:
    @pytest.mark.parametrize("executor", ["inprocess", "process"])
    def test_gap_free_across_migration(self, executor):
        graph, query = build_env(seed=48)
        nodes = sorted(graph.nodes())
        with deadline(120, f"reshard stream ({executor})"):
            with make_server(graph, query, executor=executor) as server:
                sub = server.subscribe("watcher", nodes)
                batches = make_batches(nodes, 8, seed=49)
                for batch in batches[:4]:
                    server.write_batch(batch)
                server.drain()
                server.reshard(cross_shard_plan(server))
                for batch in batches[4:]:
                    server.write_batch(batch)
                # drain() waits for application even on the freshly
                # booted post-reshard workers; flush() alone would not.
                server.drain()

                oracle = EAGrEngine(
                    graph, query, overlay_algorithm="identity",
                    dataflow="all_push",
                )
                history = transitions_by_ego(batches, oracle, nodes)
                notes = collect(sub, timeout=60, idle=1.0)
                assert_contiguous(
                    sorted(n.stamp for n in notes), tag=f"{executor}:"
                )
                by_ego = {}
                for note in notes:
                    by_ego.setdefault(note.ego, []).append(note.value)
                finals = dict(zip(nodes, oracle.read_batch(nodes)))
                for node in nodes:
                    got = by_ego.get(node, [])
                    want = [value for _, value in history[node]]
                    # Coalescing may skip intermediate values (several
                    # client batches applied as one shard batch), but the
                    # stream must stay an in-order subsequence of the
                    # oracle's transitions with no consecutive repeats,
                    # and must land on the final value.
                    assert_subsequence(
                        got, want, tag=f"{executor}: ego {node}:"
                    )
                    assert all(a != b for a, b in zip(got, got[1:])), (
                        f"{executor}: ego {node} saw a duplicate in {got}"
                    )
                    if got:
                        assert got[-1] == finals[node]
                    if want:
                        assert got, (
                            f"{executor}: ego {node} changed "
                            f"{len(want)} times but never notified"
                        )
                assert server.read_batch(nodes) == oracle.read_batch(nodes)

    def test_moved_ego_keeps_notifying(self):
        # The strictest slice of the contract: an ego that moves shards
        # mid-stream must keep producing notices for later changes (the
        # batch-counter alignment in the splice is what makes the
        # front-end's replay filter accept them).
        graph, query = build_env(seed=50)
        nodes = sorted(graph.nodes())
        with make_server(graph, query) as server:
            moves = cross_shard_plan(server)
            mover = next(iter(moves))
            writers = sorted(query.neighborhood(graph, mover))
            assert writers, "need a mover with at least one writer"
            sub = server.subscribe("watcher", [mover])
            server.write_batch([(writers[0], 3.0)])
            server.drain()
            first = collect(sub, count=1, timeout=30)
            server.reshard(moves)
            server.write_batch([(writers[0], 5.0)])
            server.flush()
            second = collect(sub, count=1, timeout=30)
            assert first[0].ego == mover and second[0].ego == mover
            assert second[0].stamp > first[0].stamp
            # TupleWindow(1): the writer's second write replaces its first.
            assert first[0].value == 3.0 and second[0].value == 5.0


class TestAvailability:
    def test_writes_never_block_during_migration(self):
        # write_batch must return from *inside* the migration window —
        # both for unaffected writers (routed around the quiesce) and for
        # migrating ones (parked as residue) — and nothing parked is lost.
        graph, query = build_env(seed=51)
        nodes = sorted(graph.nodes())
        oracle = EAGrEngine(graph, query, overlay_algorithm="identity",
                            dataflow="all_push")
        with make_server(graph, query) as server:
            moves = cross_shard_plan(server)
            mover = next(iter(moves))
            moving_writer = sorted(query.neighborhood(graph, mover))[0]
            mid_batches = [
                [(node, 2.0) for node in nodes[:4]],  # broad batch
                [(moving_writer, 7.0)],  # lands in the quiesced residue
            ]
            in_window = []

            def mid_migration():
                for batch in mid_batches:
                    server.write_batch(batch)
                    in_window.append(len(batch))

            server.reshard_faults["pre_swap"] = mid_migration
            with deadline(60, "write during migration"):
                server.reshard(moves)
            assert in_window == [4, 1], "a write blocked inside the window"
            for batch in mid_batches:
                oracle.write_batch(batch)
            server.drain()
            assert server.read_batch(nodes) == oracle.read_batch(nodes)

    def test_concurrent_writer_thread(self):
        graph, query = build_env(seed=52)
        nodes = sorted(graph.nodes())
        oracle = EAGrEngine(graph, query, overlay_algorithm="identity",
                            dataflow="all_push")
        with make_server(graph, query) as server:
            batches = make_batches(nodes, 30, seed=53, size=3)
            errors = []

            def pump():
                try:
                    for batch in batches:
                        server.write_batch(batch)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            writer = threading.Thread(target=pump)
            writer.start()
            try:
                server.reshard(cross_shard_plan(server))
            finally:
                writer.join(timeout=60)
            assert not writer.is_alive() and not errors
            for batch in batches:
                oracle.write_batch(batch)
            server.drain()
            assert server.read_batch(nodes) == oracle.read_batch(nodes)


class TestAbort:
    @pytest.mark.parametrize("point", ["pre_checkpoint", "pre_swap"])
    def test_clean_abort_before_handover(self, point):
        graph, query = build_env(seed=54)
        nodes = sorted(graph.nodes())
        oracle = EAGrEngine(graph, query, overlay_algorithm="identity",
                            dataflow="all_push")
        with make_server(graph, query) as server:
            for batch in make_batches(nodes, 3, seed=55):
                server.write_batch(batch)
                oracle.write_batch(batch)
            before = dict(server.reader_shard)
            moves = cross_shard_plan(server)

            class Boom(RuntimeError):
                pass

            def explode():
                raise Boom(point)

            server.reshard_faults[point] = explode
            with pytest.raises(Boom):
                server.reshard(moves)
            # Old partition fully intact, server unpoisoned and usable.
            assert server.reader_shard == before
            assert server.partition_epoch == 0
            extra = make_batches(nodes, 2, seed=56)
            for batch in extra:
                server.write_batch(batch)
                oracle.write_batch(batch)
            server.drain()
            assert server.read_batch(nodes) == oracle.read_batch(nodes)
            # ... and the retry (hook disarmed) goes through.
            del server.reshard_faults[point]
            assert server.reshard(moves)["moved"] == len(moves)
            assert server.read_batch(nodes) == oracle.read_batch(nodes)


class TestWalRecovery:
    def test_cold_restart_replays_the_new_partition(self, tmp_path):
        graph, query = build_env(seed=57)
        nodes = sorted(graph.nodes())
        oracle = EAGrEngine(graph, query, overlay_algorithm="identity",
                            dataflow="all_push")
        wal_dir = str(tmp_path / "wal")
        server = make_server(graph, query, wal_dir=wal_dir)
        try:
            batches = make_batches(nodes, 6, seed=58)
            for batch in batches[:3]:
                server.write_batch(batch)
            moves = cross_shard_plan(server)
            server.reshard(moves)
            for batch in batches[3:]:
                server.write_batch(batch)
            server.drain()
            # Simulated kill -9: abandon everything but release the flock
            # the kernel would release for a dead process.
            server._stop_flusher.set()
            server._flusher.join(timeout=10)
            server._wal.close()
        finally:
            pass
        for batch in batches:
            oracle.write_batch(batch)

        with make_server(graph, query, wal_dir=wal_dir) as revived:
            assert revived.partition_epoch == 1
            for node, dst in moves.items():
                assert revived.reader_shard[node] == dst
            revived.drain()
            assert revived.read_batch(nodes) == oracle.read_batch(nodes)


class TestRebalancePolicy:
    @staticmethod
    def load_rows(server, busy):
        sizes = server.shard_sizes()
        return [
            {
                "shard": shard_id,
                "readers": sizes[shard_id],
                "busy_fraction": busy[shard_id],
                "applied_eps": busy[shard_id] * 1000.0,
                "ring_depth": 0,
                "outbox_pending": 0,
            }
            for shard_id in range(server.num_shards)
        ]

    def test_balanced_load_proposes_nothing(self):
        graph, query = build_env(seed=59)
        with make_server(graph, query) as server:
            load = self.load_rows(server, [0.4, 0.4, 0.4])
            assert propose_rebalance(server, load=load) is None

    def test_idle_skew_is_noise(self):
        graph, query = build_env(seed=60)
        with make_server(graph, query) as server:
            load = self.load_rows(server, [0.01, 0.0, 0.0])
            assert propose_rebalance(server, load=load) is None

    def test_hot_shard_sheds_writer_closures(self):
        # Disconnected communities: each is one writer closure, so the
        # hot shard has something smaller than itself to shed.
        graph = community_graph(
            num_communities=6, community_size=10, intra_probability=0.5,
            inter_edges=0, seed=61,
        )
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        with make_server(graph, query, num_shards=2) as server:
            load = self.load_rows(server, [0.9, 0.05])
            # The default balance cap would leave no headroom on the
            # destination (the seed partition is already lopsided), so
            # the policy gets room to trade balance for heat.
            plan = propose_rebalance(
                server, policy=RebalancePolicy(balance=2.0), load=load
            )
            assert plan is not None and plan.moves
            assert all(server.reader_shard[n] == 0 for n in plan.moves)
            dst = set(plan.moves.values())
            assert len(dst) == 1 and 0 not in dst
            # Bounded step: never more than the policy's move fraction
            # (closure granularity may add the last closure's overhang).
            hot_size = server.shard_sizes()[0]
            assert len(plan.moves) <= hot_size
            summary = server.reshard(plan)
            assert summary["moved"] == len(plan.moves)

    def test_rebalance_applies_and_reports(self):
        graph = community_graph(
            num_communities=6, community_size=10, intra_probability=0.5,
            inter_edges=12, seed=62,
        )
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        with make_server(graph, query, num_shards=3) as server:
            # Quiet server: the metrics-plane gauges read idle.
            summary = server.rebalance()
            assert summary["moved"] == 0 and summary["plan"] is None
            assert server.partition_epoch == 0

    def test_policy_thresholds(self):
        policy = RebalancePolicy(skew_threshold=10.0)
        graph, query = build_env(seed=63)
        with make_server(graph, query) as server:
            load = self.load_rows(server, [0.9, 0.1, 0.1])
            assert propose_rebalance(server, policy=policy, load=load) is None

    def test_oversized_first_closure_respects_balance(self):
        # Same disconnected communities, hot side reversed, and a
        # balance cap that leaves the destination one reader of
        # headroom — less than *every* writer closure on the hot
        # shard.  The policy must propose nothing: moving a closure
        # anyway just because the plan is still empty would overfill
        # the cold shard past policy.balance.
        graph = community_graph(
            num_communities=6, community_size=10, intra_probability=0.5,
            inter_edges=0, seed=61,
        )
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        with make_server(graph, query, num_shards=2) as server:
            load = self.load_rows(server, [0.05, 0.9])
            sizes = server.shard_sizes()
            total = len(server.reader_shard)
            policy = RebalancePolicy(balance=0.8)
            cap = max(1, int(policy.balance * total / server.num_shards))
            # This seed partitions 23/37; the smallest hot closure has
            # 7 readers, far over the single-reader headroom.
            assert cap - sizes[0] == 1
            assert propose_rebalance(server, policy=policy, load=load) is None


class TestPlanFromAssignment:
    def test_diff_against_target(self):
        graph, query = build_env(seed=64)
        with make_server(graph, query) as server:
            target = dict(server.reader_shard)
            movers = sorted(target, key=repr)[:5]
            for node in movers:
                target[node] = (target[node] + 1) % server.num_shards
            plan = plan_from_assignment(server, target)
            assert plan.kind == "assignment"
            assert set(plan.moves) == set(movers)
            server.reshard(plan)
            assert dict(server.reader_shard) == target

    def test_identity_target_is_empty(self):
        graph, query = build_env(seed=65)
        with make_server(graph, query) as server:
            plan = plan_from_assignment(server, dict(server.reader_shard))
            assert not plan

    def test_accepts_mincut_assignment(self):
        # The documented pairing: re-run the partitioner offline (here
        # with write frequencies steering it away from the boot-time
        # partition), feed its TableAssignment straight in.
        graph, query = build_env(seed=66)
        with make_server(graph, query) as server:
            freq = {node: float(1 + (hash(node) % 5)) for node in graph.nodes()}
            target = mincut_assignment(
                graph, query, server.num_shards, write_freq=freq
            )
            plan = plan_from_assignment(server, target)
            assert plan.kind == "assignment"
            for node, dst in plan.moves.items():
                assert target(node) == dst
            if plan:
                server.reshard(plan)
                assert all(
                    server.reader_shard[node] == target(node)
                    for node in server.reader_shard
                )

    def test_accepts_plain_callable(self):
        # community_assignment-style callables (no .get) work too: every
        # current reader is mapped through the callable directly.
        graph, query = build_env(seed=67)
        with make_server(graph, query) as server:
            plan = plan_from_assignment(server, lambda node: 0)
            assert set(plan.moves) == {
                node
                for node, shard in server.reader_shard.items()
                if shard != 0
            }
            assert set(plan.moves.values()) <= {0}


class TestWriteRouteRace:
    """A ``write_batch`` racing the swap must re-route under the lock.

    The columnar path routes a packed batch *before* taking the route
    lock.  If a whole migration completes in that window, the step-4
    residue re-route has already run, so a push routed by the dead
    table would be applied (and WAL-replayed) on shards the moved
    readers just left and never reach their new home — a durably lost
    notification.  ``write_batch`` re-verifies the partition snapshot by
    dict identity under the lock and re-routes; this pins that.
    """

    def test_write_routed_across_swap_lands_on_new_home(self):
        graph, query = build_env(seed=77)
        nodes = sorted(graph.nodes())
        oracle = EAGrEngine(graph, query, overlay_algorithm="identity",
                            dataflow="all_push")
        with make_server(graph, query) as server:
            if server._route_table() is None:
                pytest.skip("columnar routing needs numpy + binary frames")
            moves = cross_shard_plan(server, movers=len(nodes))
            orig = server._route_frame
            fired = []

            def racy(frame, writer_shards=None):
                parts = orig(frame, writer_shards)
                if not fired:
                    # A full migration completes inside the window
                    # between write_batch's routing and its push.
                    fired.append(True)
                    server.reshard(moves)
                return parts

            server._route_frame = racy
            batch = [(node, 2.0, float(i + 1)) for i, node in enumerate(nodes)]
            try:
                assert server.write_batch(batch) == len(batch)
            finally:
                server._route_frame = orig
            oracle.write_batch(batch)
            assert fired and server.partition_epoch == 1
            server.drain()
            assert server.read_batch(nodes) == oracle.read_batch(nodes)
            # Steady state after the race stays exact too.
            for later in make_batches(nodes, 3, seed=78):
                server.write_batch(later)
                oracle.write_batch(later)
            server.drain()
            assert server.read_batch(nodes) == oracle.read_batch(nodes)
