"""Fault-injection and determinism helpers for the serve-layer tests.

The serving tier's interesting behavior lives in its failure windows:
a worker dying between *applying* a batch and *acknowledging* it, a
subscriber's queue severed with notifications in flight, a shard
restarted from a stale checkpoint.  Sleeping and hoping the scheduler
lands in the window is both flaky and slow; everything here is
**deterministic or condition-based** instead:

* :func:`arm_kill_point` / :func:`disarm` — configure a shard worker to
  kill itself on receiving (``before``) or after applying (``after``)
  its N-th write batch, *counted after the redo-log replay* that arming
  performs, so "die on the 2nd post-restart batch" means exactly that
  regardless of how much history replays.  Works on both executors: the
  worker process ``os._exit``\\ s (no finalizers — a genuine unclean
  death), the in-process executor discards its host.
* :func:`kill_shard` — immediate external kill (SIGTERM-style).
* :func:`wait_until` / :func:`wait_dead` / :func:`collect` — predicate
  and queue-driven waits with hard deadlines; no bare sleeps.
* :func:`deadline` — a SIGALRM watchdog so a hung queue turns into a
  clear test failure in seconds instead of a stalled CI job (the
  ``tests/serve`` conftest arms it around every test).
* :func:`refuse_submits` — backpressure injection: make an executor
  refuse its next N non-blocking submits (the coalescing path).
* disk-fault injection — :func:`shear_tail` (torn write: drop the last N
  bytes of a file, as a crash mid-``write`` would), :func:`flip_byte`
  (silent media corruption at an offset, which CRC framing must catch),
  :func:`wal_files` (a WAL directory's segment files, for size and
  layout assertions).  The WAL's own ``faults`` dict covers the
  *in-process* seams (fsync raising, crash-mid-compaction); these
  helpers corrupt the bytes **at rest**, after the writer is gone.
* :func:`shm_segment_names` / :func:`assert_no_segments` — enumerate a
  server's named shared-memory segments (ingress rings + value stores)
  and assert they are gone after teardown: the leak check for the
  zero-copy transport's front-end-owned cleanup.
* stream verifiers — :func:`assert_contiguous`,
  :func:`assert_spliced_stream`, :func:`assert_subsequence`: the
  delivery-contract checks (monotone gap-free stamps, exactly-once
  after resume, transitions consistent with an oracle replay).

A typical scripted crash::

    arm_kill_point(server, shard_id=0, after=2, rng_tag="seed 7")
    server.write_batch(...)          # worker applies 2 batches, dies
    wait_dead(server, 0)             # deterministic: no sleeps
    disarm(server, 0)
    server.restart_shard(0)          # checkpoint + redo-log recovery
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

DEFAULT_TIMEOUT = 30.0


class FaultTimeout(AssertionError):
    """A condition-based wait ran out of time (the condition, not the
    scheduler, is wrong — the message says which one)."""


# ---------------------------------------------------------------------------
# condition-based waiting
# ---------------------------------------------------------------------------


def wait_until(
    predicate: Callable[[], bool],
    timeout: float = DEFAULT_TIMEOUT,
    interval: float = 0.005,
    desc: str = "condition",
) -> None:
    """Poll ``predicate`` until true; :class:`FaultTimeout` on deadline."""
    deadline_at = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline_at:
            raise FaultTimeout(f"timed out after {timeout}s waiting for {desc}")
        time.sleep(interval)


def wait_dead(server, shard_id: int, timeout: float = DEFAULT_TIMEOUT) -> None:
    """Wait until ``shard_id``'s worker is observably dead."""
    wait_until(
        lambda: not server._executors[shard_id].alive(),
        timeout=timeout,
        desc=f"shard {shard_id} worker death",
    )


def collect(
    subscription,
    count: Optional[int] = None,
    timeout: float = DEFAULT_TIMEOUT,
    idle: float = 0.25,
) -> List[Any]:
    """Drain notifications from ``subscription`` without bare sleeps.

    With ``count``: block until that many arrive (or fail at ``timeout``).
    Without: drain until the queue has been quiet for ``idle`` seconds —
    the "everything in flight has landed" condition after a ``drain()``.
    """
    notes: List[Any] = []
    deadline_at = time.monotonic() + timeout
    while True:
        if count is not None and len(notes) >= count:
            return notes
        remaining = deadline_at - time.monotonic()
        if remaining <= 0:
            if count is None:
                return notes
            raise FaultTimeout(
                f"timed out with {len(notes)}/{count} notifications"
            )
        note = subscription.get(timeout=idle if count is None else min(remaining, idle))
        if note is None:
            if count is None:
                return notes
            continue
        notes.append(note)


@contextlib.contextmanager
def deadline(seconds: float, desc: str = "test body"):
    """Hard SIGALRM watchdog: raise :class:`FaultTimeout` in the main
    thread after ``seconds`` — a hung ``queue.get`` fails fast instead of
    stalling the whole run.  No-op off the main thread or without SIGALRM
    (non-POSIX), where the caller's own timeouts are the only guard.
    """
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def on_alarm(signum, frame):
        raise FaultTimeout(f"watchdog: {desc} exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# fault injection
# ---------------------------------------------------------------------------


def arm_kill_point(
    server,
    shard_id: int,
    after: Optional[int] = None,
    before: Optional[int] = None,
    rng_tag: str = "",
) -> int:
    """Restart ``shard_id`` with a deterministic self-kill armed.

    ``after=N`` dies after *applying* the N-th post-restart write batch,
    before the acknowledgement leaves (the applied-but-unacked window);
    ``before=N`` dies on *receiving* it, unapplied.  The redo-log batches
    the arming restart replays are excluded from the count, so N refers
    to fresh traffic.  Returns the number of batches replayed by the
    arming restart (``rng_tag`` only decorates assertion messages).
    """
    if (after is None) == (before is None):
        raise ValueError("exactly one of after/before is required")
    offset = len(server._write_log[shard_id])
    faults: Dict[str, int] = {}
    if after is not None:
        faults["exit_after_writes"] = offset + after
    else:
        faults["exit_before_writes"] = offset + before
    server.specs[shard_id].faults = faults
    replayed = server.restart_shard(shard_id)
    assert replayed == offset, (
        f"{rng_tag} arming restart replayed {replayed}, expected {offset}"
    )
    return replayed


def disarm(server, shard_id: int) -> None:
    """Clear the shard's kill point (the next restart boots clean)."""
    server.specs[shard_id].faults = None


def kill_shard(server, shard_id: int, timeout: float = DEFAULT_TIMEOUT) -> None:
    """Immediately, uncleanly kill a shard's worker and wait it out."""
    server._executors[shard_id].kill()
    wait_dead(server, shard_id, timeout=timeout)


@contextlib.contextmanager
def refuse_submits(executor, times: int):
    """Make ``executor.try_submit`` refuse its next ``times`` calls.

    Exercises the outbox-coalescing path on demand (a deterministically
    "backed up" shard).  The counter object is yielded so tests can
    assert how many refusals were consumed: ``left`` reaches 0.
    """
    state = {"left": times}
    original = executor.try_submit

    def flaky(request):
        if state["left"] > 0:
            state["left"] -= 1
            return False
        return original(request)

    executor.try_submit = flaky
    try:
        yield state
    finally:
        executor.try_submit = original


def shear_tail(path, nbytes: int) -> int:
    """Torn write: drop the last ``nbytes`` bytes of ``path`` in place.

    Models a crash mid-``write(2)`` (or a power cut before the page hit
    the platter): a frame's payload — or even its header — is only
    partially present.  Returns the file's new size.
    """
    size = os.path.getsize(path)
    keep = max(0, size - nbytes)
    with open(path, "r+b") as fh:
        fh.truncate(keep)
        fh.flush()
        os.fsync(fh.fileno())
    return keep


def flip_byte(path, offset: int) -> None:
    """Silent media corruption: XOR one byte of ``path`` at ``offset``
    (negative offsets index from the end).  The length prefix still
    parses, so only the CRC can catch this."""
    with open(path, "r+b") as fh:
        if offset < 0:
            fh.seek(offset, os.SEEK_END)
        else:
            fh.seek(offset)
        position = fh.tell()
        byte = fh.read(1)
        fh.seek(position)
        fh.write(bytes([byte[0] ^ 0xFF]))
        fh.flush()
        os.fsync(fh.fileno())


def wal_files(directory) -> List[str]:
    """The WAL's segment files, oldest first (absolute paths)."""
    from repro.serve.wal import list_segments

    return [path for _index, path in list_segments(directory)]


def shm_segment_names(server) -> List[str]:
    """Every shared-memory segment name a server's deployment uses
    (ingress rings and value-store columns); empty off the shm path."""
    names: List[str] = []
    for spec in getattr(server, "specs", ()):
        if getattr(spec, "shm", None):
            names.extend(spec.shm.values())
    return names


def assert_no_segments(names: Sequence[str], tag: str = "") -> None:
    """Assert none of ``names`` is still attachable (post-close leak check)."""
    from repro.core.statestore import segment_exists

    leaked = [name for name in names if segment_exists(name)]
    assert not leaked, f"{tag} leaked shared-memory segments: {leaked}"


# ---------------------------------------------------------------------------
# delivery-contract verifiers
# ---------------------------------------------------------------------------


def assert_contiguous(stamps: Sequence[int], start: int = 1, tag: str = "") -> None:
    """Stamps are exactly ``start, start+1, ...`` — no gap, dup, or skew."""
    expected = list(range(start, start + len(stamps)))
    assert list(stamps) == expected, (
        f"{tag} stamps not contiguous from {start}: got {list(stamps)[:20]}..."
        if len(stamps) > 20
        else f"{tag} stamps not contiguous from {start}: got {list(stamps)}"
    )


def assert_spliced_stream(
    pre_notes: Sequence[Any],
    resume_from: int,
    post_notes: Sequence[Any],
    tag: str = "",
) -> List[Any]:
    """Check exactly-once-after-resume and return the client's merged view.

    The client kept ``pre_notes`` up to stamp ``resume_from`` (later ones
    were lost with the connection); ``post_notes`` is everything the
    resumed subscription delivered.  The merge must be one contiguous
    stamp sequence from 1 — the replay filled the hole exactly, repeated
    nothing the client kept, and live delivery spliced in with no gap.
    """
    kept = [n for n in pre_notes if n.stamp <= resume_from]
    merged = kept + list(post_notes)
    assert_contiguous([n.stamp for n in merged], start=1, tag=f"{tag} merged view:")
    return merged


def assert_subsequence(seq: Sequence[Any], of: Sequence[Any], tag: str = "") -> None:
    """Every element of ``seq`` appears in ``of``, in order (dedup-tolerant
    containment: coalesced batches may collapse oracle transitions)."""
    it = iter(of)
    for item in seq:
        for candidate in it:
            if candidate == item:
                break
        else:
            raise AssertionError(
                f"{tag} {item!r} breaks subsequence containment in oracle "
                f"transitions {list(of)}"
            )


def transitions_by_ego(
    batches: Sequence[Sequence], oracle, nodes: Sequence
) -> Dict[Any, List]:
    """Oracle replay: apply ``batches`` in order to a fresh tracking pass.

    Returns ``ego -> [(batch_index, value), ...]`` for every value change
    observed at batch granularity — the ground truth a subscriber's
    delivered per-ego value sequence is checked against.  ``oracle`` must
    be a fresh engine equivalent to the server's (same graph/query).
    """
    history: Dict[Any, List] = {node: [] for node in nodes}
    previous = dict(zip(nodes, oracle.read_batch(nodes)))
    for index, batch in enumerate(batches):
        oracle.write_batch(batch)
        for node, value in zip(nodes, oracle.read_batch(nodes)):
            if value != previous[node]:
                history[node].append((index, value))
                previous[node] = value
    return history
