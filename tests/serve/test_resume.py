"""Property tests: resume semantics under seeded random interleavings.

Each seed drives a random schedule of ``write_batch`` / ``subscribe`` /
``disconnect`` / ``resume_from`` / ``ack`` / ``checkpoint`` operations
against a ≥3-shard server (deterministic in-process executor), mirrored
into a single-process :class:`EAGrEngine` oracle.  Invariants asserted
for every subscriber:

* the client's merged view (what it kept before each disconnect plus
  what each resume delivered) is one contiguous stamp sequence 1..K —
  monotone, gap-free after resume, duplicate-free;
* per watched ego, the delivered value sequence equals the oracle's
  value transitions from the subscribe point on (batch granularity);
* the final delivered value per ego equals the oracle's final read.

The in-process executor never coalesces (its queue is never backed up),
so batch boundaries — and therefore value transitions — are preserved
exactly, which is what makes strict oracle equality assertable here.
"""

import random

import pytest

from repro.core.aggregates import Mean, Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import random_graph
from repro.serve import EAGrServer, ResumeGapError

from tests.serve.faultlib import assert_contiguous, transitions_by_ego


NUM_NODES = 24
NUM_EDGES = 100
NUM_OPS = 60
SUBSCRIBERS = ("alice", "bob", "carol")


class _Client:
    """Client-side view of one subscriber: what it has actually seen."""

    def __init__(self, name):
        self.name = name
        self.sub = None
        self.seen = []           # notifications processed, in order
        self.connected = False
        self.sub_batch = None    # batch index the subscription started at
        self.nodes = []

    def pump(self):
        if self.sub is not None and self.connected:
            self.seen.extend(self.sub.poll())


def run_schedule(seed, aggregate, window):
    rng = random.Random(seed)
    graph = random_graph(NUM_NODES, NUM_EDGES, seed=seed * 7 + 1)
    query = EgoQuery(aggregate=aggregate, window=window)
    nodes = list(graph.nodes())
    server = EAGrServer(
        graph,
        query,
        num_shards=3,
        executor="inprocess",
        overlay_algorithm="vnm_a",
    )
    clients = {name: _Client(name) for name in SUBSCRIBERS}
    batches = []  # every accepted batch, in acceptance order

    def do_write():
        size = rng.randint(1, 6)
        batch = [
            (rng.choice(nodes), float(rng.randint(1, 9)))
            for _ in range(size)
        ]
        server.write_batch(batch)
        batches.append(batch)

    def do_subscribe(client):
        fresh = rng.sample(nodes, rng.randint(3, len(nodes)))
        extend = dict.fromkeys(client.nodes)
        extend.update(dict.fromkeys(fresh))
        client.sub = server.subscribe(client.name, fresh)
        if client.sub_batch is None:
            client.sub_batch = len(batches)
            client.nodes = list(extend)
        else:
            # extension: only track egos watched from the start, so the
            # per-ego transition check has one well-defined start point.
            client.nodes = [n for n in client.nodes if n in extend]
        client.connected = True

    def do_disconnect(client):
        client.pump()
        server.disconnect(client.name)
        client.connected = False

    def do_resume(client):
        resume_from = client.seen[-1].stamp if client.seen else 0
        client.sub = server.subscribe(client.name, resume_from=resume_from)
        client.connected = True

    def do_ack(client):
        if client.seen:
            server.ack(client.name, client.seen[-1].stamp)

    for _ in range(NUM_OPS):
        op = rng.random()
        client = clients[rng.choice(SUBSCRIBERS)]
        if op < 0.55:
            do_write()
        elif op < 0.70:
            if client.sub_batch is None:
                do_subscribe(client)
            elif client.connected:
                do_disconnect(client)
            else:
                do_resume(client)
        elif op < 0.80:
            if client.sub_batch is None:
                do_subscribe(client)
        elif op < 0.90:
            if client.connected:
                do_ack(client)
        else:
            server.checkpoint([rng.randrange(3)])
        for c in clients.values():
            c.pump()

    # reconnect everyone, drain everything still in flight
    server.drain()
    for client in clients.values():
        if client.sub_batch is None:
            continue
        if not client.connected:
            do_resume(client)
        client.pump()

    # ---- invariants -----------------------------------------------------
    oracle = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
    history = transitions_by_ego(batches, oracle, nodes)
    final = dict(zip(nodes, oracle.read_batch(nodes)))
    server_final = dict(zip(nodes, server.read_batch(nodes)))
    assert server_final == final, f"seed {seed}: reads diverge from oracle"

    for client in clients.values():
        if client.sub_batch is None:
            continue
        tag = f"seed {seed} {client.name}:"
        assert_contiguous([n.stamp for n in client.seen], tag=tag)
        per_ego = {}
        for n in client.seen:
            per_ego.setdefault(n.ego, []).append(n.value)
        for ego in client.nodes:
            expected = [
                value
                for index, value in history[ego]
                if index >= client.sub_batch
            ]
            got = per_ego.get(ego, [])
            assert got == expected, (
                f"{tag} ego {ego!r} delivered {got}, oracle transitions "
                f"{expected} (subscribed at batch {client.sub_batch})"
            )
            if expected:
                assert got[-1] == final[ego]
    server.close()


@pytest.mark.parametrize("seed", range(10))
def test_seeded_interleavings_sum(seed):
    run_schedule(seed, Sum(), TupleWindow(1))


@pytest.mark.parametrize("seed", range(3))
def test_seeded_interleavings_mean_windowed(seed):
    run_schedule(seed + 100, Mean(), TupleWindow(2))


def test_resume_without_prior_state_is_gap_error():
    graph = random_graph(12, 40, seed=9)
    query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
    with EAGrServer(
        graph, query, num_shards=3, executor="inprocess",
        overlay_algorithm="identity", dataflow="all_push",
    ) as server:
        with pytest.raises(ResumeGapError):
            server.subscribe("ghost", list(graph.nodes()), resume_from=5)


def test_journal_overflow_resume_raises_gap_error():
    graph = random_graph(12, 40, seed=10)
    query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
    nodes = list(graph.nodes())
    with EAGrServer(
        graph, query, num_shards=3, executor="inprocess",
        overlay_algorithm="vnm_a", journal_capacity=4,
    ) as server:
        sub = server.subscribe("w", nodes)
        server.write_batch([(n, 1.0) for n in nodes])
        server.drain()
        notes = sub.poll()
        assert len(notes) > 4  # enough to overflow a capacity-4 ring
        server.disconnect("w")
        with pytest.raises(ResumeGapError):
            server.subscribe("w", resume_from=0)
        # resuming inside the retained window still works
        horizon = notes[-1].stamp - 4
        resumed = server.subscribe("w", resume_from=horizon)
        assert [n.stamp for n in resumed.poll()] == [
            horizon + 1, horizon + 2, horizon + 3, horizon + 4,
        ]
