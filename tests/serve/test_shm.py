"""Shared-memory serve transport: rings, zero-copy reads, lifecycle.

The crash/restart schedules in ``test_crash_restart.py`` already run on
the shm transport (it is the default for columnar process deployments);
this module covers what those do not: the ring primitive itself, byte
parity between the queue and shm transports, the zero-copy read path and
its fallbacks, segment lifecycle (front-end-owned unlink, no leaks after
close, survival across shard restarts) and the resource-tracker warning
discipline under ``-W error::UserWarning``.
"""

import contextlib
import os
import pickle
import subprocess
import sys
import time

import pytest

from repro.core import statestore
from repro.core.aggregates import Max, Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TimeWindow, TupleWindow
from repro.graph.generators import random_graph
from repro.serve import EAGrServer, ServeError

from tests.serve.faultlib import (
    arm_kill_point,
    assert_no_segments,
    collect,
    disarm,
    kill_shard,
    shm_segment_names,
    wait_dead,
)

pytestmark = pytest.mark.skipif(
    statestore._np is None, reason="shm transport requires numpy"
)


def make_query(window=None, aggregate=None):
    return EgoQuery(aggregate=aggregate or Sum(), window=window or TupleWindow(1))


# ---------------------------------------------------------------------------
# ring primitive
# ---------------------------------------------------------------------------


class TestShmRing:
    def test_fifo_and_wraparound(self):
        from repro.serve.shm import ShmRing

        ring = ShmRing("eagr_test_ring_a", capacity=256, create=True)
        try:
            consumer = ShmRing("eagr_test_ring_a", create=False)
            sent = []
            # far more traffic than capacity: forces many wraparounds
            for round_no in range(50):
                frame = pickle.dumps(("frame", round_no, "x" * (round_no % 40)))
                assert ring.try_push(frame)
                sent.append(frame)
                if round_no % 3 == 2:  # drain a few to advance head
                    while True:
                        got = consumer.try_pop()
                        if got is None:
                            break
                        assert got == sent.pop(0)
            while sent:
                assert consumer.try_pop() == sent.pop(0)
            assert consumer.try_pop() is None
            consumer.close()
        finally:
            ring.unlink()

    def test_backpressure_and_oversize(self):
        from repro.serve.shm import ShmRing

        ring = ShmRing("eagr_test_ring_b", capacity=64, create=True)
        try:
            assert ring.try_push(b"x" * 40)
            assert not ring.try_push(b"y" * 40)  # full: refuse, never drop
            assert ring.try_pop() == b"x" * 40
            assert ring.try_push(b"y" * 40)  # space reclaimed
            with pytest.raises(ValueError):
                ring.try_push(b"z" * 100)  # could never fit
        finally:
            ring.unlink()

    def test_applied_watermark_roundtrip(self):
        from repro.serve.shm import ShmRing

        ring = ShmRing("eagr_test_ring_c", capacity=64, create=True)
        try:
            assert ring.applied() == -1  # worker not booted yet
            peer = ShmRing("eagr_test_ring_c", create=False)
            peer.publish_applied(7, 42)
            assert ring.applied() == 7 and ring.stamp() == 42
            ring.reset()
            assert ring.applied() == -1
            peer.close()
        finally:
            ring.unlink()


# ---------------------------------------------------------------------------
# transport resolution
# ---------------------------------------------------------------------------


class TestTransportResolution:
    def test_auto_prefers_shm_for_columnar_process(self):
        graph = random_graph(10, 28, seed=3)
        with EAGrServer(
            graph, make_query(), num_shards=1, executor="process",
            overlay_algorithm="identity", dataflow="all_push",
        ) as server:
            assert server.transport == "shm"
            assert "transport=shm" in server.describe()

    def test_inprocess_and_forced_queue_stay_on_queue(self):
        graph = random_graph(10, 28, seed=3)
        with EAGrServer(
            graph, make_query(), num_shards=2, executor="inprocess",
            overlay_algorithm="identity", dataflow="all_push",
        ) as server:
            assert server.transport == "queue"
        with EAGrServer(
            graph, make_query(), num_shards=1, executor="process",
            transport="queue",
            overlay_algorithm="identity", dataflow="all_push",
        ) as server:
            assert server.transport == "queue"

    def test_explicit_shm_demands_support(self):
        graph = random_graph(8, 20, seed=5)
        with pytest.raises(ServeError):
            EAGrServer(
                graph, make_query(), num_shards=1, executor="inprocess",
                transport="shm",
            )


# ---------------------------------------------------------------------------
# end-to-end parity and zero-copy reads
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def shm_deployment():
    graph = random_graph(22, 96, seed=51)
    query = make_query()
    server = EAGrServer(
        graph, query, num_shards=2, executor="process",
        overlay_algorithm="vnm_a", reply_timeout=30.0,
    )
    assert server.transport == "shm"
    yield graph, query, server
    names = shm_segment_names(server)
    server.close()
    assert_no_segments(names, tag="module deployment:")


class TestShmServing:
    def test_reads_byte_identical_and_zero_copy(self, shm_deployment):
        graph, query, server = shm_deployment
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        writes = [(n, float(i % 9)) for i, n in enumerate(nodes)] * 5
        before = server.shm_reads
        for start in range(0, len(writes), 24):
            chunk = writes[start : start + 24]
            server.write_batch(chunk)
            single.write_batch(chunk)
        # no drain: the applied watermark alone must give read-your-writes
        assert server.read_batch(nodes) == single.read_batch(nodes)
        assert server.shm_reads > before  # fast path actually served

    def test_notifications_flow_without_write_acks(self, shm_deployment):
        graph, query, server = shm_deployment
        nodes = list(graph.nodes())
        sub = server.subscribe("shm-watcher", nodes)
        server.write_batch([(nodes[0], 512.0)])
        server.drain()
        seen = collect(sub, count=1, timeout=10.0) + sub.poll()
        assert seen and all(n.subscriber == "shm-watcher" for n in seen)
        stamps = [n.stamp for n in seen]
        assert stamps == sorted(stamps)
        server.unsubscribe("shm-watcher")

    def test_server_stats_report_replication_and_transport(self, shm_deployment):
        _graph, _query, server = shm_deployment
        stats = server.server_stats()
        assert stats["transport"] == "shm"
        assert stats["assignment"] == "mincut"
        assert stats["observed_replication_factor"] >= 0.0
        assert stats["partition_epoch"] == 0
        assert stats["replication_factor"] >= 1.0
        assert stats["shm_reads"] > 0
        # per-shard stats keep their shape (one dict per shard)
        assert len(server.stats()) == server.num_shards


def test_time_windows_keep_shard_side_reads():
    """Time-window queries ride the shm transport but never the zero-copy
    read path (reads advance expiry shard-side)."""
    graph = random_graph(14, 40, seed=29)
    query = make_query(window=TimeWindow(5.0))
    single = EAGrEngine(graph, query, overlay_algorithm="identity", dataflow="all_push")
    with EAGrServer(
        graph, query, num_shards=2, executor="process",
        overlay_algorithm="identity", dataflow="all_push",
    ) as server:
        assert server.transport == "shm" and not server._shm_read_ok
        nodes = list(graph.nodes())
        clock = 0.0
        for i in range(6):
            clock += 2.0
            batch = [(n, float(i + 1), clock) for n in nodes[:5]]
            server.write_batch(batch)
            single.write_batch(batch)
        assert server.read_batch(nodes) == single.read_batch(nodes)
        assert server.shm_reads == 0


def test_adaptive_deployments_keep_shard_side_reads():
    """Adaptive shards need the read traffic for their observed-pull
    signal, so zero-copy reads stay off (the ring still carries writes)."""
    graph = random_graph(12, 34, seed=37)
    single = EAGrEngine(graph, make_query(), overlay_algorithm="vnm_a")
    with EAGrServer(
        graph, make_query(), num_shards=2, executor="process",
        overlay_algorithm="vnm_a", adaptive=True,
    ) as server:
        assert server.transport == "shm" and not server._shm_read_ok
        nodes = list(graph.nodes())
        for i in range(4):
            batch = [(n, float(i + 1)) for n in nodes]
            server.write_batch(batch)
            single.write_batch(batch)
        assert server.read_batch(nodes) == single.read_batch(nodes)
        assert server.shm_reads == 0


def test_lattice_aggregate_rides_shm():
    """MAX state (nan-encoded lattice columns) serves zero-copy too."""
    graph = random_graph(14, 40, seed=31)
    query = make_query(aggregate=Max(), window=TupleWindow(2))
    single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
    with EAGrServer(
        graph, query, num_shards=2, executor="process", overlay_algorithm="vnm_a",
    ) as server:
        assert server.transport == "shm"
        nodes = list(graph.nodes())
        for i in range(8):
            batch = [(n, float((i * 7 + j) % 13)) for j, n in enumerate(nodes)]
            server.write_batch(batch)
            single.write_batch(batch)
        assert server.read_batch(nodes) == single.read_batch(nodes)


# ---------------------------------------------------------------------------
# queue-transport regression coverage (the fallback must stay healthy)
# ---------------------------------------------------------------------------


def test_forced_queue_transport_stays_byte_identical():
    graph = random_graph(16, 56, seed=43)
    query = make_query()
    single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
    with EAGrServer(
        graph, query, num_shards=2, executor="process", transport="queue",
        overlay_algorithm="vnm_a",
    ) as server:
        nodes = list(graph.nodes())
        for start in range(0, len(nodes), 6):
            chunk = [(n, 2.5) for n in nodes[start : start + 6]]
            server.write_batch(chunk)
            single.write_batch(chunk)
        server.drain()
        assert server.read_batch(nodes) == single.read_batch(nodes)
        assert server.shm_reads == 0


# ---------------------------------------------------------------------------
# crash/restart on the shm path (re-attach + ring reset)
# ---------------------------------------------------------------------------


def test_crash_restart_reattaches_segments():
    """A killed worker's successor adopts the value segment and the reset
    ring; recovered reads are byte-equal and the zero-copy path still
    serves afterwards — all through the faultlib kill-point harness."""
    graph = random_graph(12, 36, seed=67)
    query = make_query()
    single = EAGrEngine(
        graph, query, overlay_algorithm="identity", dataflow="all_push"
    )
    server = EAGrServer(
        graph, query, num_shards=1, executor="process",
        overlay_algorithm="identity", dataflow="all_push", reply_timeout=30.0,
    )
    names = shm_segment_names(server)
    try:
        assert server.transport == "shm"
        nodes = list(graph.nodes())
        batches = [[(n, float(i + 1)) for n in nodes] for i in range(4)]
        server.write_batch(batches[0])
        single.write_batch(batches[0])
        server.checkpoint()
        arm_kill_point(server, 0, after=1, rng_tag="shm reattach")
        server.write_batch(batches[1])  # applied, then the worker dies
        single.write_batch(batches[1])
        wait_dead(server, 0)
        server.write_batch(batches[2])  # accepted while dead: redo log
        single.write_batch(batches[2])
        disarm(server, 0)
        server.restart_shard(0)
        server.write_batch(batches[3])
        single.write_batch(batches[3])
        before = server.shm_reads
        assert server.read_batch(nodes) == single.read_batch(nodes)
        assert server.shm_reads > before  # fast path healthy post-restart
    finally:
        server.close()
    assert_no_segments(names, tag="crash/restart:")


def test_failed_write_batch_does_not_wedge_zero_copy_reads():
    """A batch that raises shard-side (poison value) must advance the
    processed watermark anyway: later reads answer instead of spinning
    toward the reply timeout, and the failure still surfaces at drain."""
    import time

    graph = random_graph(10, 30, seed=83)
    with EAGrServer(
        graph, make_query(), num_shards=1, executor="process",
        overlay_algorithm="identity", dataflow="all_push", reply_timeout=20.0,
    ) as server:
        nodes = list(graph.nodes())
        server.write_batch([(n, 1.0) for n in nodes])
        server.drain()
        server.write_batch([(nodes[0], "poison")])  # raises in the shard
        started = time.monotonic()
        values = server.read_batch(nodes)  # must not wait out the timeout
        assert time.monotonic() - started < server._reply_timeout / 2
        assert len(values) == len(nodes)
        with pytest.raises(ServeError):
            server.drain()  # the R_ERR surfaces as an async write failure
        assert len(server.read_batch(nodes)) == len(nodes)  # still serving


def test_dead_worker_read_fails_fast_on_shm_path():
    graph = random_graph(10, 30, seed=71)
    server = EAGrServer(
        graph, make_query(), num_shards=1, executor="process",
        overlay_algorithm="identity", dataflow="all_push", reply_timeout=30.0,
    )
    try:
        import time

        nodes = list(graph.nodes())
        server.write_batch([(n, 1.0) for n in nodes])
        server.drain()
        server._executors[0].kill()
        wait_dead(server, 0)
        server.write_batch([(nodes[0], 9.0)])  # parks in outbox/redo log
        started = time.monotonic()
        with pytest.raises((ServeError, RuntimeError)):
            server.read(nodes[0])
        assert time.monotonic() - started < server._reply_timeout / 2
        server.restart_shard(0)
        assert server.read(nodes[0]) is not None
    finally:
        try:
            server.close()
        except (ServeError, RuntimeError):
            pass


# ---------------------------------------------------------------------------
# resource-tracker discipline
# ---------------------------------------------------------------------------


_TRACKER_SCRIPT = """
import sys
from repro.core.aggregates import Sum
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import random_graph
from repro.serve import EAGrServer

graph = random_graph(10, 28, seed=9)
query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
server = EAGrServer(
    graph, query, num_shards=1, executor="process",
    overlay_algorithm="identity", dataflow="all_push",
)
assert server.transport == "shm"
nodes = list(graph.nodes())
server.write_batch([(n, 1.0) for n in nodes])
assert server.read_batch(nodes)
server.restart_shard(0)  # attach-after-create in a fresh worker epoch
server.drain()
server.close()
print("tracker-clean")
"""


def test_no_resource_tracker_warnings_on_clean_shutdown():
    """Boot, restart and close a full shm deployment in a subprocess with
    every UserWarning fatal: a double-registered (or double-unlinked)
    segment would crash the run or leak tracker stderr noise."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, "-W", "error::UserWarning", "-c", _TRACKER_SCRIPT],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    assert "tracker-clean" in result.stdout
    noise = [
        line
        for line in result.stderr.splitlines()
        if "resource_tracker" in line or "KeyError" in line or "leaked" in line
    ]
    assert not noise, noise


# ---------------------------------------------------------------------------
# binary data plane: codec byte-parity and the pickle-free hot path
# ---------------------------------------------------------------------------


def _codec_workload(binary_frames):
    """One seeded write → notify → read workload; returns its observables.

    Single shard so per-subscriber stamp assignment is deterministic
    (with multiple shards the reply drainers race, making cross-shard
    stamp interleaving legitimately order-free on *both* planes).
    """
    import random

    graph = random_graph(20, 80, seed=97)
    query = make_query()
    nodes = list(graph.nodes())
    rng = random.Random(11)
    with EAGrServer(
        graph, query, num_shards=1, executor="process",
        overlay_algorithm="vnm_a", reply_timeout=30.0,
        binary_frames=binary_frames,
    ) as server:
        assert server.transport == "shm"
        assert server.binary_frames is binary_frames
        sub = server.subscribe("parity", nodes)
        notes = []
        for _round in range(10):
            batch = [
                (rng.choice(nodes), float(rng.randrange(50)))
                for _ in range(16)
            ]
            server.write_batch(batch)
            server.drain()  # R_WRITE replies precede the drain ack (FIFO)
            notes.extend(sub.poll())
        reads = server.read_batch(nodes)
        stats = server.server_stats()
    return reads, notes, stats


class TestBinaryDataPlane:
    def test_codec_planes_byte_identical_with_pickle_free_hot_path(self):
        """The tentpole property: the same seeded workload through the
        binary and pickle codecs yields identical reads and identical
        notifications (egos, values, stamps, batch tags) — and the codec
        counters prove the binary run never chose pickle on the
        steady-state write → notify path, while the pickle run never
        chose a binary frame."""
        reads_b, notes_b, stats_b = _codec_workload(True)
        reads_p, notes_p, stats_p = _codec_workload(False)
        assert reads_b == reads_p
        assert notes_b and notes_b == notes_p
        mix_b, mix_p = stats_b["codec_mix"], stats_p["codec_mix"]
        assert mix_b["write_frames_binary"] > 0 and mix_b["notes_binary"] > 0
        assert mix_b["write_frames_pickle"] == 0 and mix_b["notes_pickle"] == 0
        assert mix_b["ingress_bytes"] > 0 and mix_b["egress_bytes"] > 0
        assert mix_p["write_frames_pickle"] > 0 and mix_p["notes_pickle"] > 0
        assert mix_p["write_frames_binary"] == 0 and mix_p["notes_binary"] == 0
        assert stats_b["binary_frames"] and not stats_p["binary_frames"]

    def test_unpackable_batches_fall_back_per_batch(self):
        """A batch failing the packing gate (non-float value) rides the
        pickle codec; packable batches around it stay binary — results
        match a single engine either way."""
        graph = random_graph(12, 36, seed=53)
        query = make_query()
        single = EAGrEngine(
            graph, query, overlay_algorithm="identity", dataflow="all_push"
        )
        with EAGrServer(
            graph, query, num_shards=1, executor="process",
            overlay_algorithm="identity", dataflow="all_push",
            binary_frames=True,
        ) as server:
            nodes = list(graph.nodes())
            packable = [(n, 1.5) for n in nodes]
            unpackable = [(nodes[0], 2), (nodes[1], True)]  # ints, not floats
            for batch in (packable, unpackable, packable):
                server.write_batch(batch)
                server.drain()
                single.write_batch(batch)
            assert server.read_batch(nodes) == single.read_batch(nodes)
            mix = server.server_stats()["codec_mix"]
            assert mix["write_frames_binary"] >= 2
            assert mix["write_frames_pickle"] >= 1

    def test_poll_batch_hands_columnar_frames(self):
        from repro.serve.frames import NoteFrame

        graph = random_graph(14, 44, seed=59)
        with EAGrServer(
            graph, make_query(), num_shards=1, executor="process",
            overlay_algorithm="vnm_a", binary_frames=True,
        ) as server:
            nodes = list(graph.nodes())
            sub = server.subscribe("columnar", nodes)
            for value in (3.0, 4.0):
                server.write_batch([(n, value) for n in nodes])
                server.drain()
            items = sub.poll_batch()
            assert items and all(i.__class__ is NoteFrame for i in items)
            notes = [n for item in items for n in item.notifications()]
            stamps = [n.stamp for n in notes]
            assert stamps == list(range(1, len(notes) + 1))  # contiguous
            # interleaved get()/poll_batch() never skips or reorders
            server.write_batch([(n, 9.0) for n in nodes])
            server.drain()
            first = sub.get(timeout=10.0)
            assert first is not None and first.stamp == stamps[-1] + 1
            rest = sub.poll_batch()
            tail = [
                n
                for item in rest
                for n in (
                    item.notifications() if item.__class__ is NoteFrame else [item]
                )
            ]
            got = [first.stamp] + [n.stamp for n in tail]
            assert got == list(range(stamps[-1] + 1, stamps[-1] + 1 + len(got)))
            server.unsubscribe("columnar")

    def test_resume_slices_binary_journal_frames(self):
        """A reconnect whose ``resume_from`` lands *inside* a journaled
        NoteFrame replays exactly the frame's suffix — same stamps, same
        values as the per-object plane would have kept."""
        graph = random_graph(12, 36, seed=61)
        with EAGrServer(
            graph, make_query(), num_shards=1, executor="inprocess",
            overlay_algorithm="identity", dataflow="all_push",
            binary_frames=True,
        ) as server:
            nodes = list(graph.nodes())
            sub = server.subscribe("resumer", nodes)
            server.write_batch([(n, 5.0) for n in nodes])
            server.drain()
            seen = sub.poll()
            assert seen
            cut = seen[len(seen) // 2].stamp
            server.disconnect("resumer")
            server.write_batch([(n, 6.0) for n in nodes])
            server.drain()
            resumed = server.subscribe("resumer", resume_from=cut)
            replayed = resumed.poll()
            stamps = [n.stamp for n in replayed]
            assert stamps == list(range(cut + 1, cut + 1 + len(stamps)))
            # the pre-disconnect suffix replays with its original values
            for note in seen[len(seen) // 2 + 1 :]:
                assert replayed[stamps.index(note.stamp)] == note


class TestWaitAppliedLiveness:
    """``_wait_applied`` (the shm read path's watermark wait) must never
    outlive its worker: a death mid-wait fails fast with ServeError, far
    inside ``reply_timeout``, and a worker that applied everything
    before exiting still serves the completed columns."""

    def test_dead_worker_fails_fast_not_at_reply_timeout(self):
        graph = random_graph(18, 60, seed=61)
        server = EAGrServer(
            graph, make_query(), num_shards=1, executor="process",
            overlay_algorithm="vnm_a", reply_timeout=60.0,
        )
        try:
            assert server.transport == "shm"
            nodes = list(graph.nodes())
            server.write_batch([(n, 1.0) for n in nodes])
            server.drain()
            # Simulate a submitted-but-never-applied batch, then kill the
            # worker mid-wait: the liveness check must end the spin long
            # before the 60s reply deadline would.
            kill_shard(server, 0)
            server._batch_no[0] += 1
            start = time.monotonic()
            with pytest.raises(ServeError, match="died before applying"):
                server._wait_applied(0)
            assert time.monotonic() - start < 10.0
            server._batch_no[0] -= 1
        finally:
            with contextlib.suppress(ServeError):
                server.close()

    def test_applied_then_exited_columns_still_serve(self):
        graph = random_graph(18, 60, seed=62)
        server = EAGrServer(
            graph, make_query(), num_shards=1, executor="process",
            overlay_algorithm="vnm_a", reply_timeout=60.0,
        )
        try:
            nodes = list(graph.nodes())
            server.write_batch([(n, 4.0) for n in nodes])
            server.drain()  # watermark covers every batch
            kill_shard(server, 0)
            # target already applied: the wait is a no-op even though the
            # worker is gone
            server._wait_applied(0)
        finally:
            with contextlib.suppress(ServeError):
                server.close()

    def test_kill_point_mid_write_read_raises_promptly(self):
        """End to end: the worker dies on *receiving* a batch; a read
        behind that batch surfaces ServeError promptly instead of
        hanging toward the reply timeout."""
        graph = random_graph(18, 60, seed=63)
        server = EAGrServer(
            graph, make_query(), num_shards=1, executor="process",
            overlay_algorithm="vnm_a", reply_timeout=60.0,
        )
        try:
            nodes = list(graph.nodes())
            server.write_batch([(n, 1.0) for n in nodes])
            server.drain()
            arm_kill_point(server, 0, before=1)
            server.write_batch([(nodes[0], 9.0)])
            wait_dead(server, 0)
            start = time.monotonic()
            # the shm fast path raises ServeError from _wait_applied; a
            # death noticed before the wait falls back to the queue path,
            # whose executor raises RuntimeError — both are prompt
            with pytest.raises((ServeError, RuntimeError)):
                server.read_batch(nodes)
            assert time.monotonic() - start < 20.0
        finally:
            with contextlib.suppress(ServeError):
                server.close()
