"""The real multi-process deployment shape, kept intentionally small.

Worker processes use the spawn context (full pickle round-trip of the
shard spec), so these tests double as end-to-end evidence for the pickle
surface; they are sized to boot in a couple of seconds on one core.
"""

import pytest

from repro.core.aggregates import Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import random_graph
from repro.serve import EAGrServer, ServeError

from tests.serve.faultlib import collect, wait_dead


class TestLambdaPredicate:
    def test_process_executor_accepts_lambda_predicate(self):
        """The user predicate folds into the partition; no lambda travels."""
        graph = random_graph(12, 40, seed=98)
        keep = set(list(graph.nodes())[:6])
        query = EgoQuery(aggregate=Sum(), predicate=lambda node: node in keep)
        with EAGrServer(
            graph, query, num_shards=2, executor="process",
            overlay_algorithm="identity", dataflow="all_push",
        ) as server:
            assert set(server.reader_shard) == keep
            server.write_batch([(n, 1.0) for n in graph.nodes()])
            values = server.read_batch(sorted(keep, key=repr))
            assert len(values) == len(keep)


@pytest.fixture(scope="module")
def deployment():
    """One 2-shard process server shared by the module (boot is the cost)."""
    graph = random_graph(24, 110, seed=95)
    query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
    server = EAGrServer(
        graph,
        query,
        num_shards=2,
        executor="process",
        queue_depth=4,
        overlay_algorithm="vnm_a",
    )
    yield graph, query, server
    server.close()


class TestProcessDeployment:
    def test_reads_byte_identical_to_single_engine(self, deployment):
        graph, query, server = deployment
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        writes = [(n, float(i % 7)) for i, n in enumerate(nodes)] * 4
        for start in range(0, len(writes), 16):
            chunk = writes[start : start + 16]
            server.write_batch(chunk)
            single.write_batch(chunk)
        server.drain()
        assert server.read_batch(nodes) == single.read_batch(nodes)

    def test_subscription_across_process_boundary(self, deployment):
        graph, query, server = deployment
        nodes = list(graph.nodes())
        sub = server.subscribe("remote-watcher", nodes)
        assert set(sub.snapshot) == set(nodes)
        before = dict(sub.snapshot)
        server.write_batch([(nodes[0], 123.0)])
        server.drain()
        # The reply stream is FIFO per shard and the drain replies trail
        # the write notices, so at least one notification is already
        # queued; collect() makes the wait condition-based regardless.
        seen = collect(sub, count=1, timeout=10.0) + sub.poll()
        assert all(n.subscriber == "remote-watcher" for n in seen)
        stamps = [n.stamp for n in seen]
        assert stamps == sorted(stamps)
        changed = {n.ego for n in seen}
        assert changed  # the write moved at least one ego
        for n in seen:
            assert n.value != before.get(n.ego)
        server.unsubscribe("remote-watcher")

    def test_backpressure_bounded_queue_no_loss(self, deployment):
        graph, query, server = deployment
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        nodes = list(graph.nodes())
        # Blast many small batches at a depth-4 queue: some flushes must
        # coalesce or block, none may drop.
        writes = [(n, float(i % 11)) for i, n in enumerate(nodes)] * 30
        for start in range(0, len(writes), 8):
            chunk = writes[start : start + 8]
            server.write_batch(chunk)
            single.write_batch(chunk)
        server.drain()
        assert server.read_batch(nodes) == single.read_batch(nodes)
        stats = server.stats()
        assert sum(s["writes"] for s in stats) == server.writes_delivered

    def test_dead_worker_surfaces_instead_of_hanging(self):
        """A killed shard worker turns into an error, not an infinite hang —
        and restart_shard() then recovers every accepted write from the
        redo log, so the failure window costs availability, not data."""
        graph = random_graph(10, 30, seed=97)
        query = EgoQuery(aggregate=Sum())
        single = EAGrEngine(
            graph, query, overlay_algorithm="identity", dataflow="all_push"
        )
        nodes = list(graph.nodes())
        server = EAGrServer(
            graph, query, num_shards=1, executor="process", queue_depth=1,
            overlay_algorithm="identity", dataflow="all_push",
            reply_timeout=30.0,
        )
        try:
            ex = server._executors[0]
            ex._process.terminate()
            ex._process.join(timeout=10.0)
            accepted = []
            with pytest.raises(RuntimeError):
                for _ in range(50):  # fill the dead queue, then submit blocks
                    batch = [(n, 1.0) for n in nodes]
                    server.write_batch(batch)
                    accepted.append(batch)
                    server.flush()
            # recovery: rebuild the worker, replay the redo log, serve again
            server.restart_shard(0)
            for batch in accepted:
                single.write_batch(batch)
            server.drain()
            assert server.read_batch(nodes) == single.read_batch(nodes)
        finally:
            # Must not hang; may surface the lost writes as ServeError.
            try:
                server.close()
            except ServeError:
                pass

    def test_clean_shutdown_boots_again(self):
        graph = random_graph(12, 40, seed=96)
        query = EgoQuery(aggregate=Sum())
        with EAGrServer(
            graph, query, num_shards=2, executor="process",
            overlay_algorithm="identity", dataflow="all_push",
        ) as server:
            server.write_batch([(n, 1.0) for n in graph.nodes()])
            values = server.read_batch(list(graph.nodes()))
            assert len(values) == 12
        # exiting the context manager closed it; executors are stopped
        assert all(not ex.alive() for ex in server._executors)
        with pytest.raises(RuntimeError):
            server.read("anything")
