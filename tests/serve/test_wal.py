"""Unit tests for the whole-server write-ahead log (``repro.serve.wal``).

Covers the storage layer in isolation — CRC framing, torn-tail
truncation, silent corruption, segment rotation, checkpoint-gated
compaction and its crash windows, fsync fail-stop poisoning, the
single-writer flock — plus the recovery-idempotence property the server
relies on: **double-replaying any WAL prefix's redo suffix into a shard
is a no-op** (same values, same write stamp, zero re-derived notices).

Everything here is in-process: crash points run in *raise* mode
(:class:`WalCrash`), and at-rest disk faults are injected with
``faultlib.shear_tail`` / ``faultlib.flip_byte`` after the writer is
closed.  The kill -9 end of the spectrum lives in
``test_wal_recovery.py``.
"""

import io
import os
import random

import pytest

from repro.core.aggregates import Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import random_graph
from repro.serve import EAGrServer
from repro.serve.shard import ShardSpec
from repro.serve.wal import (
    WalCrash,
    WalError,
    WalLockedError,
    WalState,
    WalTailer,
    WriteAheadLog,
    encode_frame,
    list_segments,
    read_frame,
)

from tests.serve.faultlib import flip_byte, shear_tail, wal_files


class FakeCheckpoint:
    """Stand-in for :class:`ShardCheckpoint` — folding a ``C`` record only
    consults ``shard_id`` is irrelevant and ``applied_through`` gates the
    redo truncation, so this is all the storage layer needs."""

    def __init__(self, applied_through: int) -> None:
        self.applied_through = applied_through

    def __eq__(self, other) -> bool:  # records pickle-round-trip in tests
        return (
            isinstance(other, FakeCheckpoint)
            and other.applied_through == self.applied_through
        )

    def __repr__(self) -> str:
        return f"FakeCheckpoint({self.applied_through})"


def fold_wal(directory):
    """Independent re-fold of a log directory (never trusts the writer's
    in-memory mirror)."""
    state = WalState()
    for _index, path in list_segments(directory):
        with open(path, "rb") as fh:
            while True:
                try:
                    record = read_frame(fh)
                except WalError:
                    break
                if record is None:
                    break
                state.fold(record)
    return state


def state_digest(state):
    """The comparable essence of a :class:`WalState` (checkpoints by
    their truncation point — the objects carry no ``__eq__``)."""
    return {
        "num_shards": state.num_shards,
        "reader_shard": dict(state.reader_shard),
        "clock": state.clock,
        "wal_seq": state.wal_seq,
        "batch_no": dict(state.batch_no),
        "covered": dict(state.covered),
        "checkpoints": {
            shard: ck.applied_through
            for shard, ck in state.checkpoints.items()
        },
        "redo": {k: list(v) for k, v in state.redo.items()},
        "rounds": {k: list(v) for k, v in state.rounds.items()},
        "watches": state.watches,
    }


def sample_records(rounds=6):
    """A well-formed little record stream: META, a subscription, then
    alternating accepted rounds and batch assignments, one checkpoint."""
    records = [
        ("META", {"num_shards": 2, "reader_shard": {"a": 0, "b": 1}}),
        ("S", "watcher", 0, ["a"], 0),
        ("S", "watcher", 1, ["b"], 0),
    ]
    seq = 0
    batch = {0: 0, 1: 0}
    for index in range(rounds):
        seq += 1
        shard = index % 2
        records.append(
            ("W", seq, {shard: [("a" if shard == 0 else "b", 1.0, seq)]}, float(seq))
        )
        batch[shard] += 1
        records.append(("B", shard, batch[shard], seq))
        if index == rounds // 2:
            records.append(("C", shard, FakeCheckpoint(batch[shard])))
    return records


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def test_frame_round_trip():
    record = ("W", 7, {0: [("n", 1.5, 3)]}, 3.0)
    fh = io.BytesIO(encode_frame(record))
    assert read_frame(fh) == record
    assert read_frame(fh) is None  # clean EOF


@pytest.mark.parametrize("cut", [1, 3, 5])
def test_frame_torn_payload_detected(cut):
    data = encode_frame(("S", "w", 0, ["a"], 0))
    fh = io.BytesIO(data[:-cut])
    with pytest.raises(WalError):
        read_frame(fh)


def test_frame_corruption_detected():
    data = bytearray(encode_frame(("U", "w", None)))
    data[-1] ^= 0xFF
    with pytest.raises(WalError, match="CRC"):
        read_frame(io.BytesIO(bytes(data)))


# ---------------------------------------------------------------------------
# append / recover
# ---------------------------------------------------------------------------


def test_reopen_folds_identical_state(tmp_path):
    wal = WriteAheadLog(str(tmp_path))
    for record in sample_records():
        wal.append(record)
    wal.sync()
    before = state_digest(wal.state)
    wal.close()

    reopened = WriteAheadLog(str(tmp_path))
    assert reopened.recovered
    assert state_digest(reopened.state) == before
    assert state_digest(fold_wal(str(tmp_path))) == before
    reopened.close()


def test_torn_tail_truncated_then_appendable(tmp_path):
    records = sample_records()
    wal = WriteAheadLog(str(tmp_path))
    for record in records:
        wal.append(record)
    wal.close()

    # Tear a few bytes off the final frame: recovery must keep exactly
    # the intact prefix and stay writable.
    (segment,) = wal_files(str(tmp_path))
    shear_tail(segment, 3)
    reopened = WriteAheadLog(str(tmp_path))
    prefix = WalState()
    for record in records[:-1]:
        prefix.fold(record)
    assert state_digest(reopened.state) == state_digest(prefix)

    reopened.append(records[-1], sync=True)
    after = state_digest(reopened.state)
    reopened.close()
    assert state_digest(fold_wal(str(tmp_path))) == after


def test_crc_corruption_drops_tail_frame(tmp_path):
    records = sample_records()
    wal = WriteAheadLog(str(tmp_path))
    for record in records:
        wal.append(record)
    wal.close()

    (segment,) = wal_files(str(tmp_path))
    flip_byte(segment, -1)  # length prefix still parses; only CRC catches it
    reopened = WriteAheadLog(str(tmp_path))
    prefix = WalState()
    for record in records[:-1]:
        prefix.fold(record)
    assert state_digest(reopened.state) == state_digest(prefix)
    reopened.close()


def test_rotation_spreads_segments_and_recovers(tmp_path):
    wal = WriteAheadLog(str(tmp_path), segment_bytes=256)
    records = sample_records(rounds=20)
    for record in records:
        wal.append(record)
    wal.sync()
    digest = state_digest(wal.state)
    assert len(wal_files(str(tmp_path))) > 1
    assert wal.total_bytes() == sum(
        os.path.getsize(path) for path in wal_files(str(tmp_path))
    )
    wal.close()

    reopened = WriteAheadLog(str(tmp_path), segment_bytes=256)
    assert state_digest(reopened.state) == digest
    reopened.close()


def test_rollback_record_restores_pending_round(tmp_path):
    wal = WriteAheadLog(str(tmp_path))
    wal.append(("META", {"num_shards": 1, "reader_shard": {"a": 0}}))
    wal.append(("W", 1, {0: [("a", 2.0, 1)]}, 1.0))
    wal.append(("B", 0, 1, 1))
    assert wal.state.redo[0] == [(1, [("a", 2.0, 1)])]
    wal.append(("RB", 0, 1))  # the submit was refused: undo the assignment
    assert wal.state.redo[0] == []
    assert wal.state.batch_no[0] == 0
    assert wal.state.pending_items(0) == [("a", 2.0, 1)]
    # The same stream must fold identically from disk.
    wal.close()
    reopened = WriteAheadLog(str(tmp_path))
    assert reopened.state.pending_items(0) == [("a", 2.0, 1)]
    reopened.close()


def test_mismatched_rollback_is_structural_error():
    state = WalState()
    state.fold(("META", {"num_shards": 1, "reader_shard": {}}))
    with pytest.raises(WalError, match="rollback"):
        state.fold(("RB", 0, 3))


# ---------------------------------------------------------------------------
# compaction
# ---------------------------------------------------------------------------


def checkpointed_wal(tmp_path, **kwargs):
    """A WAL whose every shard has a checkpoint (compaction-eligible)."""
    wal = WriteAheadLog(str(tmp_path), **kwargs)
    for record in sample_records(rounds=10):
        wal.append(record)
    wal.append(("C", 0, FakeCheckpoint(wal.state.batch_no.get(0, 0))))
    wal.append(("C", 1, FakeCheckpoint(wal.state.batch_no.get(1, 0))))
    wal.sync()
    return wal


def test_compaction_folds_to_single_snapshot_segment(tmp_path):
    wal = checkpointed_wal(tmp_path, segment_bytes=256)
    digest = state_digest(wal.state)
    assert len(wal_files(str(tmp_path))) > 1
    assert wal.maybe_compact(force=True)
    files = wal_files(str(tmp_path))
    assert len(files) == 1
    with open(files[0], "rb") as fh:
        assert read_frame(fh)[0] == "SNAP"

    # The log stays appendable after compaction, and recovery folds
    # snapshot + suffix back to the same state.
    wal.append(("W", wal.state.wal_seq + 1, {0: [("a", 9.0, 99)]}, 99.0))
    wal.sync()
    wal.close()
    reopened = WriteAheadLog(str(tmp_path))
    assert reopened.state.wal_seq == digest["wal_seq"] + 1
    assert reopened.state.clock == 99.0
    reopened.close()


def test_compaction_gates(tmp_path):
    wal = WriteAheadLog(str(tmp_path), compact_min_bytes=1 << 20)
    for record in sample_records(rounds=4):
        wal.append(record)
    # Not every shard has a checkpoint yet: even force refuses (a
    # snapshot would still drag the full redo history along).
    assert not wal.maybe_compact(force=True)
    wal.append(("C", 0, FakeCheckpoint(wal.state.batch_no.get(0, 0))))
    wal.append(("C", 1, FakeCheckpoint(wal.state.batch_no.get(1, 0))))
    # All checkpointed but below the size floor: only force compacts.
    assert not wal.maybe_compact()
    assert wal.maybe_compact(force=True)
    wal.close()


@pytest.mark.parametrize("window", ["before_replace", "after_replace"])
def test_crash_mid_compaction_loses_nothing(tmp_path, window):
    wal = checkpointed_wal(
        tmp_path, segment_bytes=256, faults={"crash_in_compact": window}
    )
    digest = state_digest(wal.state)
    with pytest.raises(WalCrash):
        wal.maybe_compact(force=True)
    wal.close()  # the crashed process's flock is gone either way

    reopened = WriteAheadLog(str(tmp_path), segment_bytes=256)
    assert state_digest(reopened.state) == digest
    # No stray compaction temp survives recovery, and the directory is
    # unambiguous: after the rename the snapshot is the base (older
    # segments deleted); before it the old segments are authoritative.
    assert not [
        name for name in os.listdir(str(tmp_path)) if name.endswith(".tmp")
    ]
    files = wal_files(str(tmp_path))
    if window == "after_replace":
        assert len(files) == 1
        with open(files[0], "rb") as fh:
            assert read_frame(fh)[0] == "SNAP"
    reopened.append(("W", digest["wal_seq"] + 1, {0: []}, 0.0), sync=True)
    reopened.close()


# ---------------------------------------------------------------------------
# fault seams
# ---------------------------------------------------------------------------


def test_fsync_failure_poisons_fail_stop(tmp_path):
    wal = WriteAheadLog(str(tmp_path), faults={"fsync_error_after": 1})
    with pytest.raises(WalError, match="fsync failed"):
        wal.append(("META", {"num_shards": 1, "reader_shard": {}}), sync=True)
    # The log must refuse further writes, not degrade silently.
    with pytest.raises(WalError, match="poisoned"):
        wal.append(("U", "w", None))
    with pytest.raises(WalError, match="poisoned"):
        wal.sync()
    wal.close()


def test_torn_append_fault_truncates_on_recovery(tmp_path):
    records = sample_records()
    wal = WriteAheadLog(str(tmp_path), faults={"torn_append_at": 3})
    wal.append(records[0])
    wal.append(records[1])
    with pytest.raises(WalCrash, match="torn"):
        wal.append(records[2])
    wal.close()

    reopened = WriteAheadLog(str(tmp_path))
    prefix = WalState()
    prefix.fold(records[0])
    prefix.fold(records[1])
    assert state_digest(reopened.state) == state_digest(prefix)
    reopened.close()


def test_writer_lock_is_exclusive(tmp_path):
    wal = WriteAheadLog(str(tmp_path))
    with pytest.raises(WalLockedError):
        WriteAheadLog(str(tmp_path))
    wal.close()  # dropping the flock is the hand-off signal
    successor = WriteAheadLog(str(tmp_path))
    successor.close()


def test_closed_wal_refuses_appends(tmp_path):
    wal = WriteAheadLog(str(tmp_path))
    wal.close()
    wal.close()  # idempotent
    with pytest.raises(WalError, match="closed"):
        wal.append(("U", "w", None))


# ---------------------------------------------------------------------------
# tailing
# ---------------------------------------------------------------------------


def test_tailer_follows_appends_and_waits_on_torn_tail(tmp_path):
    records = sample_records()
    wal = WriteAheadLog(str(tmp_path))
    for record in records[:3]:
        wal.append(record)
    wal.sync()
    tailer = WalTailer(str(tmp_path))
    assert tailer.poll() == records[:3]
    assert tailer.poll() == []
    for record in records[3:]:
        wal.append(record)
    wal.sync()
    assert tailer.poll() == records[3:]
    wal.close()

    # A torn frame at the newest segment's tail is an append in
    # progress: the tailer waits rather than truncating (it does not
    # own the log), and resumes cleanly once the frame completes.
    frame = encode_frame(("U", "w", None))
    (segment,) = wal_files(str(tmp_path))
    with open(segment, "ab") as fh:
        fh.write(frame[: len(frame) // 2])
    assert tailer.poll() == []
    with open(segment, "ab") as fh:
        fh.write(frame[len(frame) // 2:])
    assert tailer.poll() == [("U", "w", None)]


def test_tailer_crosses_segment_rotation(tmp_path):
    wal = WriteAheadLog(str(tmp_path), segment_bytes=256)
    tailer = WalTailer(str(tmp_path))
    records = sample_records(rounds=20)
    seen = []
    for record in records:
        wal.append(record)
        seen.extend(tailer.poll())
    wal.sync()
    seen.extend(tailer.poll())
    assert len(wal_files(str(tmp_path))) > 1
    assert seen == records
    wal.close()


# ---------------------------------------------------------------------------
# the recovery-idempotence property (satellite: double replay is a no-op)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 11, 29, 47])
def test_double_replay_of_redo_suffix_is_noop(tmp_path, seed):
    """Fold a real server's WAL after a simulated crash, replay each
    shard's redo suffix into a fresh :class:`ShardHost` — then replay it
    *again*.  The second pass must apply zero items, emit zero notices,
    and leave values and the write stamp bit-identical: the idempotence
    the recovery path (and any crash *during* recovery) leans on.
    """
    graph = random_graph(12, 40, seed=5)
    query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
    nodes = list(graph.nodes())
    rng = random.Random(seed)
    wal_dir = str(tmp_path / "wal")

    server = EAGrServer(
        graph,
        query,
        num_shards=2,
        executor="inprocess",
        overlay_algorithm="identity",
        dataflow="all_push",
        wal_dir=wal_dir,
        checkpoint_interval=1000,  # manual checkpoints only
    )
    total = 8 + rng.randrange(6)
    checkpoint_at = rng.randrange(total)
    batches = []
    for index in range(total):
        batch = [
            (rng.choice(nodes), float(rng.randint(1, 9))) for _ in range(3)
        ]
        server.write_batch(batch)
        batches.append(batch)
        if index == checkpoint_at:
            server.drain()
            server.checkpoint()
    server.drain()
    expected = dict(zip(nodes, server.read_batch(nodes)))
    # Simulated kill -9: abandon everything except the flock (released so
    # this process can re-open the directory).
    server._stop_flusher.set()
    server._flusher.join(timeout=5)
    server._wal.close()
    del server

    state = fold_wal(wal_dir)
    assert state.num_shards == 2
    for shard_id in range(2):
        readers = frozenset(
            node
            for node, shard in state.reader_shard.items()
            if shard == shard_id
        )
        shard_nodes = [node for node in nodes if node in readers]
        spec = ShardSpec(
            graph,
            query,
            shard_id=shard_id,
            num_shards=2,
            readers=readers,
            checkpoint=state.checkpoints.get(shard_id),
            merge_after=state.batch_no.get(shard_id, 0),
        )
        host = spec.build()
        redo = state.redo.get(shard_id, [])
        for batch_no, items in redo:
            host.apply_write_batch(batch_no, items)
        reads = host.engine.read_batch(shard_nodes)
        assert reads == [expected[node] for node in shard_nodes]
        stamp = host.engine.runtime.stamp
        applied = host.applied_through
        for batch_no, items in redo:  # the double replay
            count, notices = host.apply_write_batch(batch_no, items)
            assert count == 0
            assert notices == []
        assert host.engine.runtime.stamp == stamp
        assert host.applied_through == applied
        assert host.engine.read_batch(shard_nodes) == reads
