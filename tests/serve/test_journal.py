"""NotificationLog bounds, eviction, resume-gap and durability semantics.

The ring log is the resume window: these tests pin down exactly when a
``resume_from`` is answerable (gap-free suffix retained) versus when it
must raise :class:`ResumeGapError`, and that the disk-backed variant
round-trips through close/reopen — including a crash that tears the last
append frame — without silently dropping or duplicating entries.
"""

import os
import pickle

import pytest

from repro.serve import EAGrServer, NotificationLog, ResumeGapError
from repro.serve.journal import subscriber_log_path
from repro.serve.messages import Notification

from repro.core.aggregates import Sum
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import random_graph


def note(stamp, ego="e", value=None, subscriber="s"):
    return Notification(
        subscriber=subscriber,
        ego=ego,
        value=float(stamp) if value is None else value,
        stamp=stamp,
        shard=0,
        batch=stamp,
    )


class TestRingBounds:
    def test_overflow_evicts_oldest_and_moves_horizon(self):
        log = NotificationLog(capacity=3)
        for stamp in range(1, 6):
            log.append(note(stamp))
        assert len(log) == 3
        assert log.first_stamp == 3 and log.last_stamp == 5
        assert log.evicted_through == 2
        assert [n.stamp for n in log.replay(2)] == [3, 4, 5]

    def test_resume_behind_horizon_raises_not_gaps(self):
        log = NotificationLog(capacity=2)
        for stamp in range(1, 6):
            log.append(note(stamp))
        with pytest.raises(ResumeGapError):
            log.replay(1)  # stamps 2..3 are gone; silence would gap
        assert [n.stamp for n in log.replay(3)] == [4, 5]

    def test_resume_ahead_of_log_raises(self):
        log = NotificationLog(capacity=4)
        log.append(note(1))
        with pytest.raises(ResumeGapError):
            log.replay(7)  # the log never saw stamp 7: stamps would regress

    def test_resume_at_last_stamp_is_empty_not_error(self):
        log = NotificationLog(capacity=4)
        for stamp in (1, 2):
            log.append(note(stamp))
        assert log.replay(2) == []

    def test_truncate_releases_prefix_and_forbids_older_resume(self):
        log = NotificationLog(capacity=10)
        for stamp in range(1, 7):
            log.append(note(stamp))
        assert log.truncate(4) == 4
        assert [n.stamp for n in log.replay(4)] == [5, 6]
        with pytest.raises(ResumeGapError):
            log.replay(3)

    def test_non_monotone_append_rejected(self):
        log = NotificationLog(capacity=4)
        log.append(note(5))
        with pytest.raises(ValueError):
            log.append(note(5))


class TestDiskBacking:
    def test_round_trip_through_reopen(self, tmp_path):
        path = str(tmp_path / "sub.journal")
        log = NotificationLog(capacity=8, path=path)
        for stamp in range(1, 6):
            log.append(note(stamp))
        log.truncate(2)
        log.close()

        reloaded = NotificationLog(capacity=8, path=path)
        assert [n.stamp for n in reloaded.replay(2)] == [3, 4, 5]
        assert reloaded.evicted_through == 2
        with pytest.raises(ResumeGapError):
            reloaded.replay(1)
        # stamps continue where the dead process stopped
        reloaded.append(note(6))
        assert reloaded.last_stamp == 6
        reloaded.close()

    def test_capacity_enforced_across_reload(self, tmp_path):
        path = str(tmp_path / "sub.journal")
        log = NotificationLog(capacity=3, path=path)
        for stamp in range(1, 8):
            log.append(note(stamp))
        log.close()
        reloaded = NotificationLog(capacity=3, path=path)
        assert [n.stamp for n in reloaded.replay(4)] == [5, 6, 7]
        assert reloaded.evicted_through == 4
        reloaded.close()

    def test_torn_tail_frame_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / "sub.journal")
        log = NotificationLog(capacity=8, path=path)
        for stamp in (1, 2, 3):
            log.append(note(stamp))
        log.close()
        # Crash mid-append: a torn half-frame at the tail.
        whole = pickle.dumps(("A", note(4)), protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, "ab") as fh:
            fh.write(whole[: len(whole) // 2])
        reloaded = NotificationLog(capacity=8, path=path)
        assert [n.stamp for n in reloaded.replay(0)] == [1, 2, 3]
        # recovery truncated the garbage: appends after it must survive
        # the NEXT reload instead of hiding behind the torn bytes
        reloaded.append(note(4))
        reloaded.close()
        again = NotificationLog(capacity=8, path=path)
        assert [n.stamp for n in again.replay(0)] == [1, 2, 3, 4]
        again.close()

    def test_compaction_bounds_file_size(self, tmp_path):
        path = str(tmp_path / "sub.journal")
        log = NotificationLog(capacity=4, path=path, compact_every=8)
        for stamp in range(1, 41):
            log.append(note(stamp))
        size = os.path.getsize(path)
        log.close()
        # 40 appends at capacity 4, compacting every 8 frames: the file
        # holds at most one snapshot plus a handful of append frames.
        fat_log_size = 40 * len(pickle.dumps(("A", note(1))))
        assert size < fat_log_size / 2
        reloaded = NotificationLog(capacity=4, path=path)
        assert [n.stamp for n in reloaded.replay(36)] == [37, 38, 39, 40]
        reloaded.close()

    def test_subscriber_log_path_distinct_and_safe(self, tmp_path):
        a = subscriber_log_path(str(tmp_path), "client/1")
        b = subscriber_log_path(str(tmp_path), "client_1")
        assert a != b
        assert os.path.dirname(a) == str(tmp_path)
        assert "/" not in os.path.basename(a).replace(".journal", "")


class TestServerJournalDir:
    """Disk-backed resume must survive a *front-end* restart too."""

    def test_resume_across_server_instances(self, tmp_path):
        graph = random_graph(18, 70, seed=61)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        nodes = list(graph.nodes())
        jdir = str(tmp_path / "journals")

        with EAGrServer(
            graph, query, num_shards=2, executor="inprocess",
            overlay_algorithm="vnm_a", journal_dir=jdir,
        ) as first:
            sub = first.subscribe("client", nodes)
            first.write_batch([(n, 2.0) for n in nodes])
            first.drain()
            seen = sub.poll()
            assert seen
        last_stamp = seen[-1].stamp

        # A brand-new front-end (fresh process in production; state fully
        # reloaded from the journal directory) honors the resume token.
        with EAGrServer(
            graph, query, num_shards=2, executor="inprocess",
            overlay_algorithm="vnm_a", journal_dir=jdir,
        ) as second:
            resumed = second.subscribe(
                "client", nodes, resume_from=seen[2].stamp
            )
            replay = resumed.poll()
            assert [n.stamp for n in replay] == [
                n.stamp for n in seen if n.stamp > seen[2].stamp
            ]
            assert [n.value for n in replay] == [
                n.value for n in seen if n.stamp > seen[2].stamp
            ]
            # and live stamps continue after the reloaded history
            second.write_batch([(nodes[0], 9.0)])
            second.drain()
            fresh = resumed.poll()
            assert fresh
            assert fresh[0].stamp == last_stamp + 1

    def test_unsubscribe_retires_journal_file(self, tmp_path):
        graph = random_graph(10, 30, seed=62)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        jdir = str(tmp_path / "journals")
        with EAGrServer(
            graph, query, num_shards=1, executor="inprocess",
            overlay_algorithm="identity", dataflow="all_push",
            journal_dir=jdir,
        ) as server:
            server.subscribe("client", list(graph.nodes()))
            path = subscriber_log_path(jdir, "client")
            assert os.path.exists(path)
            server.unsubscribe("client")
            assert not os.path.exists(path)
