"""Sacrificial subprocess for the crash-mid-migration kill -9 schedules.

``test_reshard_faults.py`` spawns this script in its own session
(process group), lets it ingest a seeded workload against
``EAGrServer(wal_dir=...)``, then start a live ``reshard()`` with a
process-group SIGKILL armed at one of the migration's fault points —
``pre_checkpoint`` (quiesced, nothing handed over), ``pre_swap``
(checkpoints taken, splice prepared, routing still old) or
``post_swap`` (the WAL ``P`` record is durable, residue not yet
flushed) — or with no fault at all (the migration completes and the
kill lands mid-ingest afterwards).  Front-end, flusher thread and any
spawn workers all die together; the only durable trace is the WAL
directory plus the progress file.

Progress protocol (each line fsynced *before* the action it promises),
a superset of ``wal_driver.py``'s:

* ``["booted", {"recovered": N, "epoch": E}]`` — server constructed.
* ``["subscribed", null]`` — the ``"watcher"`` subscription is live.
* ``["intent", [[node, value], ...]]`` / ``["ack", k]`` — write batches.
* ``["reshard_intent", {"fault": point}]`` — about to call ``reshard``.
* ``["reshard_done", {"epoch": E}]`` — ``reshard`` returned (only when
  no fault was armed; an armed fault point never acks).
* ``["kill", null]`` — about to SIGKILL the process group.

Recovery's obligation: acknowledged batches survive exactly; the
partition epoch lands *entirely before or entirely after* the ``P``
record — old routing for pre-* kills, new routing for post-swap kills —
never a half-migrated hybrid.

Not a test module (no ``test_`` prefix); also imported by the verifier
for :func:`build_env` / :func:`make_plan`, so the workload and the
migration plan are each defined in exactly one place.
"""

import argparse
import json
import os
import random
import signal
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

SUBSCRIBER = "watcher"
NUM_SHARDS = 3
FAULT_POINTS = ("pre_checkpoint", "pre_swap", "post_swap")


def build_env():
    """The deployment every driver phase and the verifying test share."""
    from repro.core.aggregates import Sum
    from repro.core.query import EgoQuery
    from repro.core.windows import TupleWindow
    from repro.graph.generators import random_graph

    graph = random_graph(18, 70, seed=61)
    query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
    return graph, query


def make_batches(seed, count, nodes):
    """Seeded workload, regenerated verbatim by the verifier's oracle."""
    rng = random.Random(seed)
    batches = []
    for _ in range(count):
        batches.append(
            [
                (rng.choice(nodes), float(rng.randint(1, 9)))
                for _ in range(2 + rng.randrange(4))
            ]
        )
    return batches


def make_plan(reader_shard, movers=4):
    """Deterministic migration: first ``movers`` shard-0 readers (by
    repr order) move to the last shard.  Pure function of the routing
    table, so the verifier reconstructs the expected post-swap table
    from the recovered (or freshly computed) pre-swap one."""
    moves = {}
    for node in sorted(reader_shard, key=repr):
        if reader_shard[node] == 0:
            moves[node] = NUM_SHARDS - 1
            if len(moves) >= movers:
                break
    return moves


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--wal-dir", required=True)
    parser.add_argument("--progress", required=True)
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--executor", default="inprocess")
    parser.add_argument("--pre-batches", type=int, default=4)
    parser.add_argument("--post-batches", type=int, default=3)
    parser.add_argument("--checkpoint-interval", type=int, default=100)
    parser.add_argument(
        "--fault-point", choices=FAULT_POINTS + ("none",), default="none"
    )
    args = parser.parse_args()

    graph, query = build_env()
    nodes = sorted(graph.nodes())

    progress = open(args.progress, "a")

    def record(kind, payload=None):
        progress.write(json.dumps([kind, payload]) + "\n")
        progress.flush()
        os.fsync(progress.fileno())

    from repro.serve import EAGrServer

    server = EAGrServer(
        graph,
        query,
        num_shards=NUM_SHARDS,
        executor=args.executor,
        overlay_algorithm="identity",
        dataflow="all_push",
        wal_dir=args.wal_dir,
        checkpoint_interval=args.checkpoint_interval,
        reply_timeout=60.0,
    )
    record(
        "booted",
        {
            "recovered": server.recovered_batches,
            "epoch": server.partition_epoch,
        },
    )
    if not server._wal.recovered:
        server.subscribe(SUBSCRIBER, nodes)
        record("subscribed")

    batches = make_batches(args.seed, args.pre_batches + args.post_batches, nodes)
    acked = 0
    for batch in batches[: args.pre_batches]:
        record("intent", [[node, value] for node, value in batch])
        server.write_batch(batch)
        acked += 1
        record("ack", acked)

    plan = make_plan(server.reader_shard)
    if args.fault_point != "none":
        # The armed fault takes the whole group down from *inside* the
        # migration — front-end mid-protocol, workers mid-boot or
        # mid-teardown.  Nothing after this line runs.
        server.reshard_faults[args.fault_point] = lambda: os.kill(
            0, signal.SIGKILL
        )
    record("reshard_intent", {"fault": args.fault_point})
    server.reshard(plan)
    record("reshard_done", {"epoch": server.partition_epoch})

    for batch in batches[args.pre_batches :]:
        record("intent", [[node, value] for node, value in batch])
        server.write_batch(batch)
        acked += 1
        record("ack", acked)

    # Mid-ingest kill after a completed migration: the new partition's
    # in-flight state is exactly what cold recovery must absorb.
    record("kill")
    os.kill(0, signal.SIGKILL)


if __name__ == "__main__":
    main()
