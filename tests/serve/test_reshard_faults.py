"""Crash-mid-migration: kill -9 at seeded points inside a live reshard.

Each schedule spawns ``reshard_driver.py`` in its own session (process
group) against ``EAGrServer(wal_dir=...)`` and SIGKILLs the whole tree —
front-end and workers — at one of the migration's fault points, or
after the migration completes.  The verifier then cold-boots from the
WAL and holds recovery to the migration's atomicity contract:

* **The partition epoch is all-or-nothing.**  A kill before the WAL
  ``P`` record (``pre_checkpoint``, ``pre_swap``) recovers the *old*
  routing table at epoch 0; a kill after it (``post_swap``, or the
  plain post-migration kill) recovers the *new* table at epoch 1.
  Never a hybrid.
* **Zero lost acknowledged batches**, same as the plain WAL schedules:
  recovered reads equal an oracle replay of a prefix covering every
  acked batch (the single in-flight intent may land either way).
* **Stamp-exact resumption** across the crash: the journal replays
  gap- and duplicate-free and live traffic splices in.

The in-process ``TestWorkerDeathMidMigration`` covers the other half of
the satellite: a *worker* (migration source or target) dying mid-
protocol while the front-end survives — ``reshard`` must surface a
:class:`ServeError`, leave the old partition intact, and let
``restart_shard`` + a retry finish the job.
"""

import json
import signal
import subprocess
import sys

import pytest

from repro.core.engine import EAGrEngine
from repro.serve import EAGrServer, ServeError

from tests.serve import reshard_driver
from tests.serve.faultlib import (
    assert_contiguous,
    assert_subsequence,
    collect,
    kill_shard,
    transitions_by_ego,
)

DRIVER = reshard_driver.__file__

# fault: where the SIGKILL lands; epoch: what recovery must report.
SCHEDULES = [
    dict(id="kill-pre-checkpoint", seed=6001, executor="inprocess",
         fault="pre_checkpoint", epoch=0),
    dict(id="kill-pre-swap", seed=6002, executor="inprocess",
         fault="pre_swap", epoch=0),
    dict(id="kill-post-swap", seed=6003, executor="inprocess",
         fault="post_swap", epoch=1),
    dict(id="kill-after-migration", seed=6004, executor="inprocess",
         fault="none", epoch=1),
    dict(id="kill-pre-swap-proc", seed=6005, executor="process",
         fault="pre_swap", epoch=0),
    dict(id="kill-post-swap-proc", seed=6006, executor="process",
         fault="post_swap", epoch=1),
]


def spawn_driver(tmp_path, sched):
    """One sacrificial run in its own session; returns progress events."""
    progress = tmp_path / "progress.jsonl"
    log_path = tmp_path / "driver.log"
    cmd = [
        sys.executable,
        DRIVER,
        "--wal-dir", str(tmp_path / "wal"),
        "--progress", str(progress),
        "--seed", str(sched["seed"]),
        "--executor", sched["executor"],
        "--fault-point", sched["fault"],
    ]
    with open(log_path, "wb") as log:
        proc = subprocess.Popen(
            cmd, stdout=log, stderr=subprocess.STDOUT, start_new_session=True
        )
        returncode = proc.wait(timeout=120)
    assert returncode == -signal.SIGKILL, (
        f"{sched['id']}: driver exited {returncode} instead of dying by "
        f"SIGKILL:\n{log_path.read_text()}"
    )
    events = []
    with open(progress) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@pytest.mark.parametrize(
    "sched", SCHEDULES, ids=[sched["id"] for sched in SCHEDULES]
)
def test_kill9_mid_migration_recovers(tmp_path, sched):
    tag = f"{sched['id']}:"
    events = spawn_driver(tmp_path, sched)
    kinds = [kind for kind, _payload in events]
    assert kinds[0] == "booted" and events[0][1]["recovered"] == 0
    assert "subscribed" in kinds, f"{tag} driver died before subscribing"
    assert "reshard_intent" in kinds, f"{tag} driver died before resharding"
    if sched["fault"] != "none":
        assert "reshard_done" not in kinds, (
            f"{tag} armed migration fault never fired — the schedule "
            f"degenerated into a plain kill"
        )
    else:
        assert "reshard_done" in kinds and "kill" in kinds

    intents = [
        [(node, value) for node, value in payload]
        for kind, payload in events
        if kind == "intent"
    ]
    acked = sum(1 for kind in kinds if kind == "ack")
    assert acked >= len(intents) - 1

    graph, query = reshard_driver.build_env()
    nodes = sorted(graph.nodes())
    server = EAGrServer(
        graph,
        query,
        num_shards=reshard_driver.NUM_SHARDS,
        executor="inprocess",
        overlay_algorithm="identity",
        dataflow="all_push",
        wal_dir=str(tmp_path / "wal"),
    )
    try:
        # All-or-nothing epoch: the recovered routing table is exactly
        # the pre- or post-swap one the fault point dictates.
        assert server.partition_epoch == sched["epoch"], (
            f"{tag} recovered epoch {server.partition_epoch}, expected "
            f"{sched['epoch']}"
        )
        fresh = EAGrServer(
            graph, query, num_shards=reshard_driver.NUM_SHARDS,
            executor="inprocess", overlay_algorithm="identity",
            dataflow="all_push",
        )
        original = dict(fresh.reader_shard)
        fresh.close()
        expected_table = dict(original)
        if sched["epoch"] == 1:
            expected_table.update(reshard_driver.make_plan(original))
        assert dict(server.reader_shard) == expected_table, (
            f"{tag} recovered a hybrid routing table"
        )

        server.drain()
        reads = server.read_batch(nodes)
        applied = None
        for count in range(len(intents), acked - 1, -1):
            oracle = EAGrEngine(
                graph, query,
                overlay_algorithm="identity", dataflow="all_push",
            )
            for batch in intents[:count]:
                oracle.write_batch(batch)
            if oracle.read_batch(nodes) == reads:
                applied = count
                break
        assert applied is not None, (
            f"{tag} recovered reads match no prefix covering all "
            f"{acked} acknowledged batches"
        )

        # Resumption across the crashed migration: journal replay plus
        # live traffic, contiguous stamps, oracle-true value streams.
        resumed = server.subscribe(reshard_driver.SUBSCRIBER, resume_from=0)
        replayed = resumed.poll()
        extra = [(node, 100.0) for node in nodes[:5]]
        server.write_batch(extra)
        server.drain()
        merged = replayed + collect(resumed, timeout=30)
        assert merged, f"{tag} nothing delivered across crash + recovery"
        assert_contiguous([note.stamp for note in merged], tag=f"{tag}")

        batches = intents[:applied] + [extra]
        oracle = EAGrEngine(
            graph, query, overlay_algorithm="identity", dataflow="all_push"
        )
        history = transitions_by_ego(batches, oracle, nodes)
        final = dict(zip(nodes, oracle.read_batch(nodes)))
        assert dict(zip(nodes, server.read_batch(nodes))) == final, (
            f"{tag} post-recovery reads diverge from the oracle"
        )
        per_ego = {}
        for note in merged:
            per_ego.setdefault(note.ego, []).append(note.value)
        for ego, values in per_ego.items():
            transitions = [value for _index, value in history[ego]]
            assert_subsequence(values, transitions, tag=f"{tag} ego {ego!r}:")
            assert values[-1] == final[ego]
    finally:
        server.close()


class TestWorkerDeathMidMigration:
    @pytest.mark.parametrize("victim", ["source", "target"])
    def test_dead_worker_aborts_cleanly(self, victim):
        graph, query = reshard_driver.build_env()
        nodes = sorted(graph.nodes())
        oracle = EAGrEngine(
            graph, query, overlay_algorithm="identity", dataflow="all_push"
        )
        server = EAGrServer(
            graph, query, num_shards=reshard_driver.NUM_SHARDS,
            executor="inprocess", overlay_algorithm="identity",
            dataflow="all_push",
        )
        try:
            batches = reshard_driver.make_batches(7001, 3, nodes)
            for batch in batches:
                server.write_batch(batch)
                oracle.write_batch(batch)
            server.drain()
            plan = reshard_driver.make_plan(server.reader_shard)
            shard_id = 0 if victim == "source" else reshard_driver.NUM_SHARDS - 1
            before = dict(server.reader_shard)

            def die():
                kill_shard(server, shard_id)

            # The victim dies right as the migration starts quiescing:
            # its checkpoint call must fail, and the abort path must
            # leave the old partition untouched.
            server.reshard_faults["pre_checkpoint"] = die
            with pytest.raises(ServeError):
                server.reshard(plan)
            assert server.reader_shard == before
            assert server.partition_epoch == 0

            del server.reshard_faults["pre_checkpoint"]
            server.restart_shard(shard_id)
            summary = server.reshard(plan)
            assert summary["moved"] == len(plan)
            assert server.partition_epoch == 1
            extra = reshard_driver.make_batches(7002, 2, nodes)
            for batch in extra:
                server.write_batch(batch)
                oracle.write_batch(batch)
            server.drain()
            assert server.read_batch(nodes) == oracle.read_batch(nodes)
        finally:
            server.close()
