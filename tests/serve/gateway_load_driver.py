"""Subprocess driver for the gateway's 1000-subscription acceptance test.

Run as ``python gateway_load_driver.py <config.json>`` against a live
gateway.  The config names the address, the graph's node ids, and the
fleet shape (``connections`` x ``subs_per_conn``).  The driver is a
*real remote client*: it opens that many TCP connections from its own
process, subscribes one stream per subscriber, drives write waves
through the gateway itself, force-drops one connection mid-stream, and
resumes its streams on a fresh connection with their resume tokens.

It prints exactly one JSON line on success::

    {"ok": true, "subscriptions": N, "notes": M, "resumed": K, ...}

and exits non-zero (traceback on stderr) on any gap, duplicate, or
timeout — the parent test only has to parse the line and assert.
"""

import asyncio
import json
import sys
import time


async def drain(stream, want, timeout):
    """Collect exactly ``want`` notifications or die trying."""
    out = []
    deadline = time.monotonic() + timeout
    while len(out) < want:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise AssertionError(
                f"{stream.subscriber}: {len(out)}/{want} notes in {timeout}s"
            )
        note = await stream.get(timeout=min(remaining, 1.0))
        if note is not None:
            out.append(note)
    return out


def mark(label, t0):
    print(f"[driver] {label}: {time.monotonic() - t0:.1f}s", file=sys.stderr)
    return time.monotonic()


async def main(cfg):
    from repro.serve.client import AsyncEAGrClient

    t0 = time.monotonic()
    host, port = cfg["host"], cfg["port"]
    nodes = cfg["nodes"]
    # Watch targets may be a subset of the write targets: an ego with no
    # in-edges never aggregates anything, so subscribing to it would wait
    # forever by (correct) design.  The test passes only notifiable egos.
    sub_nodes = cfg.get("sub_nodes", nodes)
    n_conns = cfg["connections"]
    per_conn = cfg["subs_per_conn"]
    waves1, waves2 = cfg["waves_before"], cfg["waves_after"]

    clients = []
    for i in range(n_conns):
        client = AsyncEAGrClient(host, port, client_id=f"conn{i}")
        await client.connect()
        clients.append(client)

    t0 = mark("connect", t0)
    streams = {}  # subscriber -> (client_index, stream)
    for i, client in enumerate(clients):
        for j in range(per_conn):
            subscriber = f"s{i}-{j}"
            node = sub_nodes[(i * per_conn + j) % len(sub_nodes)]
            stream = await client.subscribe(
                [node], subscriber=subscriber, auto_ack=False
            )
            streams[subscriber] = (i, stream)
    n_subs = len(streams)
    t0 = mark(f"subscribe x{n_subs}", t0)

    writer = AsyncEAGrClient(host, port, client_id="load-writer")
    await writer.connect()
    value = 0.0
    for _wave in range(waves1):
        value += 1.0
        await writer.write_batch([(n, value, value) for n in nodes])

    t0 = mark("write wave 1", t0)
    # every subscriber watches one ego whose value changed every wave
    collected = {}
    results = await asyncio.gather(
        *(drain(stream, waves1, cfg["timeout"]) for _i, stream in streams.values())
    )
    t0 = mark("drain wave 1", t0)
    for (subscriber, (_i, _stream)), notes in zip(streams.items(), results):
        stamps = [n.stamp for n in notes]
        assert stamps == list(range(1, waves1 + 1)), (subscriber, stamps)
        collected[subscriber] = notes

    # --- forced disconnect: cut connection 0 without a goodbye ---------
    victims = {
        subscriber: stream
        for subscriber, (i, stream) in streams.items()
        if i == 0
    }
    tokens = {sub: st.resume_token for sub, st in victims.items()}
    clients[0].drop()

    replacement = AsyncEAGrClient(host, port, client_id="conn0r")
    await replacement.connect()
    resumed = {}
    for subscriber, token in tokens.items():
        resumed[subscriber] = await replacement.subscribe(
            subscriber=subscriber, resume_from=token, auto_ack=False
        )

    for _wave in range(waves2):
        value += 1.0
        await writer.write_batch([(n, value, value) for n in nodes])

    survivors = {
        subscriber: stream
        for subscriber, (i, stream) in streams.items()
        if i != 0
    }
    t0 = mark("disconnect + resume + wave 2", t0)
    results = await asyncio.gather(
        *(drain(s, waves2, cfg["timeout"]) for s in survivors.values()),
        *(drain(s, waves2, cfg["timeout"]) for s in resumed.values()),
    )
    mark("drain wave 2", t0)
    total = waves1 + waves2
    for subscriber, notes in zip(
        list(survivors) + list(resumed), results
    ):
        stamps = [n.stamp for n in collected[subscriber]] + [
            n.stamp for n in notes
        ]
        # gap-free, duplicate-free across the forced disconnect
        assert stamps == list(range(1, total + 1)), (subscriber, stamps)

    notes_total = sum(len(v) for v in collected.values()) + sum(
        len(r) for r in results
    )
    for client in clients[1:] + [writer, replacement]:
        await client.close()
    return {
        "ok": True,
        "subscriptions": n_subs,
        "connections": n_conns + 2,
        "notes": notes_total,
        "resumed": len(resumed),
    }


if __name__ == "__main__":
    with open(sys.argv[1]) as fh:
        config = json.load(fh)
    result = asyncio.run(main(config))
    print(json.dumps(result))
