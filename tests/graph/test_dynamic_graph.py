"""Unit tests for the dynamic graph store."""

import pytest

from repro.graph import DynamicGraph, GraphError, StructureOp


@pytest.fixture
def triangle():
    g = DynamicGraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    return g


class TestNodes:
    def test_add_node(self):
        g = DynamicGraph()
        assert g.add_node(1) is True
        assert 1 in g
        assert g.num_nodes == 1

    def test_add_node_idempotent(self):
        g = DynamicGraph()
        g.add_node(1)
        assert g.add_node(1) is False
        assert g.num_nodes == 1

    def test_remove_node_removes_incident_edges(self, triangle):
        triangle.remove_node("b")
        assert "b" not in triangle
        assert triangle.num_edges == 1  # only c -> a survives
        assert triangle.has_edge("c", "a")

    def test_remove_missing_node_raises(self):
        g = DynamicGraph()
        with pytest.raises(GraphError):
            g.remove_node("ghost")

    def test_len_and_iteration(self, triangle):
        assert len(triangle) == 3
        assert set(triangle.nodes()) == {"a", "b", "c"}

    def test_mixed_node_types(self):
        g = DynamicGraph()
        g.add_edge(1, "one")
        g.add_edge(("tuple", 2), 1)
        assert g.num_nodes == 3


class TestEdges:
    def test_add_edge_creates_endpoints(self):
        g = DynamicGraph()
        assert g.add_edge("x", "y") is True
        assert g.num_nodes == 2
        assert g.has_edge("x", "y")
        assert not g.has_edge("y", "x")

    def test_add_edge_idempotent(self):
        g = DynamicGraph()
        g.add_edge("x", "y")
        assert g.add_edge("x", "y") is False
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = DynamicGraph()
        with pytest.raises(GraphError):
            g.add_edge("x", "x")

    def test_remove_edge(self, triangle):
        triangle.remove_edge("a", "b")
        assert not triangle.has_edge("a", "b")
        assert triangle.num_edges == 2

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_edge("b", "a")

    def test_undirected_edge(self):
        g = DynamicGraph()
        g.add_undirected_edge("u", "v")
        assert g.has_edge("u", "v") and g.has_edge("v", "u")
        assert g.num_edges == 2

    def test_edges_iterator(self, triangle):
        assert set(triangle.edges()) == {("a", "b"), ("b", "c"), ("c", "a")}


class TestNeighbors:
    def test_in_out_neighbors(self, triangle):
        assert triangle.out_neighbors("a") == {"b"}
        assert triangle.in_neighbors("a") == {"c"}
        assert triangle.neighbors("a") == {"b", "c"}

    def test_degrees(self, triangle):
        assert triangle.out_degree("a") == 1
        assert triangle.in_degree("a") == 1

    def test_neighbors_of_missing_node_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.out_neighbors("ghost")
        with pytest.raises(GraphError):
            triangle.in_neighbors("ghost")


class TestAttributes:
    def test_set_get(self, triangle):
        triangle.set_attr("a", "kind", "user")
        assert triangle.get_attr("a", "kind") == "user"

    def test_default(self, triangle):
        assert triangle.get_attr("a", "missing", 42) == 42

    def test_set_on_missing_node_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.set_attr("ghost", "k", 1)


class TestStructureStream:
    def test_listener_receives_events(self):
        g = DynamicGraph()
        events = []
        g.subscribe(events.append)
        g.add_edge("a", "b")
        ops = [e.op for e in events]
        assert ops == [StructureOp.ADD_NODE, StructureOp.ADD_NODE, StructureOp.ADD_EDGE]

    def test_timestamps_monotone(self):
        g = DynamicGraph()
        events = []
        g.subscribe(events.append)
        g.add_edge("a", "b")
        g.remove_edge("a", "b")
        stamps = [e.timestamp for e in events]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_unsubscribe(self):
        g = DynamicGraph()
        events = []
        g.subscribe(events.append)
        g.unsubscribe(events.append)
        g.add_node("a")
        assert events == []

    def test_noop_operations_emit_nothing(self):
        g = DynamicGraph()
        g.add_edge("a", "b")
        events = []
        g.subscribe(events.append)
        g.add_node("a")
        g.add_edge("a", "b")
        assert events == []

    def test_remove_node_emits_edge_removals_first(self, triangle):
        events = []
        triangle.subscribe(events.append)
        triangle.remove_node("a")
        assert events[-1].op == StructureOp.REMOVE_NODE
        assert {e.op for e in events[:-1]} == {StructureOp.REMOVE_EDGE}


class TestConstruction:
    def test_from_edges(self):
        g = DynamicGraph.from_edges([("a", "b"), ("b", "c")])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_copy_is_independent(self, triangle):
        triangle.set_attr("a", "k", 1)
        clone = triangle.copy()
        clone.remove_node("a")
        assert "a" in triangle
        assert triangle.get_attr("a", "k") == 1
        assert "a" not in clone

    def test_copy_preserves_structure(self, triangle):
        clone = triangle.copy()
        assert set(clone.edges()) == set(triangle.edges())
