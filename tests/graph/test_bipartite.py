"""Unit tests for the AG (writer/reader bipartite graph) compiler."""

import pytest

from repro.graph import DynamicGraph, Neighborhood, build_bipartite
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import paper_figure1


@pytest.fixture
def fig1_ag():
    return build_bipartite(paper_figure1(), Neighborhood.in_neighbors())


class TestCompile:
    def test_paper_input_lists(self, fig1_ag):
        assert fig1_ag.inputs("a") == ("c", "d", "e", "f")
        assert fig1_ag.inputs("b") == ("d", "e", "f")
        assert fig1_ag.inputs("g") == ("a", "b", "c", "d", "e", "f")

    def test_paper_edge_count(self, fig1_ag):
        # Figure 2 reports sharing indexes over 35 AG edges... the paper's
        # figure-1 graph as reconstructed here has 4+3+5+5+4+5+6 = 32.
        assert fig1_ag.num_edges == 32

    def test_g_is_reader_but_not_writer(self, fig1_ag):
        # Figure 1(c): "g does not form input to any reader".
        assert "g" in fig1_ag
        assert "g" not in fig1_ag.writers

    def test_writer_out_degrees(self, fig1_ag):
        # d feeds every other node: out-degree 6.
        assert fig1_ag.writer_out_degree["d"] == 6
        assert fig1_ag.writer_out_degree["g"] if "g" in fig1_ag.writer_out_degree else True

    def test_predicate_filters_readers(self):
        g = paper_figure1()
        ag = build_bipartite(
            g, Neighborhood.in_neighbors(), predicate=lambda v: v in ("a", "b")
        )
        assert set(ag.readers) == {"a", "b"}
        assert ag.writers == {"c", "d", "e", "f"}

    def test_empty_neighborhoods_dropped(self):
        g = DynamicGraph.from_edges([("w", "r")])
        g.add_node("island")
        ag = build_bipartite(g, Neighborhood.in_neighbors())
        assert set(ag.readers) == {"r"}

    def test_explicit_reader_universe(self):
        g = paper_figure1()
        ag = build_bipartite(g, Neighborhood.in_neighbors(), readers=["a", "ghost"])
        assert set(ag.readers) == {"a"}

    def test_two_hop_inputs(self):
        chain = DynamicGraph.from_edges([(1, 2), (2, 3)])
        ag = build_bipartite(chain, Neighborhood.in_neighbors(hops=2))
        assert ag.inputs(3) == (1, 2)


class TestStructure:
    def test_input_lists_deduplicated_and_sorted(self):
        ag = BipartiteGraph({"r": ("b", "a", "b")})
        assert ag.inputs("r") == ("a", "b")
        assert ag.num_edges == 2

    def test_mixed_type_node_ids(self):
        ag = BipartiteGraph({"r": (1, "x", (2, 3))})
        assert len(ag.inputs("r")) == 3

    def test_len_and_contains(self, fig1_ag):
        assert len(fig1_ag) == 7
        assert "a" in fig1_ag
        assert "ghost" not in fig1_ag

    def test_determinism(self):
        g = paper_figure1()
        a1 = build_bipartite(g, Neighborhood.in_neighbors())
        a2 = build_bipartite(g, Neighborhood.in_neighbors())
        assert a1.reader_inputs == a2.reader_inputs
