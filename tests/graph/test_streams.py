"""Unit tests for stream events and playback."""

import pytest

from repro.graph import (
    ReadEvent,
    StreamPlayer,
    StructureEvent,
    StructureOp,
    WriteEvent,
    merge_streams,
)


class RecordingSink:
    def __init__(self):
        self.log = []

    def write(self, node, value, timestamp=None):
        self.log.append(("write", node, value))

    def read(self, node):
        self.log.append(("read", node))
        return f"result-{node}"

    def apply_structure_event(self, event):
        self.log.append(("structure", event.op, event.u, event.v))


class TestEvents:
    def test_structure_event_requires_endpoints(self):
        with pytest.raises(ValueError):
            StructureEvent(op=StructureOp.ADD_EDGE, u="a")

    def test_node_event_single_endpoint_ok(self):
        event = StructureEvent(op=StructureOp.ADD_NODE, u="a")
        assert event.v is None

    def test_events_are_frozen(self):
        event = WriteEvent(node="a", value=1)
        with pytest.raises(AttributeError):
            event.value = 2


class TestPlayer:
    def test_dispatch_and_counts(self):
        sink = RecordingSink()
        stats = StreamPlayer(sink).play(
            [
                WriteEvent("a", 1.0, timestamp=1),
                ReadEvent("b", timestamp=2),
                StructureEvent(StructureOp.ADD_EDGE, "a", "b", timestamp=3),
            ]
        )
        assert stats.writes == 1
        assert stats.reads == 1
        assert stats.structure_ops == 1
        assert stats.total == 3
        assert sink.log[0] == ("write", "a", 1.0)
        assert sink.log[2] == ("structure", StructureOp.ADD_EDGE, "a", "b")

    def test_results_collected_when_enabled(self):
        sink = RecordingSink()
        stats = StreamPlayer(sink, collect_results=True).play([ReadEvent("x")])
        assert stats.read_results == ["result-x"]

    def test_results_not_collected_by_default(self):
        sink = RecordingSink()
        stats = StreamPlayer(sink).play([ReadEvent("x")])
        assert stats.read_results == []

    def test_unknown_event_rejected(self):
        with pytest.raises(TypeError):
            StreamPlayer(RecordingSink()).play([object()])


class TestMerge:
    def test_merge_orders_by_timestamp(self):
        s1 = [WriteEvent("a", 1, timestamp=1), WriteEvent("a", 2, timestamp=5)]
        s2 = [ReadEvent("b", timestamp=2), ReadEvent("b", timestamp=4)]
        merged = list(merge_streams(s1, s2))
        assert [e.timestamp for e in merged] == [1, 2, 4, 5]

    def test_merge_tie_break_is_stable(self):
        s1 = [WriteEvent("a", 1, timestamp=1)]
        s2 = [ReadEvent("b", timestamp=1)]
        merged = list(merge_streams(s1, s2))
        assert isinstance(merged[0], WriteEvent)  # stream order on ties

    def test_merge_empty_streams(self):
        assert list(merge_streams([], [])) == []
