"""Unit tests for neighborhood selection functions ``N(v)``."""

import pytest

from repro.graph import DynamicGraph, Neighborhood
from repro.graph.generators import paper_figure1


@pytest.fixture
def chain():
    #  1 -> 2 -> 3 -> 4 -> 5
    return DynamicGraph.from_edges([(i, i + 1) for i in range(1, 5)])


class TestOneHop:
    def test_in_neighbors(self, chain):
        n = Neighborhood.in_neighbors()
        assert n(chain, 3) == {2}

    def test_out_neighbors(self, chain):
        n = Neighborhood.out_neighbors()
        assert n(chain, 3) == {4}

    def test_undirected(self, chain):
        n = Neighborhood.undirected()
        assert n(chain, 3) == {2, 4}

    def test_paper_example(self):
        g = paper_figure1()
        n = Neighborhood.in_neighbors()
        assert n(g, "a") == {"c", "d", "e", "f"}
        assert n(g, "g") == {"a", "b", "c", "d", "e", "f"}

    def test_isolated_node(self):
        g = DynamicGraph()
        g.add_node("solo")
        assert Neighborhood.in_neighbors()(g, "solo") == set()


class TestMultiHop:
    def test_two_hop_in(self, chain):
        n = Neighborhood.in_neighbors(hops=2)
        assert n(chain, 4) == {2, 3}

    def test_two_hop_excludes_self_on_cycle(self):
        g = DynamicGraph.from_edges([("a", "b"), ("b", "a")])
        n = Neighborhood.in_neighbors(hops=2)
        assert n(g, "a") == {"b"}

    def test_include_self(self, chain):
        n = Neighborhood.in_neighbors(hops=2, include_self=True)
        assert n(chain, 4) == {2, 3, 4}

    def test_hops_exhaust_graph(self, chain):
        n = Neighborhood.in_neighbors(hops=10)
        assert n(chain, 5) == {1, 2, 3, 4}

    def test_both_direction_two_hop(self, chain):
        n = Neighborhood.undirected(hops=2)
        assert n(chain, 3) == {1, 2, 4, 5}


class TestFilters:
    def test_node_filter(self, chain):
        even_only = Neighborhood.undirected(
            hops=2, node_filter=lambda g, node: node % 2 == 0
        )
        assert even_only(chain, 3) == {2, 4}

    def test_filter_applied_after_expansion(self, chain):
        # Odd nodes are filtered from membership, not from traversal.
        n = Neighborhood.in_neighbors(hops=2, node_filter=lambda g, v: v % 2 == 0)
        assert n(chain, 4) == {2}


class TestAffectedReaders:
    def test_one_hop_in(self, chain):
        n = Neighborhood.in_neighbors()
        # 3's writes feed readers that 3 points at.
        assert n.affected_readers(chain, 3) == {4}

    def test_two_hop_in(self, chain):
        n = Neighborhood.in_neighbors(hops=2)
        assert n.affected_readers(chain, 2) == {3, 4}

    def test_reverse_of_out(self, chain):
        n = Neighborhood.out_neighbors()
        assert n.affected_readers(chain, 3) == {2}

    def test_membership_consistency(self, chain):
        # r in affected_readers(v)  <=>  v in N(r), for every direction.
        for n in (
            Neighborhood.in_neighbors(),
            Neighborhood.out_neighbors(hops=2),
            Neighborhood.undirected(hops=2),
        ):
            for v in chain.nodes():
                affected = n.affected_readers(chain, v)
                for r in chain.nodes():
                    assert (r in affected) == (v in n(chain, r))


class TestValidation:
    def test_bad_hops(self):
        with pytest.raises(ValueError):
            Neighborhood(hops=0)

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            Neighborhood(direction="sideways")

    def test_equality_and_hash(self):
        assert Neighborhood.in_neighbors() == Neighborhood.in_neighbors()
        assert Neighborhood.in_neighbors() != Neighborhood.out_neighbors()
        assert hash(Neighborhood.in_neighbors()) == hash(Neighborhood.in_neighbors())

    def test_repr_mentions_shape(self):
        assert "2-hop" in repr(Neighborhood.in_neighbors(hops=2))
