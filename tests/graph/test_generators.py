"""Unit tests for the synthetic dataset generators."""

import pytest

from repro.graph import (
    DATASETS,
    Neighborhood,
    build_bipartite,
    community_graph,
    load_dataset,
    paper_figure1,
    random_graph,
    social_graph,
    web_graph,
)


def compressibility(graph, iterations=6):
    """Sharing index achieved by a quick VNM_A pass — the property the
    generators must reproduce (web ≫ social, per the paper's Figure 8)."""
    from repro.overlay import construct_overlay

    ag = build_bipartite(graph, Neighborhood.in_neighbors())
    result = construct_overlay(ag, "vnm_a", iterations=iterations)
    return result.overlay.sharing_index(ag)


class TestPaperFigure1:
    def test_exact_input_lists(self):
        g = paper_figure1()
        n = Neighborhood.in_neighbors()
        expected = {
            "a": {"c", "d", "e", "f"},
            "b": {"d", "e", "f"},
            "c": {"a", "b", "d", "e", "f"},
            "d": {"a", "b", "c", "e", "f"},
            "e": {"a", "b", "c", "d"},
            "f": {"a", "b", "c", "d", "e"},
            "g": {"a", "b", "c", "d", "e", "f"},
        }
        for node, members in expected.items():
            assert n(g, node) == members


class TestSocialGraph:
    def test_deterministic(self):
        g1 = social_graph(200, 5, seed=1)
        g2 = social_graph(200, 5, seed=1)
        assert set(g1.edges()) == set(g2.edges())

    def test_seed_changes_output(self):
        g1 = social_graph(200, 5, seed=1)
        g2 = social_graph(200, 5, seed=2)
        assert set(g1.edges()) != set(g2.edges())

    def test_size(self):
        g = social_graph(300, 6, seed=3)
        assert g.num_nodes == 300
        assert g.num_edges >= 300 * 5  # roughly edges_per_node each

    def test_size_validation(self):
        with pytest.raises(ValueError):
            social_graph(num_nodes=4, edges_per_node=8)

    def test_has_hubs(self):
        g = social_graph(400, 5, seed=7)
        degrees = sorted((g.out_degree(n) for n in g.nodes()), reverse=True)
        assert degrees[0] > 5 * (sum(degrees) / len(degrees))


class TestWebGraph:
    def test_deterministic(self):
        assert set(web_graph(200, 5, seed=1).edges()) == set(
            web_graph(200, 5, seed=1).edges()
        )

    def test_copy_probability_validation(self):
        with pytest.raises(ValueError):
            web_graph(copy_probability=1.5)

    def test_web_compresses_better_than_social(self):
        web = web_graph(500, 6, copy_probability=0.95, seed=4)
        social = social_graph(500, 6, seed=4)
        assert compressibility(web) > 2 * compressibility(social)


class TestRandomGraph:
    def test_exact_edge_count(self):
        g = random_graph(50, 200, seed=5)
        assert g.num_edges == 200
        assert g.num_nodes == 50

    def test_too_many_edges(self):
        with pytest.raises(ValueError):
            random_graph(3, 100)


class TestCommunityGraph:
    def test_size(self):
        g = community_graph(num_communities=4, community_size=10, seed=2)
        assert g.num_nodes == 40

    def test_communities_are_dense(self):
        g = community_graph(
            num_communities=2, community_size=10, intra_probability=0.9,
            inter_edges=0, seed=2,
        )
        # Node 0's in-neighbors should be mostly its own community (0-9).
        inside = [u for u in g.in_neighbors(0) if u < 10]
        assert len(inside) == len(g.in_neighbors(0))


class TestRegistry:
    def test_all_datasets_instantiate(self):
        for name in DATASETS:
            g = load_dataset(name, scale=0.15)
            assert g.num_nodes > 20

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            load_dataset("twitter-2010")

    def test_scale_changes_size(self):
        small = load_dataset("livejournal-small", scale=0.2)
        big = load_dataset("livejournal-small", scale=0.4)
        assert big.num_nodes > small.num_nodes
