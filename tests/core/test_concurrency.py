"""Tests for the threaded engine and the simulated multi-core executor."""

import pytest

from repro.core.aggregates import Sum, TopK
from repro.core.concurrency import (
    SimulatedExecutor,
    ThreadedEngine,
    collect_tasks,
    op_cost,
)
from repro.core.engine import EAGrEngine
from repro.core.execution import TraceOp
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.dataflow.costs import CostModel
from repro.graph.generators import paper_figure1, random_graph
from repro.graph.neighborhoods import Neighborhood
from repro.graph.streams import WriteEvent

from tests.conftest import make_events


def build_engine(**kwargs):
    query = EgoQuery(aggregate=Sum(), neighborhood=Neighborhood.in_neighbors())
    return EAGrEngine(paper_figure1(), query, overlay_algorithm="vnm_a", **kwargs)


class TestThreadedEngine:
    def test_quiesced_state_matches_serial(self):
        serial = build_engine(dataflow="all_push")
        threaded_engine = build_engine(dataflow="all_push")
        threaded = ThreadedEngine(threaded_engine, write_threads=4)
        try:
            events = make_events(list("abcdefg"), 300, write_fraction=1.0, seed=41)
            for event in events:
                serial.write(event.node, event.value, event.timestamp)
                threaded.submit_write(event.node, event.value, event.timestamp)
            threaded.drain()
            for node in "abcdefg":
                assert threaded.read(node) == serial.read(node)
        finally:
            threaded.shutdown()

    def test_reads_while_writing_are_sane(self):
        engine = build_engine(dataflow="all_push")
        threaded = ThreadedEngine(engine, write_threads=2)
        try:
            for i in range(200):
                threaded.submit_write("a", 1.0, timestamp=float(i))
                result = threaded.read("g")  # may be stale, must not crash
                assert result >= 0.0
            threaded.drain()
            assert threaded.read("g") == engine.reference_read("g")
        finally:
            threaded.shutdown()

    def test_pull_reads_under_threading(self):
        engine = build_engine(dataflow="all_pull")
        threaded = ThreadedEngine(engine, write_threads=2)
        try:
            threaded.submit_write("c", 5.0)
            threaded.submit_write("d", 7.0)
            threaded.drain()
            assert threaded.read("a") == engine.reference_read("a")
        finally:
            threaded.shutdown()

    def test_thread_count_validation(self):
        with pytest.raises(ValueError):
            ThreadedEngine(build_engine(), write_threads=0)

    def test_close_flushes_pending_batches(self):
        """close() right after submit_write_batch applies, never drops."""
        serial = build_engine(dataflow="all_push")
        threaded_engine = build_engine(dataflow="all_push")
        threaded = ThreadedEngine(threaded_engine, write_threads=3)
        events = make_events(list("abcdefg"), 600, write_fraction=1.0, seed=47)
        for start in range(0, len(events), 32):
            chunk = [
                (e.node, e.value, e.timestamp)
                for e in events[start : start + 32]
            ]
            serial.write_batch(chunk)
            threaded.submit_write_batch(chunk)
        threaded.close()  # no drain() first: close itself must flush
        for node in "abcdefg":
            assert threaded_engine.read(node) == serial.read(node), node

    def test_close_is_idempotent_and_guards_submission(self):
        threaded = ThreadedEngine(build_engine(dataflow="all_push"))
        threaded.close()
        threaded.close()
        threaded.shutdown()
        with pytest.raises(RuntimeError):
            threaded.submit_write("a", 1.0)
        with pytest.raises(RuntimeError):
            threaded.submit_write_batch([("a", 1.0)])

    def test_shard_protocol_write_read_changed(self):
        """ThreadedEngine satisfies the shard-execution protocol."""
        from repro.core.shards import ShardExecution

        engine = build_engine(dataflow="all_push")
        threaded = ThreadedEngine(engine, write_threads=2)
        try:
            assert isinstance(threaded, ShardExecution)
            count = threaded.write_batch([("c", 5.0), ("d", 7.0), ("zz", 1.0)])
            assert count == 3
            changed = set(threaded.changed_readers())
            expected = {
                reader
                for reader in engine.overlay.reader_of
                if {"c", "d"}
                & set(engine.query.neighborhood(engine.graph, reader))
            }
            assert changed == expected
            assert threaded.changed_readers() == []
            results = threaded.read_batch(["a", "g"])
            assert results == [engine.reference_read("a"), engine.reference_read("g")]
        finally:
            threaded.close()


class TestSimulatedExecutor:
    def make_tasks(self, count=400):
        engine = build_engine(collect_trace=True, dataflow="mincut")
        events = make_events(list("abcdefg"), count, seed=42)
        return collect_tasks(engine, events)

    def test_collect_tasks_requires_trace(self):
        engine = build_engine()
        with pytest.raises(ValueError):
            collect_tasks(engine, [WriteEvent("a", 1.0)])

    def test_one_task_per_event(self):
        tasks = self.make_tasks(100)
        assert len(tasks) == 100

    def test_throughput_rises_then_plateaus(self):
        tasks = self.make_tasks()
        executor = SimulatedExecutor(dispatch_overhead=0.2)
        results = executor.sweep(tasks, [1, 2, 4, 8, 16, 48])
        throughputs = [r.throughput for r in results]
        assert throughputs[1] > throughputs[0] * 1.3  # near-linear at first
        # Saturated region: adding workers past the knee buys almost nothing.
        assert throughputs[-1] < throughputs[-2] * 1.5

    def test_makespan_decreases_with_workers(self):
        tasks = self.make_tasks(200)
        executor = SimulatedExecutor(dispatch_overhead=0.01)
        one = executor.run(tasks, 1)
        four = executor.run(tasks, 4)
        assert four.makespan < one.makespan
        assert one.total_work == pytest.approx(four.total_work)

    def test_utilization_bounded(self):
        tasks = self.make_tasks(100)
        result = SimulatedExecutor().run(tasks, 4)
        assert 0.0 < result.utilization <= 1.0

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            SimulatedExecutor().run([], 0)

    def test_op_costs_follow_model(self):
        model = CostModel.constant_linear(push_unit=2.0, pull_unit=3.0)
        assert op_cost(TraceOp(0, "push", 5), model) == 2.0
        assert op_cost(TraceOp(0, "pull", 5), model) == 15.0
        assert op_cost(TraceOp(0, "write", 1), model) == 1.0
        assert op_cost(TraceOp(0, "read", 1), model) == 0.5

    def test_empty_tasks(self):
        result = SimulatedExecutor().run([], 4)
        assert result.throughput == 0.0
