"""Unit + property tests for the aggregate function / PAO API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import (
    NEED_RECOMPUTE,
    AggregateError,
    Count,
    CountDistinct,
    DistinctSet,
    Max,
    Mean,
    Min,
    Sum,
    TopK,
    UserDefinedAggregate,
    get_aggregate,
)


class TestSum:
    def test_basic(self):
        agg = Sum()
        assert agg.combine_raw([1, 2, 3]) == 6.0
        assert agg.finalize(agg.identity()) == 0.0

    def test_subtract(self):
        agg = Sum()
        assert agg.subtract(10.0, 4.0) == 6.0
        assert agg.merge(3.0, agg.negate(3.0)) == 0.0

    def test_delta(self):
        agg = Sum()
        assert agg.delta(5.0, 9.0) == 4.0

    def test_flags(self):
        assert Sum().subtractable and not Sum().duplicate_insensitive


class TestCount:
    def test_lift_counts_events_not_values(self):
        agg = Count()
        assert agg.combine_raw(["x", "y", "x"]) == 3

    def test_subtract(self):
        assert Count().subtract(5, 2) == 3


class TestMean:
    def test_finalize(self):
        agg = Mean()
        assert agg.finalize(agg.combine_raw([2.0, 4.0])) == 3.0

    def test_empty_is_none(self):
        agg = Mean()
        assert agg.finalize(agg.identity()) is None

    def test_subtract(self):
        agg = Mean()
        pao = agg.subtract(agg.combine_raw([2.0, 4.0, 6.0]), agg.lift(6.0))
        assert agg.finalize(pao) == 3.0


class TestMax:
    def test_basic(self):
        agg = Max()
        assert agg.combine_raw([3, 9, 4]) == 9.0

    def test_empty_is_none(self):
        agg = Max()
        assert agg.finalize(agg.identity()) is None

    def test_merge_with_none(self):
        agg = Max()
        assert agg.merge(None, 5.0) == 5.0
        assert agg.merge(5.0, None) == 5.0

    def test_subtract_raises(self):
        with pytest.raises(AggregateError):
            Max().subtract(5.0, 3.0)

    def test_fast_update_grow(self):
        agg = Max()
        assert agg.fast_update(5.0, 3.0, 7.0) == 7.0

    def test_fast_update_irrelevant_input(self):
        agg = Max()
        assert agg.fast_update(5.0, 2.0, 1.0) == 5.0

    def test_fast_update_max_shrinks_needs_recompute(self):
        agg = Max()
        assert agg.fast_update(5.0, 5.0, 1.0) is NEED_RECOMPUTE

    def test_fast_update_from_empty(self):
        agg = Max()
        assert agg.fast_update(None, None, 3.0) == 3.0

    def test_costs_logarithmic(self):
        agg = Max()
        assert agg.default_push_cost(1) == 1.0
        assert agg.default_push_cost(8) == pytest.approx(4.0)


class TestMin:
    def test_basic(self):
        assert Min().combine_raw([3, 9, 4]) == 3.0

    def test_fast_update(self):
        agg = Min()
        assert agg.fast_update(3.0, 5.0, 2.0) == 2.0
        assert agg.fast_update(3.0, 3.0, 9.0) is NEED_RECOMPUTE


class TestTopK:
    def test_finalize_orders_by_count(self):
        agg = TopK(2)
        pao = agg.combine_raw(["a", "b", "a", "c", "b", "a"])
        assert agg.finalize(pao) == [("a", 3), ("b", 2)]

    def test_tie_break_deterministic(self):
        agg = TopK(3)
        pao = agg.combine_raw(["b", "a"])
        assert agg.finalize(pao) == [("a", 1), ("b", 1)]

    def test_subtract_removes_contribution(self):
        agg = TopK(3)
        pao = agg.combine_raw(["a", "a", "b"])
        pao = agg.subtract(pao, agg.lift("a"))
        assert agg.finalize(pao) == [("a", 1), ("b", 1)]

    def test_transient_negative_counts_cancel(self):
        agg = TopK(3)
        # Subtract before merge — mirrors a negative edge applied first.
        pao = agg.subtract(agg.identity(), agg.lift("x"))
        pao = agg.merge(pao, agg.combine_raw(["x", "x"]))
        assert agg.finalize(pao) == [("x", 1)]

    def test_negative_counts_excluded_from_result(self):
        agg = TopK(3)
        pao = agg.subtract(agg.identity(), agg.lift("x"))
        assert agg.finalize(pao) == []

    def test_zero_counts_dropped_from_pao(self):
        agg = TopK(3)
        pao = agg.subtract(agg.lift("x"), agg.lift("x"))
        assert pao == {}

    def test_merge_is_pure(self):
        agg = TopK(2)
        a = agg.lift("x")
        b = agg.lift("y")
        agg.merge(a, b)
        assert a == {"x": 1} and b == {"y": 1}

    def test_k_validation(self):
        with pytest.raises(ValueError):
            TopK(0)


class TestCountDistinct:
    def test_counts_distinct(self):
        agg = CountDistinct()
        assert agg.finalize(agg.combine_raw(["a", "b", "a"])) == 2

    def test_subtract_respects_multiplicity(self):
        agg = CountDistinct()
        pao = agg.combine_raw(["a", "a", "b"])
        pao = agg.subtract(pao, agg.lift("a"))
        assert agg.finalize(pao) == 2  # one "a" remains live
        pao = agg.subtract(pao, agg.lift("a"))
        assert agg.finalize(pao) == 1


class TestDistinctSet:
    def test_union(self):
        agg = DistinctSet()
        assert agg.combine_raw(["a", "b", "a"]) == frozenset({"a", "b"})

    def test_duplicate_insensitive_flag(self):
        assert DistinctSet().duplicate_insensitive
        assert not DistinctSet().subtractable

    def test_fast_update_monotone_growth(self):
        agg = DistinctSet()
        current = frozenset({"a"})
        assert agg.fast_update(current, frozenset(), frozenset({"b"})) == {"a", "b"}

    def test_fast_update_shrink_needs_recompute(self):
        agg = DistinctSet()
        assert (
            agg.fast_update(frozenset({"a", "b"}), frozenset({"b"}), frozenset())
            is NEED_RECOMPUTE
        )


class TestUserDefined:
    def make_product(self):
        return UserDefinedAggregate(
            name="product",
            initialize=lambda: 1.0,
            merge=lambda a, b: a * b,
            finalize=lambda pao: pao,
            lift=float,
            subtract=lambda a, b: a / b,
        )

    def test_roundtrip(self):
        agg = self.make_product()
        assert agg.combine_raw([2, 3, 4]) == 24.0
        assert agg.subtract(24.0, 4.0) == 6.0
        assert agg.subtractable

    def test_without_subtract(self):
        agg = UserDefinedAggregate(
            name="concat",
            initialize=tuple,
            merge=lambda a, b: a + b,
            finalize=lambda p: p,
            lift=lambda raw: (raw,),
        )
        assert not agg.subtractable
        with pytest.raises(AggregateError):
            agg.subtract((1,), (1,))

    def test_custom_costs(self):
        agg = UserDefinedAggregate(
            name="c",
            initialize=lambda: 0,
            merge=lambda a, b: a + b,
            finalize=lambda p: p,
            lift=lambda r: 1,
            push_cost=lambda k: 7.0,
            pull_cost=lambda k: 11.0 * k,
        )
        assert agg.default_push_cost(3) == 7.0
        assert agg.default_pull_cost(3) == 33.0


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["sum", "count", "mean", "avg", "max", "min", "count_distinct", "distinct_set"]
    )
    def test_builtins(self, name):
        agg = get_aggregate(name)
        assert agg.finalize(agg.identity()) is not NotImplemented

    def test_topk_kwargs(self):
        assert get_aggregate("topk", k=7).k == 7

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_aggregate("median")


# ---------------------------------------------------------------------------
# Algebraic property tests
# ---------------------------------------------------------------------------

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
values = st.sampled_from(["a", "b", "c", "d"])


@given(st.lists(floats, max_size=20), st.lists(floats, max_size=20))
def test_sum_merge_matches_concat(xs, ys):
    agg = Sum()
    merged = agg.merge(agg.combine_raw(xs), agg.combine_raw(ys))
    assert merged == pytest.approx(agg.combine_raw(xs + ys))


@given(st.lists(floats, min_size=1, max_size=20), st.lists(floats, max_size=20))
def test_sum_subtract_inverts_merge(xs, ys):
    agg = Sum()
    a, b = agg.combine_raw(xs), agg.combine_raw(ys)
    # Absolute tolerance scaled by |b|: catastrophic cancellation is real
    # float behaviour, not an aggregate bug.
    assert agg.subtract(agg.merge(a, b), b) == pytest.approx(
        a, abs=1e-6 * (1.0 + abs(b))
    )


@given(st.lists(values, max_size=20), st.lists(values, max_size=20))
def test_topk_merge_commutative(xs, ys):
    agg = TopK(4)
    a, b = agg.combine_raw(xs), agg.combine_raw(ys)
    assert agg.merge(a, b) == agg.merge(b, a)


@given(st.lists(values, max_size=15), st.lists(values, max_size=15))
def test_topk_subtract_inverts_merge(xs, ys):
    agg = TopK(4)
    a, b = agg.combine_raw(xs), agg.combine_raw(ys)
    assert agg.subtract(agg.merge(a, b), b) == a


@given(st.lists(floats, max_size=20), st.lists(floats, max_size=20))
def test_max_merge_matches_concat(xs, ys):
    agg = Max()
    merged = agg.merge(agg.combine_raw(xs), agg.combine_raw(ys))
    assert merged == agg.combine_raw(xs + ys)


@given(st.lists(values, max_size=20))
def test_distinct_set_idempotent(xs):
    agg = DistinctSet()
    pao = agg.combine_raw(xs)
    assert agg.merge(pao, pao) == pao  # duplicate insensitivity, literally


@given(st.lists(floats, max_size=12), st.lists(floats, max_size=12), st.lists(floats, max_size=12))
def test_mean_merge_associative(xs, ys, zs):
    agg = Mean()
    a, b, c = agg.combine_raw(xs), agg.combine_raw(ys), agg.combine_raw(zs)
    left = agg.merge(agg.merge(a, b), c)
    right = agg.merge(a, agg.merge(b, c))
    assert left[0] == pytest.approx(right[0])
    assert left[1] == right[1]
