"""Tests for the partitioned (multi-shard) deployment extension."""

import pytest

from repro.core.aggregates import Sum, TopK
from repro.core.engine import EAGrEngine
from repro.core.partitioned import PartitionedEngine, community_assignment
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import community_graph, paper_figure1, random_graph
from repro.graph.neighborhoods import Neighborhood
from repro.graph.streams import WriteEvent

from tests.conftest import make_events


def play(engine, events):
    results = []
    for event in events:
        if isinstance(event, WriteEvent):
            engine.write(event.node, event.value, event.timestamp)
        else:
            results.append((event.node, engine.read(event.node)))
    return results


class TestEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_matches_single_engine(self, num_shards):
        graph = random_graph(30, 140, seed=71)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(2))
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        sharded = PartitionedEngine(
            graph, query, num_shards=num_shards, overlay_algorithm="vnm_a"
        )
        events = make_events(list(graph.nodes()), 400, seed=72)
        assert play(sharded, events) == play(single, events)

    def test_topk_across_shards(self):
        graph = random_graph(25, 100, seed=73)
        query = EgoQuery(aggregate=TopK(3), window=TupleWindow(3))
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        sharded = PartitionedEngine(graph, query, num_shards=3)
        events = make_events(list(graph.nodes()), 300, seed=74, vocabulary=5)
        assert play(sharded, events) == play(single, events)

    def test_unknown_reader(self):
        graph = paper_figure1()
        sharded = PartitionedEngine(graph, EgoQuery(aggregate=Sum()), num_shards=2)
        assert sharded.read("ghost") == 0.0

    def test_user_predicate_composes(self):
        graph = paper_figure1()
        query = EgoQuery(aggregate=Sum(), predicate=lambda v: v in ("a", "b", "c"))
        sharded = PartitionedEngine(graph, query, num_shards=2)
        assert set(sharded.reader_shard) == {"a", "b", "c"}
        sharded.write("d", 5.0)
        assert sharded.read("a") == 5.0
        assert sharded.read("g") == 0.0  # pred-filtered reader


class TestDeploymentMetrics:
    def test_readers_partition_disjointly(self):
        graph = random_graph(40, 160, seed=75)
        sharded = PartitionedEngine(graph, EgoQuery(aggregate=Sum()), num_shards=4)
        total = sum(sharded.shard_sizes())
        # Readers with empty neighborhoods carry no materialized query.
        with_query = [n for n in graph.nodes() if graph.in_neighbors(n)]
        assert total == len(with_query)
        # ... and no reader is materialized on two shards.
        seen = set()
        for shard in sharded.shards:
            owned = set(shard.overlay.reader_of)
            assert not (owned & seen)
            seen |= owned

    def test_replication_factor_bounds(self):
        graph = random_graph(40, 160, seed=76)
        sharded = PartitionedEngine(graph, EgoQuery(aggregate=Sum()), num_shards=4)
        events = make_events(list(graph.nodes()), 200, write_fraction=1.0, seed=77)
        play(sharded, events)
        assert 1.0 <= sharded.replication_factor <= 4.0

    def test_community_assignment_cuts_replication(self):
        graph = community_graph(
            num_communities=6, community_size=15, intra_probability=0.5,
            inter_edges=30, seed=78,
        )
        query = EgoQuery(aggregate=Sum())
        hashed = PartitionedEngine(graph, query, num_shards=6)
        local = PartitionedEngine(
            graph, query, num_shards=6,
            assign=community_assignment(graph, num_shards=6),
        )
        events = make_events(list(graph.nodes()), 300, write_fraction=1.0, seed=79)
        play(hashed, events)
        play(local, events)
        assert local.replication_factor < hashed.replication_factor

    def test_describe(self):
        graph = paper_figure1()
        sharded = PartitionedEngine(graph, EgoQuery(aggregate=Sum()), num_shards=2)
        assert "shards=2" in sharded.describe()

    def test_shard_validation(self):
        with pytest.raises(ValueError):
            PartitionedEngine(paper_figure1(), EgoQuery(aggregate=Sum()), num_shards=0)
