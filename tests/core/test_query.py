"""Unit tests for the ego-centric query specification."""

import pytest

from repro.core.query import EgoQuery, QueryMode
from repro.core.aggregates import Sum, TopK
from repro.core.windows import TimeWindow, TupleWindow
from repro.graph.neighborhoods import Neighborhood


class TestEgoQuery:
    def test_defaults(self):
        q = EgoQuery(aggregate=Sum())
        assert q.window == TupleWindow(1)
        assert q.neighborhood == Neighborhood.in_neighbors()
        assert q.predicate is None
        assert q.mode is QueryMode.QUASI_CONTINUOUS
        assert not q.continuous

    def test_continuous_flag(self):
        q = EgoQuery(aggregate=Sum(), mode=QueryMode.CONTINUOUS)
        assert q.continuous

    def test_type_validation(self):
        with pytest.raises(TypeError):
            EgoQuery(aggregate=sum)  # a function, not an AggregateFunction
        with pytest.raises(TypeError):
            EgoQuery(aggregate=Sum(), window=5)
        with pytest.raises(TypeError):
            EgoQuery(aggregate=Sum(), neighborhood=lambda g, v: set())

    def test_frozen(self):
        q = EgoQuery(aggregate=Sum())
        with pytest.raises(AttributeError):
            q.aggregate = TopK()

    def test_describe_mentions_parts(self):
        q = EgoQuery(
            aggregate=TopK(5),
            window=TimeWindow(60.0),
            neighborhood=Neighborhood.undirected(hops=2),
            predicate=lambda v: True,
            mode=QueryMode.CONTINUOUS,
        )
        text = q.describe()
        assert "TopK" in text
        assert "2-hop" in text
        assert "pred-selected" in text
        assert "continuous" in text
