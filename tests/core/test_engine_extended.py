"""Extended engine coverage: degenerate graphs, filtered/predicate queries,
remaining aggregates end-to-end, UDAs, stream-player integration, and
cost-model plumbing."""

import pytest

from repro.core.aggregates import (
    CountDistinct,
    DistinctSet,
    Mean,
    Min,
    Sum,
    UserDefinedAggregate,
)
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TimeWindow, TupleWindow
from repro.dataflow.costs import CostModel, calibrate
from repro.dataflow.frequencies import FrequencyModel
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import paper_figure1, random_graph
from repro.graph.neighborhoods import Neighborhood
from repro.graph.streams import ReadEvent, StreamPlayer, WriteEvent

from tests.conftest import make_events, play_and_check


class TestDegenerateGraphs:
    def test_empty_graph(self):
        engine = EAGrEngine(DynamicGraph(), EgoQuery(aggregate=Sum()))
        engine.write("ghost", 1.0)
        assert engine.read("ghost") == 0.0

    def test_single_isolated_node(self):
        graph = DynamicGraph()
        graph.add_node("solo")
        engine = EAGrEngine(graph, EgoQuery(aggregate=Sum()))
        engine.write("solo", 5.0)
        assert engine.read("solo") == 0.0  # nobody feeds solo

    def test_single_edge(self):
        graph = DynamicGraph.from_edges([("w", "r")])
        engine = EAGrEngine(graph, EgoQuery(aggregate=Sum()))
        engine.write("w", 2.5)
        assert engine.read("r") == 2.5
        assert engine.read("w") == 0.0

    def test_star_graph(self):
        graph = DynamicGraph()
        for i in range(20):
            graph.add_edge(f"leaf{i}", "hub")
        engine = EAGrEngine(graph, EgoQuery(aggregate=Sum()))
        for i in range(20):
            engine.write(f"leaf{i}", 1.0)
        assert engine.read("hub") == 20.0

    def test_complete_bipartite(self):
        graph = DynamicGraph()
        for w in range(6):
            for r in range(6, 12):
                graph.add_edge(w, r)
        engine = EAGrEngine(graph, EgoQuery(aggregate=Sum()), overlay_algorithm="iob")
        # Perfect biclique: one partial aggregator, 6 + 6 edges.
        assert engine.overlay.num_edges == 12
        for w in range(6):
            engine.write(w, 1.0)
        for r in range(6, 12):
            assert engine.read(r) == 6.0


class TestPredicateAndFilters:
    def test_predicate_limits_readers(self):
        graph = paper_figure1()
        query = EgoQuery(aggregate=Sum(), predicate=lambda v: v in ("a", "b"))
        engine = EAGrEngine(graph, query)
        assert set(engine.overlay.reader_of) == {"a", "b"}
        engine.write("d", 7.0)
        assert engine.read("a") == 7.0
        assert engine.read("c") == 0.0  # no materialized query for c

    def test_filtered_neighborhood(self):
        graph = paper_figure1()
        for node in graph.nodes():
            graph.set_attr(node, "vip", node in ("c", "d"))
        query = EgoQuery(
            aggregate=Sum(),
            neighborhood=Neighborhood.in_neighbors(
                node_filter=lambda g, v: g.get_attr(v, "vip")
            ),
        )
        engine = EAGrEngine(graph, query)
        engine.write("c", 3.0)
        engine.write("e", 100.0)  # filtered out of every neighborhood
        assert engine.read("a") == 3.0  # N(a) ∩ vip = {c, d}

    def test_out_neighborhood_query(self):
        graph = DynamicGraph.from_edges([("a", "b"), ("a", "c")])
        query = EgoQuery(aggregate=Sum(), neighborhood=Neighborhood.out_neighbors())
        engine = EAGrEngine(graph, query)
        engine.write("b", 1.0)
        engine.write("c", 2.0)
        assert engine.read("a") == 3.0


class TestMoreAggregates:
    def graph(self):
        return random_graph(20, 90, seed=55)

    def test_mean_end_to_end(self):
        graph = self.graph()
        query = EgoQuery(aggregate=Mean(), window=TupleWindow(3))
        engine = EAGrEngine(graph, query, overlay_algorithm="vnm_n")
        events = make_events(list(graph.nodes()), 300, seed=56)
        checked = play_and_check(
            engine, events,
            comparator=lambda a, b: (a is None and b is None)
            or (a is not None and b is not None and abs(a - b) < 1e-9),
        )
        assert checked > 40

    def test_min_end_to_end(self):
        graph = self.graph()
        query = EgoQuery(aggregate=Min(), window=TupleWindow(2))
        engine = EAGrEngine(graph, query, overlay_algorithm="vnm_d")
        play_and_check(engine, make_events(list(graph.nodes()), 300, seed=57))

    def test_count_distinct_end_to_end(self):
        graph = self.graph()
        query = EgoQuery(aggregate=CountDistinct(), window=TupleWindow(3))
        engine = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        play_and_check(
            engine, make_events(list(graph.nodes()), 300, seed=58, vocabulary=5)
        )

    def test_distinct_set_end_to_end(self):
        graph = self.graph()
        query = EgoQuery(aggregate=DistinctSet(), window=TupleWindow(2))
        engine = EAGrEngine(graph, query, overlay_algorithm="vnm_d")
        play_and_check(
            engine, make_events(list(graph.nodes()), 300, seed=59, vocabulary=6)
        )

    def test_user_defined_aggregate_end_to_end(self):
        # Numeric range (max - min) tracked as a (min, max) PAO — a
        # non-subtractable, duplicate-insensitive UDA.
        spread = UserDefinedAggregate(
            name="spread",
            initialize=lambda: None,
            lift=lambda raw: (float(raw), float(raw)),
            merge=lambda a, b: (
                b if a is None else a if b is None else (min(a[0], b[0]), max(a[1], b[1]))
            ),
            finalize=lambda pao: None if pao is None else pao[1] - pao[0],
            duplicate_insensitive=True,
        )
        graph = self.graph()
        query = EgoQuery(aggregate=spread, window=TupleWindow(2))
        engine = EAGrEngine(graph, query, overlay_algorithm="vnm_d")
        play_and_check(engine, make_events(list(graph.nodes()), 250, seed=60))

    def test_subtractable_uda_with_negative_edges(self):
        product = UserDefinedAggregate(
            name="product",
            initialize=lambda: 1.0,
            lift=lambda raw: float(raw),
            merge=lambda a, b: a * b,
            subtract=lambda a, b: a / b,
            finalize=lambda pao: pao,
        )
        graph = self.graph()
        query = EgoQuery(aggregate=product, window=TupleWindow(1))
        engine = EAGrEngine(graph, query, overlay_algorithm="vnm_n")

        def close(a, b):
            return abs(a - b) <= 1e-6 * max(1.0, abs(b))

        events = make_events(
            list(graph.nodes()), 250, seed=61,
        )
        # Avoid zero values: division-based subtract cannot invert them.
        events = [
            WriteEvent(e.node, e.value + 1.0, e.timestamp)
            if isinstance(e, WriteEvent) else e
            for e in events
        ]
        play_and_check(engine, events, comparator=close)


class TestPlumbing:
    def test_stream_player_drives_engine(self):
        graph = paper_figure1()
        engine = EAGrEngine(graph, EgoQuery(aggregate=Sum()))
        player = StreamPlayer(engine, collect_results=True)
        stats = player.play(
            [
                WriteEvent("c", 9.0, timestamp=1),
                WriteEvent("d", 3.0, timestamp=2),
                ReadEvent("a", timestamp=3),
            ]
        )
        assert stats.read_results == [12.0]

    def test_calibrated_cost_model_through_engine(self):
        graph = random_graph(15, 60, seed=62)
        model = calibrate(Sum(), ks=(1, 4, 8), repetitions=30)
        engine = EAGrEngine(
            graph, EgoQuery(aggregate=Sum()), cost_model=model,
        )
        play_and_check(engine, make_events(list(graph.nodes()), 200, seed=63))

    def test_extreme_cost_models_force_decisions(self):
        graph = paper_figure1()
        # Pull practically free: everything should pull.
        cheap_pull = CostModel(push=lambda k: 1e9, pull=lambda k: 1e-9)
        engine = EAGrEngine(graph, EgoQuery(aggregate=Sum()), cost_model=cheap_pull)
        from repro.core.overlay import Decision

        assert all(
            engine.overlay.decisions[h] is Decision.PULL
            for h in engine.overlay.reader_handles()
        )

    def test_greedy_dataflow_through_engine(self):
        graph = random_graph(20, 80, seed=64)
        engine = EAGrEngine(
            graph, EgoQuery(aggregate=Sum()), dataflow="greedy",
            frequencies=FrequencyModel.zipf(graph.nodes(), seed=65),
        )
        play_and_check(engine, make_events(list(graph.nodes()), 250, seed=66))

    def test_time_window_with_maintainer(self):
        graph = random_graph(15, 50, seed=67)
        query = EgoQuery(aggregate=Sum(), window=TimeWindow(20.0))
        engine = EAGrEngine(graph, query, maintain=True)
        play_and_check(engine, make_events(list(graph.nodes()), 150, seed=68))
        graph.add_edge(0, 2) if not graph.has_edge(0, 2) else None
        # Timestamps must stay globally monotone across batches.
        second = [
            WriteEvent(e.node, e.value, e.timestamp + 200.0)
            if isinstance(e, WriteEvent)
            else ReadEvent(e.node, e.timestamp + 200.0)
            for e in make_events(list(graph.nodes()), 150, seed=69)
        ]
        play_and_check(engine, second)

    def test_counters_accumulate(self):
        graph = paper_figure1()
        engine = EAGrEngine(graph, EgoQuery(aggregate=Sum()))
        for _ in range(5):
            engine.write("c", 1.0)
            engine.read("a")
        assert engine.counters.writes == 5
        assert engine.counters.reads == 5
        assert engine.counters.events == 10

    def test_overlay_params_pass_through(self):
        graph = paper_figure1()
        engine = EAGrEngine(
            graph, EgoQuery(aggregate=Sum()), overlay_algorithm="vnm_a",
            overlay_params={"iterations": 1, "chunk_size": 4},
        )
        assert engine.construction.config.chunk_size == 4
        assert len(engine.construction.stats) <= 1
