"""Compiled propagation plans: caching, kernels, precise invalidation."""

import pytest

from repro.core.aggregates import Max, Sum, TopK
from repro.core.execution import Runtime
from repro.core.overlay import Decision, Overlay
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow


def shared_overlay():
    """w1,w2 -> PA -> {r1, r2};  w3 -> r2 (handles returned for poking)."""
    ov = Overlay()
    w = {name: ov.add_writer(name) for name in ("w1", "w2", "w3")}
    r1, r2 = ov.add_reader("r1"), ov.add_reader("r2")
    pa = ov.add_partial()
    ov.add_edge(w["w1"], pa)
    ov.add_edge(w["w2"], pa)
    ov.add_edge(pa, r1)
    ov.add_edge(pa, r2)
    ov.add_edge(w["w3"], r2)
    return ov, w, (r1, r2), pa


class TestPlanCaching:
    def test_push_plan_compiled_once_per_writer(self):
        ov, w, readers, pa = shared_overlay()
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        for _ in range(5):
            rt.write("w1", 1.0)
        assert rt.plan_compiles == 1
        rt.write("w3", 1.0)
        assert rt.plan_compiles == 2

    def test_pull_plan_compiled_once_per_reader(self):
        # The object backend compiles one monolithic pull plan; the
        # columnar backend compiles one segment per pull node on the path.
        # Either way the first read pays for compilation and later reads
        # hit the cache.
        ov, w, (r1, r2), pa = shared_overlay()
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.read("r1")
        after_first = rt.plan_compiles
        assert after_first >= 1
        for _ in range(3):
            rt.read("r1")
        assert rt.plan_compiles == after_first

    def test_plan_replays_interpreter_exactly(self):
        """Compiled execution matches the uncompiled micro-step reference
        in values, work counters and observed push frequencies."""
        for aggregate, values in (
            (Sum(), [3.0, 4.0, 5.0]),
            (Max(), [3.0, 9.0, 5.0]),
            (TopK(2), ["a", "b", "a"]),
        ):
            ov1, *_ = shared_overlay()
            ov1.set_all_decisions(Decision.PUSH)
            compiled = Runtime(ov1, EgoQuery(aggregate=aggregate, window=TupleWindow(2)))
            ov2, *_ = shared_overlay()
            ov2.set_all_decisions(Decision.PUSH)
            reference = Runtime(ov2, EgoQuery(aggregate=aggregate, window=TupleWindow(2)))
            for node, value in zip(("w1", "w2", "w1"), values):
                compiled.write(node, value)
                # reference path: identical writer step, uncompiled DFS
                reference.clock += 1.0
                handle = reference.overlay.writer_of[node]
                evicted = reference.buffers[node].append(value, reference.clock)
                message = reference.writer_step(handle, [value], evicted)
                if message is not None:
                    reference.propagate_from(handle, message)
            # element-wise: the store may be a columnar wrapper, and the
            # observed counters numpy arrays
            n = compiled.overlay.num_nodes
            assert [compiled.values[h] for h in range(n)] == [
                reference.values[h] for h in range(n)
            ]
            assert compiled.counters.push_ops == reference.counters.push_ops
            assert list(compiled.observed_push) == list(reference.observed_push)

    def test_compiled_pull_matches_reference_pull(self):
        ov, w, (r1, r2), pa = shared_overlay()
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("w1", 2.0)
        rt.write("w2", 3.0)
        rt.write("w3", 7.0)
        compiled = rt.read("r2")
        # reference: the uncompiled recursive pull
        handle = rt.overlay.reader_of["r2"]
        assert compiled == rt.aggregate.finalize(rt._pull(handle)) == 12.0

    def test_negative_edges_through_plans(self):
        ov = Overlay()
        w = {name: ov.add_writer(name) for name in ("a", "b", "c")}
        inner = ov.add_partial()  # a + b
        outer = ov.add_partial()  # a + b + c
        r = ov.add_reader("r")  # outer - inner = c
        ov.add_edge(w["a"], inner)
        ov.add_edge(w["b"], inner)
        ov.add_edge(inner, outer)
        ov.add_edge(w["c"], outer)
        ov.add_edge(outer, r)
        ov.add_edge(inner, r, sign=-1)
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("a", 10.0)
        rt.write("b", 20.0)
        rt.write("c", 3.0)
        assert rt.read("r") == 3.0


class TestPreciseInvalidation:
    def test_decision_flip_spares_untouched_plans(self):
        ov, w, (r1, r2), pa = shared_overlay()
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("w1", 1.0)  # compiles w1's plan (touches pa, r1, r2)
        rt.write("w3", 2.0)  # compiles w3's plan (touches r2 only)
        assert set(rt._push_plans) == {w["w1"], w["w3"]}
        rt.set_decision(r1, Decision.PULL)  # frontier flip
        # w1's plan traverses r1 -> dropped; w3's never sees r1 -> kept.
        assert w["w1"] not in rt._push_plans
        assert w["w3"] in rt._push_plans
        rt.write("w2", 5.0)
        assert rt.read("r1") == 6.0
        assert rt.read("r2") == 8.0

    def test_out_of_band_overlay_mutation_detected(self):
        ov, w, (r1, r2), pa = shared_overlay()
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("w1", 1.0)
        assert rt._push_plans
        # Mutate the overlay directly (no runtime API): the stamp check
        # must drop stale plans on the next touch.
        w4 = ov.add_writer("w4")
        ov.add_edge(w4, pa)
        rt.rebuild()
        rt.write("w4", 3.0)
        assert rt.read("r1") == 4.0

    def test_targeted_rebuild_keeps_unrelated_plans(self):
        # Two disjoint components: w1 -> pa -> r1 and w3 -> r2.
        ov = Overlay()
        w1, w3 = ov.add_writer("w1"), ov.add_writer("w3")
        pa = ov.add_partial()
        r1, r2 = ov.add_reader("r1"), ov.add_reader("r2")
        ov.add_edge(w1, pa)
        ov.add_edge(pa, r1)
        ov.add_edge(w3, r2)
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum(), window=TupleWindow(2)))
        rt.write("w1", 1.0)
        rt.write("w3", 2.0)
        compiles_before = rt.plan_compiles
        # Structural change local to w3/r2: direct edge removed.
        ov.remove_edge(w3, r2)
        rt.rebuild(dirty=ov.pop_dirty())
        # w3's plan (touching r2) dropped, w1's plan survives untouched.
        assert w1 in rt._push_plans
        assert w3 not in rt._push_plans
        rt.write("w1", 4.0)
        assert rt.plan_compiles == compiles_before  # no recompilation needed
        assert rt.read("r1") == 5.0
        assert rt.read("r2") == 0.0  # w3 no longer contributes

    def test_full_rebuild_invalidates_everything(self):
        ov, w, (r1, r2), pa = shared_overlay()
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("w1", 1.0)
        rt.read("r1")
        assert rt._push_plans or rt._pull_plans
        rt.rebuild()
        assert not rt._push_plans and not rt._pull_plans
        assert rt.plan_invalidations >= 1


class TestCSRSnapshot:
    def test_csr_roundtrip(self):
        ov, w, (r1, r2), pa = shared_overlay()
        csr = ov.to_csr()
        assert csr.num_nodes == ov.num_nodes
        assert csr.num_edges == ov.num_edges
        # Row slices reproduce the dict adjacency in insertion order.
        for dst in range(ov.num_nodes):
            srcs = csr.in_indices[csr.in_indptr[dst] : csr.in_indptr[dst + 1]]
            assert srcs == list(ov.inputs[dst])
        for src in range(ov.num_nodes):
            dsts = csr.out_indices[csr.out_indptr[src] : csr.out_indptr[src + 1]]
            assert dsts == list(ov.outputs[src])
        assert csr.fan_in == [ov.fan_in(h) for h in range(ov.num_nodes)]

    def test_csr_signs_and_decisions(self):
        ov = Overlay()
        a, b = ov.add_writer("a"), ov.add_writer("b")
        p = ov.add_partial()
        r = ov.add_reader("r")
        ov.add_edge(a, p)
        ov.add_edge(b, p)
        ov.add_edge(p, r)
        ov.add_edge(b, r, sign=-1)
        ov.set_decision(p, Decision.PUSH)
        csr = ov.to_csr()
        assert csr.in_signs[csr.in_indptr[r] : csr.in_indptr[r + 1]] == [1, -1]
        assert csr.push[a] and csr.push[b] and csr.push[p] and not csr.push[r]

    def test_csr_numpy_arrays(self):
        pytest.importorskip("numpy")
        ov, *_ = shared_overlay()
        arrays = ov.to_csr().numpy_arrays()
        assert arrays is not None
        assert arrays["out_indices"].dtype.kind == "i"
        assert len(arrays["push"]) == ov.num_nodes
