"""Batched write/read API: byte-identical to the per-event loop.

Seeded-random property tests driving two engines over the same stream —
one per-event, one through ``write_batch``/``read_batch`` — across overlay
algorithms × {Sum, Max, TopK} × tuple/time windows, with interleaved
structure events and adaptive decision flips invalidating compiled plans
mid-stream.  Values are small integers so float arithmetic is exact and
equality is byte-identical.
"""

import random

import pytest

from repro.core.aggregates import Max, Sum, TopK
from repro.core.engine import EAGrEngine
from repro.core.execution import Runtime
from repro.core.overlay import Decision, Overlay
from repro.core.query import EgoQuery
from repro.core.windows import TimeWindow, TupleWindow
from repro.graph.generators import random_graph
from repro.graph.neighborhoods import Neighborhood
from repro.graph.streams import StructureEvent, StructureOp

AGGREGATES = {
    "sum": Sum,
    "max": Max,
    "topk": lambda: TopK(3),
}

#: Overlay algorithms legal per aggregate (mirrors benchmarks SYSTEMS).
ALGORITHMS = {
    "sum": ("identity", "vnm_a", "vnm_n", "iob"),
    "max": ("identity", "vnm_a", "vnm_d", "iob"),
    "topk": ("identity", "vnm_a", "vnm_n", "iob"),
}

WINDOWS = {
    "tuple": lambda: TupleWindow(3),
    "time": lambda: TimeWindow(6.0),
}


def make_engine(graph, aggregate_name, algorithm, window_name, dataflow="mincut", **kwargs):
    query = EgoQuery(
        aggregate=AGGREGATES[aggregate_name](),
        window=WINDOWS[window_name](),
        neighborhood=Neighborhood.in_neighbors(),
    )
    return EAGrEngine(
        graph, query, overlay_algorithm=algorithm, dataflow=dataflow, **kwargs
    )


def random_value(rng, aggregate_name):
    if aggregate_name == "topk":
        return rng.choice(["a", "b", "c", "d"])
    return float(rng.randrange(10))


def drive_pair(
    engine_a,
    engine_b,
    aggregate_name,
    seed,
    num_events=240,
    batch_cap=13,
    structure_fraction=0.0,
):
    """Play one seeded stream through both engines and cross-check reads.

    ``engine_a`` sees every event individually; ``engine_b`` gets writes
    coalesced into batches of up to ``batch_cap``.  Reads flush the pending
    batch (they must observe all prior writes) and are asserted equal
    between the engines and against each engine's brute-force oracle.
    Structure events flush too and are applied to both engines, forcing
    plan invalidation between batches.
    """
    rng = random.Random(seed)
    nodes = sorted(engine_a.graph.nodes(), key=repr)
    buffered = []
    clock = 0.0
    checked = 0

    def flush():
        if buffered:
            engine_b.write_batch(buffered)
            buffered.clear()

    for _ in range(num_events):
        clock += 1.0
        roll = rng.random()
        if structure_fraction and roll < structure_fraction:
            flush()
            event = random_structure_event(rng, engine_a.graph)
            if event is not None:
                engine_a.apply_structure_event(event)
                engine_b.apply_structure_event(event)
            continue
        node = rng.choice(nodes)
        if roll < 0.65:
            value = random_value(rng, aggregate_name)
            engine_a.write(node, value, clock)
            buffered.append((node, value, clock))
            if len(buffered) >= batch_cap:
                flush()
        else:
            flush()
            got_a = engine_a.read(node)
            got_b = engine_b.read_batch([node])[0]
            assert got_a == got_b, (node, got_a, got_b)
            assert got_a == engine_a.reference_read(node)
            assert got_b == engine_b.reference_read(node)
            checked += 1
    flush()
    for node in nodes[:12]:
        got_a = engine_a.read(node)
        got_b = engine_b.read_batch([node])[0]
        assert got_a == got_b == engine_b.reference_read(node), node
        checked += 1
    return checked


def random_structure_event(rng, graph):
    roll = rng.random()
    nodes = sorted(graph.nodes(), key=repr)
    if roll < 0.45 and len(nodes) >= 2:
        u, v = rng.sample(nodes, 2)
        if not graph.has_edge(u, v):
            return StructureEvent(StructureOp.ADD_EDGE, u, v)
        return None
    if roll < 0.8:
        edges = sorted(graph.edges())
        if edges:
            u, v = edges[rng.randrange(len(edges))]
            return StructureEvent(StructureOp.REMOVE_EDGE, u, v)
        return None
    return StructureEvent(StructureOp.ADD_NODE, 1000 + rng.randrange(50))


@pytest.mark.parametrize("aggregate_name", sorted(AGGREGATES))
@pytest.mark.parametrize("window_name", sorted(WINDOWS))
def test_batch_matches_per_event_across_algorithms(aggregate_name, window_name):
    for index, algorithm in enumerate(ALGORITHMS[aggregate_name]):
        graph = random_graph(24, 70, seed=11)
        engine_a = make_engine(graph, aggregate_name, algorithm, window_name)
        engine_b = make_engine(graph.copy(), aggregate_name, algorithm, window_name)
        checked = drive_pair(
            engine_a, engine_b, aggregate_name, seed=100 * len(aggregate_name) + index
        )
        assert checked > 10, (aggregate_name, algorithm)


@pytest.mark.parametrize("aggregate_name", ["sum", "max"])
def test_batch_with_interleaved_structure_events(aggregate_name):
    """Structure events between batches invalidate plans; reads stay exact."""
    for maintain in (False, True):
        graph = random_graph(20, 55, seed=5)
        engine_a = make_engine(
            graph, aggregate_name, "vnm_a", "tuple", maintain=maintain
        )
        engine_b = make_engine(
            graph.copy(), aggregate_name, "vnm_a", "tuple", maintain=maintain
        )
        drive_pair(
            engine_a,
            engine_b,
            aggregate_name,
            seed=77,
            num_events=300,
            structure_fraction=0.08,
        )
        # Plans were actually exercised and actually invalidated (the
        # columnar backend batches through the scatter table instead of
        # per-writer plans).
        runtime = engine_b.runtime
        assert runtime.plan_compiles > 0 or runtime.scatter_builds > 0


def test_batch_with_adaptive_decision_flips():
    """Adaptive flips mid-stream only invalidate the touched plans."""
    graph = random_graph(20, 55, seed=9)
    kwargs = dict(adaptive=True)
    engine_a = make_engine(graph, "sum", "vnm_a", "tuple", **kwargs)
    engine_b = make_engine(graph.copy(), "sum", "vnm_a", "tuple", **kwargs)
    engine_a.controller.config.check_interval = 40
    engine_b.controller.config.check_interval = 40
    drive_pair(engine_a, engine_b, "sum", seed=13, num_events=500)


def test_write_batch_accepts_tuples_and_events():
    from repro.graph.streams import WriteEvent

    graph = random_graph(10, 25, seed=3)
    engine = make_engine(graph, "sum", "identity", "tuple")
    nodes = sorted(graph.nodes(), key=repr)
    count = engine.write_batch(
        [
            (nodes[0], 2.0),
            (nodes[1], 3.0, 5.0),
            WriteEvent(node=nodes[2], value=4.0, timestamp=6.0),
        ]
    )
    assert count == 3
    assert engine.counters.writes == 3
    for node in nodes:
        assert engine.read(node) == engine.reference_read(node)


def test_runtime_write_batch_time_window_eviction():
    """Deferred batch eviction ends in the same state as per-event expiry."""
    def build():
        ov = Overlay()
        w1, w2 = ov.add_writer("w1"), ov.add_writer("w2")
        pa = ov.add_partial()
        r = ov.add_reader("r")
        ov.add_edge(w1, pa)
        ov.add_edge(w2, pa)
        ov.add_edge(pa, r)
        ov.set_all_decisions(Decision.PUSH)
        return Runtime(ov, EgoQuery(aggregate=Sum(), window=TimeWindow(4.0)))

    stream = [
        ("w1", 5.0, 1.0),
        ("w2", 3.0, 2.0),
        ("w1", 2.0, 6.0),  # expires w1@1
        ("w2", 1.0, 9.0),  # expires w2@2 and w1@... (boundary)
        ("w1", 7.0, 12.0),
    ]
    per_event = build()
    for node, value, ts in stream:
        per_event.write(node, value, ts)
    batched = build()
    batched.write_batch(stream)
    assert per_event.read("r") == batched.read("r")
    assert per_event.counters.writes == batched.counters.writes


def test_write_batch_midbatch_error_leaves_consistent_state():
    """A bad item aborts the batch, but values already absorbed into the
    window buffers still propagate — reads keep matching the oracle."""
    graph = random_graph(10, 25, seed=3)
    engine = make_engine(graph, "sum", "identity", "time")
    nodes = sorted(graph.nodes(), key=repr)
    with pytest.raises(ValueError):
        engine.write_batch(
            [
                (nodes[0], 1.0, 10.0),
                (nodes[1], 4.0, 11.0),
                (nodes[0], 2.0, 3.0),  # non-monotone timestamp: raises
            ]
        )
    for node in nodes:
        assert engine.read(node) == engine.reference_read(node), node


def test_batched_observed_push_matches_per_event():
    """The adaptive controller's traffic estimate must not deflate under
    batching: observed_push is credited per coalesced event."""
    graph = random_graph(15, 40, seed=2)
    engine_a = make_engine(graph, "sum", "vnm_a", "tuple")
    engine_b = make_engine(graph.copy(), "sum", "vnm_a", "tuple")
    nodes = sorted(graph.nodes(), key=repr)
    rng = random.Random(6)
    # strictly increasing values: every write's delta is nonzero, so the
    # per-event loop propagates (and counts) every single write
    writes = [
        (rng.choice(nodes), float(tick + 1), float(tick + 1)) for tick in range(200)
    ]
    for node, value, timestamp in writes:
        engine_a.write(node, value, timestamp)
    for start in range(0, len(writes), 32):
        engine_b.write_batch(writes[start : start + 32])
    # (list() both sides: the columnar backend keeps these as numpy arrays)
    assert list(engine_a.runtime.observed_push) == list(engine_b.runtime.observed_push)
    # ...while the *work* counter reflects the coalescing savings
    assert engine_b.counters.push_ops <= engine_a.counters.push_ops


def test_collect_batch_tasks_survives_lazy_recompile():
    """A pending lazy recompile swaps engine.runtime inside the first
    flush; task collection must follow the live trace, not the dead one."""
    from repro.core.concurrency import collect_batch_tasks
    from repro.graph.streams import WriteEvent

    graph = random_graph(12, 30, seed=14)
    engine = make_engine(graph, "sum", "vnm_a", "tuple", collect_trace=True)
    nodes = sorted(graph.nodes(), key=repr)
    u, v = next(iter(graph.edges()))
    engine.apply_structure_event(StructureEvent(StructureOp.REMOVE_EDGE, u, v))
    events = [
        WriteEvent(node=nodes[tick % len(nodes)], value=1.0, timestamp=float(tick + 1))
        for tick in range(10)
    ]
    tasks = collect_batch_tasks(engine, events, batch_size=4)
    assert tasks and all(task for task in tasks)
    # Writes on nodes no reader observes are dropped (no trace op); every
    # other write must appear in the collected tasks.
    live_writers = set(engine.runtime.overlay.writer_of)
    expected = sum(1 for event in events if event.node in live_writers)
    assert sum(op.kind == "write" for task in tasks for op in task) == expected > 0


def test_threaded_submit_write_batch():
    from repro.core.concurrency import ThreadedEngine

    graph = random_graph(16, 40, seed=21)
    engine = make_engine(graph, "sum", "vnm_a", "tuple", dataflow="all_push")
    threaded = ThreadedEngine(engine, write_threads=2)
    rng = random.Random(4)
    nodes = sorted(graph.nodes(), key=repr)
    try:
        batch = []
        for tick in range(200):
            batch.append((rng.choice(nodes), float(rng.randrange(8)), float(tick + 1)))
            if len(batch) >= 16:
                threaded.submit_write_batch(batch)
                batch = []
        if batch:
            threaded.submit_write_batch(batch)
        threaded.drain()
        for node in nodes:
            assert threaded.read(node) == engine.reference_read(node), node
    finally:
        threaded.shutdown()


def test_partitioned_batch_api():
    from repro.core.partitioned import PartitionedEngine

    graph = random_graph(18, 50, seed=8)
    query = EgoQuery(
        aggregate=Sum(), window=TupleWindow(2), neighborhood=Neighborhood.in_neighbors()
    )
    sharded = PartitionedEngine(graph, query, num_shards=3, overlay_algorithm="vnm_a")
    single = EAGrEngine(graph.copy(), query, overlay_algorithm="vnm_a")
    rng = random.Random(31)
    nodes = sorted(graph.nodes(), key=repr)
    writes = [
        (rng.choice(nodes), float(rng.randrange(9)), float(tick + 1))
        for tick in range(150)
    ]
    sharded.write_batch(writes)
    single.write_batch(writes)
    reads = nodes + ["missing-node"]
    assert sharded.read_batch(reads) == [
        single.read(node) if node in graph else 0.0 for node in reads
    ]
