"""Value-store backends: ObjectStore ↔ ColumnarStore equivalence.

Seeded property drives play identical integer streams through two engines
that differ only in their value-store backend and assert every read comes
back byte-identical (value *and* type), across overlay algorithms ×
{SUM, COUNT, MEAN, MAX} × tuple/time windows, with window evictions,
adaptive decision flips and overlay surgery interleaved mid-stream.  A
masked-import test covers the pure-Python fallback when numpy is absent.
"""

import random

import pytest

from repro.core import statestore
from repro.core.aggregates import Count, Max, Mean, Sum, TopK
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.statestore import (
    ColumnarStore,
    ObjectStore,
    SharedColumnarStore,
    ValueStoreError,
    attach_segment,
    make_value_store,
    resolve_value_store,
    unlink_segment,
)
from repro.core.windows import (
    NO_VALUE,
    TimeWindow,
    TupleWindow,
    _ScalarTimeBuffer,
    _ScalarTupleBuffer,
    _ScalarUnitBuffer,
    _TimeBuffer,
    _TupleBuffer,
)
from repro.graph.generators import random_graph
from repro.graph.neighborhoods import Neighborhood
from repro.graph.streams import StructureEvent, StructureOp

HAVE_NUMPY = statestore._np is not None

AGGREGATES = {
    "sum": Sum,
    "count": Count,
    "mean": Mean,
    "max": Max,
}

#: Overlay algorithms legal per aggregate (vnm_n needs subtraction,
#: vnm_d needs duplicate insensitivity).
ALGORITHMS = {
    "sum": ("identity", "vnm_a", "vnm_n", "iob"),
    "count": ("identity", "vnm_a", "vnm_n", "iob"),
    "mean": ("identity", "vnm_a", "vnm_n", "iob"),
    "max": ("identity", "vnm_a", "vnm_d", "iob"),
}

WINDOWS = {
    "unit": lambda: TupleWindow(1),
    "tuple": lambda: TupleWindow(3),
    "time": lambda: TimeWindow(6.0),
}


def make_engine(graph, aggregate_name, algorithm, window_name, value_store, **kwargs):
    query = EgoQuery(
        aggregate=AGGREGATES[aggregate_name](),
        window=WINDOWS[window_name](),
        neighborhood=Neighborhood.in_neighbors(),
    )
    kwargs.setdefault("dataflow", "mincut")
    return EAGrEngine(
        graph,
        query,
        overlay_algorithm=algorithm,
        value_store=value_store,
        **kwargs,
    )


def random_structure_event(rng, graph):
    roll = rng.random()
    nodes = sorted(graph.nodes(), key=repr)
    if roll < 0.45 and len(nodes) >= 2:
        u, v = rng.sample(nodes, 2)
        if not graph.has_edge(u, v):
            return StructureEvent(StructureOp.ADD_EDGE, u, v)
        return None
    if roll < 0.8:
        edges = sorted(graph.edges())
        if edges:
            u, v = edges[rng.randrange(len(edges))]
            return StructureEvent(StructureOp.REMOVE_EDGE, u, v)
        return None
    return StructureEvent(StructureOp.ADD_NODE, 900 + rng.randrange(40))


def drive_backend_pair(
    object_engine,
    columnar_engine,
    seed,
    num_events=220,
    batch_cap=11,
    structure_fraction=0.0,
):
    """Play one seeded integer stream through both backends.

    Both engines ingest identically (batched writes, flushed on reads);
    every read is asserted byte-identical between backends — equal value
    AND equal Python type — and checked against the brute-force oracle.
    """
    rng = random.Random(seed)
    nodes = sorted(object_engine.graph.nodes(), key=repr)
    buffered = []
    clock = 0.0
    checked = 0

    def flush():
        if buffered:
            object_engine.write_batch(buffered)
            columnar_engine.write_batch(list(buffered))
            buffered.clear()

    for _ in range(num_events):
        clock += 1.0
        roll = rng.random()
        if structure_fraction and roll < structure_fraction:
            flush()
            event = random_structure_event(rng, object_engine.graph)
            if event is not None:
                object_engine.apply_structure_event(event)
                columnar_engine.apply_structure_event(event)
            continue
        node = rng.choice(nodes)
        if roll < 0.6:
            value = float(rng.randrange(9))
            buffered.append((node, value, clock))
            if len(buffered) >= batch_cap:
                flush()
        else:
            flush()
            got_object = object_engine.read(node)
            got_columnar = columnar_engine.read(node)
            assert got_object == got_columnar, (node, got_object, got_columnar)
            assert type(got_object) is type(got_columnar), (
                node,
                type(got_object),
                type(got_columnar),
            )
            assert got_object == object_engine.reference_read(node)
            checked += 1
    flush()
    for node in nodes[:10] + nodes[:2]:  # repeats exercise batch memo reuse
        batch_object = object_engine.read_batch([node, node])
        batch_columnar = columnar_engine.read_batch([node, node])
        assert batch_object == batch_columnar, node
        assert batch_object[0] == object_engine.reference_read(node), node
        checked += 1
    return checked


@pytest.mark.parametrize("aggregate_name", sorted(AGGREGATES))
@pytest.mark.parametrize("window_name", sorted(WINDOWS))
def test_backend_parity_across_algorithms(aggregate_name, window_name):
    for index, algorithm in enumerate(ALGORITHMS[aggregate_name]):
        graph = random_graph(22, 60, seed=31)
        object_engine = make_engine(
            graph, aggregate_name, algorithm, window_name, "object"
        )
        columnar_engine = make_engine(
            graph.copy(), aggregate_name, algorithm, window_name, "columnar"
        )
        if HAVE_NUMPY:
            assert columnar_engine.value_store_backend == "columnar"
        assert object_engine.value_store_backend == "object"
        checked = drive_backend_pair(
            object_engine,
            columnar_engine,
            seed=37 * len(aggregate_name) + index,
        )
        assert checked > 10, (aggregate_name, algorithm, window_name)


@pytest.mark.parametrize("aggregate_name", ["sum", "mean", "max"])
def test_backend_parity_under_overlay_surgery(aggregate_name):
    """Structure events mid-stream resize/remap columns through the dirty
    set machinery; both backends keep answering identically."""
    for maintain in (False, True):
        graph = random_graph(18, 48, seed=7)
        object_engine = make_engine(
            graph, aggregate_name, "vnm_a", "unit", "object", maintain=maintain
        )
        columnar_engine = make_engine(
            graph.copy(), aggregate_name, "vnm_a", "unit", "columnar", maintain=maintain
        )
        drive_backend_pair(
            object_engine,
            columnar_engine,
            seed=91,
            num_events=280,
            structure_fraction=0.08,
        )


def test_backend_parity_with_adaptive_flips():
    """Adaptive decision flips mid-stream: columns re-materialize on push
    flips and clear on pull flips, matching the object store exactly."""
    graph = random_graph(18, 48, seed=3)
    object_engine = make_engine(graph, "sum", "vnm_a", "tuple", "object", adaptive=True)
    columnar_engine = make_engine(
        graph.copy(), "sum", "vnm_a", "tuple", "columnar", adaptive=True
    )
    object_engine.controller.config.check_interval = 40
    columnar_engine.controller.config.check_interval = 40
    drive_backend_pair(object_engine, columnar_engine, seed=17, num_events=420)


# ---------------------------------------------------------------------------
# store unit behavior
# ---------------------------------------------------------------------------


class TestStores:
    def test_resolution(self):
        expected = "columnar" if HAVE_NUMPY else "object"
        assert resolve_value_store(Sum(), "auto") == expected
        assert resolve_value_store(Sum(), "object") == "object"
        assert resolve_value_store(TopK(3), "auto") == "object"
        # columnar is a request, degraded when unsupported
        assert resolve_value_store(TopK(3), "columnar") == "object"
        with pytest.raises(ValueStoreError):
            resolve_value_store(Sum(), "bogus")

    def test_object_store_roundtrip(self):
        store = make_value_store(TopK(3), 4, "auto")
        assert isinstance(store, ObjectStore)
        assert store[2] is None
        store[2] = {"a": 1}
        assert store[2] == {"a": 1}
        store.resize(2)
        assert len(store) == 2 and store[1] is None

    @pytest.mark.skipif(not HAVE_NUMPY, reason="columnar store requires numpy")
    def test_columnar_roundtrip_types(self):
        for aggregate, pao in (
            (Sum(), 3.5),
            (Count(), 7),
            (Mean(), (4.0, 2)),
            (Max(), 9.0),
        ):
            store = make_value_store(aggregate, 5, "columnar")
            assert isinstance(store, ColumnarStore)
            assert store[1] is None  # unassigned handles read as None
            store[1] = pao
            got = store[1]
            assert got == pao and type(got) is type(pao)
            store[1] = None
            assert store[1] is None

    @pytest.mark.skipif(not HAVE_NUMPY, reason="columnar store requires numpy")
    def test_columnar_lattice_identity(self):
        store = make_value_store(Max(), 3, "columnar")
        store[0] = None
        assert store[0] is None
        store[0] = Max().identity()  # identity is None for lattices
        assert store[0] is None

    @pytest.mark.skipif(not HAVE_NUMPY, reason="columnar store requires numpy")
    def test_columnar_resize_remaps(self):
        store = make_value_store(Mean(), 3, "columnar")
        store[2] = (6.0, 3)
        store.resize(6)  # grow: everything reverts to cleared identity
        assert len(store) == 6
        assert all(store[h] is None for h in range(6))
        store[5] = (1.0, 1)
        store.resize(6)  # same-size remap also resets
        assert store[5] is None


# ---------------------------------------------------------------------------
# shared-memory columns
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_NUMPY, reason="shared store requires numpy")
@pytest.mark.parametrize("aggregate_name", ["sum", "mean", "max"])
def test_shared_backend_parity(aggregate_name):
    """`value_store="shared"` answers byte-identically to the object
    store across the same seeded drive the columnar backend passes."""
    graph = random_graph(20, 56, seed=61)
    object_engine = make_engine(graph, aggregate_name, "vnm_a", "tuple", "object")
    shared_engine = make_engine(
        graph.copy(), aggregate_name, "vnm_a", "tuple", "shared"
    )
    assert shared_engine.value_store_backend == "shared"
    store = shared_engine.runtime.values
    try:
        checked = drive_backend_pair(object_engine, shared_engine, seed=59)
        assert checked > 10
    finally:
        store.unlink()


@pytest.mark.skipif(not HAVE_NUMPY, reason="shared store requires numpy")
def test_shared_attach_by_name_sees_identical_state():
    """A second process-style attachment by name reads the same bytes the
    owner wrote — the serve tier's zero-copy read contract."""
    engine = make_engine(
        random_graph(16, 44, seed=21), "sum", "vnm_a", "unit", "shared"
    )
    store = engine.runtime.values
    try:
        nodes = sorted(engine.graph.nodes(), key=repr)
        engine.write_batch([(node, float(i + 1)) for i, node in enumerate(nodes)])
        peer = SharedColumnarStore.attach(Sum().column_spec, store.name)
        assert len(peer) == len(store)
        assert peer.read_seq() == store.read_seq()
        for handle in range(len(store)):
            assert peer[handle] == store[handle], handle
        # writes by the owner become visible through the same mapping
        engine.write_batch([(nodes[0], 100.0)])
        for handle in range(len(store)):
            assert peer[handle] == store[handle], handle
        peer.close()
    finally:
        store.unlink()


@pytest.mark.skipif(not HAVE_NUMPY, reason="shared store requires numpy")
class TestSharedLifecycle:
    def test_create_adopt_unlink_roundtrip(self):
        spec = Sum().column_spec
        store = SharedColumnarStore(spec, 6, name="eagr_test_lifecycle")
        store[3] = 7.5
        store.close()  # mapping dropped, segment survives
        adopted = SharedColumnarStore(spec, 6, name="eagr_test_lifecycle")
        assert adopted[3] is None  # adoption resets to identity state
        adopted[2] = 1.25
        assert adopted[2] == 1.25
        adopted.unlink()
        with pytest.raises(FileNotFoundError):
            attach_segment("eagr_test_lifecycle")
        assert unlink_segment("eagr_test_lifecycle") is False  # exactly-once

    def test_seqlock_brackets(self):
        store = SharedColumnarStore(Sum().column_spec, 4)
        try:
            assert store.read_seq() == 0
            store.begin_batch()
            assert store.read_seq() % 2 == 1  # in flight: readers retry
            store.end_batch()
            assert store.read_seq() == 2
        finally:
            store.unlink()

    def test_resize_within_capacity_and_growth(self):
        store = SharedColumnarStore(Mean().column_spec, 4, capacity=8)
        name = store.name
        try:
            store[1] = (4.0, 2)
            store.resize(8)  # within capacity: same segment, reset state
            assert store.name == name
            assert all(store[h] is None for h in range(8))
            store.resize(32)  # growth: fresh segment, old one unlinked
            assert store.name != name
            assert len(store) == 32
            with pytest.raises(FileNotFoundError):
                attach_segment(name)
            peer = SharedColumnarStore.attach(Mean().column_spec, store.name)
            with pytest.raises(ValueStoreError):
                peer.resize(64)  # attached peers cannot grow the segment
            peer.close()
        finally:
            store.unlink()

    def test_not_picklable(self):
        import pickle

        store = SharedColumnarStore(Sum().column_spec, 2)
        try:
            with pytest.raises(TypeError):
                pickle.dumps(store)
        finally:
            store.unlink()

    def test_resolution_and_fallback(self):
        assert resolve_value_store(Sum(), "shared") == "shared"
        assert resolve_value_store(TopK(3), "shared") == "object"
        store = make_value_store(Sum(), 3, "shared")
        assert isinstance(store, SharedColumnarStore)
        store.unlink()


# ---------------------------------------------------------------------------
# vectorized lattice batches (MAX/MIN grow-only scatters)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_NUMPY, reason="columnar store requires numpy")
@pytest.mark.parametrize("aggregate", ["max", "min"])
def test_lattice_batches_take_the_scatter_path(aggregate):
    """Eviction-free MAX/MIN batches apply as extremum scatters (no
    snapshot dicts retained), and mixed grow/evict batches still match
    the object backend and the brute-force oracle."""
    from repro.core.aggregates import Min

    aggregates = {"max": Max, "min": Min}
    graph = random_graph(18, 50, seed=77)
    query = EgoQuery(
        aggregate=aggregates[aggregate](),
        window=TupleWindow(2),
        neighborhood=Neighborhood.in_neighbors(),
    )
    object_engine = EAGrEngine(
        graph, query, overlay_algorithm="vnm_a", dataflow="mincut",
        value_store="object",
    )
    columnar_engine = EAGrEngine(
        graph.copy(), query, overlay_algorithm="vnm_a", dataflow="mincut",
        value_store="columnar",
    )
    runtime = columnar_engine.runtime
    assert runtime._lattice_columns
    # snapshot dicts are not materialized on the columnar lattice path
    assert all(snap is None for snap in runtime.snapshots)
    rng = random.Random(13)
    nodes = sorted(graph.nodes(), key=repr)
    for _ in range(40):
        batch = [
            (rng.choice(nodes), float(rng.randrange(12)))
            for _ in range(rng.randrange(1, 9))
        ]
        object_engine.write_batch(batch)
        columnar_engine.write_batch(list(batch))
    for node in nodes:
        expected = object_engine.read(node)
        assert columnar_engine.read(node) == expected, node
        assert expected == object_engine.reference_read(node), node


# ---------------------------------------------------------------------------
# no-numpy fallback (import masked)
# ---------------------------------------------------------------------------


def test_fallback_without_numpy(monkeypatch):
    """With numpy masked, every mode degrades to the object store and the
    engine still answers correctly."""
    monkeypatch.setattr(statestore, "_np", None)
    assert resolve_value_store(Sum(), "auto") == "object"
    assert resolve_value_store(Sum(), "columnar") == "object"
    with pytest.raises(ValueStoreError):
        ColumnarStore(Sum().column_spec, 3)
    graph = random_graph(12, 30, seed=5)
    engine = make_engine(graph, "sum", "vnm_a", "tuple", "auto")
    assert engine.value_store_backend == "object"
    nodes = sorted(graph.nodes(), key=repr)
    engine.write_batch([(node, 2.0) for node in nodes])
    for node in nodes[:8]:
        assert engine.read(node) == engine.reference_read(node)


# ---------------------------------------------------------------------------
# batch-aware pull memoization
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("value_store", ["object", "columnar"])
def test_read_batch_memoizes_shared_pull_subtrees(value_store):
    """Within one read_batch, shared pull subtrees evaluate once: the memo
    records hits, pull work drops, answers stay identical."""
    graph = random_graph(20, 70, seed=13)
    engine = make_engine(graph, "sum", "vnm_a", "unit", value_store, dataflow="all_pull")
    nodes = sorted(graph.nodes(), key=repr)
    engine.write_batch([(node, float(i % 5 + 1)) for i, node in enumerate(nodes)])
    singles = [engine.read(node) for node in nodes]
    runtime = engine.runtime
    before_hits = runtime.pull_memo_hits
    before_ops = runtime.counters.pull_ops
    batch = engine.read_batch(nodes + nodes)  # duplicates force reuse
    assert batch == singles + singles
    assert runtime.pull_memo_hits > before_hits
    batched_ops = runtime.counters.pull_ops - before_ops
    # Re-reading every node twice must cost less than twice the singles.
    single_ops = before_ops  # singles above were the only prior reads
    assert batched_ops < 2 * single_ops


def test_write_batch_accepts_one_shot_iterators():
    """Generator input must not lose its consumed prefix when the fast
    extraction falls back to per-item dispatch (regression)."""
    graph = random_graph(12, 30, seed=41)
    from_list = make_engine(graph, "sum", "vnm_a", "unit", "auto")
    from_gen = make_engine(graph.copy(), "sum", "vnm_a", "unit", "auto")
    nodes = sorted(graph.nodes(), key=repr)
    writes = [(node, float(i + 1), float(i + 1)) for i, node in enumerate(nodes)]
    from_list.write_batch(writes)
    assert from_gen.write_batch(item for item in writes) == len(writes)
    for node in nodes:
        assert from_list.read(node) == from_gen.read(node) == from_gen.reference_read(
            node
        ), node


def test_read_batch_memo_does_not_leak_across_batches():
    graph = random_graph(14, 40, seed=19)
    engine = make_engine(graph, "sum", "vnm_a", "unit", "auto", dataflow="all_pull")
    nodes = sorted(graph.nodes(), key=repr)
    engine.write_batch([(node, 3.0) for node in nodes])
    first = engine.read_batch(nodes[:4])
    engine.write_batch([(node, 5.0) for node in nodes])  # state moves on
    second = engine.read_batch(nodes[:4])
    for node, got in zip(nodes[:4], second):
        assert got == engine.reference_read(node), node
    assert first != second  # stale memo entries would have leaked


# ---------------------------------------------------------------------------
# ring buffers
# ---------------------------------------------------------------------------


class TestRingBuffers:
    def test_unit_buffer_swap(self):
        buffer = _ScalarUnitBuffer()
        assert buffer.push(1.0, 0.0) is NO_VALUE
        assert buffer.push(2.0, 0.0) == 1.0
        assert buffer.values() == [2.0] and len(buffer) == 1
        assert buffer.append(3.0, 0.0) == [2.0]

    def test_tuple_ring_matches_deque_buffer(self):
        rng = random.Random(2)
        ring, deque_buffer = _ScalarTupleBuffer(3), _TupleBuffer(3)
        for tick in range(40):
            value = float(rng.randrange(10))
            assert ring.append(value, float(tick)) == deque_buffer.append(
                value, float(tick)
            )
            assert ring.values() == deque_buffer.values()
            assert len(ring) == len(deque_buffer)

    def test_time_ring_matches_deque_buffer(self):
        rng = random.Random(4)
        ring, deque_buffer = _ScalarTimeBuffer(5.0), _TimeBuffer(5.0)
        tick = 0.0
        for _ in range(60):  # enough appends to force ring growth
            tick += rng.random() * 2.0
            value = float(rng.randrange(10))
            assert ring.append(value, tick) == deque_buffer.append(value, tick)
            assert ring.values() == deque_buffer.values()
            assert ring.next_expiry() == deque_buffer.next_expiry()

    def test_time_ring_rejects_non_monotone(self):
        ring = _ScalarTimeBuffer(5.0)
        ring.append(1.0, 10.0)
        with pytest.raises(ValueError):
            ring.append(2.0, 3.0)

    def test_tuple_window_scalar_dispatch(self):
        assert isinstance(TupleWindow(1).make_buffer(scalar=True), _ScalarUnitBuffer)
        assert isinstance(TupleWindow(2).make_buffer(scalar=True), _ScalarTupleBuffer)
        assert isinstance(TupleWindow(2).make_buffer(), _TupleBuffer)
        assert isinstance(TimeWindow(4.0).make_buffer(scalar=True), _ScalarTimeBuffer)


# ---------------------------------------------------------------------------
# Mean two-column wiring (the dead fast_update satellite)
# ---------------------------------------------------------------------------


def test_mean_two_column_kernel_matches_object():
    """MEAN rides the columnar kernel as a (sum, count) pair — its
    inherited lattice ``fast_update`` stays unreachable (group aggregates
    never take the lattice path)."""
    graph = random_graph(16, 44, seed=23)
    object_engine = make_engine(graph, "mean", "vnm_a", "unit", "object")
    columnar_engine = make_engine(graph.copy(), "mean", "vnm_a", "unit", "columnar")
    rng = random.Random(29)
    nodes = sorted(graph.nodes(), key=repr)
    writes = [
        (rng.choice(nodes), float(rng.randrange(7)), float(tick + 1))
        for tick in range(300)
    ]
    for start in range(0, len(writes), 32):
        chunk = writes[start : start + 32]
        object_engine.write_batch(chunk)
        columnar_engine.write_batch(chunk)
    for node in nodes:
        got_object = object_engine.read(node)
        got_columnar = columnar_engine.read(node)
        assert got_object == got_columnar, node
        assert got_object == object_engine.reference_read(node), node
    spec = Mean.column_spec
    assert spec.sources == ("value", "count")
    assert spec.dtypes == ("float64", "int64")
