"""Unit tests for the aggregation overlay graph structure."""

import pytest

from repro.core.overlay import Decision, NodeKind, Overlay, OverlayError
from repro.graph.bipartite import BipartiteGraph


@pytest.fixture
def small_ag():
    return BipartiteGraph({"r1": ("w1", "w2"), "r2": ("w1", "w2", "w3")})


@pytest.fixture
def shared_overlay(small_ag):
    """w1,w2 -> PA -> {r1, r2};  w3 -> r2."""
    ov = Overlay()
    w1, w2, w3 = ov.add_writer("w1"), ov.add_writer("w2"), ov.add_writer("w3")
    r1, r2 = ov.add_reader("r1"), ov.add_reader("r2")
    pa = ov.add_partial()
    ov.add_edge(w1, pa)
    ov.add_edge(w2, pa)
    ov.add_edge(pa, r1)
    ov.add_edge(pa, r2)
    ov.add_edge(w3, r2)
    return ov


class TestStructure:
    def test_node_handles_dense(self, shared_overlay):
        assert shared_overlay.num_nodes == 6
        assert shared_overlay.num_partials == 1

    def test_add_writer_idempotent(self):
        ov = Overlay()
        assert ov.add_writer("w") == ov.add_writer("w")

    def test_reader_cannot_feed(self, shared_overlay):
        r1 = shared_overlay.reader_of["r1"]
        pa = next(shared_overlay.partial_handles())
        with pytest.raises(OverlayError):
            shared_overlay.add_edge(r1, pa)

    def test_writer_cannot_receive(self, shared_overlay):
        w1 = shared_overlay.writer_of["w1"]
        pa = next(shared_overlay.partial_handles())
        with pytest.raises(OverlayError):
            shared_overlay.add_edge(pa, w1)

    def test_duplicate_edge_rejected(self, shared_overlay):
        w1 = shared_overlay.writer_of["w1"]
        pa = next(shared_overlay.partial_handles())
        with pytest.raises(OverlayError):
            shared_overlay.add_edge(w1, pa)

    def test_self_loop_rejected(self, shared_overlay):
        pa = next(shared_overlay.partial_handles())
        with pytest.raises(OverlayError):
            shared_overlay.add_edge(pa, pa)

    def test_bad_sign_rejected(self, shared_overlay):
        w3 = shared_overlay.writer_of["w3"]
        r1 = shared_overlay.reader_of["r1"]
        with pytest.raises(OverlayError):
            shared_overlay.add_edge(w3, r1, sign=2)

    def test_remove_edge_returns_sign(self):
        ov = Overlay()
        w = ov.add_writer("w")
        r = ov.add_reader("r")
        ov.add_edge(w, r, sign=-1)
        assert ov.remove_edge(w, r) == -1
        assert ov.num_edges == 0

    def test_remove_missing_edge_raises(self, shared_overlay):
        with pytest.raises(OverlayError):
            shared_overlay.remove_edge(0, 1)

    def test_edges_iterator_with_signs(self):
        ov = Overlay()
        w = ov.add_writer("w")
        r = ov.add_reader("r")
        ov.add_edge(w, r, sign=-1)
        assert list(ov.edges()) == [(w, r, -1)]
        assert ov.num_negative_edges == 1


class TestDecisions:
    def test_writers_default_push_others_pull(self, shared_overlay):
        for handle in shared_overlay.writer_handles():
            assert shared_overlay.decisions[handle] is Decision.PUSH
        for handle in shared_overlay.reader_handles():
            assert shared_overlay.decisions[handle] is Decision.PULL

    def test_writer_cannot_be_pull(self, shared_overlay):
        w = shared_overlay.writer_of["w1"]
        with pytest.raises(OverlayError):
            shared_overlay.set_decision(w, Decision.PULL)

    def test_consistency_detection(self, shared_overlay):
        pa = next(shared_overlay.partial_handles())
        r1 = shared_overlay.reader_of["r1"]
        shared_overlay.set_decision(r1, Decision.PUSH)  # pull pa feeds push r1
        assert not shared_overlay.decisions_consistent()
        shared_overlay.set_decision(pa, Decision.PUSH)
        assert shared_overlay.decisions_consistent()

    def test_set_all(self, shared_overlay):
        shared_overlay.set_all_decisions(Decision.PUSH)
        assert shared_overlay.decisions_consistent()
        assert all(d is Decision.PUSH for d in shared_overlay.decisions)


class TestTraversal:
    def test_topological_order(self, shared_overlay):
        order = shared_overlay.topological_order()
        position = {h: i for i, h in enumerate(order)}
        for src, dst, _ in shared_overlay.edges():
            assert position[src] < position[dst]

    def test_cycle_detected(self):
        ov = Overlay()
        a, b = ov.add_partial(), ov.add_partial()
        ov.add_edge(a, b)
        ov.add_edge(b, a)
        with pytest.raises(OverlayError):
            ov.topological_order()

    def test_upstream_downstream(self, shared_overlay):
        pa = next(shared_overlay.partial_handles())
        r2 = shared_overlay.reader_of["r2"]
        w1 = shared_overlay.writer_of["w1"]
        assert shared_overlay.upstream(r2) == {
            pa,
            w1,
            shared_overlay.writer_of["w2"],
            shared_overlay.writer_of["w3"],
        }
        assert shared_overlay.downstream(w1) == {
            pa,
            shared_overlay.reader_of["r1"],
            r2,
        }


class TestCoverageAndValidation:
    def test_coverage_through_partial(self, shared_overlay):
        r2 = shared_overlay.reader_of["r2"]
        cover = shared_overlay.coverage(r2)
        labels = {shared_overlay.labels[h]: m for h, m in cover.items()}
        assert labels == {"w1": 1, "w2": 1, "w3": 1}

    def test_validate_accepts_correct(self, shared_overlay, small_ag):
        shared_overlay.validate(small_ag)

    def test_validate_rejects_missing_writer(self, small_ag):
        ov = Overlay.identity(small_ag)
        ov.remove_edge(ov.writer_of["w1"], ov.reader_of["r1"])
        with pytest.raises(OverlayError):
            ov.validate(small_ag)

    def test_validate_rejects_duplicate_path(self, shared_overlay, small_ag):
        # Add a second (direct) path w1 -> r1: multiplicity 2.
        shared_overlay.add_edge(
            shared_overlay.writer_of["w1"], shared_overlay.reader_of["r1"]
        )
        with pytest.raises(OverlayError):
            shared_overlay.validate(small_ag)
        # ... which is fine for duplicate-insensitive aggregates.
        shared_overlay.validate(small_ag, duplicate_insensitive=True)

    def test_validate_negative_edge_cancellation(self, small_ag):
        # PA over {w1, w2, w3} serves r1 with a negative w3 edge.
        ov = Overlay()
        handles = {w: ov.add_writer(w) for w in ("w1", "w2", "w3")}
        r1, r2 = ov.add_reader("r1"), ov.add_reader("r2")
        pa = ov.add_partial()
        for w in handles.values():
            ov.add_edge(w, pa)
        ov.add_edge(pa, r1)
        ov.add_edge(handles["w3"], r1, sign=-1)
        ov.add_edge(pa, r2)
        ov.validate(small_ag)

    def test_validate_rejects_negative_edges_for_dup_insensitive(self, small_ag):
        ov = Overlay.identity(small_ag)
        ov.remove_edge(ov.writer_of["w3"], ov.reader_of["r2"])
        pa = ov.add_partial()
        ov.add_edge(ov.writer_of["w3"], pa)
        ov.add_edge(pa, ov.reader_of["r2"])
        ov.add_edge(pa, ov.reader_of["r1"])
        ov.add_edge(ov.writer_of["w3"], ov.reader_of["r1"], sign=-1)
        ov.validate(small_ag)  # fine for SUM-like
        with pytest.raises(OverlayError):
            ov.validate(small_ag, duplicate_insensitive=True)

    def test_validate_rejects_spurious_writer(self, small_ag):
        ov = Overlay.identity(small_ag)
        ov.add_edge(ov.writer_of["w3"], ov.reader_of["r1"])
        with pytest.raises(OverlayError):
            ov.validate(small_ag)


class TestMetricsAndCopy:
    def test_identity_overlay(self, small_ag):
        ov = Overlay.identity(small_ag)
        assert ov.num_edges == small_ag.num_edges
        assert ov.sharing_index(small_ag) == 0.0
        ov.validate(small_ag)

    def test_sharing_index(self, shared_overlay, small_ag):
        assert shared_overlay.sharing_index(small_ag) == 0.0  # 5 edges == 5 edges

    def test_reader_depths(self, shared_overlay):
        depths = shared_overlay.reader_depths()
        assert depths[shared_overlay.reader_of["r1"]] == 2
        assert depths[shared_overlay.reader_of["r2"]] == 2

    def test_copy_independent(self, shared_overlay, small_ag):
        clone = shared_overlay.copy()
        clone.remove_edge(clone.writer_of["w3"], clone.reader_of["r2"])
        shared_overlay.validate(small_ag)  # original untouched
        assert clone.num_edges == shared_overlay.num_edges - 1

    def test_memory_estimate_positive(self, shared_overlay):
        assert shared_overlay.memory_estimate() > 0
