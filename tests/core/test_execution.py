"""Unit tests for the overlay execution runtime."""

import pytest

from repro.core.aggregates import Max, Sum, TopK
from repro.core.execution import Runtime
from repro.core.overlay import Decision, Overlay, OverlayError
from repro.core.query import EgoQuery
from repro.core.windows import TimeWindow, TupleWindow
from repro.graph.neighborhoods import Neighborhood


def shared_overlay():
    """w1,w2 -> PA -> {r1, r2};  w3 -> r2 (handles returned for poking)."""
    ov = Overlay()
    w = {name: ov.add_writer(name) for name in ("w1", "w2", "w3")}
    r1, r2 = ov.add_reader("r1"), ov.add_reader("r2")
    pa = ov.add_partial()
    ov.add_edge(w["w1"], pa)
    ov.add_edge(w["w2"], pa)
    ov.add_edge(pa, r1)
    ov.add_edge(pa, r2)
    ov.add_edge(w["w3"], r2)
    return ov, w, (r1, r2), pa


def make_runtime(decisions="push", aggregate=None, window=None, **kwargs):
    ov, w, readers, pa = shared_overlay()
    if decisions == "push":
        ov.set_all_decisions(Decision.PUSH)
    query = EgoQuery(
        aggregate=aggregate or Sum(), window=window or TupleWindow(1)
    )
    return Runtime(ov, query, **kwargs), ov, w, readers, pa


class TestPushExecution:
    def test_sum_propagates(self):
        rt, ov, w, (r1, r2), pa = make_runtime("push")
        rt.write("w1", 3.0)
        rt.write("w2", 4.0)
        rt.write("w3", 5.0)
        assert rt.read("r1") == 7.0
        assert rt.read("r2") == 12.0

    def test_window_replacement(self):
        rt, *_ = make_runtime("push")
        rt.write("w1", 3.0)
        rt.write("w1", 10.0)  # tuple window of 1: replaces
        assert rt.read("r1") == 10.0

    def test_unknown_writer_dropped(self):
        rt, *_ = make_runtime("push")
        rt.write("ghost", 1.0)
        assert rt.read("r1") == 0.0

    def test_unknown_reader_gets_identity(self):
        rt, *_ = make_runtime("push")
        assert rt.read("ghost") == 0.0

    def test_counters(self):
        rt, *_ = make_runtime("push")
        rt.write("w1", 1.0)
        rt.read("r1")
        assert rt.counters.writes == 1
        assert rt.counters.reads == 1
        assert rt.counters.push_ops >= 2  # pa and r1 at least

    def test_max_fast_path_and_recompute(self):
        rt, ov, w, (r1, r2), pa = make_runtime("push", aggregate=Max())
        rt.write("w1", 5.0)
        rt.write("w2", 3.0)
        assert rt.read("r1") == 5.0
        rt.write("w1", 1.0)  # the max shrinks: forces recompute path
        assert rt.read("r1") == 3.0

    def test_topk_counts(self):
        rt, *_ = make_runtime("push", aggregate=TopK(2), window=TupleWindow(3))
        for value in ("x", "y", "x"):
            rt.write("w1", value)
        assert rt.read("r1") == [("x", 2), ("y", 1)]


class TestPullExecution:
    def test_all_pull(self):
        rt, ov, w, (r1, r2), pa = make_runtime("pull")
        rt.write("w1", 3.0)
        rt.write("w3", 5.0)
        assert rt.read("r2") == 8.0
        assert rt.counters.pull_ops > 0
        assert rt.counters.push_ops == 0

    def test_mixed_frontier(self):
        ov, w, (r1, r2), pa = shared_overlay()
        ov.set_decision(pa, Decision.PUSH)  # pa push, readers pull
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("w1", 2.0)
        rt.write("w2", 3.0)
        assert rt.read("r1") == 5.0
        # writes reached pa but stopped there
        assert rt.values[r1] is None

    def test_inconsistent_decisions_rejected(self):
        ov, w, (r1, r2), pa = shared_overlay()
        ov.set_decision(r1, Decision.PUSH)  # pull pa feeding push r1
        with pytest.raises(OverlayError):
            Runtime(ov, EgoQuery(aggregate=Sum()))


class TestNegativeEdges:
    def make_negative(self):
        """pa = w1+w2+w3 -> r1 with negative w3; direct w3 -> r2... plus r2=pa."""
        ov = Overlay()
        w = {name: ov.add_writer(name) for name in ("w1", "w2", "w3")}
        r1, r2 = ov.add_reader("r1"), ov.add_reader("r2")
        pa = ov.add_partial()
        for h in w.values():
            ov.add_edge(h, pa)
        ov.add_edge(pa, r1)
        ov.add_edge(w["w3"], r1, sign=-1)  # r1 = w1 + w2
        ov.add_edge(pa, r2)  # r2 = w1 + w2 + w3
        return ov, w, r1, r2

    def test_push_subtracts(self):
        ov, w, r1, r2 = self.make_negative()
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("w1", 1.0)
        rt.write("w2", 2.0)
        rt.write("w3", 10.0)
        assert rt.read("r1") == 3.0
        assert rt.read("r2") == 13.0

    def test_pull_subtracts(self):
        ov, w, r1, r2 = self.make_negative()
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("w3", 10.0)
        rt.write("w1", 4.0)
        assert rt.read("r1") == 4.0

    def test_negative_edges_need_subtractable(self):
        ov, w, r1, r2 = self.make_negative()
        with pytest.raises(OverlayError):
            Runtime(ov, EgoQuery(aggregate=Max()))


class TestTimeWindows:
    def test_expiry_updates_push_state(self):
        rt, ov, w, (r1, r2), pa = make_runtime(
            "push", window=TimeWindow(10.0)
        )
        rt.write("w1", 5.0, timestamp=0.0)
        rt.write("w2", 7.0, timestamp=1.0)
        assert rt.read("r1") == 12.0
        # Advance the clock past w1's lifetime ([0, 10)) but inside w2's.
        rt.write("w3", 1.0, timestamp=10.5)
        assert rt.read("r1") == 7.0

    def test_expiry_affects_pull_reads(self):
        ov, w, (r1, r2), pa = shared_overlay()
        rt = Runtime(ov, EgoQuery(aggregate=Sum(), window=TimeWindow(5.0)))
        rt.write("w1", 5.0, timestamp=0.0)
        rt.write("w1", 2.0, timestamp=4.0)
        assert rt.read("r1") == 7.0
        rt.write("w2", 0.0, timestamp=20.0)
        assert rt.read("r1") == 0.0

    def test_multiple_values_in_window(self):
        rt, *_ = make_runtime("push", window=TimeWindow(100.0))
        rt.write("w1", 1.0, timestamp=1.0)
        rt.write("w1", 2.0, timestamp=2.0)
        rt.write("w1", 3.0, timestamp=3.0)
        assert rt.read("r1") == 6.0


class TestDecisionFlips:
    def test_flip_to_push_materializes(self):
        ov, w, (r1, r2), pa = shared_overlay()
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("w1", 5.0)
        rt.set_decision(pa, Decision.PUSH)
        assert rt.values[pa] == 5.0
        rt.write("w2", 2.0)
        assert rt.read("r1") == 7.0

    def test_flip_to_pull_discards(self):
        rt, ov, w, (r1, r2), pa = make_runtime("push")
        rt.write("w1", 5.0)
        rt.set_decision(r1, Decision.PULL)
        assert rt.values[r1] is None
        assert rt.read("r1") == 5.0

    def test_flip_guard_non_frontier(self):
        ov, w, (r1, r2), pa = shared_overlay()
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        with pytest.raises(OverlayError):
            rt.set_decision(r1, Decision.PUSH)  # its input pa is pull

    def test_flip_guard_push_consumer(self):
        rt, ov, w, (r1, r2), pa = make_runtime("push")
        with pytest.raises(OverlayError):
            rt.set_decision(pa, Decision.PULL)  # its consumers are push

    def test_flip_noop(self):
        rt, ov, w, (r1, r2), pa = make_runtime("push")
        rt.set_decision(pa, Decision.PUSH)  # no change, no error


class TestObservedCounters:
    def test_would_be_pushes_counted_at_frontier(self):
        ov, w, (r1, r2), pa = shared_overlay()
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))  # all pull
        rt.write("w1", 1.0)
        rt.write("w1", 2.0)
        assert rt.observed_push[pa] == 2  # stopped there, still counted

    def test_pull_visits_counted(self):
        ov, w, (r1, r2), pa = shared_overlay()
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.read("r1")
        assert rt.observed_pull[r1] == 1
        assert rt.observed_pull[pa] == 1


class TestRebuildAndTrace:
    def test_rebuild_preserves_windows(self):
        rt, ov, w, (r1, r2), pa = make_runtime("push", window=TupleWindow(2))
        rt.write("w1", 1.0)
        rt.write("w1", 2.0)
        rt.rebuild()
        assert rt.read("r1") == 3.0

    def test_trace_collection(self):
        rt, *_ = make_runtime("push", collect_trace=True)
        rt.write("w1", 1.0)
        rt.read("r1")
        kinds = [op.kind for op in rt.trace]
        assert "write" in kinds and "push" in kinds and "read" in kinds

    def test_reference_read(self):
        rt, ov, w, (r1, r2), pa = make_runtime("push")
        rt.write("w1", 3.0)
        rt.write("w3", 4.0)
        assert rt.reference_read(["w1", "w3"]) == 7.0
        assert rt.reference_read(["ghost"]) == 0.0
