"""Pickle round-trips for everything the serving layer ships to workers.

The sharded serving layer (``repro.serve``) builds shard engines in worker
processes from pickled state, so compiled plans, the columnar value store,
CSR overlay snapshots, and the shard spec itself must survive pickling —
*byte-identically*: re-pickling the round-tripped object must produce the
same bytes, which pins down hidden state (locks, lambdas, open handles)
that pickle would silently mangle or reject.
"""

import pickle

import pytest

from repro.core.aggregates import Count, Max, Mean, Min, Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.statestore import ColumnarStore
from repro.core.windows import TupleWindow
from repro.graph.generators import paper_figure1, random_graph
from repro.graph.neighborhoods import Neighborhood
from repro.overlay.dynamic import OverlayMaintainer
from repro.serve.shard import ShardSpec

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False


def roundtrip(obj, byte_identical=True):
    """Pickle → unpickle; asserts byte identity, returns the clone.

    ``byte_identical=False`` is for objects carrying hash-ordered
    collections (the plans' ``touched`` frozensets): a rebuilt set may
    iterate in a different-but-equal order, so their pickles legally
    differ byte-for-byte while the contents are identical — those objects
    assert byte identity over their order-deterministic fields via
    :func:`stable_fields` instead.
    """
    data = pickle.dumps(obj)
    clone = pickle.loads(data)
    if byte_identical:
        assert pickle.dumps(clone) == data
    return clone


def stable_fields(obj, names):
    """Byte identity of the order-deterministic projection of ``obj``."""
    project = lambda o: pickle.dumps(tuple(getattr(o, n) for n in names))  # noqa: E731
    clone = pickle.loads(pickle.dumps(obj))
    assert project(clone) == project(obj)
    return clone


def warmed_engine(value_store="auto"):
    graph = random_graph(24, 110, seed=19)
    engine = EAGrEngine(
        graph,
        EgoQuery(aggregate=Sum(), window=TupleWindow(2)),
        overlay_algorithm="vnm_a",
        value_store=value_store,
    )
    nodes = list(graph.nodes())
    engine.write_batch([(n, float(i % 5)) for i, n in enumerate(nodes)] * 2)
    engine.read_batch(nodes)  # compiles pull plans/segments
    return engine


class TestCompiledPlans:
    def test_push_plans_roundtrip(self):
        engine = warmed_engine()
        runtime = engine.runtime
        assert runtime._push_plans or runtime._scatter is not None
        for handle, plan in runtime._push_plans.items():
            clone = stable_fields(
                plan, ("steps", "observe", "scalar_steps", "push_count")
            )
            assert clone.touched == plan.touched

    def test_pull_plans_roundtrip(self):
        engine = warmed_engine(value_store="object")
        runtime = engine.runtime
        assert runtime._pull_plans, "expected compiled pull plans"
        for plan in runtime._pull_plans.values():
            clone = stable_fields(
                plan, ("program", "pull_ops", "exit_nodes", "observe_all")
            )
            assert clone.spans == plan.spans
            assert clone.touched == plan.touched

    @pytest.mark.skipif(not HAVE_NUMPY, reason="segments require numpy")
    def test_pull_segments_roundtrip(self):
        engine = warmed_engine(value_store="columnar")
        runtime = engine.runtime
        assert runtime._pull_segments, "expected compiled pull segments"
        for segment in runtime._pull_segments.values():
            clone = roundtrip(segment, byte_identical=False)
            assert list(clone.leaf_idx) == list(segment.leaf_idx)
            assert list(clone.observe) == list(segment.observe)
            assert list(clone.observe_deep) == list(segment.observe_deep)
            assert clone.children == segment.children
            assert clone.touched == segment.touched

    def test_reader_closures_roundtrip(self):
        engine = warmed_engine()
        engine.write_batch([(node, 1.0) for node in list(engine.graph.nodes())[:8]])
        engine.changed_readers()  # compiles closures
        runtime = engine.runtime
        assert runtime._reader_closures
        for closure in runtime._reader_closures.values():
            clone = stable_fields(closure, ("readers",))
            assert clone.touched == closure.touched


@pytest.mark.skipif(not HAVE_NUMPY, reason="columnar store requires numpy")
class TestColumnarStore:
    @pytest.mark.parametrize("aggregate", [Sum(), Count(), Mean(), Max(), Min()])
    def test_roundtrip_preserves_columns(self, aggregate):
        store = ColumnarStore(aggregate.column_spec, 12)
        store[3] = aggregate.lift(7)
        store[5] = aggregate.lift(2)
        store.clear(5)
        clone = roundtrip(store)
        for handle in range(12):
            assert clone[handle] == store[handle]
        for left, right in zip(clone.columns, store.columns):
            assert left.dtype == right.dtype

    def test_live_engine_store_roundtrip(self):
        engine = warmed_engine(value_store="columnar")
        assert engine.value_store_backend == "columnar"
        store = engine.runtime.values
        clone = roundtrip(store)
        for handle in range(len(store)):
            assert clone[handle] == store[handle]


class TestOverlayAndCSR:
    def test_csr_snapshot_roundtrip(self):
        engine = warmed_engine()
        csr = engine.overlay.to_csr()
        clone = roundtrip(csr)
        for field in (
            "in_indptr", "in_indices", "in_signs",
            "out_indptr", "out_indices", "out_signs",
            "push", "kinds", "fan_in",
        ):
            assert getattr(clone, field) == getattr(csr, field), field
        assert (clone.version, clone.decision_version) == (
            csr.version,
            csr.decision_version,
        )

    def test_overlay_roundtrip(self):
        engine = warmed_engine()
        overlay = engine.overlay
        clone = roundtrip(overlay)
        assert clone.writer_of == overlay.writer_of
        assert clone.reader_of == overlay.reader_of
        assert clone.decisions == overlay.decisions
        assert list(clone.edges()) == list(overlay.edges())


class TestServeShipment:
    """What actually crosses the process boundary in the serve layer."""

    def test_shard_spec_roundtrip_builds_equal_engine(self):
        graph = random_graph(20, 80, seed=23)
        query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
        readers = frozenset(list(graph.nodes())[:10])
        spec = ShardSpec(
            graph, query, shard_id=0, num_shards=2, readers=readers,
            engine_kwargs={"overlay_algorithm": "vnm_a"},
        )
        clone = pickle.loads(pickle.dumps(spec))
        host_a, host_b = spec.build(), clone.build()
        writes = [(n, float(i)) for i, n in enumerate(graph.nodes())]
        host_a.engine.write_batch(writes)
        host_b.engine.write_batch(writes)
        nodes = sorted(readers, key=repr)
        assert host_a.engine.read_batch(nodes) == host_b.engine.read_batch(nodes)

    def test_shard_spec_strips_unpicklable_predicate(self):
        graph = random_graph(12, 40, seed=29)
        keep = set(list(graph.nodes())[:5])
        query = EgoQuery(aggregate=Sum(), predicate=lambda node: node in keep)
        spec = ShardSpec(
            graph, query, shard_id=0, num_shards=1, readers=frozenset(keep)
        )
        clone = pickle.loads(pickle.dumps(spec))  # would raise on a lambda
        host = clone.build()
        assert set(host.engine.overlay.reader_of) <= keep

    def test_graph_pickle_drops_listeners(self):
        graph = paper_figure1()
        from repro.core.overlay import Overlay
        from repro.graph.bipartite import build_bipartite

        ag = build_bipartite(graph, Neighborhood.in_neighbors())
        maintainer = OverlayMaintainer(
            graph, Neighborhood.in_neighbors(), Overlay.identity(ag)
        ).attach()
        assert graph._listeners
        clone = pickle.loads(pickle.dumps(graph))
        assert clone._listeners == []
        assert sorted(map(repr, clone.nodes())) == sorted(map(repr, graph.nodes()))
        assert maintainer.overlay is not None  # original subscription intact

    def test_query_components_roundtrip(self):
        query = EgoQuery(
            aggregate=Mean(),
            window=TupleWindow(3),
            neighborhood=Neighborhood.in_neighbors(hops=2),
        )
        clone = roundtrip(query)
        assert clone.window == query.window
        assert clone.aggregate.name == query.aggregate.name


class TestWindowBufferCheckpoints:
    """Shard checkpoints pickle live window buffers; identity-sensitive
    state must survive the trip."""

    def test_no_value_sentinel_keeps_identity(self):
        from repro.core.windows import NO_VALUE

        restored = pickle.loads(pickle.dumps(NO_VALUE))
        assert restored is NO_VALUE

    def test_empty_scalar_unit_buffer_roundtrips_empty(self):
        from repro.core.windows import TupleWindow as TW

        buffer = TW(1).make_buffer(scalar=True)
        clone = pickle.loads(pickle.dumps(buffer))
        assert clone.values() == []  # an unset slot stays "no value"
        buffer.push(3.5, 1.0)
        filled = pickle.loads(pickle.dumps(buffer))
        assert filled.values() == [3.5]

    def test_all_window_buffers_roundtrip_values(self):
        from repro.core.windows import TimeWindow, TupleWindow as TW

        for window in (TW(1), TW(3), TimeWindow(5.0)):
            for scalar in (False, True):
                buffer = window.make_buffer(scalar=scalar)
                for step in range(4):
                    buffer.append(float(step), float(step))
                clone = pickle.loads(pickle.dumps(buffer))
                assert clone.values() == buffer.values(), (window, scalar)
