"""Integration tests for the EAGrEngine compile-and-run pipeline."""

import pytest

from repro.core.aggregates import Max, Sum, TopK
from repro.core.engine import EAGrEngine
from repro.core.overlay import Decision
from repro.core.query import EgoQuery, QueryMode
from repro.core.windows import TupleWindow
from repro.dataflow.frequencies import FrequencyModel
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import paper_figure1, random_graph
from repro.graph.neighborhoods import Neighborhood
from repro.graph.streams import StructureEvent, StructureOp

from tests.conftest import make_events, play_and_check

ALGORITHMS = ["identity", "vnm", "vnm_a", "vnm_n", "vnm_d", "iob"]
DATAFLOWS = ["mincut", "greedy", "all_push", "all_pull"]


def fig1_query(aggregate=None):
    return EgoQuery(
        aggregate=aggregate or Sum(),
        window=TupleWindow(1),
        neighborhood=Neighborhood.in_neighbors(),
    )


class TestPaperExample:
    """Pin the engine to the worked example of Figure 1."""

    DATA = {
        "a": [1, 4], "b": [3, 7], "c": [6, 9], "d": [8, 4, 3],
        "e": [5, 9, 1], "f": [3, 6, 6], "g": [5],
    }
    # The paper's prose pins two results: "a read query on a returns
    # (9) + (3) + (1) + (6) = 19", and N(b) = {d, e, f} gives 3 + 1 + 6 = 10.
    # The rest of Figure 1(b)'s column is checked against the oracle.
    PINNED = {"a": 19.0, "b": 10.0}

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_sum_results_match_figure(self, algorithm, dataflow):
        aggregate = Max() if algorithm == "vnm_d" else Sum()
        engine = EAGrEngine(
            paper_figure1(),
            fig1_query(aggregate),
            overlay_algorithm=algorithm,
            dataflow=dataflow,
            overlay_params={} if algorithm == "identity" else {"iterations": 3},
        )
        for node, values in self.DATA.items():
            for value in values:
                engine.write(node, value)
        for node in self.DATA:
            assert engine.read(node) == engine.reference_read(node)
        if algorithm != "vnm_d":
            for node, expected in self.PINNED.items():
                assert engine.read(node) == expected


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_sum_random_graph(self, algorithm):
        graph = random_graph(40, 200, seed=11)
        aggregate = Max() if algorithm == "vnm_d" else Sum()
        engine = EAGrEngine(
            graph, fig1_query(aggregate), overlay_algorithm=algorithm,
            overlay_params={} if algorithm == "identity" else {"iterations": 4},
        )
        events = make_events(list(graph.nodes()), 400, seed=1)
        assert play_and_check(engine, events) > 50

    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_topk_window_dataflows(self, dataflow):
        graph = random_graph(30, 150, seed=5)
        query = EgoQuery(
            aggregate=TopK(3), window=TupleWindow(4),
            neighborhood=Neighborhood.in_neighbors(),
        )
        engine = EAGrEngine(graph, query, overlay_algorithm="vnm_a", dataflow=dataflow)
        events = make_events(list(graph.nodes()), 300, seed=2, vocabulary=5)
        assert play_and_check(engine, events) > 50

    def test_max_duplicate_insensitive_overlay(self):
        graph = random_graph(30, 150, seed=6)
        engine = EAGrEngine(graph, fig1_query(Max()), overlay_algorithm="vnm_d")
        events = make_events(list(graph.nodes()), 300, seed=3)
        play_and_check(engine, events)

    def test_two_hop_neighborhood(self):
        graph = random_graph(25, 80, seed=7)
        query = EgoQuery(
            aggregate=Sum(), neighborhood=Neighborhood.in_neighbors(hops=2)
        )
        engine = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        events = make_events(list(graph.nodes()), 250, seed=4)
        play_and_check(engine, events)

    def test_splitting_preserves_results(self):
        graph = random_graph(30, 180, seed=8)
        frequencies = FrequencyModel.zipf(graph.nodes(), seed=9)
        engine = EAGrEngine(
            graph, fig1_query(), overlay_algorithm="vnm_a",
            frequencies=frequencies, enable_splitting=True,
        )
        events = make_events(list(graph.nodes()), 300, seed=5)
        play_and_check(engine, events)


class TestGuards:
    def test_vnm_n_requires_subtractable(self):
        with pytest.raises(ValueError, match="negative edges"):
            EAGrEngine(paper_figure1(), fig1_query(Max()), overlay_algorithm="vnm_n")

    def test_vnm_d_requires_duplicate_insensitive(self):
        with pytest.raises(ValueError, match="duplicate"):
            EAGrEngine(paper_figure1(), fig1_query(Sum()), overlay_algorithm="vnm_d")

    def test_unknown_dataflow(self):
        with pytest.raises(ValueError):
            EAGrEngine(paper_figure1(), fig1_query(), dataflow="psychic")

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            EAGrEngine(paper_figure1(), fig1_query(), overlay_algorithm="magic")


class TestContinuousMode:
    def test_readers_forced_push(self):
        query = EgoQuery(
            aggregate=Sum(), neighborhood=Neighborhood.in_neighbors(),
            mode=QueryMode.CONTINUOUS,
        )
        engine = EAGrEngine(paper_figure1(), query, overlay_algorithm="vnm_a")
        overlay = engine.overlay
        for handle in overlay.reader_handles():
            assert overlay.decisions[handle] is Decision.PUSH

    def test_quasi_mode_mixes(self):
        # With write-heavy expectations, mincut should leave readers pull.
        frequencies = FrequencyModel.uniform(
            paper_figure1().nodes(), read=0.01, write=100.0
        )
        engine = EAGrEngine(
            paper_figure1(), fig1_query(), overlay_algorithm="identity",
            frequencies=frequencies,
        )
        overlay = engine.overlay
        assert any(
            overlay.decisions[h] is Decision.PULL for h in overlay.reader_handles()
        )


class TestStructuralChanges:
    def run_change_scenario(self, maintain):
        graph = random_graph(20, 60, seed=12)
        engine = EAGrEngine(
            graph, fig1_query(), overlay_algorithm="vnm_a", maintain=maintain
        )
        nodes = list(graph.nodes())
        events = make_events(nodes, 100, seed=6)
        play_and_check(engine, events)
        # Structural churn: add and remove edges, then re-verify reads.
        engine.apply_structure_event(StructureEvent(StructureOp.ADD_EDGE, 0, 5))
        engine.apply_structure_event(StructureEvent(StructureOp.ADD_EDGE, 1, 5))
        some_edge = next(iter(graph.edges()))
        engine.apply_structure_event(
            StructureEvent(StructureOp.REMOVE_EDGE, some_edge[0], some_edge[1])
        )
        engine.apply_structure_event(StructureEvent(StructureOp.ADD_NODE, 999))
        engine.apply_structure_event(StructureEvent(StructureOp.ADD_EDGE, 999, 3))
        play_and_check(engine, make_events(nodes + [999], 150, seed=7))
        engine.apply_structure_event(StructureEvent(StructureOp.REMOVE_NODE, 999))
        play_and_check(engine, make_events(nodes, 100, seed=8))

    def test_with_maintainer(self):
        self.run_change_scenario(maintain=True)

    def test_with_recompile(self):
        self.run_change_scenario(maintain=False)


class TestRedecide:
    def test_redecide_with_new_frequencies(self):
        graph = random_graph(20, 80, seed=13)
        engine = EAGrEngine(graph, fig1_query(), overlay_algorithm="vnm_a")
        events = make_events(list(graph.nodes()), 100, seed=9)
        play_and_check(engine, events)
        engine.redecide(FrequencyModel.uniform(graph.nodes(), read=100.0, write=0.01))
        play_and_check(engine, make_events(list(graph.nodes()), 100, seed=10))

    def test_describe(self):
        engine = EAGrEngine(paper_figure1(), fig1_query())
        text = engine.describe()
        assert "vnm_a" in text and "mincut" in text
