"""Unit tests for the adaptive dataflow controller (Section 4.8)."""

import pytest

from repro.core.adaptive import AdaptiveConfig, AdaptiveController
from repro.core.aggregates import Sum
from repro.core.engine import EAGrEngine
from repro.core.execution import Runtime
from repro.core.overlay import Decision, Overlay
from repro.core.query import EgoQuery
from repro.dataflow.costs import CostModel
from repro.graph.generators import paper_figure1, random_graph
from repro.graph.neighborhoods import Neighborhood

from tests.conftest import make_events, play_and_check


def small_runtime(all_push=False):
    ov = Overlay()
    w = {n: ov.add_writer(n) for n in ("w1", "w2")}
    r = ov.add_reader("r")
    pa = ov.add_partial()
    ov.add_edge(w["w1"], pa)
    ov.add_edge(w["w2"], pa)
    ov.add_edge(pa, r)
    if all_push:
        ov.set_all_decisions(Decision.PUSH)
    rt = Runtime(ov, EgoQuery(aggregate=Sum()))
    return rt, pa, r


class TestFrontier:
    def test_pull_node_with_push_inputs_is_frontier(self):
        rt, pa, r = small_runtime()
        controller = AdaptiveController(rt)
        assert pa in controller.frontier()
        assert r not in controller.frontier()  # its input pa is pull

    def test_push_reader_is_frontier(self):
        rt, pa, r = small_runtime(all_push=True)
        controller = AdaptiveController(rt)
        frontier = controller.frontier()
        assert r in frontier  # push node, no consumers
        assert pa not in frontier  # its consumer r is push


class TestFlips:
    def config(self):
        return AdaptiveConfig(check_interval=10, hysteresis=1.1, min_observations=4)

    def test_read_heavy_flips_to_push(self):
        rt, pa, r = small_runtime()
        controller = AdaptiveController(rt, CostModel.constant_linear(), self.config())
        rt.write("w1", 1.0)
        for _ in range(30):
            rt.read("r")
        flips = controller.evaluate()
        assert flips >= 1
        assert rt.overlay.decisions[pa] is Decision.PUSH
        # next round the reader becomes the frontier and flips too
        for _ in range(30):
            rt.read("r")
        controller.evaluate()
        assert rt.overlay.decisions[r] is Decision.PUSH
        assert rt.read("r") == 1.0

    def test_write_heavy_flips_to_pull(self):
        rt, pa, r = small_runtime(all_push=True)
        controller = AdaptiveController(rt, CostModel.constant_linear(), self.config())
        for i in range(40):
            rt.write("w1", float(i))
        controller.evaluate()
        assert rt.overlay.decisions[r] is Decision.PULL
        controller.evaluate()  # pa now exposed on the frontier
        for i in range(40):
            rt.write("w2", float(i))
        controller.evaluate()
        assert rt.overlay.decisions[pa] is Decision.PULL
        assert rt.read("r") == 39.0 + 39.0

    def test_min_observations_blocks_flip(self):
        rt, pa, r = small_runtime()
        config = AdaptiveConfig(check_interval=10, min_observations=1000)
        controller = AdaptiveController(rt, config=config)
        for _ in range(20):
            rt.read("r")
        assert controller.evaluate() == 0

    def test_hysteresis_blocks_marginal_flip(self):
        # 30 would-be pushes (cost 30·H=30) vs 20 pulls (cost 20·L(2)=40):
        # a marginal win for push, blocked by a large hysteresis factor.
        rt, pa, r = small_runtime()
        config = AdaptiveConfig(check_interval=10, hysteresis=100.0, min_observations=1)
        controller = AdaptiveController(rt, config=config)
        for i in range(30):
            rt.write("w1", float(i))
        for _ in range(20):
            rt.read("r")
        assert controller.evaluate() == 0
        # The same observations flip once the hysteresis is small.
        relaxed = AdaptiveController(
            rt, config=AdaptiveConfig(check_interval=10, hysteresis=1.05, min_observations=1)
        )
        relaxed._push_base = [0] * rt.overlay.num_nodes
        relaxed._pull_base = [0] * rt.overlay.num_nodes
        assert relaxed.evaluate() >= 1

    def test_decisions_stay_consistent(self):
        rt, pa, r = small_runtime()
        controller = AdaptiveController(
            rt, CostModel.constant_linear(), self.config()
        )
        for i in range(25):
            rt.write("w1", float(i))
            rt.read("r")
            controller.tick(2)
        assert rt.overlay.decisions_consistent()


class TestEngineIntegration:
    def test_adaptive_engine_correctness_under_drift(self):
        graph = random_graph(25, 100, seed=21)
        query = EgoQuery(aggregate=Sum(), neighborhood=Neighborhood.in_neighbors())
        engine = EAGrEngine(
            graph, query, overlay_algorithm="vnm_a", adaptive=True,
            adaptive_config=AdaptiveConfig(check_interval=50, min_observations=3),
        )
        nodes = list(graph.nodes())
        # Phase 1 write-heavy, phase 2 read-heavy: results stay correct.
        play_and_check(engine, make_events(nodes, 300, write_fraction=0.9, seed=31))
        play_and_check(engine, make_events(nodes, 300, write_fraction=0.1, seed=32))
        assert engine.overlay.decisions_consistent()

    def test_adaptation_reduces_work(self):
        graph = paper_figure1()
        query = EgoQuery(aggregate=Sum(), neighborhood=Neighborhood.in_neighbors())
        nodes = list(graph.nodes())
        # Decisions were made for write-heavy; the workload is read-heavy.
        from repro.dataflow.frequencies import FrequencyModel

        stale = FrequencyModel.uniform(nodes, read=0.01, write=10.0)
        events = make_events(nodes, 2000, write_fraction=0.05, seed=33)

        static = EAGrEngine(graph, query, frequencies=stale)
        play_and_check(static, events)
        adaptive = EAGrEngine(
            graph, query, frequencies=stale, adaptive=True,
            adaptive_config=AdaptiveConfig(check_interval=100, min_observations=4),
        )
        play_and_check(adaptive, events)
        static_work = static.counters.work
        adaptive_work = adaptive.counters.work
        assert adaptive_work < static_work
