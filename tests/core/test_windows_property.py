"""Hypothesis property tests for sliding-window semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.windows import TimeWindow, TupleWindow

values = st.lists(st.integers(min_value=0, max_value=99), max_size=60)


@given(values, st.integers(min_value=1, max_value=10))
def test_tuple_window_keeps_exactly_last_c(raws, size):
    buffer = TupleWindow(size).make_buffer()
    evicted_total = []
    for tick, value in enumerate(raws):
        evicted_total.extend(buffer.append(value, float(tick)))
    assert buffer.values() == raws[-size:]
    # Conservation: everything entered is either live or evicted, in order.
    assert evicted_total + buffer.values() == raws


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            st.integers(min_value=0, max_value=99),
        ),
        max_size=40,
    ),
    st.floats(min_value=0.5, max_value=20.0),
)
def test_time_window_matches_reference_semantics(gaps_values, duration):
    buffer = TimeWindow(duration).make_buffer()
    timeline = []  # (timestamp, value) in arrival order
    clock = 0.0
    evicted_total = []
    for gap, value in gaps_values:
        clock += gap
        evicted_total.extend(buffer.append(value, clock))
        timeline.append((clock, value))
    # Reference: live values are those with age < duration at `clock`.
    expected = [v for ts, v in timeline if ts > clock - duration]
    assert buffer.values() == expected
    assert evicted_total + buffer.values() == [v for _, v in timeline]


@given(values, st.integers(min_value=1, max_value=8))
def test_window_buffer_len_matches_values(raws, size):
    buffer = TupleWindow(size).make_buffer()
    for tick, value in enumerate(raws):
        buffer.append(value, float(tick))
    assert len(buffer) == len(buffer.values())
