"""The runtime's changed-reader report (the subscription diffing signal)."""

import pytest

from repro.core.aggregates import Max, Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import paper_figure1, random_graph
from repro.graph.neighborhoods import Neighborhood

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

STORES = ["object"] + (["columnar"] if HAVE_NUMPY else [])


def build(graph=None, aggregate=None, value_store="auto", **kwargs):
    return EAGrEngine(
        graph if graph is not None else paper_figure1(),
        EgoQuery(
            aggregate=aggregate or Sum(),
            window=kwargs.pop("window", TupleWindow(1)),
            neighborhood=Neighborhood.in_neighbors(),
        ),
        overlay_algorithm=kwargs.pop("overlay_algorithm", "vnm_a"),
        value_store=value_store,
        **kwargs,
    )


def downstream_readers(engine, writer_node):
    """Oracle: readers whose neighborhood contains ``writer_node``."""
    return {
        reader
        for reader, handle in engine.overlay.reader_of.items()
        if writer_node in engine.query.neighborhood(engine.graph, reader)
    }


@pytest.mark.parametrize("value_store", STORES)
class TestChangedReaders:
    def test_report_covers_downstream_readers(self, value_store):
        engine = build(value_store=value_store)
        engine.write_batch([("c", 5.0)])
        changed = set(engine.changed_readers())
        assert changed == downstream_readers(engine, "c")

    def test_report_is_consumed(self, value_store):
        engine = build(value_store=value_store)
        engine.write_batch([("c", 5.0)])
        assert engine.changed_readers()
        assert engine.changed_readers() == []

    def test_zero_delta_batch_reports_nothing(self, value_store):
        engine = build(value_store=value_store)
        engine.write_batch([("c", 5.0)])
        engine.changed_readers()
        # ROWS 1 window: rewriting the same value telescopes to delta 0.
        engine.write_batch([("c", 5.0)])
        assert engine.changed_readers() == []

    def test_multi_writer_batch_unions_closures(self, value_store):
        graph = random_graph(25, 110, seed=31)
        engine = build(graph=graph, value_store=value_store)
        nodes = list(graph.nodes())[:6]
        engine.write_batch([(n, 3.0) for n in nodes])
        changed = set(engine.changed_readers())
        expected = set()
        for node in nodes:
            expected |= downstream_readers(engine, node)
        assert changed == expected

    def test_per_event_write_also_reports(self, value_store):
        engine = build(value_store=value_store)
        engine.write("d", 2.0)
        assert set(engine.changed_readers()) == downstream_readers(engine, "d")

    def test_report_matches_across_batch_sizes(self, value_store):
        graph = random_graph(25, 110, seed=33)
        whole = build(graph=graph, value_store=value_store)
        chunked = build(graph=graph, value_store=value_store)
        writes = [(n, float(i % 4)) for i, n in enumerate(graph.nodes())]
        whole.write_batch(writes)
        for start in range(0, len(writes), 5):
            chunked.write_batch(writes[start : start + 5])
        assert set(whole.changed_readers()) == set(chunked.changed_readers())


class TestLatticeCandidates:
    def test_noop_writer_update_reports_nothing(self):
        """MAX: a write that leaves the writer's window max alone is silent."""
        engine = build(aggregate=Max(), window=TupleWindow(2), dataflow="all_push")
        engine.write_batch([("c", 9.0)])
        engine.changed_readers()
        engine.write_batch([("c", 1.0)])  # window max still 9: no message
        assert engine.changed_readers() == []

    def test_lattice_report_is_candidate_superset(self):
        """MAX: a moved writer reports its readers even when a dominating
        sibling keeps every reader's final value unchanged — consumers diff
        values, so candidates are allowed, drops are not."""
        engine = build(aggregate=Max(), window=TupleWindow(1), dataflow="all_push")
        engine.write_batch([("c", 9.0), ("d", 5.0)])
        engine.changed_readers()
        before = {n: engine.read(n) for n in downstream_readers(engine, "d")}
        engine.write_batch([("d", 7.0)])  # writer moves; maxes may not
        changed = set(engine.changed_readers())
        assert changed == downstream_readers(engine, "d")
        # At least one shared reader's value is dominated by c's 9.0 —
        # reported as a candidate although its value is unchanged.
        shared = downstream_readers(engine, "c") & downstream_readers(engine, "d")
        if shared:
            for node in shared:
                assert engine.read(node) == max(9.0, before[node])


class TestInvalidationAndRebuild:
    def test_closures_survive_precise_invalidation(self):
        engine = build()
        engine.write_batch([("c", 5.0)])
        engine.changed_readers()
        compiles_before = engine.runtime.plan_compiles
        engine.write_batch([("c", 6.0)])
        engine.changed_readers()
        # Second report reuses the cached closure: no new compilations of
        # the reader closure beyond what other plans needed.
        assert engine.runtime.plan_compiles == compiles_before

    @pytest.mark.parametrize("maintain", [False, True])
    def test_pending_report_survives_structure_change(self, maintain):
        """The report is keyed by node id, so overlay rebuilds (lazy full
        recompile and incremental maintainer surgery alike) cannot lose a
        change accepted before the mutation."""
        from repro.graph.streams import StructureEvent, StructureOp

        engine = build(maintain=maintain)
        engine.write_batch([("c", 5.0)])
        engine.apply_structure_event(
            StructureEvent(StructureOp.ADD_EDGE, "c", "g")
        )
        # Mapped through the *current* overlay: c's downstream now
        # includes g as well.
        assert set(engine.changed_readers()) == downstream_readers(engine, "c")
        assert "g" in downstream_readers(engine, "c")
        # Fresh writes keep reporting against the new overlay.
        engine.write_batch([("c", 7.0)])
        assert "g" in set(engine.changed_readers())


class TestGlobalWriteStamp:
    """The stamped report: a monotone version that survives rebuilds."""

    def test_stamp_ticks_once_per_ingestion_call(self):
        engine = build()
        assert engine.runtime.stamp == 0
        engine.write_batch([("c", 1.0), ("d", 2.0)])
        stamp_a, changed = engine.changed_report()
        assert stamp_a == 1 and changed
        engine.write("c", 3.0)
        stamp_b, _ = engine.changed_report()
        assert stamp_b == stamp_a + 1

    def test_stamp_survives_full_recompile(self):
        from repro.graph.streams import StructureEvent, StructureOp

        engine = build(maintain=False)
        engine.write_batch([("c", 1.0)])
        engine.changed_readers()
        before = engine.runtime.stamp
        engine.apply_structure_event(
            StructureEvent(StructureOp.ADD_EDGE, "c", "g")
        )
        engine.write_batch([("c", 2.0)])  # triggers the lazy recompile
        stamp, _ = engine.changed_report()
        assert stamp == before + 1

    def test_stamp_seedable_for_restore(self):
        from repro.core.execution import Runtime

        engine = build()
        engine.write_batch([("c", 1.0)])
        restored = Runtime(
            engine.overlay, engine.query, buffers=engine.runtime.buffers,
            stamp=engine.runtime.stamp,
        )
        assert restored.stamp == engine.runtime.stamp
        restored.write_batch([("c", 2.0)])
        assert restored.stamp == engine.runtime.stamp + 1

    def test_threaded_and_partitioned_report_stamps(self):
        from repro.core.concurrency import ThreadedEngine
        from repro.core.partitioned import PartitionedEngine

        graph = random_graph(16, 60, seed=7)
        query = EgoQuery(
            aggregate=Sum(),
            window=TupleWindow(1),
            neighborhood=Neighborhood.in_neighbors(),
        )
        nodes = list(graph.nodes())
        threaded = ThreadedEngine(
            EAGrEngine(graph, query, overlay_algorithm="vnm_a"),
            write_threads=2,
        )
        try:
            threaded.write_batch([(n, 1.0) for n in nodes])
            stamp, readers = threaded.changed_report()
            assert stamp >= 1 and readers
        finally:
            threaded.close()
        parts = PartitionedEngine(graph, query, num_shards=3)
        parts.write_batch([(n, 1.0) for n in nodes])
        stamp, readers = parts.changed_report()
        assert stamp >= 1 and readers
