"""Quality regression for the balanced min-cut reader partitioner.

The serve tier's write amplification is exactly the planned replication
factor of its routing table, so the one number this suite defends is:
on community-structured graphs, :func:`mincut_partition` must plan a
*strictly lower* replication factor than both the stable-hash baseline
and the BFS :func:`community_assignment` heuristic it replaced as the
server default — while honouring the same balance bound the partitioner
promises (every shard within ``balance`` times the mean size).
"""

import pytest

from repro.core.aggregates import Sum
from repro.core.partition import (
    mincut_assignment,
    mincut_partition,
    planned_replication_factor,
    shard_sizes,
)
from repro.core.partitioned import _stable_hash, community_assignment
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import community_graph, paper_figure1, random_graph


def build_query():
    return EgoQuery(aggregate=Sum(), window=TupleWindow(1))


def hash_partition(graph, query, num_shards):
    predicate = query.predicate
    return {
        node: _stable_hash(node) % num_shards
        for node in graph.nodes()
        if predicate is None or predicate(node)
    }


def community_partition(graph, query, num_shards):
    assign = community_assignment(graph, num_shards)
    predicate = query.predicate
    return {
        node: assign(node) % num_shards
        for node in graph.nodes()
        if predicate is None or predicate(node)
    }


# Seeded community graphs at two shapes: many small communities with a
# tight shard budget, and fewer larger ones.  These are the same
# configurations BENCH_reshard.json records.
COMMUNITY_CONFIGS = [
    dict(num_communities=12, community_size=30, intra_probability=0.5,
         inter_edges=40, seed=101, num_shards=5),
    dict(num_communities=20, community_size=30, intra_probability=0.6,
         inter_edges=60, seed=102, num_shards=4),
    dict(num_communities=8, community_size=24, intra_probability=0.5,
         inter_edges=24, seed=103, num_shards=4),
]


class TestQualityRegression:
    @pytest.mark.parametrize("config", COMMUNITY_CONFIGS)
    def test_mincut_beats_hash_and_community(self, config):
        config = dict(config)
        num_shards = config.pop("num_shards")
        graph = community_graph(**config)
        query = build_query()
        mincut = mincut_partition(graph, query, num_shards)
        rf_mincut = planned_replication_factor(graph, query, mincut)
        rf_hash = planned_replication_factor(
            graph, query, hash_partition(graph, query, num_shards)
        )
        rf_community = planned_replication_factor(
            graph, query, community_partition(graph, query, num_shards)
        )
        assert rf_mincut < rf_hash
        assert rf_mincut < rf_community

    @pytest.mark.parametrize("config", COMMUNITY_CONFIGS)
    def test_balance_bound(self, config):
        config = dict(config)
        num_shards = config.pop("num_shards")
        graph = community_graph(**config)
        query = build_query()
        mincut = mincut_partition(graph, query, num_shards, balance=1.25)
        sizes = shard_sizes(mincut, num_shards)
        mean = sum(sizes) / num_shards
        assert sum(sizes) == len(mincut)
        # The partitioner's own promise: no shard above 1.25x the mean
        # (with a one-reader slack for ceil-rounded capacities).
        assert max(sizes) <= int(1.25 * mean) + 1

    def test_write_freq_steers_the_cut(self):
        # With a handful of writers carrying 100x the traffic, the
        # frequency-aware cut must amplify that traffic no more than the
        # uniform cut does (it optimizes the weighted objective).
        graph = community_graph(
            num_communities=4, community_size=18, intra_probability=0.5,
            inter_edges=30, seed=104,
        )
        query = build_query()
        heavy = {node: (100.0 if node % 9 == 0 else 1.0) for node in graph.nodes()}
        uniform_table = mincut_partition(graph, query, 3)
        weighted_table = mincut_partition(graph, query, 3, write_freq=heavy)
        weighted_rf = planned_replication_factor(
            graph, query, weighted_table, write_freq=heavy
        )
        uniform_rf = planned_replication_factor(
            graph, query, uniform_table, write_freq=heavy
        )
        assert weighted_rf <= uniform_rf + 1e-9

    def test_deterministic(self):
        graph = community_graph(
            num_communities=6, community_size=20, intra_probability=0.5,
            inter_edges=30, seed=105,
        )
        query = build_query()
        first = mincut_partition(graph, query, 4)
        second = mincut_partition(graph, query, 4)
        assert first == second


class TestApi:
    def test_single_shard(self):
        graph = paper_figure1()
        query = build_query()
        table = mincut_partition(graph, query, 1)
        assert set(table.values()) == {0}

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            mincut_partition(paper_figure1(), build_query(), 0)

    def test_assignment_callable(self):
        graph = random_graph(30, 120, seed=106)
        query = build_query()
        table = mincut_partition(graph, query, 3)
        assign = mincut_assignment(graph, query, 3)
        assert all(assign(node) == shard for node, shard in table.items())
        assert assign("never-seen") == 0

    def test_assignment_exposes_get(self):
        # plan_from_assignment consumes the assignment via dict-style
        # .get, where a missing reader must resolve to the *caller's*
        # default ("leave it where it is"), not the callable's shard 0.
        graph = random_graph(30, 120, seed=106)
        query = build_query()
        table = mincut_partition(graph, query, 3)
        assign = mincut_assignment(graph, query, 3)
        assert len(assign) == len(table)
        assert all(assign.get(node, -1) == shard for node, shard in table.items())
        assert assign.get("never-seen", 7) == 7
        assert assign.get("never-seen") is None

    def test_predicate_limits_readers(self):
        graph = random_graph(30, 120, seed=107)
        keep = set(list(graph.nodes())[:10])
        query = EgoQuery(aggregate=Sum(), predicate=lambda n: n in keep)
        table = mincut_partition(graph, query, 2)
        assert set(table) == keep

    def test_max_nodes_fallback(self):
        # Above the node budget the partitioner degrades to the BFS
        # heuristic rather than running Dinic on a huge gadget graph.
        graph = random_graph(40, 160, seed=108)
        query = build_query()
        table = mincut_partition(graph, query, 4, max_nodes=10)
        expected = community_partition(graph, query, 4)
        assert table == expected

    def test_replication_factor_weighted(self):
        graph = paper_figure1()
        query = build_query()
        table = mincut_partition(graph, query, 2)
        uniform = planned_replication_factor(graph, query, table)
        weighted = planned_replication_factor(
            graph, query, table, write_freq={n: 1.0 for n in graph.nodes()}
        )
        assert weighted == pytest.approx(uniform)
