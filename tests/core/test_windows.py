"""Unit tests for sliding windows."""

import pytest

from repro.core.windows import TimeWindow, TupleWindow


class TestTupleWindow:
    def test_keeps_last_c(self):
        buf = TupleWindow(3).make_buffer()
        for i in range(5):
            buf.append(i, timestamp=i)
        assert buf.values() == [2, 3, 4]

    def test_append_reports_evictions(self):
        buf = TupleWindow(2).make_buffer()
        assert buf.append(1, 0) == []
        assert buf.append(2, 1) == []
        assert buf.append(3, 2) == [1]

    def test_never_expires_on_clock(self):
        buf = TupleWindow(1).make_buffer()
        buf.append("x", 0)
        assert buf.evict_until(1e9) == []
        assert buf.next_expiry() is None

    def test_size_one(self):
        buf = TupleWindow(1).make_buffer()
        buf.append("a", 0)
        assert buf.append("b", 1) == ["a"]
        assert buf.values() == ["b"]

    def test_validation(self):
        with pytest.raises(ValueError):
            TupleWindow(0)

    def test_expected_size(self):
        assert TupleWindow(7).expected_size() == 7.0

    def test_len(self):
        buf = TupleWindow(4).make_buffer()
        buf.append(1, 0)
        buf.append(2, 1)
        assert len(buf) == 2


class TestTimeWindow:
    def test_expiry_on_append(self):
        buf = TimeWindow(10.0).make_buffer()
        buf.append("a", 0.0)
        buf.append("b", 5.0)
        evicted = buf.append("c", 11.0)  # a's lifetime [0, 10] has ended
        assert evicted == ["a"]
        assert buf.values() == ["b", "c"]

    def test_evict_until(self):
        buf = TimeWindow(5.0).make_buffer()
        buf.append("a", 0.0)
        buf.append("b", 3.0)
        assert buf.evict_until(6.0) == ["a"]
        assert buf.values() == ["b"]

    def test_boundary_is_inclusive(self):
        buf = TimeWindow(5.0).make_buffer()
        buf.append("a", 0.0)
        assert buf.evict_until(5.0) == ["a"]

    def test_next_expiry(self):
        buf = TimeWindow(5.0).make_buffer()
        assert buf.next_expiry() is None
        buf.append("a", 2.0)
        assert buf.next_expiry() == 7.0

    def test_out_of_order_append_rejected(self):
        buf = TimeWindow(5.0).make_buffer()
        buf.append("a", 10.0)
        with pytest.raises(ValueError):
            buf.append("b", 9.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeWindow(0.0)

    def test_expected_size_scales_with_rate(self):
        w = TimeWindow(10.0)
        assert w.expected_size(write_rate=2.0) == 20.0
        assert w.expected_size(write_rate=0.0001) == 1.0  # floor at one value

    def test_multiple_evictions_in_order(self):
        buf = TimeWindow(1.0).make_buffer()
        buf.append("a", 0.0)
        buf.append("b", 0.5)
        assert buf.evict_until(10.0) == ["a", "b"]
