"""Deep-overlay runtime scenarios: multi-level propagation, duplicate paths,
eviction cascades, and frontier interleavings on hand-built overlays."""

import pytest

from repro.core.aggregates import Max, Sum, TopK
from repro.core.execution import Runtime
from repro.core.overlay import Decision, Overlay
from repro.core.query import EgoQuery
from repro.core.windows import TimeWindow, TupleWindow


def chain_overlay(levels=4):
    """w -> p1 -> p2 -> ... -> r, one writer driving a deep chain."""
    ov = Overlay()
    w = ov.add_writer("w")
    prev = w
    partials = []
    for _ in range(levels):
        p = ov.add_partial()
        ov.add_edge(prev, p)
        partials.append(p)
        prev = p
    r = ov.add_reader("r")
    ov.add_edge(prev, r)
    return ov, w, partials, r


def diamond_dup_overlay():
    """Duplicate paths (MAX-legal): w reaches r via two partials."""
    ov = Overlay()
    w = ov.add_writer("w")
    p1, p2 = ov.add_partial(), ov.add_partial()
    r = ov.add_reader("r")
    ov.add_edge(w, p1)
    ov.add_edge(w, p2)
    ov.add_edge(p1, r)
    ov.add_edge(p2, r)
    return ov, w, r


class TestDeepChains:
    def test_full_push_chain(self):
        ov, w, partials, r = chain_overlay(6)
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("w", 5.0)
        assert rt.read("r") == 5.0
        assert rt.counters.push_ops == 7  # 6 partials + reader

    def test_frontier_in_middle_of_chain(self):
        ov, w, partials, r = chain_overlay(4)
        # First two partials push, rest pull.
        ov.set_decision(partials[0], Decision.PUSH)
        ov.set_decision(partials[1], Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("w", 3.0)
        assert rt.values[partials[1]] == 3.0
        assert rt.values[partials[2]] is None
        assert rt.read("r") == 3.0

    def test_window_eviction_cascades_through_chain(self):
        ov, w, partials, r = chain_overlay(5)
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum(), window=TupleWindow(2)))
        rt.write("w", 1.0)
        rt.write("w", 2.0)
        rt.write("w", 4.0)  # evicts the 1.0 five levels down
        assert rt.read("r") == 6.0

    def test_time_eviction_cascades(self):
        ov, w, partials, r = chain_overlay(3)
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum(), window=TimeWindow(10.0)))
        rt.write("w", 7.0, timestamp=0.0)
        rt.write("w", 2.0, timestamp=5.0)
        assert rt.read("r") == 9.0
        rt.write("w", 1.0, timestamp=16.0)  # expires both earlier writes
        assert rt.read("r") == 1.0


class TestDuplicatePaths:
    def test_max_push_through_duplicate_paths(self):
        ov, w, r = diamond_dup_overlay()
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Max(), window=TupleWindow(2)))
        rt.write("w", 5.0)
        assert rt.read("r") == 5.0
        rt.write("w", 3.0)
        assert rt.read("r") == 5.0  # window keeps {5, 3}
        rt.write("w", 1.0)  # evicts 5: recompute path through both branches
        assert rt.read("r") == 3.0

    def test_max_pull_through_duplicate_paths(self):
        ov, w, r = diamond_dup_overlay()
        rt = Runtime(ov, EgoQuery(aggregate=Max()))
        rt.write("w", 9.0)
        assert rt.read("r") == 9.0

    def test_empty_window_is_none(self):
        ov, w, r = diamond_dup_overlay()
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Max()))
        assert rt.read("r") is None


class TestSharedFanOut:
    def make_fan(self):
        """One partial feeds many readers — one write, many push targets."""
        ov = Overlay()
        writers = [ov.add_writer(f"w{i}") for i in range(3)]
        p = ov.add_partial()
        for w in writers:
            ov.add_edge(w, p)
        readers = [ov.add_reader(f"r{i}") for i in range(5)]
        for r in readers:
            ov.add_edge(p, r)
        return ov, writers, p, readers

    def test_shared_partial_amortizes_updates(self):
        ov, writers, p, readers = self.make_fan()
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("w0", 2.0)
        # 1 update at the partial + 5 at the readers.
        assert rt.counters.push_ops == 6
        for i in range(5):
            assert rt.read(f"r{i}") == 2.0

    def test_pull_readers_share_push_partial(self):
        ov, writers, p, readers = self.make_fan()
        ov.set_decision(p, Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("w0", 2.0)
        rt.write("w1", 3.0)
        assert rt.counters.push_ops == 2  # stops at the partial
        assert rt.read("r0") == 5.0
        assert rt.counters.pull_ops == 1  # one hop from the partial

    def test_topk_deltas_through_shared_partial(self):
        ov, writers, p, readers = self.make_fan()
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=TopK(2), window=TupleWindow(2)))
        rt.write("w0", "x")
        rt.write("w1", "x")
        rt.write("w2", "y")
        assert rt.read("r0") == [("x", 2), ("y", 1)]
        rt.write("w0", "y")
        rt.write("w0", "y")  # w0's window now {y, y}
        assert rt.read("r3") == [("y", 3), ("x", 1)]


class TestMixedSignDeepOverlays:
    def test_negative_edge_from_partial(self):
        """Negative edges may come from partial aggregators, not only writers."""
        ov = Overlay()
        w = {name: ov.add_writer(name) for name in ("a", "b", "c")}
        inner = ov.add_partial()  # a + b
        outer = ov.add_partial()  # a + b + c
        r = ov.add_reader("r")  # outer - inner = c
        ov.add_edge(w["a"], inner)
        ov.add_edge(w["b"], inner)
        ov.add_edge(inner, outer)
        ov.add_edge(w["c"], outer)
        ov.add_edge(outer, r)
        ov.add_edge(inner, r, sign=-1)
        ov.set_all_decisions(Decision.PUSH)
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))
        rt.write("a", 10.0)
        rt.write("b", 20.0)
        rt.write("c", 3.0)
        assert rt.read("r") == 3.0

    def test_negative_edge_pull_path(self):
        ov = Overlay()
        w = {name: ov.add_writer(name) for name in ("a", "b")}
        both = ov.add_partial()
        r = ov.add_reader("r")  # both - b = a
        ov.add_edge(w["a"], both)
        ov.add_edge(w["b"], both)
        ov.add_edge(both, r)
        ov.add_edge(w["b"], r, sign=-1)
        rt = Runtime(ov, EgoQuery(aggregate=Sum()))  # all pull
        rt.write("a", 5.0)
        rt.write("b", 100.0)
        assert rt.read("r") == 5.0
