"""Extended construction coverage: degenerate AGs, determinism, stress
shapes, and IOB improvement iterations under hypothesis."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.overlay import NodeKind, Overlay
from repro.graph.bipartite import BipartiteGraph
from repro.overlay.iob import IOBState, build_iob
from repro.overlay.vnm import build_vnm


class TestDegenerateInputs:
    @pytest.mark.parametrize("variant", ["vnm", "vnm_a", "vnm_n", "vnm_d"])
    def test_empty_ag(self, variant):
        ag = BipartiteGraph({})
        result = build_vnm(ag, variant=variant, iterations=2)
        assert result.overlay.num_edges == 0

    def test_single_reader(self):
        ag = BipartiteGraph({"r": ("w1", "w2", "w3")})
        for build in (
            lambda: build_vnm(ag, variant="vnm_a", iterations=2).overlay,
            lambda: build_iob(ag, iterations=1).overlay,
        ):
            overlay = build()
            overlay.validate(ag)

    def test_singleton_input_lists(self):
        ag = BipartiteGraph({f"r{i}": (f"w{i}",) for i in range(6)})
        overlay = build_vnm(ag, variant="vnm_a", iterations=3).overlay
        overlay.validate(ag)
        assert overlay.num_partials == 0  # nothing shareable

    def test_identical_readers_fully_shared(self):
        ag = BipartiteGraph({f"r{i}": ("w1", "w2", "w3", "w4") for i in range(8)})
        overlay = build_vnm(ag, variant="vnm_a", iterations=4, chunk_size=8).overlay
        overlay.validate(ag)
        # One shared aggregator: 4 + 8 edges beats 32 direct.
        assert overlay.num_edges <= 14

    def test_disjoint_readers_nothing_shared(self):
        ag = BipartiteGraph(
            {f"r{i}": (f"w{3*i}", f"w{3*i+1}", f"w{3*i+2}") for i in range(6)}
        )
        overlay = build_vnm(ag, variant="vnm_a", iterations=3).overlay
        overlay.validate(ag)
        assert overlay.sharing_index(ag) == 0.0

    def test_nested_subset_structure(self):
        # r_k's inputs are a prefix chain: multi-level stacking territory.
        writers = [f"w{i}" for i in range(10)]
        ag = BipartiteGraph(
            {f"r{k}": tuple(writers[: k + 2]) for k in range(8)}
        )
        overlay = build_vnm(ag, variant="vnm_a", iterations=6, chunk_size=4).overlay
        overlay.validate(ag)
        assert overlay.sharing_index(ag) > 0.2


class TestDeterminism:
    def make_ag(self):
        rng = random.Random(5)
        writers = [f"w{i}" for i in range(25)]
        return BipartiteGraph(
            {
                f"r{i}": tuple(rng.sample(writers, rng.randrange(2, 10)))
                for i in range(30)
            }
        )

    @pytest.mark.parametrize("variant", ["vnm_a", "vnm_n", "vnm_d"])
    def test_vnm_deterministic(self, variant):
        ag = self.make_ag()
        a = build_vnm(ag, variant=variant, iterations=5)
        b = build_vnm(ag, variant=variant, iterations=5)
        assert a.overlay.num_edges == b.overlay.num_edges
        assert list(a.overlay.edges()) == list(b.overlay.edges())

    def test_iob_deterministic(self):
        ag = self.make_ag()
        a = build_iob(ag, iterations=2)
        b = build_iob(ag, iterations=2)
        assert list(a.overlay.edges()) == list(b.overlay.edges())

    def test_seed_changes_grouping(self):
        ag = self.make_ag()
        a = build_vnm(ag, variant="vnm_a", iterations=3, seed=1)
        b = build_vnm(ag, variant="vnm_a", iterations=3, seed=2)
        a.overlay.validate(ag)
        b.overlay.validate(ag)  # different shingles, both correct


class TestIOBImprovement:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000))
    def test_improvement_never_grows_or_breaks(self, seed):
        rng = random.Random(seed)
        writers = [f"w{i}" for i in range(rng.randrange(4, 14))]
        ag = BipartiteGraph(
            {
                f"r{i}": tuple(rng.sample(writers, rng.randrange(2, len(writers) + 1)))
                for i in range(rng.randrange(3, 12))
            }
        )
        result = build_iob(ag, iterations=1)
        state = result.iob_state
        edges_before = result.overlay.num_edges
        state.improve_partials()
        assert result.overlay.num_edges <= edges_before
        result.overlay.validate(ag)

    def test_reverse_index_consistent_after_improvement(self):
        rng = random.Random(9)
        writers = [f"w{i}" for i in range(15)]
        ag = BipartiteGraph(
            {
                f"r{i}": tuple(rng.sample(writers, rng.randrange(3, 10)))
                for i in range(20)
            }
        )
        result = build_iob(ag, iterations=3)
        state = result.iob_state
        overlay = result.overlay
        for handle, cover in state.coverage.items():
            if handle in state.dead:
                continue
            if overlay.kinds[handle] is NodeKind.PARTIAL and overlay.outputs[handle]:
                actual = overlay.coverage(handle)
                assert cover == frozenset(actual)
                for writer in cover:
                    if handle in state.pure:
                        assert handle in state.reverse[writer]


class TestStatsIntegrity:
    def test_edges_saved_matches_edge_delta(self):
        rng = random.Random(11)
        writers = [f"w{i}" for i in range(20)]
        ag = BipartiteGraph(
            {
                f"r{i}": tuple(rng.sample(writers, rng.randrange(2, 12)))
                for i in range(25)
            }
        )
        result = build_vnm(ag, variant="vnm_a", iterations=5)
        total_saved = sum(s.edges_saved for s in result.stats)
        assert total_saved == ag.num_edges - result.overlay.num_edges

    def test_negative_edges_counted(self):
        rng = random.Random(13)
        base = [f"w{i}" for i in range(8)]
        # Near-identical readers, each missing one writer: quasi-biclique bait.
        inputs = {}
        for i in range(8):
            members = [w for j, w in enumerate(base) if j != i % 8]
            inputs[f"r{i}"] = tuple(members)
        ag = BipartiteGraph(inputs)
        result = build_vnm(ag, variant="vnm_n", iterations=4, chunk_size=8, k2=2)
        result.overlay.validate(ag)
        stat_total = sum(s.negative_edges_added for s in result.stats)
        assert stat_total == result.overlay.num_negative_edges
