"""Tests for the VNM construction family."""

import pytest

from repro.core.aggregates import Max, Sum
from repro.graph.bipartite import build_bipartite
from repro.graph.generators import paper_figure1, social_graph, web_graph
from repro.graph.neighborhoods import Neighborhood
from repro.overlay import construct_overlay
from repro.overlay.vnm import VNMConfig, build_vnm


@pytest.fixture(scope="module")
def fig1_ag():
    return build_bipartite(paper_figure1(), Neighborhood.in_neighbors())


@pytest.fixture(scope="module")
def web_ag():
    return build_bipartite(
        web_graph(400, 6, copy_probability=0.95, seed=4), Neighborhood.in_neighbors()
    )


class TestCorrectness:
    @pytest.mark.parametrize("variant", ["vnm", "vnm_a", "vnm_n"])
    def test_duplicate_sensitive_exact_coverage(self, fig1_ag, web_ag, variant):
        for ag in (fig1_ag, web_ag):
            result = build_vnm(ag, variant=variant, iterations=6)
            result.overlay.validate(ag)

    def test_vnm_d_set_coverage(self, fig1_ag, web_ag):
        for ag in (fig1_ag, web_ag):
            result = build_vnm(ag, variant="vnm_d", iterations=6)
            result.overlay.validate(ag, duplicate_insensitive=True)

    def test_vnm_d_never_adds_negative_edges(self, web_ag):
        result = build_vnm(ag=web_ag, variant="vnm_d", iterations=6)
        assert result.overlay.num_negative_edges == 0

    def test_overlay_is_dag(self, web_ag):
        for variant in ("vnm_a", "vnm_n", "vnm_d"):
            result = build_vnm(web_ag, variant=variant, iterations=6)
            result.overlay.topological_order()  # raises on cycles


class TestSharingIndex:
    def test_improves_over_identity(self, web_ag):
        result = build_vnm(web_ag, variant="vnm_a", iterations=8)
        assert result.overlay.sharing_index(web_ag) > 0.2

    def test_monotone_nondecreasing_per_iteration(self, web_ag):
        result = build_vnm(web_ag, variant="vnm_a", iterations=8)
        trace = result.sharing_index_trace
        assert all(b >= a - 1e-9 for a, b in zip(trace, trace[1:]))

    def test_web_better_than_social(self):
        web = build_bipartite(
            web_graph(400, 6, copy_probability=0.95, seed=4),
            Neighborhood.in_neighbors(),
        )
        social = build_bipartite(
            social_graph(400, 6, seed=4), Neighborhood.in_neighbors()
        )
        web_si = build_vnm(web, variant="vnm_a", iterations=8).overlay.sharing_index(web)
        social_si = build_vnm(social, variant="vnm_a", iterations=8).overlay.sharing_index(social)
        assert web_si > social_si

    def test_vnm_n_beats_vnm_a(self, web_ag):
        """The paper's headline Figure 8 ordering (negative edges help)."""
        si_a = build_vnm(web_ag, variant="vnm_a", iterations=14).overlay.sharing_index(web_ag)
        si_n = build_vnm(web_ag, variant="vnm_n", iterations=14).overlay.sharing_index(web_ag)
        assert si_n >= si_a * 0.98  # at worst a hair behind, typically ahead

    def test_negative_edges_appear(self, web_ag):
        result = build_vnm(web_ag, variant="vnm_n", iterations=8)
        assert result.overlay.num_negative_edges > 0


class TestAdaptiveChunking:
    def test_chunk_shrinks(self, web_ag):
        result = build_vnm(web_ag, variant="vnm_a", chunk_size=100, iterations=6)
        sizes = [s.chunk_size for s in result.stats]
        assert sizes[0] == 100
        assert sizes[-1] < 100
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))

    def test_fixed_vnm_keeps_chunk(self, web_ag):
        result = build_vnm(web_ag, variant="vnm", chunk_size=64, iterations=4)
        assert all(s.chunk_size == 64 for s in result.stats)

    def test_respects_floor(self, web_ag):
        result = build_vnm(
            web_ag, variant="vnm_a", iterations=6, min_chunk_size=7
        )
        assert all(s.chunk_size >= 7 for s in result.stats)

    def test_insensitive_to_initial_chunk_order_of_magnitude(self, web_ag):
        """Paper: 'not sensitive to the initial chunk size to within an
        order of magnitude'."""
        si_small = build_vnm(web_ag, variant="vnm_a", chunk_size=40, iterations=10)
        si_large = build_vnm(web_ag, variant="vnm_a", chunk_size=200, iterations=10)
        a = si_small.overlay.sharing_index(web_ag)
        b = si_large.overlay.sharing_index(web_ag)
        assert abs(a - b) < 0.15


class TestStats:
    def test_stats_populated(self, web_ag):
        result = build_vnm(web_ag, variant="vnm_a", iterations=4)
        for stat in result.stats:
            assert stat.elapsed_seconds >= 0
            assert stat.memory_estimate > 0
            assert stat.sharing_index <= 1.0
        assert result.total_seconds >= 0

    def test_benefit_by_width_keys_are_widths(self, web_ag):
        result = build_vnm(web_ag, variant="vnm_a", iterations=2)
        for stat in result.stats:
            for width in stat.benefit_by_width:
                assert width >= 1

    def test_early_stop_on_exhaustion(self, fig1_ag):
        result = build_vnm(fig1_ag, variant="vnm_a", iterations=50)
        assert len(result.stats) < 50  # tiny graph exhausts quickly


class TestConfig:
    def test_variant_validation(self):
        with pytest.raises(ValueError):
            VNMConfig(variant="vnm_x")

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            VNMConfig(chunk_size=1)

    def test_iterations_validation(self):
        with pytest.raises(ValueError):
            VNMConfig(iterations=0)

    def test_config_and_overrides_exclusive(self, fig1_ag):
        with pytest.raises(TypeError):
            build_vnm(fig1_ag, config=VNMConfig(), iterations=3)

    def test_virtual_transactions_toggle(self, web_ag):
        with_vt = build_vnm(web_ag, variant="vnm_a", iterations=8)
        without = build_vnm(
            web_ag, variant="vnm_a", iterations=8, virtual_transactions=False
        )
        without.overlay.validate(web_ag)
        # Multi-level stacking is the main SI driver at this scale.
        assert with_vt.overlay.sharing_index(web_ag) >= without.overlay.sharing_index(web_ag)


class TestDispatcher:
    def test_aggregate_guards(self, fig1_ag):
        with pytest.raises(ValueError):
            construct_overlay(fig1_ag, "vnm_n", aggregate=Max())
        with pytest.raises(ValueError):
            construct_overlay(fig1_ag, "vnm_d", aggregate=Sum())
        construct_overlay(fig1_ag, "vnm_n", aggregate=Sum(), iterations=2)
        construct_overlay(fig1_ag, "vnm_d", aggregate=Max(), iterations=2)

    def test_unknown_algorithm(self, fig1_ag):
        with pytest.raises(ValueError):
            construct_overlay(fig1_ag, "steiner")

    def test_identity(self, fig1_ag):
        result = construct_overlay(fig1_ag, "identity")
        assert result.overlay.num_edges == fig1_ag.num_edges
        assert result.stats == []
