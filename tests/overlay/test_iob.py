"""Tests for IOB (incremental overlay building)."""

import pytest

from repro.core.overlay import NodeKind, Overlay
from repro.graph.bipartite import BipartiteGraph, build_bipartite
from repro.graph.generators import paper_figure1, web_graph
from repro.graph.neighborhoods import Neighborhood
from repro.overlay.iob import IOBState, build_iob
from repro.overlay.vnm import build_vnm


@pytest.fixture(scope="module")
def fig1_ag():
    return build_bipartite(paper_figure1(), Neighborhood.in_neighbors())


@pytest.fixture(scope="module")
def web_ag():
    return build_bipartite(
        web_graph(400, 6, copy_probability=0.95, seed=4), Neighborhood.in_neighbors()
    )


class TestBuild:
    def test_fig1_valid(self, fig1_ag):
        result = build_iob(fig1_ag, iterations=3)
        result.overlay.validate(fig1_ag)

    def test_web_valid_and_compact(self, web_ag):
        result = build_iob(web_ag, iterations=3)
        result.overlay.validate(web_ag)
        assert result.overlay.sharing_index(web_ag) > 0.3

    def test_iob_most_compact(self, web_ag):
        """Paper Figure 8: IOB finds the most compact overlays."""
        iob_si = build_iob(web_ag, iterations=3).overlay.sharing_index(web_ag)
        vnm_si = build_vnm(web_ag, variant="vnm_a", iterations=10).overlay.sharing_index(web_ag)
        assert iob_si > vnm_si

    def test_iob_converges_fast(self, web_ag):
        """Paper: 'for IOB, most of the benefit is obtained in first few
        iterations'."""
        result = build_iob(web_ag, iterations=5)
        first = result.stats[0].sharing_index
        final = result.stats[-1].sharing_index
        assert first > 0.8 * final

    def test_iob_deeper_than_vnm(self, web_ag):
        """Paper Figure 11(a): IOB overlays are deeper on average."""
        from repro.overlay.metrics import average_depth

        iob = build_iob(web_ag, iterations=3).overlay
        vnm = build_vnm(web_ag, variant="vnm_a", iterations=10).overlay
        assert average_depth(iob) > average_depth(vnm)

    def test_sharing_among_identical_readers(self):
        ag = BipartiteGraph(
            {f"r{i}": ("w1", "w2", "w3", "w4") for i in range(5)}
        )
        result = build_iob(ag, iterations=1)
        result.overlay.validate(ag)
        # 4 writer->PA edges + 5 PA->reader edges = 9 vs 20 direct.
        assert result.overlay.num_edges == 9

    def test_iterations_validation(self, fig1_ag):
        with pytest.raises(ValueError):
            build_iob(fig1_ag, iterations=0)


class TestCoverMachinery:
    def make_state(self):
        overlay = Overlay()
        state = IOBState(overlay)
        for w in ("w1", "w2", "w3", "w4", "w5"):
            state.ensure_writer(w)
        return overlay, state

    def handles(self, overlay, *names):
        return {overlay.writer_of[n] for n in names}

    def test_cover_exactness(self):
        overlay, state = self.make_state()
        state.add_reader("r1", ["w1", "w2", "w3"])
        state.add_reader("r2", ["w1", "w2", "w3", "w4"])
        for reader in ("r1", "r2"):
            handle = overlay.reader_of[reader]
            cover = overlay.coverage(handle)
            assert all(mult == 1 for mult in cover.values())

    def test_cover_pieces_disjoint(self):
        overlay, state = self.make_state()
        state.add_reader("r1", ["w1", "w2"])
        state.add_reader("r2", ["w3", "w4"])
        pieces = state.cover(self.handles(overlay, "w1", "w2", "w3", "w4"))
        seen = set()
        for piece in pieces:
            cover = state.coverage[piece]
            assert not (cover & seen)
            seen |= cover

    def test_split_preserves_donor_coverage(self):
        overlay, state = self.make_state()
        r1 = state.add_reader("r1", ["w1", "w2", "w3", "w4"])
        before = overlay.coverage(r1)
        # A new reader overlapping r1 partially forces a split.
        state.add_reader("r2", ["w1", "w2", "w3"])
        assert overlay.coverage(r1) == before
        overlay.validate(
            BipartiteGraph(
                {"r1": ("w1", "w2", "w3", "w4"), "r2": ("w1", "w2", "w3")}
            )
        )

    def test_reverse_index_tracks_partials(self):
        overlay, state = self.make_state()
        state.add_reader("r1", ["w1", "w2", "w3"])
        state.add_reader("r2", ["w1", "w2", "w3"])
        w1 = overlay.writer_of["w1"]
        partials = [
            h for h in state.reverse[w1] if overlay.kinds[h] is NodeKind.PARTIAL
        ]
        assert partials  # the shared aggregate is indexed

    def test_prune_orphans(self):
        overlay, state = self.make_state()
        state.add_reader("r1", ["w1", "w2", "w3"])
        state.add_reader("r2", ["w1", "w2", "w3"])
        r1 = overlay.reader_of["r1"]
        r2 = overlay.reader_of["r2"]
        state.remove_reader_inputs(r1)
        state.remove_reader_inputs(r2)
        # The shared partial aggregate lost all consumers -> pruned.
        for handle in overlay.partial_handles():
            assert not overlay.outputs[handle]
            assert not overlay.inputs[handle]

    def test_improve_partials_no_regression(self, web_ag):
        result = build_iob(web_ag, iterations=1)
        state = result.iob_state
        edges_before = result.overlay.num_edges
        state.improve_partials()
        assert result.overlay.num_edges <= edges_before
        result.overlay.validate(web_ag)


class TestFromOverlay:
    def test_indexes_pure_overlay(self, fig1_ag):
        overlay = build_vnm(fig1_ag, variant="vnm_a", iterations=4).overlay
        state = IOBState(overlay)
        for handle in overlay.partial_handles():
            if handle in state.pure:
                cover = state.coverage[handle]
                exact = overlay.coverage(handle)
                assert cover == frozenset(exact)
                assert all(m == 1 for m in exact.values())

    def test_negative_edge_nodes_marked_impure(self, web_ag):
        overlay = build_vnm(web_ag, variant="vnm_n", iterations=6).overlay
        if overlay.num_negative_edges == 0:
            pytest.skip("no negative edges produced on this seed")
        state = IOBState(overlay)
        # Any node downstream of a negative edge must not be reusable.
        for dst in range(overlay.num_nodes):
            if any(sign < 0 for sign in overlay.inputs[dst].values()):
                assert dst not in state.pure

    def test_writers_always_pure(self, fig1_ag):
        overlay = Overlay.identity(fig1_ag)
        state = IOBState(overlay)
        for handle in overlay.writer_handles():
            assert handle in state.pure
            assert state.coverage[handle] == frozenset((handle,))
