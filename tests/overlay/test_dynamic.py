"""Tests for incremental overlay maintenance (paper Section 3.3).

The central property: after ANY sequence of structure-stream events, the
maintained overlay answers exactly like a freshly-built one — verified via
``Overlay.validate`` against the recomputed AG.
"""

import random

import pytest

from repro.graph.bipartite import build_bipartite
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import paper_figure1, random_graph
from repro.graph.neighborhoods import Neighborhood
from repro.overlay.dynamic import OverlayMaintainer
from repro.overlay.iob import build_iob
from repro.overlay.vnm import build_vnm


def make_maintained(graph, algorithm="vnm_a", neighborhood=None, **kwargs):
    neighborhood = neighborhood or Neighborhood.in_neighbors()
    ag = build_bipartite(graph, neighborhood)
    if algorithm == "iob":
        overlay = build_iob(ag, iterations=2).overlay
    else:
        overlay = build_vnm(ag, variant=algorithm, iterations=4).overlay
    maintainer = OverlayMaintainer(graph, neighborhood, overlay, **kwargs).attach()
    return maintainer


def check(maintainer, graph, neighborhood=None):
    neighborhood = neighborhood or Neighborhood.in_neighbors()
    ag = build_bipartite(graph, neighborhood)
    maintainer.overlay.validate(ag)
    assert maintainer.live_bipartite().reader_inputs == ag.reader_inputs


class TestEdgeAddition:
    def test_single_edge(self):
        graph = paper_figure1()
        maintainer = make_maintained(graph)
        graph.add_edge("g", "a")  # g now feeds a
        check(maintainer, graph)

    def test_small_delta_uses_direct_edges(self):
        graph = random_graph(15, 40, seed=1)
        maintainer = make_maintained(graph, delta_threshold=100)
        graph.add_edge(0, 1) if not graph.has_edge(0, 1) else None
        check(maintainer, graph)

    def test_large_delta_covered_by_partial(self):
        graph = random_graph(15, 40, seed=2)
        # 2-hop neighborhoods: one new edge changes many input lists at once.
        neighborhood = Neighborhood.in_neighbors(hops=2)
        maintainer = make_maintained(
            graph, neighborhood=neighborhood, delta_threshold=1
        )
        for _ in range(3):
            u, v = random.Random(3).sample(range(15), 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
        check(maintainer, graph, neighborhood)

    def test_direct_edge_count_triggers_rebuild(self):
        graph = random_graph(20, 50, seed=4)
        maintainer = make_maintained(
            graph, delta_threshold=100, direct_edge_threshold=2
        )
        rng = random.Random(5)
        added = 0
        while added < 10:
            u, v = rng.randrange(20), rng.randrange(20)
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)
                added += 1
        check(maintainer, graph)

    def test_new_reader_via_first_edge(self):
        graph = DynamicGraph.from_edges([("w", "r")])
        maintainer = make_maintained(graph)
        graph.add_node("fresh")
        graph.add_edge("w", "fresh")
        check(maintainer, graph)


class TestEdgeDeletion:
    def test_direct_edge_removal(self):
        graph = paper_figure1()
        maintainer = make_maintained(graph)
        graph.remove_edge("c", "a")
        check(maintainer, graph)

    def test_removal_through_partial(self):
        graph = random_graph(20, 120, seed=6)
        maintainer = make_maintained(graph, algorithm="iob")
        edges = list(graph.edges())[:8]
        for u, v in edges:
            graph.remove_edge(u, v)
        check(maintainer, graph)

    def test_reader_loses_all_inputs(self):
        graph = DynamicGraph.from_edges([("w1", "r"), ("w2", "r")])
        maintainer = make_maintained(graph)
        graph.remove_edge("w1", "r")
        graph.remove_edge("w2", "r")
        check(maintainer, graph)
        assert "r" not in maintainer.current_inputs

    def test_affected_threshold_triggers_rebuild(self):
        graph = random_graph(25, 150, seed=7)
        maintainer = make_maintained(graph, algorithm="iob", affected_threshold=0)
        for u, v in list(graph.edges())[:5]:
            graph.remove_edge(u, v)
        check(maintainer, graph)


class TestNodes:
    def test_node_addition_with_edges(self):
        graph = paper_figure1()
        maintainer = make_maintained(graph)
        graph.add_node("z")
        graph.add_edge("z", "a")
        graph.add_edge("b", "z")
        check(maintainer, graph)

    def test_node_removal(self):
        graph = paper_figure1()
        maintainer = make_maintained(graph)
        graph.remove_node("d")  # d fed almost everyone
        check(maintainer, graph)

    def test_node_removal_iob_overlay(self):
        graph = random_graph(20, 100, seed=8)
        maintainer = make_maintained(graph, algorithm="iob")
        graph.remove_node(3)
        check(maintainer, graph)
        graph.remove_node(7)
        check(maintainer, graph)


class TestRandomizedChurn:
    @pytest.mark.parametrize("algorithm", ["vnm_a", "vnm_n", "iob"])
    def test_random_mutation_sequences(self, algorithm):
        rng = random.Random(17)
        graph = random_graph(18, 60, seed=9)
        maintainer = make_maintained(graph, algorithm=algorithm)
        next_node = 1000
        for step in range(60):
            op = rng.random()
            nodes = list(graph.nodes())
            if op < 0.45 and len(nodes) >= 2:
                u, v = rng.sample(nodes, 2)
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
            elif op < 0.75:
                edges = list(graph.edges())
                if edges:
                    u, v = rng.choice(edges)
                    graph.remove_edge(u, v)
            elif op < 0.9:
                graph.add_node(next_node)
                if nodes:
                    graph.add_edge(rng.choice(nodes), next_node)
                next_node += 1
            elif len(nodes) > 5:
                graph.remove_node(rng.choice(nodes))
            if step % 10 == 9:
                check(maintainer, graph)
        check(maintainer, graph)

    def test_churn_on_two_hop_neighborhoods(self):
        rng = random.Random(23)
        graph = random_graph(12, 30, seed=10)
        neighborhood = Neighborhood.in_neighbors(hops=2)
        maintainer = make_maintained(graph, neighborhood=neighborhood)
        for step in range(30):
            nodes = list(graph.nodes())
            if rng.random() < 0.5 and len(nodes) >= 2:
                u, v = rng.sample(nodes, 2)
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
            else:
                edges = list(graph.edges())
                if edges:
                    u, v = rng.choice(edges)
                    graph.remove_edge(u, v)
            if step % 6 == 5:
                check(maintainer, graph, neighborhood)
        check(maintainer, graph, neighborhood)

    def test_version_counter_advances(self):
        graph = paper_figure1()
        maintainer = make_maintained(graph)
        before = maintainer.version
        graph.add_edge("g", "b")
        assert maintainer.version > before
