"""Tests for overlay metrics."""

import pytest

from repro.core.overlay import Overlay
from repro.graph.bipartite import BipartiteGraph, build_bipartite
from repro.graph.generators import paper_figure1
from repro.graph.neighborhoods import Neighborhood
from repro.overlay.metrics import (
    average_depth,
    compression_ratio,
    depth_cdf,
    depth_distribution,
    summarize,
)
from repro.overlay.vnm import build_vnm


@pytest.fixture
def fig1():
    ag = build_bipartite(paper_figure1(), Neighborhood.in_neighbors())
    overlay = build_vnm(ag, variant="vnm_a", iterations=4).overlay
    return ag, overlay


class TestCompressionRatio:
    def test_paper_relationship(self):
        # CR = 1 / (1 - SI), Section 3.1.
        assert compression_ratio(0.5) == pytest.approx(2.0)
        assert compression_ratio(0.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            compression_ratio(1.0)


class TestDepth:
    def test_identity_overlay_depth_one(self):
        ag = BipartiteGraph({"r": ("w1", "w2")})
        overlay = Overlay.identity(ag)
        assert depth_distribution(overlay) == {1: 1}
        assert average_depth(overlay) == 1.0

    def test_cdf_monotone_to_one(self, fig1):
        _, overlay = fig1
        cdf = depth_cdf(overlay)
        fractions = [f for _, f in cdf]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == pytest.approx(1.0)

    def test_empty_overlay(self):
        overlay = Overlay()
        assert depth_cdf(overlay) == []
        assert average_depth(overlay) == 0.0


class TestSummary:
    def test_fields(self, fig1):
        ag, overlay = fig1
        summary = summarize(overlay, ag)
        assert summary.num_readers == 7
        assert summary.num_writers == 6
        assert summary.ag_edges == 32
        assert summary.num_edges == overlay.num_edges
        assert summary.sharing_index == pytest.approx(overlay.sharing_index(ag))
        assert summary.compression_ratio >= 1.0
        assert summary.max_depth >= summary.average_depth
        assert summary.memory_estimate > 0

    def test_summary_of_identity(self):
        ag = BipartiteGraph({"r": ("w1", "w2")})
        summary = summarize(Overlay.identity(ag), ag)
        assert summary.sharing_index == 0.0
        assert summary.num_partials == 0
