"""Unit tests for min-hash shingle ordering and chunking."""

import pytest

from repro.overlay.shingles import ShingleHasher, chunk, shingle_order


class TestHasher:
    def test_deterministic_across_instances(self):
        h1 = ShingleHasher(num_hashes=3, seed=5)
        h2 = ShingleHasher(num_hashes=3, seed=5)
        items = ["a", "b", "c"]
        assert h1.shingles(items) == h2.shingles(items)

    def test_order_insensitive(self):
        h = ShingleHasher(num_hashes=2, seed=5)
        assert h.shingles(["a", "b", "c"]) == h.shingles(["c", "a", "b"])

    def test_identical_sets_collide(self):
        h = ShingleHasher(seed=1)
        assert h.shingles([1, 2, 3]) == h.shingles([1, 2, 3])

    def test_disjoint_sets_differ(self):
        h = ShingleHasher(num_hashes=4, seed=1)
        assert h.shingles([1, 2, 3]) != h.shingles([10, 20, 30])

    def test_empty_items(self):
        h = ShingleHasher(num_hashes=2, seed=1)
        assert len(h.shingles([])) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ShingleHasher(num_hashes=0)


class TestOrder:
    def test_similar_readers_adjacent(self):
        shared = list(range(20))
        transactions = {
            "twin1": shared,
            "twin2": shared,
            "stranger": list(range(100, 130)),
            "twin3": shared + [99],
        }
        order = shingle_order(transactions, num_hashes=2, seed=3)
        twins = [order.index(t) for t in ("twin1", "twin2", "twin3")]
        # All twins within a window of 3 positions.
        assert max(twins) - min(twins) <= 2

    def test_deterministic(self):
        transactions = {i: list(range(i, i + 4)) for i in range(30)}
        assert shingle_order(transactions, seed=9) == shingle_order(transactions, seed=9)

    def test_all_readers_present(self):
        transactions = {i: [i, i + 1] for i in range(25)}
        assert sorted(shingle_order(transactions)) == sorted(transactions)


class TestChunk:
    def test_disjoint_partition(self):
        groups = chunk(list(range(10)), 4)
        assert groups == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_overlap(self):
        groups = chunk(list(range(10)), 4, overlap=0.5)
        assert groups[0] == [0, 1, 2, 3]
        assert groups[1] == [2, 3, 4, 5]

    def test_every_reader_covered(self):
        for overlap in (0.0, 0.25, 0.5):
            groups = chunk(list(range(37)), 5, overlap=overlap)
            covered = set()
            for group in groups:
                covered.update(group)
            assert covered == set(range(37))

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk([1, 2], 0)
        with pytest.raises(ValueError):
            chunk([1, 2], 2, overlap=1.0)

    def test_small_input(self):
        assert chunk([1], 10) == [[1]]
        assert chunk([], 10) == []
