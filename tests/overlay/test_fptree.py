"""Unit tests for FP-tree construction and biclique mining."""

import pytest

from repro.overlay.fptree import FPTree, mine_all


def make_rank(items):
    return {item: position for position, item in enumerate(items)}


@pytest.fixture
def paper_tree():
    """The Figure 3 scenario: readers over writers ordered d,c,e,f,a,b."""
    rank = make_rank(["d", "c", "e", "f", "a", "b"])
    tree = FPTree(rank)
    tree.insert("ar", ["d", "c", "e", "f"])
    tree.insert("br", ["d", "e", "f"])
    tree.insert("er", ["d", "c", "a", "b"])
    return tree, rank


class TestInsert:
    def test_prefix_sharing(self, paper_tree):
        tree, _ = paper_tree
        d_node = tree.root.children["d"]
        # All three readers pass through d (the paper's d{ar, br, er}).
        assert d_node.support == {"ar", "br", "er"}
        c_node = d_node.children["c"]
        assert c_node.support == {"ar", "er"}

    def test_branching(self, paper_tree):
        tree, _ = paper_tree
        d_node = tree.root.children["d"]
        # br diverges below d with its own e branch.
        assert set(d_node.children) == {"c", "e"}

    def test_items_sorted_by_rank(self):
        tree = FPTree(make_rank(["x", "y", "z"]))
        tree.insert("r", ["z", "x", "y"])  # inserted unsorted
        assert list(tree.root.children) == ["x"]
        assert tree.root.children["x"].children["y"].children["z"].support == {"r"}

    def test_path_items(self, paper_tree):
        tree, _ = paper_tree
        node = tree.root.children["d"].children["c"].children["e"]
        assert node.path_items() == ["d", "c", "e"]

    def test_num_nodes(self, paper_tree):
        tree, _ = paper_tree
        # d,c,e,f (ar) + e,f (br) + a,b (er) = 8
        assert tree.num_nodes == 8


class TestMineBasic:
    def test_figure3_trio_has_no_profitable_path(self, paper_tree):
        # The three Figure-3 readers share at most a 2x2 biclique along a
        # root path ({d,c} x {ar,er}), whose benefit 2*2-2-2 = 0 does not
        # pay for a virtual node; exact mining correctly declines.
        tree, _ = paper_tree
        assert tree.mine_best() is None

    def test_best_path_found_with_fourth_reader(self, paper_tree):
        tree, _ = paper_tree
        tree.insert("cr", ["d", "c", "e", "f"])  # the paper's next insertion
        candidate = tree.mine_best()
        assert candidate is not None
        biclique = tree.extract(candidate)
        assert biclique is not None
        # {d,c,e,f} x {ar,cr}: benefit 4*2-4-2 = 2.
        assert biclique.benefit >= 2
        assert set(biclique.readers) >= {"ar", "cr"}

    def test_extraction_removes_readers(self, paper_tree):
        tree, _ = paper_tree
        tree.insert("cr", ["d", "c", "e", "f"])
        biclique = tree.extract(tree.mine_best())
        for reader in biclique.readers:
            d_node = tree.root.children.get("d")
            if d_node is not None:
                assert reader not in d_node.support

    def test_mine_all_terminates(self, paper_tree):
        tree, _ = paper_tree
        bicliques = list(mine_all(tree))
        assert all(b.benefit >= 1 for b in bicliques)
        # No further candidates.
        assert tree.mine_best() is None or tree.extract(tree.mine_best()) is None

    def test_no_biclique_in_disjoint_transactions(self):
        tree = FPTree(make_rank(list(range(10))))
        tree.insert("r1", [0, 1])
        tree.insert("r2", [2, 3])
        assert tree.mine_best() is None

    def test_perfect_biclique(self):
        rank = make_rank(["w1", "w2", "w3"])
        tree = FPTree(rank)
        for reader in ("r1", "r2", "r3", "r4"):
            tree.insert(reader, ["w1", "w2", "w3"])
        biclique = tree.extract(tree.mine_best())
        assert sorted(biclique.items) == ["w1", "w2", "w3"]
        assert len(biclique.readers) == 4
        assert biclique.benefit == 3 * 4 - 3 - 4  # L*S - L - S

    def test_remove_reader(self, paper_tree):
        tree, _ = paper_tree
        tree.remove_reader("ar")
        d_node = tree.root.children["d"]
        assert "ar" not in d_node.support
        assert d_node.support == {"br", "er"}


class TestMineNegative:
    def test_quasi_path_registration(self):
        rank = make_rank(["w1", "w2", "w3", "w4", "w5"])
        tree = FPTree(rank)
        tree.insert("r1", ["w1", "w2", "w3", "w4"])
        tree.insert("r2", ["w1", "w2", "w3", "w4"])
        # r3 misses w3: a quasi path should register it with one negative.
        tree.insert_with_negatives("r3", ["w1", "w2", "w4", "w5"], k1=2, k2=2)
        w3_node = tree.root.children["w1"].children["w2"].children["w3"]
        assert "r3" in w3_node.neg_support

    def test_negative_biclique_extraction(self):
        rank = make_rank(["w1", "w2", "w3", "w4"])
        tree = FPTree(rank)
        tree.insert("r1", ["w1", "w2", "w3", "w4"])
        tree.insert("r2", ["w1", "w2", "w3", "w4"])
        tree.insert_with_negatives("r3", ["w1", "w2", "w4"], k1=2, k2=1, min_gain=2)
        biclique = tree.extract(tree.mine_best())
        assert biclique is not None
        if "r3" in biclique.readers:
            assert biclique.negatives["r3"] == ["w3"]
            assert set(biclique.covered["r3"]) == {"w1", "w2", "w4"}

    def test_k2_bounds_negatives(self):
        rank = make_rank(["w1", "w2", "w3", "w4", "w5", "w6"])
        tree = FPTree(rank)
        tree.insert("r1", ["w1", "w2", "w3", "w4", "w5", "w6"])
        tree.insert_with_negatives("r2", ["w1", "w6"], k1=3, k2=1)
        # Registering r2 along r1's full path would need 4 negatives > k2=1.
        deep = tree.root.children["w1"].children["w2"].children["w3"]
        assert "r2" not in deep.neg_support

    def test_saving_must_be_positive_per_reader(self):
        rank = make_rank(["w1", "w2", "w3"])
        tree = FPTree(rank)
        tree.insert("r1", ["w1", "w2", "w3"])
        tree.insert("r2", ["w1", "w2", "w3"])
        # r3 shares only w1: pos=1 saving 0 -> must not join any biclique.
        tree.insert("r3", ["w1"])
        biclique = tree.extract(tree.mine_best())
        assert "r3" not in biclique.readers


class TestMineDuplicateInsensitive:
    def test_mined_edges_become_reusable(self):
        rank = make_rank(["w1", "w2", "w3"])
        tree = FPTree(rank)
        for reader in ("r1", "r2", "r3"):
            tree.insert(reader, ["w1", "w2", "w3"])
        first = tree.extract(tree.mine_best(), duplicate_insensitive=True)
        assert first is not None
        # Readers stay in the tree, now in mined sets.
        w1_node = tree.root.children["w1"]
        assert w1_node.mined_support == set(first.readers)
        # Re-mining the same path is no longer profitable.
        assert tree.mine_best() is None

    def test_mined_penalty_in_benefit(self):
        rank = make_rank(["w1", "w2", "w3", "w4"])
        tree = FPTree(rank)
        tree.insert("r1", ["w1", "w2", "w3", "w4"])
        tree.insert("r2", ["w1", "w2", "w3", "w4"])
        tree.extract(tree.mine_best(), duplicate_insensitive=True)
        # A new reader arrives sharing the same items plus already-mined ones.
        tree.insert("r3", ["w1", "w2", "w3", "w4"])
        tree.insert("r4", ["w1", "w2", "w3", "w4"])
        candidate = tree.mine_best()
        assert candidate is not None
        biclique = tree.extract(candidate, duplicate_insensitive=True)
        # Only the fresh readers deliver savings.
        assert set(biclique.readers) == {"r3", "r4"}

    def test_insert_with_mined_items(self):
        rank = make_rank(["w1", "w2"])
        tree = FPTree(rank)
        tree.insert("r1", ["w1", "w2"], mined_items={"w1"})
        w1_node = tree.root.children["w1"]
        assert "r1" in w1_node.mined_support
        assert "r1" in w1_node.children["w2"].support
