"""Shared fixtures and oracles for the test suite."""

import random

import pytest

from repro.core.engine import EAGrEngine
from repro.graph.streams import ReadEvent, WriteEvent


def make_events(nodes, count, write_fraction=0.5, seed=0, vocabulary=12):
    """Deterministic interleaved read/write events over ``nodes``."""
    rng = random.Random(seed)
    nodes = list(nodes)
    events = []
    for tick in range(count):
        node = rng.choice(nodes)
        if rng.random() < write_fraction:
            events.append(
                WriteEvent(node=node, value=float(rng.randrange(vocabulary)), timestamp=float(tick + 1))
            )
        else:
            events.append(ReadEvent(node=node, timestamp=float(tick + 1)))
    return events


def play_and_check(engine: EAGrEngine, events, comparator=None):
    """Play events; on every read, compare against the brute-force oracle.

    Returns the number of reads checked.  ``comparator`` defaults to
    equality (exact for ints/dicts; floats in these tests are sums of small
    integers, so equality is exact there too).
    """
    if comparator is None:
        comparator = lambda a, b: a == b  # noqa: E731
    checked = 0
    for event in events:
        if isinstance(event, WriteEvent):
            engine.write(event.node, event.value, event.timestamp)
        else:
            got = engine.read(event.node)
            want = engine.reference_read(event.node)
            assert comparator(got, want), (
                f"read({event.node!r}) = {got!r}, oracle = {want!r} "
                f"[{engine.describe()}]"
            )
            checked += 1
    return checked


@pytest.fixture
def checker():
    return play_and_check


@pytest.fixture
def event_factory():
    return make_events
