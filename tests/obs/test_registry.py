"""Registry math: bucket boundaries, quantile recovery, shard merges,
and numpy-vs-fallback slot-layout parity.

The registry's one structural promise is that two registries making the
same registration calls in the same order are layout-compatible — that
is what lets a front-end decode a shard's slab bytes by declaring the
same schema.  These tests pin that promise on both value backends.
"""

import math

import pytest

from repro.obs import registry as reg_mod
from repro.obs.registry import (
    HIST_BUCKETS,
    MetricsRegistry,
    SlowOpLog,
    bucket_bounds_us,
    bucket_index,
    percentile_from_buckets,
)


# ---------------------------------------------------------------------------
# bucket math
# ---------------------------------------------------------------------------

def test_bucket_zero_is_sub_microsecond():
    assert bucket_index(0.0) == 0
    assert bucket_index(0.9999e-6) == 0


def test_bucket_boundaries_are_powers_of_two_microseconds():
    # Bucket i (1 <= i < 47) covers [2**(i-1), 2**i) µs: each boundary
    # value lands in the bucket whose half-open range starts there.
    for i in range(1, HIST_BUCKETS - 1):
        lower_us = 2 ** (i - 1)
        assert bucket_index(lower_us / 1e6) == i, i
        just_below = (lower_us - 0.5) / 1e6
        assert bucket_index(just_below) == i - 1


def test_bucket_overflow_clamps():
    an_hour = 3600.0
    assert bucket_index(an_hour) < HIST_BUCKETS
    assert bucket_index(1e12) == HIST_BUCKETS - 1
    assert bucket_index(float(2 ** 60)) == HIST_BUCKETS - 1


def test_bucket_bounds_match_index():
    bounds = bucket_bounds_us()
    assert len(bounds) == HIST_BUCKETS
    assert bounds[0] == 1.0
    assert bounds[-1] == float("inf")
    # Every finite upper bound is exclusive: an observation exactly at
    # the bound belongs to the next bucket.
    for i, bound in enumerate(bounds[:-1]):
        assert bucket_index((bound - 0.25) / 1e6) == i
        assert bucket_index(bound / 1e6) == i + 1


def test_percentile_empty_histogram_is_finite_zero():
    assert percentile_from_buckets([0.0] * HIST_BUCKETS, 0.99) == 0.0


def test_percentile_interpolates_within_bucket():
    counts = [0.0] * HIST_BUCKETS
    counts[bucket_index(100e-6)] = 100.0  # all samples in [64, 128) µs
    p50 = percentile_from_buckets(counts, 0.50)
    assert 64e-6 <= p50 < 128e-6
    # Linear interpolation: p99 sits near the top of the bucket.
    p99 = percentile_from_buckets(counts, 0.99)
    assert p50 < p99 < 128e-6


def test_percentile_overflow_clamps_to_floor():
    counts = [0.0] * HIST_BUCKETS
    counts[-1] = 10.0
    p99 = percentile_from_buckets(counts, 0.99)
    assert math.isfinite(p99)
    assert p99 == pytest.approx(2 ** (HIST_BUCKETS - 2) / 1e6)


# ---------------------------------------------------------------------------
# registry behavior
# ---------------------------------------------------------------------------

def make_schema(registry):
    h = registry.histogram("lat_seconds")
    c = registry.counter("ops")
    g = registry.gauge("depth")
    return h, c, g


def test_histogram_summary_fields():
    r = MetricsRegistry()
    h, c, g = make_schema(r)
    for us in (10, 100, 1000, 10_000):
        h.observe(us / 1e6)
    s = h.summary()
    assert s["count"] == 4.0
    assert s["sum"] == pytest.approx(0.01111, rel=1e-3)
    assert 0.0 < s["p50"] <= s["p95"] <= s["p99"]
    assert all(math.isfinite(s[k]) for k in ("count", "sum", "p50", "p95", "p99"))


def test_disabled_registry_still_tracks_layout():
    on = MetricsRegistry(enabled=True)
    off = MetricsRegistry(enabled=False)
    make_schema(on)
    h, c, g = make_schema(off)
    # Null metrics: every operation is a no-op...
    h.observe(1.0)
    c.inc()
    g.set(5.0)
    assert h.count == 0.0 and c.value == 0.0 and g.value == 0.0
    # ...but the slot layout still matches the enabled twin, so a
    # disabled registry can size and address a slab.
    assert off.n_slots == on.n_slots
    assert off.schema() == on.schema()


def test_merge_accumulates_across_shards():
    shard_a = MetricsRegistry()
    shard_b = MetricsRegistry()
    front = MetricsRegistry()
    ha, ca, ga = make_schema(shard_a)
    hb, cb, gb = make_schema(shard_b)
    make_schema(front)
    for _ in range(3):
        ha.observe(50e-6)
    ca.inc(7)
    ga.set(2.0)
    for _ in range(5):
        hb.observe(900e-6)
    cb.inc(11)
    gb.set(3.0)

    front.merge_values(shard_a.values_snapshot())
    front.merge_values(shard_b.values_snapshot())
    merged = front.snapshot()
    assert merged["ops"] == 18.0
    assert merged["depth"] == 5.0  # gauges sum: fleet total
    assert merged["lat_seconds"]["count"] == 8.0
    # The merged distribution spans both shards' buckets.
    assert merged["lat_seconds"]["p50"] >= 50e-6
    assert merged["lat_seconds"]["p99"] < 1024e-6


def test_load_values_rejects_wrong_width():
    r = MetricsRegistry()
    make_schema(r)
    with pytest.raises(ValueError):
        r.load_values([0.0] * (r.n_slots + 1))
    with pytest.raises(ValueError):
        r.merge_values([0.0])


def test_kind_conflict_raises():
    r = MetricsRegistry()
    r.counter("x")
    with pytest.raises(ValueError):
        r.gauge("x")


def test_reregistration_returns_same_metric():
    r = MetricsRegistry()
    assert r.counter("x") is r.counter("x")
    assert r.n_slots == 1


# ---------------------------------------------------------------------------
# numpy vs fallback parity
# ---------------------------------------------------------------------------

def make_fallback_registry(monkeypatch):
    """A registry forced onto the plain-list backend for its lifetime.

    ``_np`` is consulted on every value operation, not just at
    construction, so the patch must stay active while the registry is
    exercised — callers exercise it inside the patched context.
    """
    monkeypatch.setattr(reg_mod, "_np", None)
    return MetricsRegistry()


def _exercise(registry):
    h = registry.histogram("lat_seconds")
    c = registry.counter("ops")
    g = registry.gauge("depth")
    for us in (3, 64, 65, 4096, 10 ** 9):
        h.observe(us / 1e6)
    c.inc(4)
    g.set(9.5)
    g.add(0.5)
    return registry.snapshot(include_buckets=True)


def test_numpy_and_fallback_agree(monkeypatch):
    if reg_mod._np is None:
        pytest.skip("numpy fallback is already the only backend")
    numpy_backed = MetricsRegistry()
    rich = _exercise(numpy_backed)
    numpy_values = list(numpy_backed.values_snapshot())
    with monkeypatch.context() as patch:
        fallback = make_fallback_registry(patch)
        plain = _exercise(fallback)
        fallback_values = list(fallback.values_snapshot())
    assert plain == rich
    assert fallback_values == numpy_values


def test_fallback_slab_roundtrip(monkeypatch):
    # A list-backed shard snapshot decodes in a (possibly numpy-backed)
    # front-end registry declaring the same schema.
    with monkeypatch.context() as patch:
        fallback = make_fallback_registry(patch)
        snap = _exercise(fallback)
        values = fallback.values_snapshot()
    twin = MetricsRegistry()
    twin.histogram("lat_seconds")
    twin.counter("ops")
    twin.gauge("depth")
    twin.load_values(values)
    assert twin.snapshot(include_buckets=True) == snap


# ---------------------------------------------------------------------------
# slow-op log
# ---------------------------------------------------------------------------

def test_slow_op_log_gates_on_threshold():
    log = SlowOpLog(threshold=0.010, capacity=4)
    assert not log.note("fast", 0.001)
    assert len(log) == 0
    assert log.note("slow", 0.020, shard=3)
    event = log.snapshot()[0]
    assert event["op"] == "slow" and event["shard"] == 3
    assert event["seconds"] == pytest.approx(0.020)


def test_slow_op_log_bounded():
    log = SlowOpLog(threshold=0.0, capacity=2)
    for i in range(5):
        log.note(f"op{i}", 1.0)
    assert len(log) == 2
    assert [e["op"] for e in log.snapshot()] == ["op3", "op4"]
    assert log.dropped == 3
