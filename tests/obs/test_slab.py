"""Metrics slab: create/attach lifecycle, publish/scrape round-trips,
and the seqlock's torn-read protocol under a concurrent writer.
"""

import threading

import pytest

from repro.core.statestore import segment_exists
from repro.obs.registry import MetricsRegistry
from repro.obs.slab import MetricsSlab
from repro.obs.schema import SHARD_METRICS, declare_shard_metrics


@pytest.fixture
def slab_name(request):
    return f"eagr-test-slab-{request.node.name[:24]}"


def test_create_publish_attach_scrape(slab_name):
    owner = MetricsSlab.create(slab_name, 4)
    try:
        owner.publish([1.0, 2.5, -3.0, 4.0])
        reader = MetricsSlab.attach(slab_name)
        assert reader.n_slots == 4
        assert list(reader.scrape()) == [1.0, 2.5, -3.0, 4.0]
        reader.close()
    finally:
        owner.close()
        owner.unlink()
    assert not segment_exists(slab_name)


def test_attach_validates_magic_and_width(slab_name):
    from repro.core.statestore import create_segment, unlink_segment

    shm = create_segment(slab_name, 64)
    try:
        shm.buf[:8] = b"\x00" * 8  # no magic
        with pytest.raises(ValueError, match="not a metrics slab"):
            MetricsSlab.attach(slab_name)
    finally:
        shm.close()
        unlink_segment(slab_name)

    owner = MetricsSlab.create(slab_name, 4)
    try:
        with pytest.raises(ValueError, match="4 slots"):
            MetricsSlab.attach(slab_name, n_slots=5)
    finally:
        owner.close()
        owner.unlink()


def test_registry_roundtrip_through_slab(slab_name):
    """A shard registry's snapshot survives the publish→scrape→decode path."""
    shard = MetricsRegistry()
    metrics = declare_shard_metrics(shard)
    metrics["shard_apply_seconds"].observe(0.002)
    metrics["shard_apply_seconds"].observe(0.040)
    metrics["shard_batches_applied"].inc(2)
    metrics["shard_engine_write_seconds"].set(0.0417)

    owner = MetricsSlab.create(slab_name, shard.n_slots)
    try:
        owner.publish(shard.values_snapshot())
        decoder = MetricsRegistry()
        declare_shard_metrics(decoder)
        decoder.load_values(owner.scrape())
        decoded = decoder.snapshot()
        assert decoded == shard.snapshot()
        assert decoded["shard_batches_applied"] == 2.0
        assert decoded["shard_apply_seconds"]["count"] == 2.0
    finally:
        owner.close()
        owner.unlink()


def test_schema_width_matches_slab(slab_name):
    """The wire schema's declared width is what slabs are sized from."""
    sizer = MetricsRegistry(enabled=False)  # disabled registries still lay out
    declare_shard_metrics(sizer)
    owner = MetricsSlab.create(slab_name, sizer.n_slots)
    try:
        assert owner.n_slots == sizer.n_slots
        assert len(owner.scrape()) == sizer.n_slots
        assert len(SHARD_METRICS) == 12
    finally:
        owner.close()
        owner.unlink()


def test_scrape_skips_torn_reads(slab_name):
    """A scrape never returns a half-published write: with the seqlock
    held odd the reader retries, and each returned copy is internally
    consistent (all slots from the same publish)."""
    owner = MetricsSlab.create(slab_name, 8)
    try:
        owner.publish([1.0] * 8)
        # Hold the seqlock odd, mutate the data area directly — a reader
        # arriving now must not trust the bytes.
        owner._set_seq(owner._seq() + 1)
        torn = [99.0] + [1.0] * 7
        if hasattr(owner, "_fmt"):
            owner._fmt.pack_into(owner._shm.buf, 32, *torn)
        reader = MetricsSlab.attach(slab_name)
        got = list(reader.scrape())
        # All attempts saw an odd seq; the last-resort copy is whatever
        # is there — but completing the publish makes scrapes clean again.
        owner._set_seq(owner._seq() + 1)
        clean = list(reader.scrape())
        assert clean == torn
        reader.close()
        assert got is not None
    finally:
        owner.close()
        owner.unlink()


def test_scrape_under_concurrent_publisher(slab_name):
    """Hammer publishes from a thread while scraping: every scrape must
    be one coherent publish — all slots equal — never a torn mix."""
    n_slots = 64
    owner = MetricsSlab.create(slab_name, n_slots)
    reader = MetricsSlab.attach(slab_name)
    stop = threading.Event()

    def pound():
        i = 0
        while not stop.is_set():
            i += 1
            owner.publish([float(i)] * n_slots)

    thread = threading.Thread(target=pound, daemon=True)
    thread.start()
    try:
        torn = 0
        for _ in range(2000):
            values = list(reader.scrape())
            if len(set(values)) > 1:
                torn += 1
        # The seqlock retry loop gives up after a bounded number of
        # attempts rather than wedging, so an adversarial publisher can
        # in principle tear a scrape — but it must be vanishingly rare,
        # not the norm.
        assert torn <= 20, f"{torn}/2000 scrapes torn"
    finally:
        stop.set()
        thread.join(timeout=10)
        reader.close()
        owner.close()
        owner.unlink()
