"""Setup shim: the offline environment lacks the `wheel` package, so PEP 660
editable installs fail; this file enables pip's legacy `setup.py develop`
editable path. All metadata lives in pyproject.toml / here."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "EAGr: continuous ego-centric aggregate queries over large dynamic "
        "graphs (SIGMOD 2014 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # slots-based event dataclasses require dataclass(slots=True) (3.10+)
    python_requires=">=3.10",
    # numpy is optional: without it the value-store layer, CSR snapshots
    # and window buffers degrade to pure-Python paths (CI runs both).
    install_requires=[],
    extras_require={"fast": ["numpy"]},
)
