"""Setup shim: the offline environment lacks the `wheel` package, so PEP 660
editable installs fail; this file enables pip's legacy `setup.py develop`
editable path. All metadata lives in pyproject.toml / here."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "EAGr: continuous ego-centric aggregate queries over large dynamic "
        "graphs (SIGMOD 2014 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
