"""Personalized trend detection in a social network (paper Section 1's
motivating example).

Every user continuously sees the trending hashtags *within their own ego
network* — a quasi-continuous TOP-K query over the last few posts of the
accounts they follow.  EAGr compiles one overlay for the whole network,
shares partial counts across overlapping neighborhoods, and mixes push/pull
per node based on expected activity.

Run:  python examples/social_trends.py
"""

import random

from repro import EAGrEngine, EgoQuery, Neighborhood, TopK, TupleWindow
from repro.dataflow.frequencies import FrequencyModel
from repro.graph.generators import social_graph
from repro.workload import ZipfSampler

HASHTAGS = [
    "#worldcup", "#elections", "#ai", "#concert", "#traffic",
    "#weather", "#memes", "#breaking", "#music", "#sports",
]


def main(users: int = 800, posts: int = 12_000, seed: int = 42) -> None:
    rng = random.Random(seed)
    network = social_graph(num_nodes=users, edges_per_node=7, seed=seed)
    print(f"social network: {network.num_nodes} users, {network.num_edges} follow edges")

    # Each user's feed: the 5 most frequent hashtags among the last 4 posts
    # of the accounts they follow (their in-neighborhood).
    query = EgoQuery(
        aggregate=TopK(5),
        window=TupleWindow(4),
        neighborhood=Neighborhood.in_neighbors(),
    )
    engine = EAGrEngine(
        network,
        query,
        overlay_algorithm="vnm_n",  # counts subtract, so negative edges are fair game
        frequencies=FrequencyModel.zipf(network.nodes(), seed=seed),
    )
    print(f"compiled: {engine.describe()}\n")

    # Play a day of posting: Zipfian user activity, trend popularity drifts.
    sampler = ZipfSampler(list(network.nodes()), alpha=1.0, seed=seed)
    for tick in range(posts):
        author = sampler.sample()
        # Popularity shifts halfway through the day.
        hot = HASHTAGS[:3] if tick < posts // 2 else HASHTAGS[3:6]
        tag = rng.choice(hot) if rng.random() < 0.6 else rng.choice(HASHTAGS)
        engine.write(author, tag, timestamp=float(tick))

    # A few users check their feeds.
    print("user  personalized trending hashtags (tag, count)")
    shown = 0
    for user in network.nodes():
        feed = engine.read(user)
        if len(feed) >= 3:
            print(f"{user:>4}  {feed[:3]}")
            shown += 1
        if shown == 8:
            break

    ops = engine.counters
    print(
        f"\nserved {ops.writes:,} posts with {ops.push_ops:,} incremental "
        f"updates + {ops.pull_ops:,} on-demand steps "
        f"(sharing index {engine.sharing_index():.1%})"
    )


if __name__ == "__main__":
    main()
