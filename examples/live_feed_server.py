"""Live feed serving: a sharded, crash-consistent EAGrServer.

The scenario: every user's feed header shows the SUM of their friends'
recent activity scores, continuously.  This example stands up an
:class:`~repro.serve.server.EAGrServer` — reader space partitioned over
shard processes, each hosting its own compiled engine, every accepted
batch persisted to a write-ahead log (``wal_dir=``) — subscribes a
handful of egos, streams a Zipf-skewed write workload in batches, and
prints the notifications as the shards push them.  A
:class:`~repro.serve.replica.ReplicaServer` then attaches to the same
WAL and serves staleness-bounded reads a bounded lag behind the primary.

Run:  python examples/live_feed_server.py            (2 shard processes)
      python examples/live_feed_server.py --stats-interval 0.5
          (same, plus a one-line dashboard printed every 0.5 s while
          streaming: events/s, ring depth, p99 write→notify latency and
          p99 WAL fsync — all read from ``server.metrics()``, i.e. the
          shared-memory metrics plane, not the shards.)
      python examples/live_feed_server.py --smoke    (in-process shards,
          small workload, asserts round-trips and clean shutdown — the
          configuration the CI smoke job boots.  Also performs a real
          kill -9: a sacrificial child process ingests against a WAL and
          is SIGKILLed mid-stream; the cold restart must recover every
          acknowledged batch and resume the subscription gap-free.
          Finishes with a TCP round trip through a GatewayServer.)
      python examples/live_feed_server.py --listen 127.0.0.1:7432
          (stand up the deployment behind a network gateway and serve
          until Ctrl-C; any machine that can reach the port talks to it
          with ``repro.serve.EAGrClient`` — write_batch / read_batch /
          subscribe with resume tokens.  Port 0 picks a free port.)
"""

import math
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time

from repro import EAGrEngine, EgoQuery, Neighborhood, Sum, TupleWindow
from repro.graph.generators import social_graph
from repro.serve import EAGrClient, EAGrServer, GatewayServer, ReplicaServer
from repro.workload import WorkloadSpec, generate_events

BATCH_SIZE = 128
ENGINE_OPTS = dict(overlay_algorithm="vnm_a", dataflow="mincut")


def build_workload(nodes, num_events, seed=5):
    events = generate_events(
        nodes,
        WorkloadSpec(
            num_events=num_events, write_read_ratio=10_000.0, seed=seed
        ),
    )
    return [
        (event.node, event.value, event.timestamp)
        for event in events
        if hasattr(event, "value")
    ]


def dashboard_line(server, events_done, elapsed):
    """One line of ops truth, assembled purely from ``server.metrics()``.

    Everything here is scraped from the front-end registry and the
    per-shard shared-memory slabs — printing it costs no control message
    to any shard worker.
    """
    m = server.metrics()
    eps = events_done / elapsed if elapsed > 0 else 0.0
    depth = max(
        (r["depth_frames"] for r in m["rings"].values()), default=0
    )
    lat = m["server"].get("srv_write_notify_seconds", {})
    fsync = m["server"].get("wal_fsync_seconds", {})
    return (
        f"[stats] {eps:>9.0f} ev/s | ring depth {depth:>3} | "
        f"write→notify p99 {lat.get('p99', 0.0) * 1e3:7.2f} ms "
        f"({int(lat.get('count', 0))} samples) | "
        f"wal fsync p99 {fsync.get('p99', 0.0) * 1e3:6.2f} ms"
    )


# ---------------------------------------------------------------------------
# the kill -9 round trip (smoke mode)
# ---------------------------------------------------------------------------

def wal_env():
    """The deployment the sacrificial child and the cold restart share."""
    graph = social_graph(num_nodes=60, edges_per_node=5, seed=9)
    query = EgoQuery(
        aggregate=Sum(),
        window=TupleWindow(2),
        neighborhood=Neighborhood.in_neighbors(),
    )
    return graph, query


def wal_workload(nodes, seed=17, batches=12):
    """Deterministic timestamped batches — regenerated identically by
    the restart's oracle, so no state needs to survive except the WAL."""
    rng = random.Random(seed)
    out, t = [], 0.0
    for _ in range(batches):
        batch = []
        for _ in range(6):
            t += 1.0
            batch.append((rng.choice(nodes), float(rng.randint(1, 50)), t))
        out.append(batch)
    return out


def sacrifice(wal_dir):
    """Child-process mode: ingest against the WAL, then die by SIGKILL —
    no close(), no final flush, workers and outboxes full of in-flight
    state.  Everything acknowledged must survive in ``wal_dir``."""
    graph, query = wal_env()
    nodes = sorted(graph.nodes(), key=repr)
    server = EAGrServer(
        graph, query, num_shards=2, executor="inprocess",
        wal_dir=wal_dir, checkpoint_interval=5, **ENGINE_OPTS,
    )
    server.subscribe("feed-widget", nodes[:8])
    for batch in wal_workload(nodes):
        server.write_batch(batch)
    os.kill(0, signal.SIGKILL)


def kill9_round_trip():
    wal_dir = tempfile.mkdtemp(prefix="eagr-wal-")
    try:
        child = subprocess.Popen(
            [sys.executable, os.path.abspath(__file__), "--sacrifice", wal_dir],
            start_new_session=True,
        )
        returncode = child.wait(timeout=60)
        assert returncode == -signal.SIGKILL, returncode

        graph, query = wal_env()
        nodes = sorted(graph.nodes(), key=repr)
        with EAGrServer(
            graph, query, num_shards=2, executor="inprocess",
            wal_dir=wal_dir, checkpoint_interval=5, **ENGINE_OPTS,
        ) as revived:
            revived.drain()
            oracle = EAGrEngine(graph, query, **ENGINE_OPTS)
            for batch in wal_workload(nodes):
                oracle.write_batch(batch)
            assert revived.read_batch(nodes) == oracle.read_batch(nodes), (
                "cold restart lost acknowledged batches"
            )
            # The dead epoch's subscription resumes gap-free, and fresh
            # live traffic splices in with contiguous stamps.
            resumed = revived.subscribe("feed-widget", resume_from=0)
            stamps = [note.stamp for note in resumed.poll()]
            assert stamps == list(range(1, len(stamps) + 1)), stamps
            revived.write_batch([(nodes[0], 123.0, 10_000.0)])
            revived.drain()
            stamps += [note.stamp for note in resumed.poll()]
            assert stamps == list(range(1, len(stamps) + 1)), stamps
            recovered = revived.recovered_batches
        print(
            f"kill -9 round-trip OK: child SIGKILLed mid-ingest, cold "
            f"restart recovered {recovered} batches, reads oracle-equal, "
            f"resume stream gap-free ({len(stamps)} stamps)"
        )
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)


# ---------------------------------------------------------------------------
# network gateway mode
# ---------------------------------------------------------------------------

def listen(spec: str) -> None:
    """Stand up the feed deployment behind a TCP gateway and serve until
    interrupted.  ``spec`` is ``host:port`` (port 0 picks a free one)."""
    host, _, port = spec.rpartition(":")
    graph = social_graph(num_nodes=400, edges_per_node=6, seed=3)
    query = EgoQuery(
        aggregate=Sum(),
        window=TupleWindow(2),
        neighborhood=Neighborhood.in_neighbors(),
    )
    with EAGrServer(
        graph, query, num_shards=2, executor="process", **ENGINE_OPTS
    ) as server:
        gateway = GatewayServer(server, host or "127.0.0.1", int(port or 0))
        bound_host, bound_port = gateway.start()
        print(server.describe())
        print(f"gateway listening on {bound_host}:{bound_port}")
        print(
            "connect with:\n"
            "  from repro.serve import EAGrClient\n"
            f"  client = EAGrClient({bound_host!r}, {bound_port}, "
            "client_id='me')\n"
            "  client.write_batch([(node, value, timestamp), ...])\n"
            "  stream = client.subscribe([ego, ...])  # .get() / .poll()\n"
            "Ctrl-C to stop."
        )
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            gateway.close()


# ---------------------------------------------------------------------------
# the main demo
# ---------------------------------------------------------------------------

def main(argv) -> None:
    if "--sacrifice" in argv:
        sacrifice(argv[argv.index("--sacrifice") + 1])
        return  # unreachable: sacrifice() ends in SIGKILL
    if "--listen" in argv:
        listen(argv[argv.index("--listen") + 1])
        return

    smoke = "--smoke" in argv
    stats_interval = 0.0
    if "--stats-interval" in argv:
        stats_interval = float(argv[argv.index("--stats-interval") + 1])
    executor = "inprocess" if smoke else "process"
    num_nodes = 120 if smoke else 400
    num_events = 2_000 if smoke else 20_000

    graph = social_graph(num_nodes=num_nodes, edges_per_node=6, seed=3)
    query = EgoQuery(
        aggregate=Sum(),
        window=TupleWindow(2),
        neighborhood=Neighborhood.in_neighbors(),
    )
    nodes = sorted(graph.nodes(), key=repr)
    writes = build_workload(nodes, num_events)

    wal_dir = tempfile.mkdtemp(prefix="eagr-feed-wal-")
    try:
        with EAGrServer(
            graph,
            query,
            num_shards=2,
            executor=executor,
            wal_dir=wal_dir,
            **ENGINE_OPTS,
        ) as server:
            print(server.describe())

            watched = nodes[:5]
            feed = server.subscribe("feed-widget", watched)
            print(f"subscribed {len(watched)} egos; baseline: {feed.snapshot}")

            stream_t0 = time.monotonic()
            next_stats = stream_t0 + stats_interval
            for start in range(0, len(writes), BATCH_SIZE):
                server.write_batch(writes[start : start + BATCH_SIZE])
                now = time.monotonic()
                if stats_interval and now >= next_stats:
                    print(dashboard_line(
                        server, start + BATCH_SIZE, now - stream_t0
                    ))
                    next_stats = now + stats_interval
            server.drain()
            if stats_interval:
                print(dashboard_line(
                    server, len(writes), time.monotonic() - stream_t0
                ))

            notes = feed.poll()
            print(f"\n{len(notes)} notifications pushed while streaming "
                  f"{len(writes)} writes:")
            for note in notes[:12]:
                print(
                    f"  #{note.stamp:<4} ego={note.ego!r:<12} -> "
                    f"{note.value:<8g} (shard {note.shard}, "
                    f"batch {note.batch})"
                )
            if len(notes) > 12:
                print(f"  ... and {len(notes) - 12} more")

            stats = server.stats()
            for s in stats:
                print(
                    f"shard {s['shard']}: {s['readers']} readers, "
                    f"{s['writes']} writes in {s['batches']} batches, "
                    f"{s['notices_emitted']} notices, "
                    f"backend={s['value_store_backend']}"
                )
            front = server.server_stats()
            print(f"WAL: {front['wal_bytes']} bytes across the accepted "
                  f"stream (every acknowledged batch is on disk)")

            # A warm replica tails the same WAL: staleness-bounded reads
            # without touching the primary's shards.
            with ReplicaServer(
                graph, query, wal_dir, **ENGINE_OPTS
            ) as replica:
                replica_reads = replica.read_batch(nodes, max_lag_bytes=0)
                print(f"replica caught up: watermark={replica.watermark()}, "
                      f"lag={replica.lag_bytes()}B")
                if smoke:
                    assert replica_reads == server.read_batch(nodes), (
                        "replica reads diverged from the primary"
                    )

            if smoke:
                # The metrics plane must report a real end-to-end
                # write→notify distribution: every percentile field
                # present and finite, with at least one sample behind it.
                lat = front["write_notify_latency"]
                for field in ("count", "sum", "p50", "p95", "p99"):
                    assert field in lat, f"latency summary missing {field}"
                    assert math.isfinite(lat[field]), (field, lat[field])
                assert lat["count"] > 0, "no write→notify samples recorded"
                assert 0.0 < lat["p99"] < 3600.0, lat
                print(dashboard_line(server, len(writes), 1.0))
                # CI assertions: round-trips agree with a single engine
                # and the subscription stream is exactly the changed
                # watched egos.
                single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
                single.write_batch(writes)
                assert server.read_batch(nodes) == single.read_batch(nodes), (
                    "sharded reads diverged from the single-engine oracle"
                )
                stamps = [note.stamp for note in notes]
                assert stamps == sorted(stamps)
                assert len(set(stamps)) == len(stamps)
                final = dict(zip(nodes, single.read_batch(nodes)))
                for note in notes:
                    assert note.ego in set(watched)
                changed_watched = {
                    n for n in watched if final[n] != feed.snapshot[n]
                }
                assert {note.ego for note in notes} >= changed_watched
                # Durable resume: drop the connection mid-stream,
                # reconnect with a resume token, and the journal replays
                # the missed suffix with the original stamps.
                last_seen = notes[len(notes) // 2].stamp if notes else 0
                server.disconnect("feed-widget")
                server.write_batch([(nodes[10], 999.0, None)])
                server.drain()
                resumed = server.subscribe("feed-widget", resume_from=last_seen)
                got = [n.stamp for n in resumed.poll()]
                assert got == list(
                    range(last_seen + 1, last_seen + 1 + len(got))
                ), "resume replay is not the contiguous missed suffix"
                print(f"resumed from stamp {last_seen}: {len(got)} "
                      "notifications replayed, stream gap-free")
                # The TCP edge: the same deployment behind a gateway,
                # driven by a real client over localhost.
                gateway = GatewayServer(server)
                gw_host, gw_port = gateway.start()
                try:
                    with EAGrClient(
                        gw_host, gw_port, client_id="smoke-client"
                    ) as client:
                        assert client.read_batch(nodes[:6]) == (
                            server.read_batch(nodes[:6])
                        ), "gateway reads diverged from in-process reads"
                        stream = client.subscribe(nodes)
                        client.write_batch([(nodes[1], 777.0, 20_000.0)])
                        server.drain()
                        note = stream.get(timeout=15.0)
                        assert note is not None, (
                            "no notification arrived over TCP"
                        )
                        assert note.subscriber == "smoke-client"
                    print(f"gateway round-trip OK: TCP client on port "
                          f"{gw_port} read, wrote and streamed "
                          f"(first stamp {note.stamp})")
                finally:
                    gateway.close()
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)

    if smoke:
        kill9_round_trip()
        print("\nsmoke OK: reads byte-identical, notifications exact, "
              "replica consistent, crash recovery exact, clean shutdown")
    else:
        print("\nserver closed cleanly")


if __name__ == "__main__":
    main(sys.argv[1:])
