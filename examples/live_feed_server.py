"""Live feed serving: a sharded EAGrServer pushing standing-query updates.

The scenario: every user's feed header shows the SUM of their friends'
recent activity scores, continuously.  This example stands up an
:class:`~repro.serve.server.EAGrServer` — reader space partitioned over
shard processes, each hosting its own compiled engine — subscribes a
handful of egos, streams a Zipf-skewed write workload in batches, and
prints the notifications as the shards push them: per-subscriber monotone
stamps, values diffed against the last delivery, silence for egos whose
aggregates didn't move.

Run:  python examples/live_feed_server.py            (2 shard processes)
      python examples/live_feed_server.py --smoke    (in-process shards,
          small workload, asserts round-trips and clean shutdown — the
          configuration the CI smoke job boots)
"""

import sys

from repro import EAGrEngine, EgoQuery, Neighborhood, Sum, TupleWindow
from repro.graph.generators import social_graph
from repro.serve import EAGrServer
from repro.workload import WorkloadSpec, generate_events

BATCH_SIZE = 128


def build_workload(nodes, num_events, seed=5):
    events = generate_events(
        nodes,
        WorkloadSpec(
            num_events=num_events, write_read_ratio=10_000.0, seed=seed
        ),
    )
    return [
        (event.node, event.value, event.timestamp)
        for event in events
        if hasattr(event, "value")
    ]


def main(argv) -> None:
    smoke = "--smoke" in argv
    executor = "inprocess" if smoke else "process"
    num_nodes = 120 if smoke else 400
    num_events = 2_000 if smoke else 20_000

    graph = social_graph(num_nodes=num_nodes, edges_per_node=6, seed=3)
    query = EgoQuery(
        aggregate=Sum(),
        window=TupleWindow(2),
        neighborhood=Neighborhood.in_neighbors(),
    )
    nodes = sorted(graph.nodes(), key=repr)
    writes = build_workload(nodes, num_events)

    server = EAGrServer(
        graph,
        query,
        num_shards=2,
        executor=executor,
        overlay_algorithm="vnm_a",
        dataflow="mincut",
    )
    print(server.describe())

    watched = nodes[:5]
    feed = server.subscribe("feed-widget", watched)
    print(f"subscribed {len(watched)} egos; baseline: {feed.snapshot}")

    for start in range(0, len(writes), BATCH_SIZE):
        server.write_batch(writes[start : start + BATCH_SIZE])
    server.drain()

    notes = feed.poll()
    print(f"\n{len(notes)} notifications pushed while streaming "
          f"{len(writes)} writes:")
    for note in notes[:12]:
        print(
            f"  #{note.stamp:<4} ego={note.ego!r:<12} -> {note.value:<8g} "
            f"(shard {note.shard}, batch {note.batch})"
        )
    if len(notes) > 12:
        print(f"  ... and {len(notes) - 12} more")

    stats = server.stats()
    for s in stats:
        print(
            f"shard {s['shard']}: {s['readers']} readers, "
            f"{s['writes']} writes in {s['batches']} batches, "
            f"{s['notices_emitted']} notices, backend={s['value_store_backend']}"
        )

    if smoke:
        # CI assertions: round-trips agree with a single engine and the
        # subscription stream is exactly the changed watched egos.
        single = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
        single.write_batch(writes)
        assert server.read_batch(nodes) == single.read_batch(nodes), (
            "sharded reads diverged from the single-engine oracle"
        )
        stamps = [note.stamp for note in notes]
        assert stamps == sorted(stamps) and len(set(stamps)) == len(stamps)
        final = dict(zip(nodes, single.read_batch(nodes)))
        for note in notes:
            assert note.ego in set(watched)
        changed_watched = {
            n for n in watched if final[n] != feed.snapshot[n]
        }
        assert {note.ego for note in notes} >= changed_watched
        # Durable resume: drop the connection mid-stream, reconnect with
        # a resume token, and the journal replays the missed suffix with
        # the original stamps — exactly once, gap-free.
        last_seen = notes[len(notes) // 2].stamp if notes else 0
        server.disconnect("feed-widget")
        server.write_batch([(nodes[10], 999.0, None)])
        server.drain()
        resumed = server.subscribe("feed-widget", resume_from=last_seen)
        replayed = resumed.poll()
        got = [n.stamp for n in replayed]
        assert got == list(range(last_seen + 1, last_seen + 1 + len(got))), (
            "resume replay is not the contiguous missed suffix"
        )
        print(f"resumed from stamp {last_seen}: {len(replayed)} "
              "notifications replayed, stream gap-free")
        server.close()
        assert all(not ex.alive() or ex.kind == "inprocess"
                   for ex in server._executors)
        print("\nsmoke OK: reads byte-identical, notifications exact, "
              "clean shutdown")
    else:
        server.close()
        print("\nserver closed cleanly")


if __name__ == "__main__":
    main(sys.argv[1:])
