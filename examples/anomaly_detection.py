"""Continuous anomaly detection in a communication network (paper Section 1).

A phone-call/messaging network where each node continuously monitors the
call volume in its 2-hop neighborhood over a sliding time window; an alert
fires when the volume exceeds a threshold (e.g. fraud rings or outages
produce synchronized bursts).

This is a *continuous* query — results must stay current as calls arrive,
so the engine forces push decisions onto every reader (QueryMode.CONTINUOUS)
and alerts are evaluated inline on each write, with O(1) state lookups.

Run:  python examples/anomaly_detection.py
"""

import random

from repro import Count, EAGrEngine, EgoQuery, Neighborhood, QueryMode, TimeWindow
from repro.graph.generators import community_graph
from repro.workload import ZipfSampler

WINDOW_SECONDS = 30.0
ALERT_THRESHOLD = 150  # calls within one neighborhood and window


def main(calls: int = 15_000, seed: int = 7) -> None:
    rng = random.Random(seed)
    network = community_graph(
        num_communities=12, community_size=18, intra_probability=0.35,
        inter_edges=60, seed=seed,
    )
    print(
        f"communication network: {network.num_nodes} subscribers, "
        f"{network.num_edges} call relationships"
    )

    query = EgoQuery(
        aggregate=Count(),
        window=TimeWindow(WINDOW_SECONDS),
        neighborhood=Neighborhood.undirected(),
        mode=QueryMode.CONTINUOUS,  # alerts need always-fresh results
    )
    engine = EAGrEngine(network, query, overlay_algorithm="vnm_a")
    print(f"compiled: {engine.describe()}\n")

    # Normal background traffic, then a coordinated burst inside one
    # community (an exfiltration ring lighting up at once).
    sampler = ZipfSampler(list(network.nodes()), alpha=0.8, seed=seed)
    burst_community = list(range(5 * 18, 6 * 18))  # community #5
    alerts = []
    clock = 0.0
    for call in range(calls):
        in_burst = calls // 2 <= call < calls // 2 + 900
        # Background runs at ~30 calls/s; the ring bursts 10x faster.
        clock += rng.expovariate(300.0 if in_burst else 30.0)
        caller = rng.choice(burst_community) if in_burst else sampler.sample()
        engine.write(caller, 1, timestamp=clock)
        # Continuous mode: the monitor checks the caller's neighborhood
        # reading the already-materialized count (no recomputation).
        volume = engine.read(caller)
        if volume > ALERT_THRESHOLD:
            alerts.append((clock, caller, volume))

    print(f"calls processed : {calls:,}")
    print(f"alerts fired    : {len(alerts):,}")
    if alerts:
        first = alerts[0]
        inside = sum(1 for _, node, _ in alerts if node in set(burst_community))
        print(
            f"first alert     : t={first[0]:.1f}s at node {first[1]} "
            f"(neighborhood volume {first[2]} > {ALERT_THRESHOLD})"
        )
        print(f"alerts in burst community: {inside / len(alerts):.0%}")
    ops = engine.counters
    print(
        f"\nwork: {ops.push_ops:,} incremental updates, "
        f"{ops.pull_ops:,} on-demand steps (continuous mode keeps reads O(1))"
    )


if __name__ == "__main__":
    main()
