"""Spatio-temporal local alerts via *filtered* neighborhoods (paper §1, §2.1).

"In spatio-temporal social networks, users are often interested in events
happening in their social networks, but also physically close to them."
The framework supports this by filtering the neighborhood selection
function: aggregate only over the subset of neighbors satisfying a
predicate — here, friends currently checked in to the same city.

Run:  python examples/spatio_temporal_alerts.py
"""

import random

from repro import CountDistinct, EAGrEngine, EgoQuery, Neighborhood, TupleWindow
from repro.graph.generators import social_graph

CITIES = ["NYC", "SF", "LA", "CHI", "SEA"]


def main(users: int = 500, checkins: int = 8_000, seed: int = 11) -> None:
    rng = random.Random(seed)
    network = social_graph(num_nodes=users, edges_per_node=6, seed=seed)

    # Static home city per user (stored as a node attribute on the graph);
    # the filtered neighborhood aggregates only same-city friends.
    for user in network.nodes():
        network.set_attr(user, "city", rng.choice(CITIES))

    def same_city(graph, member):
        # Bound per-reader at compile time through closure-free access: the
        # filter sees the graph, so attribute updates are picked up on the
        # next recompile/maintenance pass.
        return graph.get_attr(member, "city") == "NYC"

    # "How many distinct NYC friends of mine posted among their last 3
    # check-ins?" — only materialized for NYC users (the pred parameter).
    query = EgoQuery(
        aggregate=CountDistinct(),
        window=TupleWindow(3),
        neighborhood=Neighborhood.undirected(node_filter=same_city),
        predicate=lambda user: network.get_attr(user, "city") == "NYC",
    )
    engine = EAGrEngine(network, query, overlay_algorithm="vnm_a")
    nyc_users = [u for u in network.nodes() if network.get_attr(u, "city") == "NYC"]
    print(
        f"{users} users, {len(nyc_users)} in NYC; "
        f"overlay: {engine.overlay.num_edges} edges "
        f"(readers materialized only for NYC users: {len(engine.overlay.reader_of)})"
    )

    # Users check in at venues; the value is the venue id.
    venues = [f"venue-{i}" for i in range(40)]
    all_users = list(network.nodes())
    for tick in range(checkins):
        user = rng.choice(all_users)
        engine.write(user, rng.choice(venues), timestamp=float(tick))

    print("\nuser  distinct venues visited by NYC friends recently")
    for user in nyc_users[:8]:
        print(f"{user:>4}  {engine.read(user)}")

    busiest = max(nyc_users, key=lambda u: engine.read(u))
    print(
        f"\nmost socially-active NYC neighborhood: user {busiest} "
        f"({engine.read(busiest)} distinct venues among NYC friends)"
    )


if __name__ == "__main__":
    main()
