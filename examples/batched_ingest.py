"""Batched ingestion: coalesced writes through compiled propagation plans.

High-traffic deployments receive events in batches (a Kafka poll, an HTTP
bulk endpoint), not one call at a time.  This example builds a SUM query
over a social-style graph, streams the same workload through the
per-event and the batched API, verifies they agree, and reports the
throughput difference plus the plan-cache statistics that explain it:
each writer's propagation path is compiled once and replayed from flat
arrays, and a batch runs one plan execution per *touched writer* instead
of one graph traversal per event.

Run:  python examples/batched_ingest.py
"""

import random
import time

from repro import EAGrEngine, EgoQuery, Neighborhood, Sum, TupleWindow
from repro.graph.generators import social_graph


BATCH_SIZE = 200
NUM_EVENTS = 30_000


def make_engine(graph) -> EAGrEngine:
    query = EgoQuery(
        aggregate=Sum(),
        window=TupleWindow(3),
        neighborhood=Neighborhood.in_neighbors(),
    )
    return EAGrEngine(graph, query, overlay_algorithm="vnm_a", dataflow="mincut")


def main() -> None:
    graph = social_graph(num_nodes=300, edges_per_node=8, seed=11)
    nodes = sorted(graph.nodes(), key=repr)
    rng = random.Random(7)
    writes = [
        (rng.choice(nodes), float(rng.randrange(100)), float(tick + 1))
        for tick in range(NUM_EVENTS)
    ]

    per_event = make_engine(graph)
    started = time.perf_counter()
    for node, value, timestamp in writes:
        per_event.write(node, value, timestamp)
    per_event_eps = NUM_EVENTS / (time.perf_counter() - started)

    batched = make_engine(graph)
    started = time.perf_counter()
    for start in range(0, NUM_EVENTS, BATCH_SIZE):
        batched.write_batch(writes[start : start + BATCH_SIZE])
    batched_eps = NUM_EVENTS / (time.perf_counter() - started)

    write_compiles = batched.runtime.plan_compiles

    sample = nodes[:200]
    assert batched.read_batch(sample) == [per_event.read(n) for n in sample]

    runtime = batched.runtime
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"per-event ingestion: {per_event_eps:,.0f} events/s")
    print(
        f"batched ingestion:   {batched_eps:,.0f} events/s "
        f"({batched_eps / per_event_eps:.2f}x, batch={BATCH_SIZE})"
    )
    print(
        f"plan cache: {write_compiles} push-plan compiles for "
        f"{len({n for n, _, _ in writes})} distinct writers over "
        f"{NUM_EVENTS:,} writes ({runtime.plan_invalidations} invalidations)"
    )
    print("batched reads match per-event reads on a 200-node sample ✓")


if __name__ == "__main__":
    main()
