"""Quickstart: compile and run one ego-centric aggregate query.

Builds the paper's running-example graph (Figure 1), compiles a SUM query
over everyone's 1-hop in-neighborhood into an aggregation overlay, plays a
few writes, and reads some results — then peeks at what the compiler did.

Run:  python examples/quickstart.py
"""

from repro import (
    DynamicGraph,
    EAGrEngine,
    EgoQuery,
    Neighborhood,
    Sum,
    TupleWindow,
)
from repro.graph.generators import paper_figure1
from repro.overlay import summarize


def main() -> None:
    # The data graph: an edge u -> v means u's updates feed v's ego network.
    graph: DynamicGraph = paper_figure1()
    print(f"data graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # The query ⟨F, w, N, pred⟩: SUM over the most recent value of each
    # in-neighbor, materialized for every node.
    query = EgoQuery(
        aggregate=Sum(),
        window=TupleWindow(1),
        neighborhood=Neighborhood.in_neighbors(),
    )
    print(f"query: {query.describe()}")

    # Compile: bipartite graph -> overlay (VNM_A) -> push/pull decisions.
    engine = EAGrEngine(graph, query, overlay_algorithm="vnm_a")
    print(f"compiled: {engine.describe()}\n")

    # The paper's example content streams (Figure 1): last write wins.
    streams = {
        "a": [1, 4], "b": [3, 7], "c": [6, 9], "d": [8, 4, 3],
        "e": [5, 9, 1], "f": [3, 6, 6], "g": [5],
    }
    for node, values in streams.items():
        for value in values:
            engine.write(node, value)

    print("node  N(node) sum")
    for node in "abcdefg":
        print(f"   {node}  {engine.read(node):>6.0f}")
    # Matches the paper's prose: "a read query on a returns
    # (9) + (3) + (1) + (6) = 19".
    assert engine.read("a") == 19.0

    # What did the compiler build?
    summary = summarize(engine.overlay, engine.ag)
    print(
        f"\noverlay: {summary.num_partials} partial aggregators, "
        f"{summary.num_edges} edges vs {summary.ag_edges} in AG "
        f"(sharing index {summary.sharing_index:.1%})"
    )
    ops = engine.counters
    print(
        f"work so far: {ops.writes} writes, {ops.reads} reads, "
        f"{ops.push_ops} push ops, {ops.pull_ops} pull ops"
    )


if __name__ == "__main__":
    main()
