"""Adapting push/pull decisions to workload drift (paper Section 4.8).

A news-feed style workload: overnight, users mostly post (write-heavy);
during the day, they mostly read their feeds.  Static dataflow decisions
tuned for the overnight mix waste work during the day; the adaptive
controller watches observed frequencies at the push/pull frontier and flips
decisions on the fly.

Run:  python examples/adaptive_workload.py
"""

from repro import AdaptiveConfig, EAGrEngine, EgoQuery, Neighborhood, Sum, TupleWindow
from repro.dataflow.frequencies import FrequencyModel
from repro.graph.generators import social_graph
from repro.graph.streams import WriteEvent
from repro.workload import DriftSpec, drifting_trace, phase_frequencies


def build_engine(network, phase1, adaptive: bool) -> EAGrEngine:
    reads, writes = phase1
    query = EgoQuery(
        aggregate=Sum(), window=TupleWindow(1),
        neighborhood=Neighborhood.in_neighbors(),
    )
    return EAGrEngine(
        network, query, overlay_algorithm="vnm_a",
        frequencies=FrequencyModel(read=dict(reads), write=dict(writes)),
        adaptive=adaptive,
        adaptive_config=AdaptiveConfig(check_interval=400, min_observations=5),
    )


def run(engine: EAGrEngine, events, segments: int = 8):
    size = len(events) // segments
    work_per_segment = []
    for start in range(0, size * segments, size):
        before = engine.counters.work
        for event in events[start : start + size]:
            if isinstance(event, WriteEvent):
                engine.write(event.node, event.value, event.timestamp)
            else:
                engine.read(event.node)
        work_per_segment.append(engine.counters.work - before)
    return work_per_segment


def main(users: int = 400, events: int = 16_000, seed: int = 3) -> None:
    network = social_graph(num_nodes=users, edges_per_node=6, seed=seed)
    trace, drifting = drifting_trace(
        list(network.nodes()),
        DriftSpec(
            num_events=events, switch_point=0.5, drifting_fraction=0.3,
            base_write_read_ratio=6.0,    # overnight: mostly posts
            drifted_write_read_ratio=0.15,  # daytime: mostly feed reads
            seed=seed,
        ),
    )
    phase1 = phase_frequencies(trace, num_phases=2)[0]
    print(
        f"network: {users} users; trace: {events:,} events, "
        f"{len(drifting)} users invert their mix halfway\n"
    )

    static = build_engine(network, phase1, adaptive=False)
    adaptive = build_engine(network, phase1, adaptive=True)
    static_work = run(static, trace)
    adaptive_work = run(adaptive, trace)

    print("segment   static-work   adaptive-work")
    for index, (s, a) in enumerate(zip(static_work, adaptive_work), start=1):
        marker = "  <- drift" if index == len(static_work) // 2 + 1 else ""
        print(f"{index:>7}   {s:>11,}   {a:>13,}{marker}")
    print(
        f"\ntotals: static {sum(static_work):,} ops, "
        f"adaptive {sum(adaptive_work):,} ops "
        f"({1 - sum(adaptive_work) / sum(static_work):.0%} less work); "
        f"decision flips: {adaptive.controller.flips}"
    )


if __name__ == "__main__":
    main()
