"""Durability-tier benchmark: cold-restart recovery and replica lag.

Two questions the WAL answers have a cost, measured here:

* **Recovery seconds vs WAL size.**  A primary ingests N batches against
  ``wal_dir`` and is abandoned without ``close()`` (the in-process
  stand-in for kill -9: no executor teardown, no final flush, only the
  flock released).  The benchmark times the cold
  ``EAGrServer(wal_dir=...)`` boot — fold the log, restore checkpoints,
  replay the redo suffix, refill the outboxes — through its first
  ``drain()``, and verifies the recovered reads against a never-crashed
  oracle before accepting the number.
* **Replica lag vs write rate.**  A :class:`ReplicaServer` tails the log
  while the primary streams at full speed; a sampler thread records the
  byte lag through the run, then the catch-up time to lag 0 after the
  primary drains.

Results append to ``BENCH_recovery.json`` at the repo root so CI
accumulates the trajectory.  ``--smoke`` shrinks the workload and keeps
the correctness assertions (oracle-equal recovery, replica catch-up) as
CI tripwires.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

try:
    from benchmarks._common import bench_graph, emit_table, workload
except ImportError:  # script mode
    sys.path.insert(0, os.path.dirname(__file__))
    from _common import bench_graph, emit_table, workload

from repro.core.aggregates import Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.neighborhoods import Neighborhood
from repro.graph.streams import WriteEvent
from repro.serve import EAGrServer, ReplicaServer

BATCH_SIZE = 64
RECOVERY_SIZES = (64, 256, 1024)  # batches ingested before the crash
CHECKPOINT_INTERVAL = 256
ENGINE_OPTS = dict(overlay_algorithm="vnm_a", dataflow="mincut")
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_recovery.json")


def build_query():
    return EgoQuery(
        aggregate=Sum(),
        window=TupleWindow(1),
        neighborhood=Neighborhood.in_neighbors(),
    )


def write_workload(graph, num_events: int):
    events = workload(graph, num_events, write_read_ratio=10_000.0, seed=23)
    return [
        (e.node, e.value, e.timestamp)
        for e in events
        if isinstance(e, WriteEvent)
    ]


def crash_abandon(server) -> None:
    """Abandon a primary the way kill -9 would leave it: nothing flushed,
    nothing torn down — except the flock, which the kernel would release
    for a genuinely dead process and we must release by hand in-process."""
    server._stop_flusher.set()
    server._flusher.join(timeout=10)
    server._wal.close()


def bench_recovery_point(graph, query, nodes, events, num_batches: int):
    """One crash/restart cycle; returns the measured row (verified)."""
    wal_dir = tempfile.mkdtemp(prefix="eagr-bench-wal-")
    try:
        server = EAGrServer(
            graph, query, num_shards=2, executor="inprocess",
            wal_dir=wal_dir, checkpoint_interval=CHECKPOINT_INTERVAL,
            **ENGINE_OPTS,
        )
        batches = []
        for index in range(num_batches):
            start = (index * BATCH_SIZE) % max(1, len(events) - BATCH_SIZE)
            batches.append(events[start : start + BATCH_SIZE])
        ingest_started = time.perf_counter()
        for batch in batches:
            server.write_batch(batch)
        server.drain()
        ingest_elapsed = time.perf_counter() - ingest_started
        wal_bytes = server._wal.total_bytes()
        crash_abandon(server)
        del server

        recovery_started = time.perf_counter()
        revived = EAGrServer(
            graph, query, num_shards=2, executor="inprocess",
            wal_dir=wal_dir, checkpoint_interval=CHECKPOINT_INTERVAL,
            **ENGINE_OPTS,
        )
        revived.drain()
        recovery_elapsed = time.perf_counter() - recovery_started
        try:
            oracle = EAGrEngine(graph, query, **ENGINE_OPTS)
            for batch in batches:
                oracle.write_batch(batch)
            assert revived.read_batch(nodes) == oracle.read_batch(nodes), (
                f"recovery at {num_batches} batches lost acknowledged writes"
            )
            recovered = revived.recovered_batches
        finally:
            revived.close()
        return {
            "batches": num_batches,
            "writes": num_batches * BATCH_SIZE,
            "wal_mb": round(wal_bytes / (1 << 20), 3),
            "ingest_eps": round(num_batches * BATCH_SIZE / ingest_elapsed)
            if ingest_elapsed else 0,
            "recovery_s": round(recovery_elapsed, 3),
            "recovered_batches": recovered,
        }
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)


def bench_replica_lag(graph, query, nodes, events, num_batches: int):
    """Stream at full speed with a replica attached; sample its lag."""
    wal_dir = tempfile.mkdtemp(prefix="eagr-bench-replica-")
    try:
        with EAGrServer(
            graph, query, num_shards=2, executor="inprocess",
            wal_dir=wal_dir, checkpoint_interval=CHECKPOINT_INTERVAL,
            **ENGINE_OPTS,
        ) as server:
            with ReplicaServer(
                graph, query, wal_dir, poll_interval=0.002, **ENGINE_OPTS
            ) as replica:
                samples = []
                stop = threading.Event()

                def sample():
                    while not stop.wait(0.005):
                        samples.append(replica.lag_bytes())

                sampler = threading.Thread(target=sample, daemon=True)
                sampler.start()
                started = time.perf_counter()
                for index in range(num_batches):
                    start = (index * BATCH_SIZE) % max(
                        1, len(events) - BATCH_SIZE
                    )
                    server.write_batch(events[start : start + BATCH_SIZE])
                server.drain()
                stream_elapsed = time.perf_counter() - started
                catchup_started = time.perf_counter()
                replica.read_batch(nodes[:8], max_lag_bytes=0, wait=60.0)
                catchup = time.perf_counter() - catchup_started
                stop.set()
                sampler.join(timeout=2)
                assert replica.read_batch(nodes, max_lag_bytes=0) == (
                    server.read_batch(nodes)
                ), "replica diverged from the primary after catch-up"
                eps = (
                    num_batches * BATCH_SIZE / stream_elapsed
                    if stream_elapsed else 0.0
                )
                return {
                    "batches": num_batches,
                    "write_eps": round(eps),
                    "max_lag_kb": round(max(samples) / 1024, 1) if samples else 0.0,
                    "mean_lag_kb": round(
                        sum(samples) / len(samples) / 1024, 1
                    ) if samples else 0.0,
                    "catchup_s": round(catchup, 3),
                    "batches_applied": replica.batches_applied,
                }
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)


def run_bench(sizes=RECOVERY_SIZES, replica_batches: int = 512):
    graph = bench_graph("livejournal-small", scale=0.25)
    query = build_query()
    nodes = sorted(graph.nodes(), key=repr)
    events = write_workload(graph, max(sizes) * BATCH_SIZE)

    recovery_rows = [
        bench_recovery_point(graph, query, nodes, events, size)
        for size in sizes
    ]
    replica_row = bench_replica_lag(
        graph, query, nodes, events, replica_batches
    )

    emit_table(
        "recovery",
        f"Cold-restart recovery [SUM, vnm_a+mincut, batch={BATCH_SIZE}, "
        f"checkpoint every {CHECKPOINT_INTERVAL}]",
        ["batches", "WAL MB", "ingest ev/s", "recovery s", "redo replayed"],
        [
            [
                str(row["batches"]),
                f"{row['wal_mb']:.3f}",
                f"{row['ingest_eps']:,}",
                f"{row['recovery_s']:.3f}",
                str(row["recovered_batches"]),
            ]
            for row in recovery_rows
        ],
    )
    emit_table(
        "replica_lag",
        "Warm replica tailing the live WAL",
        ["batches", "write ev/s", "max lag KB", "mean lag KB", "catch-up s"],
        [[
            str(replica_row["batches"]),
            f"{replica_row['write_eps']:,}",
            f"{replica_row['max_lag_kb']}",
            f"{replica_row['mean_lag_kb']}",
            f"{replica_row['catchup_s']}",
        ]],
    )
    return {"recovery": recovery_rows, "replica": replica_row}


def persist(results) -> None:
    history = []
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH) as handle:
                history = json.load(handle)
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(
        {
            "bench": "recovery",
            "timestamp": time.time(),
            "batch_size": BATCH_SIZE,
            "checkpoint_interval": CHECKPOINT_INTERVAL,
            "cpus": os.cpu_count(),
            "results": results,
        }
    )
    with open(JSON_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def main(argv):
    smoke = "--smoke" in argv
    sizes = (16, 64) if smoke else RECOVERY_SIZES
    replica_batches = 64 if smoke else 512
    results = run_bench(sizes=sizes, replica_batches=replica_batches)
    persist(results)
    last = results["recovery"][-1]
    print(
        f"recovery at {last['batches']} batches "
        f"({last['wal_mb']} MB WAL): {last['recovery_s']}s; replica max lag "
        f"{results['replica']['max_lag_kb']} KB at "
        f"{results['replica']['write_eps']:,} ev/s, catch-up "
        f"{results['replica']['catchup_s']}s; JSON -> {JSON_PATH}"
    )
    if smoke:
        # CI tripwires: recovery must stay interactive at smoke sizes and
        # the replica must actually reach lag 0 (both asserted exact
        # against oracles inside the measurement functions).
        assert last["recovery_s"] < 30.0, (
            f"cold restart took {last['recovery_s']}s at smoke size"
        )
        assert results["replica"]["catchup_s"] < 30.0


if __name__ == "__main__":
    main(sys.argv[1:])
