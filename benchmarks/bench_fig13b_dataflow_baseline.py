"""Figure 13(b) — decided dataflow vs overlay-all-push / overlay-all-pull.

Paper's series: throughput of the same (VNM_A) overlay under all-push
decisions, optimal dataflow decisions, and all-pull decisions, for SUM, MAX
and TOP-K at write:read 1:1.  Expected shape: decided dataflow wins for
every aggregate.
"""

import pytest

from benchmarks._common import (
    bench_graph,
    build_engine,
    emit_table,
    engine_cost_model,
    measure_throughput,
    workload,
)

AGGREGATES = ("sum", "max", "topk")
MODES = ("all_push", "mincut", "all_pull")
NUM_EVENTS = 5_000


def test_fig13b_dataflow_baselines(benchmark):
    graph = bench_graph("livejournal-small", scale=0.25)
    events = workload(graph, NUM_EVENTS, write_read_ratio=1.0, seed=13)
    rows = []
    throughput = {}
    for aggregate in AGGREGATES:
        cost_model = engine_cost_model(graph, aggregate)
        cells = []
        for mode in MODES:
            engine = build_engine(
                graph, aggregate_name=aggregate, algorithm="vnm_a", dataflow=mode,
                events=events, cost_model=cost_model,
            )
            value = measure_throughput(engine, events)
            throughput[(aggregate, mode)] = value
            cells.append(f"{value:,.0f}")
        rows.append([aggregate.upper()] + cells)
    emit_table(
        "fig13b_dataflow_baseline",
        "Figure 13(b): throughput (events/s) of one overlay under forced vs optimal decisions",
        ["aggregate", "overlay all-push", "overlay dataflow", "overlay all-pull"],
        rows,
    )

    # Shape: the decided dataflow beats both forced extremes per aggregate.
    for aggregate in AGGREGATES:
        decided = throughput[(aggregate, "mincut")]
        assert decided >= 0.95 * throughput[(aggregate, "all_push")]
        assert decided >= 0.95 * throughput[(aggregate, "all_pull")]

    engine = build_engine(graph, aggregate_name="sum", dataflow="mincut")
    subset = events[:1500]
    benchmark.pedantic(
        lambda: measure_throughput(engine, subset), rounds=2, iterations=1
    )
