"""Per-figure benchmark targets (see DESIGN.md's experiment index).

Run with ``pytest benchmarks/ --benchmark-only``.  Packaged so the shared
helpers in :mod:`benchmarks._common` import under plain ``pytest``.
"""
