"""Figure 14(b) — throughput benefit of partial pre-computation (splitting).

Paper's series: the ratio of throughput with node splitting enabled to
without, per aggregate, across write:read ratios.  Expected shape: benefit
peaks around ratio ≈ 1 (the paper reports > 2x there) and shrinks toward
both extremes, where decisions degenerate to all-push/all-pull and there is
nothing for a hybrid to exploit.

Work is counted in aggregate operations (machine-independent); throughput
benefit = work(unsplit) / work(split).
"""

import pytest

from benchmarks._common import (
    bench_graph,
    build_engine,
    emit_table,
    workload,
)
from repro.graph.streams import WriteEvent

RATIOS = (0.05, 0.2, 1.0, 5.0, 20.0)
AGGREGATES = ("sum", "topk")
NUM_EVENTS = 4_000


def run_work(engine, events):
    for event in events:
        if isinstance(event, WriteEvent):
            engine.write(event.node, event.value, event.timestamp)
        else:
            engine.read(event.node)
    return engine.counters.work


def test_fig14b_splitting_benefit(benchmark):
    graph = bench_graph("livejournal-small", scale=0.25)
    rows = []
    benefits = {}
    for aggregate in AGGREGATES:
        cells = []
        for ratio in RATIOS:
            events = workload(
                graph, NUM_EVENTS, write_read_ratio=ratio, seed=int(ratio * 100) + 1
            )
            base = build_engine(
                graph, aggregate_name=aggregate, algorithm="vnm_a",
                events=events, enable_splitting=False,
            )
            split = build_engine(
                graph, aggregate_name=aggregate, algorithm="vnm_a",
                events=events, enable_splitting=True,
            )
            benefit = run_work(base, events) / max(1, run_work(split, events))
            benefits[(aggregate, ratio)] = benefit
            cells.append(f"{benefit:.2f}x")
        rows.append([aggregate.upper()] + cells)
    emit_table(
        "fig14b_splitting",
        "Figure 14(b): work ratio unsplit/split (higher = splitting helps more)",
        ["aggregate"] + [f"w:r={r}" for r in RATIOS],
        rows,
    )

    # Shape: splitting never hurts much, and helps most near ratio 1.
    for aggregate in AGGREGATES:
        middle = benefits[(aggregate, 1.0)]
        assert middle >= 0.95
        assert middle >= benefits[(aggregate, RATIOS[0])] - 0.35
        assert middle >= benefits[(aggregate, RATIOS[-1])] - 0.35

    events = workload(graph, 1200, write_read_ratio=1.0, seed=77)
    engine = build_engine(
        graph, aggregate_name="sum", algorithm="vnm_a", events=events,
        enable_splitting=True,
    )
    benchmark.pedantic(lambda: run_work(engine, events), rounds=2, iterations=1)
