"""Figure 14(a) — the headline end-to-end throughput comparison.

Paper's series: throughput vs write:read ratio (0.05 … 20) for SUM, MAX and
TOP-K, comparing all-push, all-pull, VNM_A, VNM_N, VNM_D and IOB overlays on
LiveJournal.  Expected shape:

* overlay-based execution beats the best baseline at every ratio (paper:
  ~5-6x at ratio ≈ 1, orders of magnitude over all-pull on read-heavy ends);
* all-pull wins the write-heavy end *among baselines* and all-push the
  read-heavy end;
* gains are largest for TOP-K (expensive aggregation dominates runtime,
  which is exactly what sharing removes);
* IOB's deeper overlays make it the slowest overlay despite the best SI.
"""

import pytest

from benchmarks._common import (
    SYSTEMS,
    bench_graph,
    build_engine,
    emit_table,
    engine_cost_model,
    measure_throughput,
    workload,
)

RATIOS = (0.05, 0.2, 1.0, 5.0, 20.0)
AGGREGATES = ("sum", "max", "topk")
NUM_EVENTS = 4_000


def systems_for(aggregate: str):
    for name, algorithm, dataflow in SYSTEMS:
        if algorithm == "vnm_d" and aggregate != "max":
            continue  # duplicate-path overlays only for duplicate-insensitive F
        if algorithm == "vnm_n" and aggregate == "max":
            continue  # negative edges need subtraction
        yield name, algorithm, dataflow


def test_fig14a_end_to_end_throughput(benchmark):
    graph = bench_graph("livejournal-small", scale=0.25)
    throughput = {}
    work = {}  # aggregate-op counts: deterministic, machine-independent
    for aggregate in AGGREGATES:
        cost_model = engine_cost_model(graph, aggregate)
        rows = []
        for name, algorithm, dataflow in systems_for(aggregate):
            cells = []
            for ratio in RATIOS:
                events = workload(
                    graph, NUM_EVENTS, write_read_ratio=ratio, seed=int(ratio * 100)
                )
                engine = build_engine(
                    graph, aggregate_name=aggregate, algorithm=algorithm,
                    dataflow=dataflow, events=events, cost_model=cost_model,
                )
                value = measure_throughput(engine, events)
                throughput[(aggregate, name, ratio)] = value
                work[(aggregate, name, ratio)] = engine.counters.work
                cells.append(f"{value:,.0f}")
            rows.append([name] + cells)
        emit_table(
            f"fig14a_throughput_{aggregate}",
            f"Figure 14(a) [{aggregate.upper()}]: throughput (events/s) vs write:read ratio",
            ["system"] + [f"w:r={r}" for r in RATIOS],
            rows,
        )

    # -- shape assertions -----------------------------------------------
    # Wall-clock throughput (reported above) fluctuates ±20% under load;
    # the figure's *mechanism* — aggregate operations saved — is
    # deterministic, so the shape is asserted on work counters.
    def least_overlay_work(aggregate, ratio):
        names = [n for n, a, _ in systems_for(aggregate) if a != "identity"]
        return min(work[(aggregate, n, ratio)] for n in names)

    for aggregate in AGGREGATES:
        for ratio in RATIOS:
            pull_work = work[(aggregate, "all-pull", ratio)]
            push_work = work[(aggregate, "all-push", ratio)]
            # The best overlay does the least work at middle ratios; at the
            # extremes everything degenerates to O(1) per event and the
            # decided overlay (which optimizes *weighted* cost, not raw op
            # count) may sit a few percent above the matching baseline.
            slack = 1.02 if 0.1 < ratio < 10 else 1.15
            assert least_overlay_work(aggregate, ratio) <= min(
                pull_work, push_work
            ) * slack, (aggregate, ratio)
        # Baseline crossover in work terms: all-push does less work on the
        # read-heavy end, all-pull on the write-heavy end.
        assert work[(aggregate, "all-push", RATIOS[0])] < work[
            (aggregate, "all-pull", RATIOS[0])
        ]
        assert work[(aggregate, "all-pull", RATIOS[-1])] < work[
            (aggregate, "all-push", RATIOS[-1])
        ]

    # At ratio 1 the work saving is substantial, for cheap and expensive
    # aggregates alike.
    def saving(aggregate):
        baseline = min(
            work[(aggregate, "all-pull", 1.0)],
            work[(aggregate, "all-push", 1.0)],
        )
        return baseline / max(1, least_overlay_work(aggregate, 1.0))

    assert saving("sum") > 1.3
    assert saving("topk") > 1.3

    events = workload(graph, 1500, write_read_ratio=1.0, seed=5)
    engine = build_engine(graph, aggregate_name="sum", algorithm="vnm_a", events=events)
    benchmark.pedantic(lambda: measure_throughput(engine, events), rounds=2, iterations=1)
