"""Figure 13(d) — throughput vs number of threads.

Paper's series: TOP-K throughput at write:read 1:1 on LiveJournal as the
serving threads sweep 1..48 for all-pull, all-push, and the decided overlay
— rising until ~24 (their core count) then plateauing.

Substitution (documented in DESIGN.md): CPython's GIL makes real-thread CPU
scaling impossible, so the sweep runs on the discrete-event
:class:`SimulatedExecutor`, which schedules the engine's *actual* micro-op
trace across M virtual workers with per-node locks and a serial dispatcher —
the same contention sources as the paper's implementation.  The real
threaded engine exists too (``repro.core.concurrency.ThreadedEngine``) and
is exercised by the unit tests for correctness.
"""

import pytest

from benchmarks._common import bench_graph, build_engine, emit_table, workload
from repro.core.concurrency import SimulatedExecutor, collect_tasks

THREADS = (1, 2, 4, 8, 16, 24, 32, 48)
NUM_EVENTS = 4_000


def trace_tasks(graph, dataflow):
    engine = build_engine(
        graph, aggregate_name="topk", algorithm="vnm_a", dataflow=dataflow,
        window=2, collect_trace=True,
    )
    events = workload(graph, NUM_EVENTS, write_read_ratio=1.0, seed=47)
    return collect_tasks(engine, events)


def test_fig13d_parallel_scaling(benchmark):
    graph = bench_graph("livejournal-small", scale=0.25)
    executor = SimulatedExecutor(dispatch_overhead=0.08)
    rows = []
    series = {}
    main_tasks = None
    for name, dataflow in (
        ("vnm_a-topk", "mincut"),
        ("all-push-topk", "all_push"),
        ("all-pull-topk", "all_pull"),
    ):
        tasks = trace_tasks(graph, dataflow)
        if name == "vnm_a-topk":
            main_tasks = tasks
        results = executor.sweep(tasks, THREADS)
        throughputs = [r.throughput for r in results]
        series[name] = throughputs
        rows.append([name] + [f"{t:,.2f}" for t in throughputs])
    # The paper's "VNMA-topK-Ideal" reference: perfect work-conserving
    # scaling of the decided overlay's task trace (no locks, no dispatcher).
    total_work = sum(
        sum(
            executor.cost_model.push_cost(op.fan_in) if op.kind == "push"
            else executor.cost_model.pull_cost(op.fan_in) if op.kind == "pull"
            else 1.0 if op.kind == "write" else 0.5
            for op in task
        )
        for task in main_tasks
    )
    ideal = [len(main_tasks) * workers / total_work for workers in THREADS]
    rows.insert(0, ["vnm_a-topk-ideal"] + [f"{t:,.2f}" for t in ideal])
    emit_table(
        "fig13d_parallelism",
        "Figure 13(d): simulated throughput (tasks/time-unit) vs worker threads",
        ["system"] + [f"{t}thr" for t in THREADS],
        rows,
    )

    # Shape (paper): every system rises near-linearly at first, then
    # plateaus from synchronization overheads, falling away from the ideal
    # line; absolute ordering between systems at saturation is workload
    # dependent (the paper, too, plots the actual VNMA line below others).
    for name, values in series.items():
        assert values[1] > values[0] * 1.3, name  # early near-linear scaling
        knee = THREADS.index(24)
        assert values[-1] < values[knee] * 1.6, name  # saturation after knee
    main = series["vnm_a-topk"]
    assert main[-1] < ideal[-1]  # contention keeps reality under ideal

    subset = main_tasks[:1500]
    benchmark.pedantic(lambda: executor.sweep(subset, (1, 8, 24)), rounds=2, iterations=1)
