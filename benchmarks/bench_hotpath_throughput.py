"""Hot-path write throughput: per-event loop vs batched compiled plans.

Not a paper figure — this tracks the repo's own ingestion hot path.  For
every system in ``SYSTEMS`` it measures write events/s four ways on the
same warmed workload:

* **seed interp** — the pre-plan-compiler dict-of-dict DFS;
* **per-event** — ``engine.write`` per event on the object value store
  (each write runs one compiled push-plan execution);
* **batched (object)** — ``engine.write_batch`` in chunks of
  ``BATCH_SIZE`` on the object store (the PR 1 batched path: one plan
  execution per touched writer);
* **batched (columnar)** — the same batches on the columnar numpy value
  store (fold-then-scatter kernels; see ``repro/core/statestore.py``).

Results are printed, persisted under ``benchmarks/results/``, and appended
as JSON to ``BENCH_hotpath.json`` at the repo root so CI accumulates a
perf trajectory.  Run as a script (``--smoke`` shrinks the workload for
CI and asserts columnar >= batched-object on SUM) or through pytest.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

try:
    from benchmarks._common import SYSTEMS, bench_graph, build_engine, emit_table, workload
except ImportError:  # script mode: python benchmarks/bench_hotpath_throughput.py
    sys.path.insert(0, os.path.dirname(__file__))
    from _common import SYSTEMS, bench_graph, build_engine, emit_table, workload

from repro.graph.streams import WriteEvent

BATCH_SIZE = 256
NUM_EVENTS = 6_000
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_hotpath.json")


def write_workload(graph, num_events: int):
    """A pure-write trace (plus one warmup write per node)."""
    events = workload(graph, num_events, write_read_ratio=10_000.0, seed=23)
    return [e for e in events if isinstance(e, WriteEvent)]


def measure(run, events, passes: int = 3) -> float:
    """Best-of-N events/s for ``run(events)`` (suppresses GC/scheduler noise)."""
    best = 0.0
    for _ in range(max(1, passes)):
        gc.collect()
        started = time.perf_counter()
        run(events)
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, len(events) / elapsed)
    return best


def run_per_event(engine):
    def run(events):
        write = engine.write
        for event in events:
            write(event.node, event.value, event.timestamp)

    return run


def run_seed_interpreter(engine):
    """The seed's per-event write path: uncompiled dict-of-dict DFS.

    Replays the pre-plan-compiler hot path (writer step + ``propagate_from``
    micro-step traversal) so the bench keeps an honest baseline of what a
    write cost before compiled plans existed.
    """
    runtime = engine.runtime

    def run(events):
        writer_of = runtime.overlay.writer_of
        buffers = runtime.buffers
        for event in events:
            runtime.counters.writes += 1
            timestamp = event.timestamp
            if timestamp is None:
                timestamp = runtime.clock + 1.0
            runtime.clock = max(runtime.clock, timestamp)
            handle = writer_of.get(event.node)
            if handle is None:
                continue
            evicted = buffers[event.node].append(event.value, timestamp)
            message = runtime.writer_step(handle, [event.value], evicted)
            if message is not None:
                runtime.propagate_from(handle, message)

    return run


def run_batched(engine, batch_size: int = BATCH_SIZE):
    def run(events):
        write_batch = engine.write_batch
        for start in range(0, len(events), batch_size):
            write_batch(events[start : start + batch_size])

    return run


def systems_for_sum():
    for name, algorithm, dataflow in SYSTEMS:
        if algorithm == "vnm_d":
            continue  # needs a duplicate-insensitive aggregate
        yield name, algorithm, dataflow


def run_bench(num_events: int = NUM_EVENTS, dataset: str = "livejournal-small"):
    graph = bench_graph(dataset, scale=0.25)
    rows = []
    results = {}
    for name, algorithm, dataflow in systems_for_sum():
        events = write_workload(graph, num_events)

        def fresh_engine(value_store="object"):
            return build_engine(
                graph, aggregate_name="sum", algorithm=algorithm,
                dataflow=dataflow, events=events, value_store=value_store,
            )

        seed = measure(run_seed_interpreter(fresh_engine()), events)
        per_event = measure(run_per_event(fresh_engine()), events)
        batched_engine = fresh_engine()
        batched = measure(run_batched(batched_engine), events)
        columnar_engine = fresh_engine("columnar")
        columnar = measure(run_batched(columnar_engine), events)
        vs_seed = batched / seed if seed else 0.0
        results[name] = {
            "seed_interpreter_eps": round(seed),
            "per_event_eps": round(per_event),
            "batched_eps": round(batched),
            "batched_columnar_eps": round(columnar),
            "speedup_vs_seed": round(vs_seed, 2),
            "speedup_vs_per_event": round(batched / per_event, 2) if per_event else 0.0,
            "columnar_vs_batched": round(columnar / batched, 2) if batched else 0.0,
            "columnar_vs_seed": round(columnar / seed, 2) if seed else 0.0,
            "plan_compiles": batched_engine.runtime.plan_compiles,
            "columnar_backend": columnar_engine.value_store_backend,
        }
        rows.append(
            [
                name, f"{seed:,.0f}", f"{per_event:,.0f}", f"{batched:,.0f}",
                f"{columnar:,.0f}",
                f"{(columnar / batched) if batched else 0.0:.2f}x",
            ]
        )
    emit_table(
        "hotpath_throughput",
        f"Hot path [SUM, batch={BATCH_SIZE}]: write throughput (events/s)",
        [
            "system", "seed interp", "per-event", "batched-obj",
            "batched-col", "col/obj",
        ],
        rows,
    )
    return results


def persist(results, num_events: int) -> None:
    history = []
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH) as handle:
                history = json.load(handle)
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(
        {
            "bench": "hotpath_throughput",
            "timestamp": time.time(),
            "num_events": num_events,
            "batch_size": BATCH_SIZE,
            "aggregate": "sum",
            "systems": results,
        }
    )
    with open(JSON_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def test_hotpath_batching_correct_and_cached():
    """Smoke-scale: batched state matches per-event state; plans cached."""
    graph = bench_graph("livejournal-small", scale=0.12)
    events = write_workload(graph, 600)
    per_event_engine = build_engine(graph, aggregate_name="sum", algorithm="vnm_a")
    for event in events:
        per_event_engine.write(event.node, event.value, event.timestamp)
    batched_engine = build_engine(graph, aggregate_name="sum", algorithm="vnm_a")
    run_batched(batched_engine)(events)
    # Object batches compile one push plan per touched writer (not per
    # event); columnar batches go through the global scatter table.
    runtime = batched_engine.runtime
    if batched_engine.value_store_backend == "columnar":
        assert runtime.scatter_builds >= 1
    else:
        touched_writers = len({e.node for e in events})
        assert 0 < runtime.plan_compiles <= touched_writers
    for node in list(graph.nodes())[:40]:
        assert batched_engine.read(node) == per_event_engine.read(node), node


def test_hotpath_backends_agree():
    """Object and columnar batched ingestion end in identical reads."""
    graph = bench_graph("livejournal-small", scale=0.12)
    events = write_workload(graph, 600)
    engines = {
        mode: build_engine(
            graph, aggregate_name="sum", algorithm="vnm_a", value_store=mode
        )
        for mode in ("object", "columnar")
    }
    for engine in engines.values():
        run_batched(engine)(events)
    for node in list(graph.nodes())[:60]:
        assert engines["object"].read(node) == engines["columnar"].read(node), node


def test_hotpath_throughput_bench():
    results = run_bench(num_events=2_000)
    persist(results, 2_000)
    assert set(results) == {n for n, _, _ in systems_for_sum()}


def main(argv):
    smoke = "--smoke" in argv
    num_events = 1_500 if smoke else NUM_EVENTS
    results = run_bench(num_events=num_events)
    persist(results, num_events)
    vnm_a = results.get("vnm_a", {})
    print(
        f"vnm_a+mincut SUM: {vnm_a.get('seed_interpreter_eps', 0):,} ev/s seed, "
        f"{vnm_a.get('per_event_eps', 0):,} ev/s per-event, "
        f"{vnm_a.get('batched_eps', 0):,} ev/s batched-object, "
        f"{vnm_a.get('batched_columnar_eps', 0):,} ev/s batched-columnar "
        f"({vnm_a.get('columnar_vs_batched', 0)}x over object batch); "
        f"JSON -> {JSON_PATH}"
    )
    if smoke and vnm_a.get("columnar_backend") == "columnar":
        # CI guard: the columnar store must never lose to the object
        # batched path on SUM.
        assert (
            vnm_a["batched_columnar_eps"] >= vnm_a["batched_eps"]
        ), "columnar batched SUM slower than object batched"


if __name__ == "__main__":
    main(sys.argv[1:])
