"""Figure 10 — construction running time (a) and memory (b) per iteration.

Paper's series on LiveJournal: cumulative construction time per iteration for
VNM_A, IOB, VNM_N, VNM_D, and peak memory per algorithm.  Expected shape:
IOB spends more per early iteration but converges far sooner; VNM_N/VNM_D
cost more per iteration than VNM_A; IOB's global indexes cost roughly 2x the
memory of the VNM family.
"""

import pytest

from benchmarks._common import bench_ag, emit_table
from repro.overlay import construct_overlay

ALGORITHMS = ("vnm_a", "vnm_n", "vnm_d", "iob")
ITERATIONS = 10


def test_fig10_time_and_memory(benchmark):
    _, ag = bench_ag("livejournal-small")
    time_rows = []
    memory_rows = []
    cumulative_at_end = {}
    peak_memory = {}
    for algorithm in ALGORITHMS:
        result = construct_overlay(ag, algorithm, iterations=ITERATIONS)
        cumulative = 0.0
        cells = []
        for stat in result.stats:
            cumulative += stat.elapsed_seconds
            cells.append(f"{cumulative * 1000:.0f}")
        while len(cells) < ITERATIONS:
            cells.append(cells[-1])
        cumulative_at_end[algorithm] = cumulative
        peak = max(s.memory_estimate for s in result.stats)
        if algorithm == "iob":
            state = getattr(result, "iob_state", None)
            if state is not None:
                peak += 120 * sum(len(c) for c in state.coverage.values())
        peak_memory[algorithm] = peak
        time_rows.append([algorithm] + cells)
        memory_rows.append([algorithm, f"{peak / 1024:.0f}", len(result.stats)])
    emit_table(
        "fig10a_running_time",
        "Figure 10(a): cumulative construction time (ms) per iteration, LiveJournal stand-in",
        ["algorithm"] + [f"it{i}" for i in range(1, ITERATIONS + 1)],
        time_rows,
    )
    emit_table(
        "fig10b_memory",
        "Figure 10(b): peak construction memory estimate",
        ["algorithm", "peak KiB", "iterations run"],
        memory_rows,
    )

    benchmark.pedantic(
        lambda: construct_overlay(ag, "iob", iterations=2), rounds=2, iterations=1
    )

    # Shape: IOB converges in fewer iterations yet holds bigger indexes.
    assert peak_memory["iob"] > peak_memory["vnm_a"]
