"""Observability tax: the metrics plane measured against itself.

The metrics plane (``src/repro/obs``) instruments every layer of the
serving hot path — ingress timestamps on write frames, histogram
observes on route/apply/WAL paths, per-shard slab publishes — and its
whole design brief is *cheap enough to leave on in production*.  This
bench proves (or falsifies) that claim with an interleaved A/B:

* **metrics on** — ``EAGrServer(..., metrics=True)``: the full plane,
  ingress stamps, latency histograms, shard registries.
* **metrics off** — the same deployment with ``metrics=False``: null
  metric objects, no timestamps, no slab publishes.

Passes alternate on/off within the same process (best-of-N per leg) so
scheduler drift hits both legs equally; the in-process executor keeps
worker scheduling noise out of the comparison entirely, leaving only the
instrumentation delta.  A second A/B repeats the comparison on the shm
process transport (where slab publishes and ring-depth gauges add their
cost) when ``--shm`` is passed or in full runs.

Results append to ``BENCH_obs.json`` at the repo root; each run also
renders the metrics-on server's Prometheus exposition to
``benchmarks/results/metrics.prom`` (the artifact CI uploads).
``--smoke`` shrinks the workload and asserts the acceptance floor:
metrics-on throughput >= 0.95x metrics-off (overhead < 5%).
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

try:
    from benchmarks._common import bench_graph, emit_table
    from benchmarks.bench_serve_scaling import write_workload
except ImportError:  # script mode
    sys.path.insert(0, os.path.dirname(__file__))
    from _common import bench_graph, emit_table
    from bench_serve_scaling import write_workload

from repro.obs import MetricsExporter
from repro.serve import EAGrServer

BATCH_SIZE = 256
NUM_EVENTS = 12_000
PASSES = 5
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_obs.json")
PROM_PATH = os.path.join(os.path.dirname(__file__), "results", "metrics.prom")


def make_server(graph, metrics, executor="inprocess", transport="auto"):
    from repro.core.aggregates import Sum
    from repro.core.query import EgoQuery
    from repro.core.windows import TupleWindow
    from repro.graph.neighborhoods import Neighborhood

    query = EgoQuery(
        aggregate=Sum(),
        window=TupleWindow(1),
        neighborhood=Neighborhood.in_neighbors(),
    )
    return EAGrServer(
        graph,
        query,
        num_shards=2,
        executor=executor,
        transport=transport,
        metrics=metrics,
        overlay_algorithm="vnm_a",
        dataflow="mincut",
        queue_depth=16,
    )


def timed_pass(server, events) -> float:
    gc.collect()
    write_batch = server.write_batch
    started = time.perf_counter()
    for start in range(0, len(events), BATCH_SIZE):
        write_batch(events[start : start + BATCH_SIZE])
    server.drain()
    elapsed = time.perf_counter() - started
    return len(events) / elapsed if elapsed > 0 else 0.0


def ab_compare(graph, events, passes, executor="inprocess", transport="auto"):
    """Interleaved best-of-N: one warmed server per leg, passes alternate."""
    on = make_server(graph, True, executor=executor, transport=transport)
    off = make_server(graph, False, executor=executor, transport=transport)
    try:
        assert on.metrics_enabled and not off.metrics_enabled
        # A small watched set on BOTH legs: the write→notify histogram
        # needs delivered notifications to sample, and keeping the legs
        # identical means the delta is still instrumentation only.
        watched = sorted(graph.nodes(), key=repr)[:8]
        on.subscribe("bench-watch", watched)
        off.subscribe("bench-watch", watched)
        timed_pass(on, events)   # warm: plans, buffers, (workers)
        timed_pass(off, events)
        best_on = best_off = 0.0
        for _ in range(max(1, passes)):
            best_on = max(best_on, timed_pass(on, events))
            best_off = max(best_off, timed_pass(off, events))
        exposition = MetricsExporter(on).render()
        latency = on.server_stats()["write_notify_latency"]
        return best_on, best_off, latency, exposition
    finally:
        on.close()
        off.close()


def run_bench(num_events=NUM_EVENTS, passes=PASSES, with_shm=True):
    graph = bench_graph("livejournal-small", scale=0.25)
    events = write_workload(graph, num_events)
    results = {}
    rows = []
    exposition = None
    legs = [("inprocess", "inprocess", "auto")]
    if with_shm:
        legs.append(("shm", "process", "shm"))
    for label, executor, transport in legs:
        on_eps, off_eps, latency, expo = ab_compare(
            graph, events, passes, executor=executor, transport=transport
        )
        ratio = on_eps / off_eps if off_eps else 0.0
        results[label] = {
            "metrics_on_eps": round(on_eps),
            "metrics_off_eps": round(off_eps),
            "on_vs_off": round(ratio, 3),
            "overhead_pct": round((1.0 - ratio) * 100.0, 1),
            "write_notify_p50_ms": round(latency["p50"] * 1e3, 3),
            "write_notify_p99_ms": round(latency["p99"] * 1e3, 3),
            "write_notify_samples": int(latency["count"]),
        }
        exposition = expo  # keep the last (richest) leg's exposition
        rows.append([
            label,
            f"{on_eps:,.0f}",
            f"{off_eps:,.0f}",
            f"{ratio:.3f}x",
            f"{latency['p99'] * 1e3:.2f} ms",
        ])
    emit_table(
        "obs_overhead",
        f"Metrics plane overhead [SUM, vnm_a+mincut, batch={BATCH_SIZE}]: "
        "interleaved best-of A/B",
        ["leg", "on ev/s", "off ev/s", "on/off", "p99 wr→notify"],
        rows,
    )
    if exposition is not None:
        os.makedirs(os.path.dirname(PROM_PATH), exist_ok=True)
        with open(PROM_PATH, "w") as handle:
            handle.write(exposition)
    return results


def persist(results, num_events) -> None:
    history = []
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH) as handle:
                history = json.load(handle)
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(
        {
            "bench": "obs_overhead",
            "timestamp": time.time(),
            "num_events": num_events,
            "batch_size": BATCH_SIZE,
            "cpus": os.cpu_count(),
            "results": results,
        }
    )
    with open(JSON_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def main(argv):
    smoke = "--smoke" in argv
    # Smoke still needs a timed region big enough that best-of-N passes
    # converge: a ~10 ms region swings +-10% on a shared core, which
    # would gate CI on scheduler luck instead of the instrumentation.
    num_events = 8_000 if smoke else NUM_EVENTS
    passes = 5 if smoke else PASSES
    # Smoke keeps to the in-process leg: the floor below compares two legs
    # of identical deterministic work, which process-scheduling noise on a
    # shared single-core runner would otherwise drown.
    with_shm = ("--shm" in argv) or not smoke
    results = run_bench(num_events=num_events, passes=passes, with_shm=with_shm)
    persist(results, num_events)
    inproc = results["inprocess"]
    print(
        f"metrics on/off: {inproc['on_vs_off']}x inprocess "
        f"({inproc['overhead_pct']}% overhead), "
        f"p99 write→notify {inproc['write_notify_p99_ms']} ms; "
        f"exposition -> {PROM_PATH}; JSON -> {JSON_PATH}"
    )
    if smoke:
        assert inproc["write_notify_samples"] > 0, "no latency samples"
        assert inproc["on_vs_off"] >= 0.95, (
            f"metrics plane costs more than 5%: on/off "
            f"{inproc['on_vs_off']}x ({inproc['overhead_pct']}%)"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
