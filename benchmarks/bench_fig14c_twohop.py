"""Figure 14(c) — throughput on 2-hop ego-centric aggregates.

Paper's series: throughput of all-push / overlay-dataflow / all-pull for
SUM, MAX, TOP-K specified over 2-hop neighborhoods at write:read 1 on
LiveJournal.  Expected shape: overlay wins again, with *larger* relative
gains than the 1-hop case — 2-hop input lists overlap far more, so sharing
has more to remove.
"""

import pytest

from benchmarks._common import (
    bench_graph,
    build_engine,
    emit_table,
    measure_throughput,
    workload,
)

AGGREGATES = ("sum", "max", "topk")
NUM_EVENTS = 2_500
SYSTEMS = (
    ("all-push", "identity", "all_push"),
    ("overlay", "vnm_a", "mincut"),
    ("all-pull", "identity", "all_pull"),
)


def test_fig14c_two_hop_aggregates(benchmark):
    graph = bench_graph("livejournal-small", scale=0.15)
    events = workload(graph, NUM_EVENTS, write_read_ratio=1.0, seed=91)
    rows = []
    throughput = {}
    sharing = {}
    for aggregate in AGGREGATES:
        cells = []
        for name, algorithm, dataflow in SYSTEMS:
            engine = build_engine(
                graph, aggregate_name=aggregate, algorithm=algorithm,
                dataflow=dataflow, events=events, hops=2,
            )
            if name == "overlay":
                sharing[aggregate] = engine.sharing_index()
            value = measure_throughput(engine, events)
            throughput[(aggregate, name)] = value
            cells.append(f"{value:,.0f}")
        rows.append([aggregate.upper()] + cells)
    emit_table(
        "fig14c_twohop",
        "Figure 14(c): 2-hop aggregate throughput (events/s), write:read = 1",
        ["aggregate", "all-push", "overlay dataflow", "all-pull"],
        rows,
    )

    # Shape: overlay beats both baselines for every aggregate, and 2-hop
    # sharing is substantial (richer overlap than 1-hop).
    for aggregate in AGGREGATES:
        overlay = throughput[(aggregate, "overlay")]
        assert overlay >= 0.95 * throughput[(aggregate, "all-push")]
        assert overlay >= 0.95 * throughput[(aggregate, "all-pull")]
    assert sharing["sum"] > 0.3

    engine = build_engine(
        graph, aggregate_name="sum", algorithm="vnm_a", events=events, hops=2
    )
    subset = events[:800]
    benchmark.pedantic(lambda: measure_throughput(engine, subset), rounds=2, iterations=1)
