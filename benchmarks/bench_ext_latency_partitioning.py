"""Extension benches: latency-budgeted decisions and partitioned deployment.

Not paper figures — these quantify the two future-work extensions the paper
sketches (Section 4.3's latency-constrained optimization; the Conclusions'
partitioned deployment):

* the **latency/throughput tradeoff curve**: as the per-reader latency
  budget tightens, estimated total cost (throughput proxy) rises while the
  worst-case read latency falls;
* the **shard-count sweep**: total overlay edges and write replication
  factor as readers spread over more shards, for hash vs locality-aware
  assignment.
"""

import pytest

from benchmarks._common import bench_graph, emit_table
from repro.core.aggregates import Sum
from repro.core.partitioned import PartitionedEngine, community_assignment
from repro.core.query import EgoQuery
from repro.dataflow.costs import CostModel
from repro.dataflow.frequencies import FrequencyModel, compute_push_pull_frequencies
from repro.dataflow.latency import (
    decide_dataflow_with_latency_budget,
    read_latency_profile,
)
from repro.dataflow.mincut import assignment_cost
from repro.graph.bipartite import build_bipartite
from repro.graph.generators import community_graph
from repro.graph.neighborhoods import Neighborhood
from repro.overlay.vnm import build_vnm


def test_ext_latency_budget_tradeoff(benchmark):
    graph = bench_graph("livejournal-small", scale=0.25)
    ag = build_bipartite(graph, Neighborhood.in_neighbors())
    frequencies = FrequencyModel.uniform(graph.nodes(), read=1.0, write=30.0)
    model = CostModel.constant_linear()
    budgets = (float("inf"), 50.0, 20.0, 8.0, 0.0)
    rows = []
    costs = []
    worsts = []
    for budget in budgets:
        overlay = build_vnm(ag, variant="vnm_a", iterations=6).overlay
        decide_dataflow_with_latency_budget(
            overlay, frequencies, latency_budget=budget, cost_model=model
        )
        profile = read_latency_profile(overlay, model)
        fh, fl = compute_push_pull_frequencies(overlay, frequencies)
        cost = assignment_cost(overlay, fh, fl, model)
        costs.append(cost)
        worst = max(profile.values(), default=0.0)
        worsts.append(worst)
        rows.append(
            [
                "inf" if budget == float("inf") else f"{budget:.0f}",
                f"{cost:,.0f}",
                f"{worst:.1f}",
                sum(1 for v in profile.values() if v == 0.0),
            ]
        )
    emit_table(
        "ext_latency_budget",
        "Extension: latency budget vs decision cost (write-heavy workload)",
        ["budget", "total cost", "worst read latency", "O(1) readers"],
        rows,
    )
    # Tightening the budget trades throughput for latency monotonically.
    assert all(b >= a - 1e-9 for a, b in zip(costs, costs[1:]))
    assert all(b <= a + 1e-9 for a, b in zip(worsts, worsts[1:]))
    assert worsts[-1] == 0.0

    benchmark.pedantic(
        lambda: decide_dataflow_with_latency_budget(
            build_vnm(ag, variant="vnm_a", iterations=3).overlay,
            frequencies, latency_budget=20.0, cost_model=model,
        ),
        rounds=2, iterations=1,
    )


def test_ext_partitioned_deployment(benchmark):
    graph = community_graph(
        num_communities=8, community_size=20, intra_probability=0.4,
        inter_edges=80, seed=17,
    )
    query = EgoQuery(aggregate=Sum())
    rows = []
    replication = {}
    for shards in (1, 2, 4, 8):
        for label, assign in (
            ("hash", None),
            ("locality", community_assignment(graph, shards)),
        ):
            engine = PartitionedEngine(
                graph, query, num_shards=shards, assign=assign,
                overlay_algorithm="vnm_a",
            )
            factor = engine.replication_factor
            replication[(shards, label)] = factor
            rows.append(
                [
                    shards,
                    label,
                    f"{factor:.2f}",
                    engine.total_overlay_edges(),
                    "/".join(str(s) for s in engine.shard_sizes()),
                ]
            )
    emit_table(
        "ext_partitioning",
        "Extension: shard count vs write replication factor and overlay size",
        ["shards", "assignment", "replication", "total edges", "readers/shard"],
        rows,
    )
    # Replication grows with shard count and locality-aware placement
    # always beats hashing.
    assert replication[(1, "hash")] == pytest.approx(1.0)
    assert replication[(8, "hash")] > replication[(2, "hash")]
    for shards in (2, 4, 8):
        assert replication[(shards, "locality")] <= replication[(shards, "hash")]

    benchmark.pedantic(
        lambda: PartitionedEngine(graph, query, num_shards=4), rounds=2, iterations=1
    )
