"""Figure 9 — effect of chunk size on VNM; VNM_A matches the best fixed size.

Paper's series: SI of fixed-chunk VNM as the chunk size sweeps, per graph,
with VNM_A(100) as a horizontal reference.  Expected shape: plain VNM is
sensitive to chunk size with a graph-dependent optimum; adaptive VNM_A is at
least as good as the best fixed choice (within noise).
"""

import pytest

from benchmarks._common import bench_ag, emit_table
from repro.overlay import construct_overlay

CHUNK_SIZES = (3, 5, 10, 20, 50, 100)
DATASETS = ("gplus-small", "eu2005-small", "livejournal-small")
ITERATIONS = 10


def test_fig09_chunk_size_sensitivity(benchmark):
    rows = []
    best_fixed = {}
    adaptive = {}
    ags = {}
    for dataset in DATASETS:
        _, ag = bench_ag(dataset)
        ags[dataset] = ag
        fixed = []
        for chunk_size in CHUNK_SIZES:
            result = construct_overlay(
                ag, "vnm", chunk_size=chunk_size, iterations=ITERATIONS
            )
            fixed.append(result.overlay.sharing_index(ag))
        adaptive_si = construct_overlay(
            ag, "vnm_a", chunk_size=100, iterations=ITERATIONS
        ).overlay.sharing_index(ag)
        best_fixed[dataset] = max(fixed)
        adaptive[dataset] = adaptive_si
        rows.append(
            [dataset]
            + [f"{si * 100:.1f}" for si in fixed]
            + [f"{adaptive_si * 100:.1f}"]
        )
    emit_table(
        "fig09_chunk_size",
        "Figure 9: sharing index (%) of fixed-chunk VNM vs adaptive VNM_A(100)",
        ["dataset"] + [f"c={c}" for c in CHUNK_SIZES] + ["VNM_A"],
        rows,
    )

    ag = ags["eu2005-small"]
    benchmark.pedantic(
        lambda: construct_overlay(ag, "vnm", chunk_size=10, iterations=4),
        rounds=2, iterations=1,
    )

    for dataset in DATASETS:
        # VNM_A within striking distance of (often above) the best fixed chunk.
        assert adaptive[dataset] >= 0.75 * best_fixed[dataset]
