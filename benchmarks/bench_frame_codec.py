"""Frame codec microbench: binary record frames vs pickle round-trips.

The serve tier's binary data plane (:mod:`repro.serve.frames`) replaces
``pickle.dumps``/``loads`` on the write and notification hot paths with
raw numpy record bytes behind fixed headers.  This bench isolates that
codec choice from the rest of the pipeline: for batch sizes 64-4096 it
times, per codec,

* **pack** — a stamped ``(node, value, timestamp)`` triple batch into one
  ring payload (``WriteFrame.from_items`` + ``encode_write`` vs
  ``encode_pickle`` of the same request tuple), and
* **unpack** — the payload back into scatter-ready items
  (``decode`` → ``np.frombuffer`` view vs ``pickle.loads`` rebuilding
  per-triple tuples),

reporting events/s and bytes per event for each.  Results append to
``BENCH_codec.json`` at the repo root.  ``--smoke`` shrinks the
iteration counts and asserts the structural floor: binary unpack must
beat pickle unpack at the largest batch size (the decode side is where
the zero-deserialization claim lives; a frombuffer view losing to
rebuilding 4096 tuples would mean the codec is broken).
"""

from __future__ import annotations

import gc
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

try:
    from benchmarks._common import emit_table
except ImportError:  # script mode
    sys.path.insert(0, os.path.dirname(__file__))
    from _common import emit_table

from repro.core.statestore import WriteFrame, _np
from repro.serve import frames
from repro.serve.messages import OP_WRITE

BATCH_SIZES = (64, 256, 1024, 4096)
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_codec.json")


def make_batch(size: int, seed: int = 7):
    rng = random.Random(seed)
    return [
        (rng.randrange(1_000_000), float(rng.randrange(1000)), float(i))
        for i in range(size)
    ]


def best_rate(fn, payloads_per_call: int, iterations: int, passes: int = 3) -> float:
    """Best-of-N calls/s * payloads_per_call (GC/scheduler noise control)."""
    best = 0.0
    for _ in range(passes):
        gc.collect()
        started = time.perf_counter()
        for _ in range(iterations):
            fn()
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, iterations * payloads_per_call / elapsed)
    return best


def bench_size(size: int, iterations: int):
    items = make_batch(size)
    request = (OP_WRITE, 1, 1, items)

    frame = WriteFrame.from_items(items)
    assert frame is not None, "bench batch failed the packing gate"
    binary_payload = frames.encode_write(1, 1, frame)
    pickle_payload = frames.encode_pickle(request)

    def pack_binary():
        frames.encode_write(1, 1, WriteFrame.from_items(items))

    def pack_pickle():
        frames.encode_pickle(request)

    def unpack_binary():
        frames.decode(binary_payload)

    def unpack_pickle():
        frames.decode(pickle_payload)

    row = {
        "batch_size": size,
        "binary_bytes_per_event": round(len(binary_payload) / size, 1),
        "pickle_bytes_per_event": round(len(pickle_payload) / size, 1),
        "pack_binary_eps": round(best_rate(pack_binary, size, iterations)),
        "pack_pickle_eps": round(best_rate(pack_pickle, size, iterations)),
        "unpack_binary_eps": round(best_rate(unpack_binary, size, iterations)),
        "unpack_pickle_eps": round(best_rate(unpack_pickle, size, iterations)),
    }
    row["pack_speedup"] = round(
        row["pack_binary_eps"] / row["pack_pickle_eps"], 2
    ) if row["pack_pickle_eps"] else 0.0
    row["unpack_speedup"] = round(
        row["unpack_binary_eps"] / row["unpack_pickle_eps"], 2
    ) if row["unpack_pickle_eps"] else 0.0
    return row


def run_bench(iterations: int = 400):
    results = []
    table_rows = []
    for size in BATCH_SIZES:
        row = bench_size(size, max(1, iterations * 256 // size))
        results.append(row)
        table_rows.append([
            str(size),
            f"{row['pack_binary_eps']:,}",
            f"{row['pack_pickle_eps']:,}",
            f"{row['pack_speedup']:.2f}x",
            f"{row['unpack_binary_eps']:,}",
            f"{row['unpack_pickle_eps']:,}",
            f"{row['unpack_speedup']:.2f}x",
            f"{row['binary_bytes_per_event']:.0f}/"
            f"{row['pickle_bytes_per_event']:.0f}",
        ])
    emit_table(
        "frame_codec",
        "Frame codec [events/s]: WriteFrame record bytes vs pickled request "
        "tuples",
        ["batch", "pack bin", "pack pkl", "x", "unpack bin", "unpack pkl",
         "x", "B/ev bin/pkl"],
        table_rows,
    )
    return results


def persist(results) -> None:
    history = []
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH) as handle:
                history = json.load(handle)
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(
        {
            "bench": "frame_codec",
            "timestamp": time.time(),
            "cpus": os.cpu_count(),
            "results": results,
        }
    )
    with open(JSON_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def main(argv):
    if _np is None:
        print("frame codec bench skipped: numpy unavailable")
        return
    smoke = "--smoke" in argv
    results = run_bench(iterations=60 if smoke else 400)
    persist(results)
    largest = results[-1]
    print(
        f"batch {largest['batch_size']}: unpack binary "
        f"{largest['unpack_binary_eps']:,} ev/s vs pickle "
        f"{largest['unpack_pickle_eps']:,} ev/s "
        f"({largest['unpack_speedup']}x); JSON -> {JSON_PATH}"
    )
    if smoke:
        assert largest["unpack_speedup"] >= 1.0, (
            "binary frame decode lost to pickle.loads at batch "
            f"{largest['batch_size']}: {largest['unpack_speedup']}x"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
