"""Shared infrastructure for the per-figure benchmark targets.

Every bench regenerates one figure of the paper's evaluation (Section 5) at
laptop scale: it prints the figure's rows/series (bypassing pytest capture)
and persists them under ``benchmarks/results/`` so ``bench_output.txt`` and
the results directory both carry the evidence.  EXPERIMENTS.md summarizes
paper-vs-measured for each figure.

Scale note: the paper's graphs have 10^6-10^8 edges and its Java system
sustains >500k events/s; this pure-Python reproduction runs the *same
algorithms* on generator-built stand-ins about three orders of magnitude
smaller (see DESIGN.md's substitution table).  Shapes, not absolute numbers,
are the deliverable.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence

from repro.bench.reporting import format_table
from repro.core.aggregates import Max, Sum, TopK, get_aggregate
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.dataflow.frequencies import FrequencyModel
from repro.graph.bipartite import build_bipartite
from repro.graph.generators import load_dataset
from repro.graph.neighborhoods import Neighborhood
from repro.workload import WorkloadSpec, generate_events, warmup_writes

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: The four evaluation graphs (paper -> stand-in), at bench scale.
BENCH_DATASETS = ("livejournal-small", "gplus-small", "eu2005-small", "uk2002-small")

#: Overlay systems compared end-to-end in Figure 14(a).
SYSTEMS = (
    ("all-pull", "identity", "all_pull"),
    ("all-push", "identity", "all_push"),
    ("vnm_a", "vnm_a", "mincut"),
    ("vnm_n", "vnm_n", "mincut"),
    ("vnm_d", "vnm_d", "mincut"),
    ("iob", "iob", "mincut"),
)


def emit(name: str, table: str) -> None:
    """Print a results table past pytest's capture and persist it."""
    text = f"\n{table}\n"
    sys.__stdout__.write(text)
    sys.__stdout__.flush()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(table + "\n")


def emit_table(name: str, title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    emit(name, format_table(headers, rows, title=title))


def bench_graph(dataset: str, scale: float = 0.35):
    return load_dataset(dataset, scale=scale)


def bench_ag(dataset: str, scale: float = 0.35, hops: int = 1):
    graph = bench_graph(dataset, scale=scale)
    return graph, build_bipartite(graph, Neighborhood.in_neighbors(hops=hops))


def make_aggregate(name: str):
    if name == "topk":
        return TopK(3)
    return get_aggregate(name)


def frequencies_from_events(events) -> FrequencyModel:
    """The workload's true expected frequencies (the paper assumes the
    read/write frequencies are known or predictable, Section 2.1)."""
    from repro.graph.streams import WriteEvent

    trace = [
        ("write" if isinstance(e, WriteEvent) else "read", e.node) for e in events
    ]
    return FrequencyModel.from_trace(trace)


def engine_cost_model(graph, aggregate_name: str = "sum", probes: int = 1500) -> "CostModel":
    """Calibrate H/L against the *engine's* measured per-operation cost.

    Section 4.2: costs are "computed through a calibration process".  A tiny
    identity-overlay engine is driven all-push (measuring the cost of one
    incremental update) and all-pull (measuring the per-input cost of one
    on-demand evaluation); the returned model feeds the decision procedure
    real per-op constants instead of abstract units.
    """
    import time as _time

    from repro.dataflow.costs import CostModel

    nodes = list(graph.nodes())[:60]
    sample = DynamicGraphSample(graph, nodes)
    units = {}
    for mode, counter in (("all_push", "push_ops"), ("all_pull", "pull_ops")):
        engine = build_engine(
            sample.graph, aggregate_name=aggregate_name, algorithm="identity",
            dataflow=mode,
        )
        events = workload(sample.graph, probes, write_read_ratio=1.0, seed=997)
        import gc

        best_unit = float("inf")
        for _ in range(3):  # best-of-3: calibration noise skews decisions
            gc.collect()
            ops_before = getattr(engine.counters, counter)
            started = _time.perf_counter()
            for event in events:
                if hasattr(event, "value"):
                    engine.write(event.node, event.value, event.timestamp)
                else:
                    engine.read(event.node)
            elapsed = _time.perf_counter() - started
            ops = getattr(engine.counters, counter) - ops_before
            best_unit = min(best_unit, elapsed / max(1, ops))
        units[mode] = best_unit
    return CostModel(
        push=lambda k: units["all_push"],
        pull=lambda k: units["all_pull"] * k,
        description=f"engine-calibrated({aggregate_name})",
    )


class DynamicGraphSample:
    """A small induced subgraph for calibration probes."""

    def __init__(self, graph, nodes):
        from repro.graph.dynamic_graph import DynamicGraph

        keep = set(nodes)
        sample = DynamicGraph()
        for node in nodes:
            sample.add_node(node)
        for u, v in graph.edges():
            if u in keep and v in keep:
                sample.add_edge(u, v)
        self.graph = sample


def build_engine(
    graph,
    aggregate_name: str = "sum",
    algorithm: str = "vnm_a",
    dataflow: str = "mincut",
    write_read_ratio: float = 1.0,
    window: int = 1,
    hops: int = 1,
    total_events: float = 10_000.0,
    events=None,
    cost_model=None,
    **kwargs,
) -> EAGrEngine:
    """Engine wired the way the evaluation section runs it.

    When ``events`` is supplied, the decision procedure sees the workload's
    *true* per-node frequencies; otherwise a Zipf model with the requested
    write:read ratio stands in.
    """
    aggregate = make_aggregate(aggregate_name)
    if algorithm == "vnm_d" and not aggregate.duplicate_insensitive:
        raise ValueError("vnm_d benches must use a duplicate-insensitive aggregate")
    query = EgoQuery(
        aggregate=aggregate,
        window=TupleWindow(window),
        neighborhood=Neighborhood.in_neighbors(hops=hops),
    )
    if events is not None:
        frequencies = frequencies_from_events(events)
    else:
        frequencies = FrequencyModel.zipf(
            graph.nodes(),
            total_events=total_events,
            write_read_ratio=write_read_ratio,
            seed=101,
        )
    return EAGrEngine(
        graph, query, overlay_algorithm=algorithm, dataflow=dataflow,
        frequencies=frequencies, cost_model=cost_model, **kwargs,
    )


def workload(graph, num_events: int, write_read_ratio: float = 1.0, seed: int = 7,
             warm: bool = True):
    nodes = list(graph.nodes())
    events: List = []
    if warm:
        events.extend(warmup_writes(nodes, per_node=1, seed=seed))
    events.extend(
        generate_events(
            nodes,
            WorkloadSpec(
                num_events=num_events, write_read_ratio=write_read_ratio,
                seed=seed + 1,
            ),
        )
    )
    return events


def measure_throughput(engine: EAGrEngine, events, passes: int = 3) -> float:
    """Events/second, best of ``passes`` replays (the paper's metric).

    Replaying the same trace on a warmed engine measures sustained
    steady-state throughput; taking the best pass suppresses wall-clock
    noise from GC pauses and scheduler interference, which otherwise
    dominates the ~20% margins the figures compare.
    """
    import gc

    from repro.bench.harness import run_workload

    best = 0.0
    for _ in range(max(1, passes)):
        gc.collect()
        best = max(best, run_workload(engine, events).throughput)
    return best
