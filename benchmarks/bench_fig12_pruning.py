"""Figure 12 — effectiveness of P1/P2 pruning before max-flow.

Paper's series: (a) decision-graph composition (graph nodes vs virtual
nodes) before and after pruning plus the number of connected components, per
dataset at write:read 1:1; (b) the same on the uk-2002 stand-in across
write:read ratios.  Expected shape: pruning removes the large majority of
nodes (papers' residual <= 14%), the residue shatters into many small
components, and pruning is least effective at ratio 1 (conflicts peak).
"""

import pytest

from benchmarks._common import BENCH_DATASETS, bench_ag, emit_table
from repro.dataflow.frequencies import FrequencyModel
from repro.dataflow.mincut import decide_dataflow
from repro.overlay import construct_overlay


def stats_for(graph, ag, ratio):
    overlay = construct_overlay(ag, "vnm_a", iterations=8).overlay
    frequencies = FrequencyModel.zipf(
        graph.nodes(), total_events=10_000, write_read_ratio=ratio, seed=31
    )
    return decide_dataflow(overlay, frequencies)


def test_fig12a_pruning_across_graphs(benchmark):
    rows = []
    residuals = {}
    keep = None
    for dataset in BENCH_DATASETS:
        graph, ag = bench_ag(dataset)
        stats = stats_for(graph, ag, ratio=1.0)
        residuals[dataset] = 1.0 - stats.pruned_fraction
        rows.append(
            [
                dataset,
                stats.graph_nodes_before,
                stats.virtual_nodes_before,
                stats.graph_nodes_after,
                stats.virtual_nodes_after,
                stats.num_components,
                stats.largest_component,
                f"{(1.0 - stats.pruned_fraction) * 100:.1f}%",
            ]
        )
        keep = (graph, ag)
    emit_table(
        "fig12a_pruning_graphs",
        "Figure 12(a): decision-graph size before/after P1+P2 pruning (write:read = 1)",
        [
            "dataset", "graph nodes", "virtual nodes", "graph after",
            "virtual after", "components", "largest comp", "residual",
        ],
        rows,
    )

    graph, ag = keep
    benchmark.pedantic(lambda: stats_for(graph, ag, 1.0), rounds=2, iterations=1)

    # Shape: most of the decision graph is pruned away on every dataset.
    assert all(residual < 0.5 for residual in residuals.values())


def test_fig12b_pruning_across_ratios(benchmark):
    graph, ag = bench_ag("uk2002-small")
    ratios = (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0)
    rows = []
    residual_by_ratio = {}
    for ratio in ratios:
        stats = stats_for(graph, ag, ratio)
        residual = 1.0 - stats.pruned_fraction
        residual_by_ratio[ratio] = residual
        rows.append(
            [
                ratio,
                stats.nodes_total,
                stats.nodes_after_pruning,
                stats.num_components,
                f"{residual * 100:.1f}%",
            ]
        )
    emit_table(
        "fig12b_pruning_ratios",
        "Figure 12(b): pruning on the uk-2002 stand-in across write:read ratios",
        ["write:read", "nodes before", "nodes after", "components", "residual"],
        rows,
    )

    benchmark.pedantic(lambda: stats_for(graph, ag, 1.0), rounds=2, iterations=1)

    # Shape: conflicts (residual) peak near ratio 1.
    peak = max(residual_by_ratio, key=residual_by_ratio.get)
    assert 0.2 <= peak <= 5.0
