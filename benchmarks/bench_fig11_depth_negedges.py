"""Figure 11 — (a) overlay-depth CDF for IOB vs VNM_A; (b) SI vs #negatives.

Paper's series: (a) cumulative fraction of readers by overlay depth —
IOB overlays are significantly deeper (their avg 4.66 vs VNM_A's 3.44);
(b) sharing index as the allowed negative edges per insertion sweep 0..5 —
gains up to ~3-4, then flat.
"""

import pytest

from benchmarks._common import bench_ag, emit_table
from repro.overlay import construct_overlay
from repro.overlay.metrics import average_depth, depth_cdf


def test_fig11a_overlay_depth_cdf(benchmark):
    _, ag = bench_ag("livejournal-small")
    overlays = {
        "vnm_a": construct_overlay(ag, "vnm_a", iterations=10).overlay,
        "iob": construct_overlay(ag, "iob", iterations=3).overlay,
    }
    depths = sorted(
        {d for overlay in overlays.values() for d, _ in depth_cdf(overlay)}
    )
    rows = []
    for name, overlay in overlays.items():
        cdf = dict(depth_cdf(overlay))
        running = 0.0
        cells = []
        for depth in depths:
            running = cdf.get(depth, running)
            cells.append(f"{running:.2f}")
        rows.append([name, f"{average_depth(overlay):.2f}"] + cells)
    emit_table(
        "fig11a_depth_cdf",
        "Figure 11(a): cumulative fraction of readers by overlay depth",
        ["algorithm", "avg depth"] + [f"d<={d}" for d in depths],
        rows,
    )
    assert average_depth(overlays["iob"]) > average_depth(overlays["vnm_a"])

    benchmark.pedantic(lambda: depth_cdf(overlays["iob"]), rounds=3, iterations=1)


def test_fig11b_negative_edges_sweep(benchmark):
    datasets = ("livejournal-small", "gplus-small", "eu2005-small")
    k2_values = (0, 1, 2, 3, 4, 5)
    rows = []
    gains = {}
    ags = {}
    for dataset in datasets:
        _, ag = bench_ag(dataset)
        ags[dataset] = ag
        cells = []
        sis = []
        for k2 in k2_values:
            if k2 == 0:
                result = construct_overlay(ag, "vnm_a", iterations=10)
            else:
                result = construct_overlay(ag, "vnm_n", iterations=10, k2=k2)
            si = result.overlay.sharing_index(ag)
            sis.append(si)
            cells.append(f"{si * 100:.1f}")
        gains[dataset] = sis
        rows.append([dataset] + cells)
    emit_table(
        "fig11b_negative_edges",
        "Figure 11(b): sharing index (%) vs negative edges allowed per insertion (k2)",
        ["dataset"] + [f"k2={k}" for k in k2_values],
        rows,
    )

    ag = ags["eu2005-small"]
    benchmark.pedantic(
        lambda: construct_overlay(ag, "vnm_n", iterations=4, k2=3),
        rounds=2, iterations=1,
    )

    # Shape: allowing some negatives never hurts much and the sweep's best
    # configuration sits at k2 >= 1 for at least one graph.
    assert any(max(sis[1:]) >= sis[0] for sis in gains.values())
