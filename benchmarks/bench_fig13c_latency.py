"""Figure 13(c) — read latency vs the push:pull cost ratio.

Paper's series: worst-case, 95th-percentile, and average read latency for
TOP-K as the pull cost (relative to push) grows, on trace-driven activity.
Raising the pull cost makes the optimizer favor pushes, so reads touch less
and less on-demand work.  Expected shape: all three latency series fall
(then flatten) as the cost ratio rises; worst cases stay low (in-memory, no
distributed traversal).
"""

import pytest

from benchmarks._common import bench_graph, emit_table, workload
from repro.bench.harness import run_workload
from repro.core.aggregates import TopK
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.dataflow.costs import CostModel
from repro.dataflow.frequencies import FrequencyModel
from repro.graph.neighborhoods import Neighborhood

PULL_SCALES = (0.25, 1.0, 4.0, 16.0, 64.0)
NUM_EVENTS = 4_000


def build(graph, pull_scale):
    query = EgoQuery(
        aggregate=TopK(3), window=TupleWindow(2),
        neighborhood=Neighborhood.in_neighbors(),
    )
    return EAGrEngine(
        graph, query, overlay_algorithm="vnm_a", dataflow="mincut",
        frequencies=FrequencyModel.zipf(
            graph.nodes(), total_events=NUM_EVENTS, write_read_ratio=1.0, seed=41
        ),
        cost_model=CostModel.for_aggregate(TopK(3), pull_scale=pull_scale),
    )


def test_fig13c_latency_vs_cost_ratio(benchmark):
    graph = bench_graph("livejournal-small", scale=0.25)
    events = workload(graph, NUM_EVENTS, write_read_ratio=1.0, seed=43)
    rows = []
    averages = []
    for scale in PULL_SCALES:
        engine = build(graph, scale)
        result = run_workload(engine, events, measure_latency=True)
        averages.append(result.average_read_latency)
        rows.append(
            [
                f"{scale}x",
                f"{result.average_read_latency * 1e6:.1f}",
                f"{result.latency_percentile(95) * 1e6:.1f}",
                f"{result.worst_read_latency * 1e6:.1f}",
            ]
        )
    emit_table(
        "fig13c_latency",
        "Figure 13(c): TOP-K read latency (µs) vs pull:push cost ratio",
        ["pull cost", "average", "p95", "worst"],
        rows,
    )

    # Shape: higher pull cost -> more pre-computation -> lower read latency.
    assert averages[-1] <= averages[0]

    engine = build(graph, 1.0)
    subset = events[:1000]
    benchmark.pedantic(
        lambda: run_workload(engine, subset, measure_latency=True),
        rounds=2, iterations=1,
    )
