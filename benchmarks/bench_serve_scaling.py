"""Serving-layer scaling: shard processes vs the GIL-bound thread pool.

Closes the ROADMAP's "process-pool execution" item with numbers.  On the
same warmed write workload (vnm_a + mincut, SUM, the hotpath bench's
configuration) it measures sustained write throughput three ways:

* **threaded** — :class:`~repro.core.concurrency.ThreadedEngine`
  ``submit_write_batch`` + drain: the paper's queueing model on real OS
  threads.  Correct, but CPython's GIL serializes the micro-tasks and the
  per-edge queue round-trips dominate.
* **serve-K (queue)** — :class:`~repro.serve.server.EAGrServer` with K
  shard **processes** (spawn) on the pickle-over-``mp.Queue`` transport:
  batches pickle across the process boundary and each shard applies its
  slice through the columnar scatter kernels.
* **serve-K (shm)** — the same deployment on the shared-memory transport:
  write batches scatter into per-shard ingress rings, shards keep their
  columns in named shared segments, the applied watermark replaces
  per-batch acknowledgements, and reads answer zero-copy front-side.
* **serve-inproc** — the same server on the in-process executor (the
  routing overhead alone, no processes; context for the queue cost).

Results append to ``BENCH_serve.json`` at the repo root so CI accumulates
the trajectory (the ``shm`` column records the shared-memory transport).
Every row records its transport, frame codec (``binary`` record frames vs
``pickle`` payloads — see :mod:`repro.serve.frames`) and ingress bytes
per delivered event; each shm shard count also runs a **pickled-codec
control** (``binary_frames=False`` on the same ring transport), and the
``binary_vs_pickled`` column records the binary data plane's speedup
over it.
Every serve row also records the end-to-end **write→notify latency**
percentiles its pass observed (the metrics plane's
``write_notify_latency`` summary), and a ``metrics_overhead`` control leg
re-runs the fastest shm configuration with ``metrics=False`` so the
instrumentation tax is itself a committed number.
``--smoke`` shrinks the workload and asserts the acceptance floors: serve
at the highest shard count must beat threaded, the shm transport must
actually resolve, and no ``/dev/shm`` segment may survive teardown.

Note on hosts: on a single-core container the shard processes time-slice
one CPU, so the serve numbers measure the *per-event work advantage*
(batched columnar kernels vs per-edge micro-tasks) rather than true
parallel speedup; on a multi-core host the same harness shows both.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

try:
    from benchmarks._common import bench_graph, build_engine, emit_table, workload
except ImportError:  # script mode
    sys.path.insert(0, os.path.dirname(__file__))
    from _common import bench_graph, build_engine, emit_table, workload

from repro.core.concurrency import ThreadedEngine
from repro.graph.streams import WriteEvent
from repro.serve import EAGrServer

BATCH_SIZE = 256
# Full runs time ~90 batch submissions per pass: at >500k events/s a
# smaller workload is a <15 ms timed region, and scheduler noise on a
# shared single core swings codec comparisons by ±30%.
NUM_EVENTS = 24_000
SHARD_COUNTS = (1, 2, 4)
WRITE_THREADS = 2
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_serve.json")


def write_workload(graph, num_events: int):
    events = workload(graph, num_events, write_read_ratio=10_000.0, seed=23)
    return [
        (e.node, e.value, e.timestamp)
        for e in events
        if isinstance(e, WriteEvent)
    ]


def measure(apply_and_drain, events, passes: int = 3) -> float:
    """Best-of-N events/s for one warmed sink (GC/scheduler noise control)."""
    best = 0.0
    for _ in range(max(1, passes)):
        gc.collect()
        started = time.perf_counter()
        apply_and_drain(events)
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, len(events) / elapsed)
    return best


def bench_threaded(graph, events, passes: int) -> float:
    # The object store is the thread pool's best configuration: its
    # micro-tasks touch PAOs element-wise, where columnar slot access
    # pays scalar conversion per touch.
    engine = build_engine(
        graph, aggregate_name="sum", algorithm="vnm_a", dataflow="mincut",
        events=None, value_store="object",
    )
    threaded = ThreadedEngine(engine, write_threads=WRITE_THREADS)

    def run(items):
        submit = threaded.submit_write_batch
        for start in range(0, len(items), BATCH_SIZE):
            submit(items[start : start + BATCH_SIZE])
        threaded.drain()

    try:
        run(events)  # warm: plans, buffers, queues
        return measure(run, events, passes)
    finally:
        threaded.close()


def bench_serve(
    graph,
    events,
    num_shards: int,
    executor: str,
    passes: int,
    transport: str = "auto",
    binary_frames="auto",
    metrics="auto",
    check_segments=None,
):
    from repro.core.aggregates import Sum
    from repro.core.query import EgoQuery
    from repro.core.windows import TupleWindow
    from repro.graph.neighborhoods import Neighborhood

    query = EgoQuery(
        aggregate=Sum(),
        window=TupleWindow(1),
        neighborhood=Neighborhood.in_neighbors(),
    )
    server = EAGrServer(
        graph,
        query,
        num_shards=num_shards,
        executor=executor,
        transport=transport,
        binary_frames=binary_frames,
        metrics=metrics,
        overlay_algorithm="vnm_a",
        dataflow="mincut",
        queue_depth=16,
    )
    if transport == "shm":
        assert server.transport == "shm", "shm transport failed to resolve"
    # A small watched set exercises the notification path so each row's
    # write->notify percentiles are sampled from real deliveries (same
    # set on every serve leg; the threaded baseline has no equivalent).
    server.subscribe("bench-watch", sorted(graph.nodes(), key=repr)[:8])

    def run(items):
        write_batch = server.write_batch
        for start in range(0, len(items), BATCH_SIZE):
            write_batch(items[start : start + BATCH_SIZE])
        server.drain()

    segment_names = [
        name for spec in server.specs if spec.shm for name in spec.shm.values()
    ]
    try:
        run(events)  # warm: boots workers, compiles every shard's plans
        eps = measure(run, events, passes)
        stats = server.server_stats()
        mix = stats["codec_mix"]
        delivered = max(1, stats["writes_delivered"])
        lat = stats.get("write_notify_latency", {})
        meta = {
            "transport": server.transport,
            "codec": "binary" if stats["binary_frames"] else "pickle",
            "bytes_per_event": round(
                mix.get("ingress_bytes", 0) / delivered, 1
            ),
            "write_frames_binary": mix.get("write_frames_binary", 0),
            "write_frames_pickle": mix.get("write_frames_pickle", 0),
            # End-to-end write->notify latency over every timed pass, in
            # ms; zeros when the metrics plane is off (the control leg).
            "write_notify_p50_ms": round(lat.get("p50", 0.0) * 1e3, 3),
            "write_notify_p95_ms": round(lat.get("p95", 0.0) * 1e3, 3),
            "write_notify_p99_ms": round(lat.get("p99", 0.0) * 1e3, 3),
            "write_notify_samples": int(lat.get("count", 0)),
        }
        return eps, meta
    finally:
        server.close()
        if check_segments is not None:
            check_segments(segment_names)


def _assert_segments_gone(names):
    from repro.core.statestore import segment_exists

    leaked = [name for name in names if segment_exists(name)]
    assert not leaked, f"leaked shared-memory segments after teardown: {leaked}"


def run_bench(num_events: int = NUM_EVENTS, shard_counts=SHARD_COUNTS, passes: int = 3):
    graph = bench_graph("livejournal-small", scale=0.25)
    events = write_workload(graph, num_events)
    results = {
        "threaded_eps": 0.0,
        "serve": {},
        "shm": {},
        "shm_pickled": {},
        "serve_inprocess_eps": 0.0,
    }

    threaded = bench_threaded(graph, events, passes)
    results["threaded_eps"] = round(threaded)

    inproc, inproc_meta = bench_serve(graph, events, 2, "inprocess", passes)
    results["serve_inprocess_eps"] = round(inproc)

    def row(label, eps, meta):
        return [
            label,
            f"{eps:,.0f}",
            f"{eps / threaded:.2f}x" if threaded else "-",
            meta["codec"] if meta else "-",
            f"{meta['bytes_per_event']:,.0f}" if meta else "-",
        ]

    rows = [["threaded x%d" % WRITE_THREADS, f"{threaded:,.0f}", "1.00x",
             "-", "-"],
            row("serve-inproc x2", inproc, inproc_meta)]
    for shards in shard_counts:
        queue_eps, queue_meta = bench_serve(
            graph, events, shards, "process", passes, transport="queue"
        )
        shm_eps, shm_meta = bench_serve(
            graph, events, shards, "process", passes,
            transport="shm", check_segments=_assert_segments_gone,
        )
        # The pickled-codec control on the same transport: what the shm
        # ring costs when every frame payload is pickle.dumps/loads.
        pickled_eps, pickled_meta = bench_serve(
            graph, events, shards, "process", passes,
            transport="shm", binary_frames=False,
            check_segments=_assert_segments_gone,
        )
        results["serve"][str(shards)] = {
            "eps": round(queue_eps),
            "speedup_vs_threaded": round(
                queue_eps / threaded if threaded else 0.0, 2
            ),
            **queue_meta,
        }
        results["shm"][str(shards)] = {
            "eps": round(shm_eps),
            "speedup_vs_threaded": round(
                shm_eps / threaded if threaded else 0.0, 2
            ),
            "speedup_vs_queue": round(
                shm_eps / queue_eps if queue_eps else 0.0, 2
            ),
            "binary_vs_pickled": round(
                shm_eps / pickled_eps if pickled_eps else 0.0, 2
            ),
            **shm_meta,
        }
        results["shm_pickled"][str(shards)] = {
            "eps": round(pickled_eps),
            **pickled_meta,
        }
        rows.append(row(f"serve-proc x{shards} (queue)", queue_eps, queue_meta))
        rows.append(row(f"serve-proc x{shards} (shm)", shm_eps, shm_meta))
        rows.append(
            row(f"serve-proc x{shards} (shm, pickled)", pickled_eps, pickled_meta)
        )

    # The metrics-off control leg: the fastest configuration (1-shard shm
    # binary) re-run with the metrics plane disabled.  Relative
    # instrumentation overhead is largest where per-event work is
    # smallest, so this is the worst case for the observability tax
    # (bench_obs_overhead.py measures the same ratio with interleaved
    # passes on the noise-free in-process executor).
    first = str(min(int(s) for s in results["shm"]))
    off_eps, off_meta = bench_serve(
        graph, events, int(first), "process", passes,
        transport="shm", metrics=False, check_segments=_assert_segments_gone,
    )
    on_eps = results["shm"][first]["eps"]
    results["metrics_overhead"] = {
        "shards": int(first),
        "transport": "shm",
        "metrics_on_eps": on_eps,
        "metrics_off_eps": round(off_eps),
        "on_vs_off": round(on_eps / off_eps, 3) if off_eps else 0.0,
    }
    rows.append(row(f"serve-proc x{first} (shm, metrics off)", off_eps, off_meta))
    emit_table(
        "serve_scaling",
        f"Serving layer [SUM, vnm_a+mincut, batch={BATCH_SIZE}]: "
        "write throughput (events/s)",
        ["sink", "events/s", "vs threaded", "codec", "B/event"],
        rows,
    )
    return results


def persist(results, num_events: int) -> None:
    history = []
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH) as handle:
                history = json.load(handle)
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(
        {
            "bench": "serve_scaling",
            "timestamp": time.time(),
            "num_events": num_events,
            "batch_size": BATCH_SIZE,
            "write_threads": WRITE_THREADS,
            "cpus": os.cpu_count(),
            "aggregate": "sum",
            "results": results,
        }
    )
    with open(JSON_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def main(argv):
    smoke = "--smoke" in argv
    # Smoke still needs a timed region big enough that the 1-shard
    # binary-vs-pickled floor below measures the codec, not the timer.
    num_events = 4_000 if smoke else NUM_EVENTS
    shard_counts = (1, 2) if smoke else SHARD_COUNTS
    # Full runs take best-of-5: at 4 shard processes on a shared single
    # core, scheduler noise swings single passes ±20% — enough to flip a
    # transport comparison that is stable under best-of.
    passes = 2 if smoke else 5
    results = run_bench(num_events=num_events, shard_counts=shard_counts, passes=passes)
    persist(results, num_events)
    top = str(max(int(s) for s in results["serve"]))
    best = results["serve"][top]
    best_shm = results["shm"][top]
    one_shard = results["shm"].get("1")
    print(
        f"threaded: {results['threaded_eps']:,} ev/s; "
        f"serve x{top} queue: {best['eps']:,} ev/s "
        f"({best['speedup_vs_threaded']}x); "
        f"shm: {best_shm['eps']:,} ev/s "
        f"({best_shm['speedup_vs_queue']}x vs queue, "
        f"{best_shm['binary_vs_pickled']}x vs pickled); "
        f"write→notify p99 {best_shm['write_notify_p99_ms']} ms; "
        f"metrics on/off {results['metrics_overhead']['on_vs_off']}x; "
        f"JSON -> {JSON_PATH}"
    )
    if smoke:
        # CI tripwires, deliberately loose: the serve layer clears the
        # thread pool by 4-12x on a quiet single core, so even a noisy
        # shared runner (spawn boot jitter, scheduler interference) stays
        # far above this floor unless the hot path genuinely regressed.
        assert best["speedup_vs_threaded"] >= 0.5, (
            "serve layer grossly regressed vs ThreadedEngine: "
            f"{best['speedup_vs_threaded']}x"
        )
        # The shm transport ran (bench_serve asserted it resolved and its
        # segments were unlinked); it must not collapse vs the queue.
        assert best_shm["speedup_vs_queue"] >= 0.5, (
            f"shm transport grossly regressed vs queue: "
            f"{best_shm['speedup_vs_queue']}x"
        )
        # The binary codec must never *lose* to pickling the same frames
        # (the full-run acceptance target is >= 1.3x at one shard; the
        # smoke floor only trips on a real regression, not runner noise).
        assert one_shard is None or one_shard["binary_vs_pickled"] >= 0.8, (
            f"binary frames regressed vs pickled frames: "
            f"{one_shard['binary_vs_pickled']}x"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
