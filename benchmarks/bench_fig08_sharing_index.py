"""Figure 8 — sharing index vs iteration per construction algorithm.

Paper's series: average SI per iteration for VNM_A, IOB, VNM_N, VNM_D on
LiveJournal, gPlus, eu-2005 and uk-2002.  Expected shape: IOB highest and
converging within a few iterations; VNM_N/VNM_D above VNM_A; web graphs far
more compressible than social graphs.
"""

import pytest

from benchmarks._common import BENCH_DATASETS, bench_ag, emit_table
from repro.overlay import construct_overlay

ALGORITHMS = ("vnm_a", "vnm_n", "vnm_d", "iob")
ITERATIONS = 12


def trace(ag, algorithm):
    result = construct_overlay(ag, algorithm, iterations=ITERATIONS)
    values = [s.sharing_index for s in result.stats]
    # Pad converged runs so every row has ITERATIONS columns.
    while len(values) < ITERATIONS:
        values.append(values[-1] if values else 0.0)
    return values


def test_fig08_sharing_index_by_iteration(benchmark):
    ags = {name: bench_ag(name)[1] for name in BENCH_DATASETS}
    rows = []
    final = {}
    for dataset, ag in ags.items():
        for algorithm in ALGORITHMS:
            values = trace(ag, algorithm)
            final[(dataset, algorithm)] = values[-1]
            rows.append(
                [dataset, algorithm]
                + [f"{v * 100:.1f}" for v in values[:: max(1, ITERATIONS // 6)]]
                + [f"{values[-1] * 100:.1f}"]
            )
    emit_table(
        "fig08_sharing_index",
        "Figure 8: average sharing index (%) per iteration",
        ["dataset", "algorithm", "it1", "it3", "it5", "it7", "it9", "it11", "final"],
        rows,
    )

    # Timed kernel: one VNM_A construction on the LiveJournal stand-in.
    lj = ags["livejournal-small"]
    benchmark.pedantic(
        lambda: construct_overlay(lj, "vnm_a", iterations=6), rounds=2, iterations=1
    )

    # Shape assertions (the paper's qualitative claims).
    for dataset in BENCH_DATASETS:
        assert final[(dataset, "iob")] >= final[(dataset, "vnm_a")] - 0.02
    web_si = final[("uk2002-small", "vnm_a")]
    social_si = final[("livejournal-small", "vnm_a")]
    assert web_si > social_si
