"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the contribution of individual
mechanisms so a regression in any one of them is visible:

* **multi-level overlays** (virtual nodes re-mined as transactions) vs
  single-level mining — the paper's Section 3.2.1 notes multi-level
  overlays "exhibit the best sharing index";
* **P1/P2 pruning** vs raw max-flow — Section 4.5's claim that pruning
  makes the optimal decision procedure practical;
* **shingle ordering** vs arbitrary reader order — the grouping heuristic
  VNM inherits from web-graph compression (Section 3.2.1);
* **exact-cover reuse in IOB** vs always-direct edges — the reverse-index
  machinery of Section 3.2.5.
"""

import time

import pytest

from benchmarks._common import bench_ag, emit_table
from repro.dataflow.frequencies import FrequencyModel
from repro.dataflow.mincut import decide_dataflow
from repro.overlay import construct_overlay
from repro.overlay.shingles import shingle_order
from repro.overlay.vnm import build_vnm


def test_ablation_multilevel_overlays(benchmark):
    rows = []
    gains = []
    for dataset in ("gplus-small", "eu2005-small", "uk2002-small"):
        _, ag = bench_ag(dataset)
        multi = build_vnm(ag, variant="vnm_a", iterations=10)
        single = build_vnm(
            ag, variant="vnm_a", iterations=10, virtual_transactions=False
        )
        multi_si = multi.overlay.sharing_index(ag)
        single_si = single.overlay.sharing_index(ag)
        gains.append((multi_si, single_si))
        rows.append(
            [
                dataset,
                f"{single_si * 100:.1f}",
                f"{multi_si * 100:.1f}",
                max(d for d in multi.overlay.reader_depths().values()),
            ]
        )
    emit_table(
        "ablation_multilevel",
        "Ablation: single-level vs multi-level VNM_A overlays (SI %)",
        ["dataset", "single-level SI", "multi-level SI", "multi max depth"],
        rows,
    )
    # Note: with virtual_transactions=False virtual nodes still appear as
    # *items* in reader lists, so some stacking survives; re-mining virtual
    # nodes adds the rest — a consistent but moderate gain at this scale.
    assert all(multi >= single for multi, single in gains)
    assert any(multi - single > 0.015 for multi, single in gains)

    _, ag = bench_ag("eu2005-small")
    benchmark.pedantic(
        lambda: build_vnm(ag, variant="vnm_a", iterations=4), rounds=2, iterations=1
    )


def test_ablation_pruning_speedup(benchmark):
    graph, ag = bench_ag("uk2002-small")
    overlay = construct_overlay(ag, "vnm_a", iterations=8).overlay
    frequencies = FrequencyModel.zipf(graph.nodes(), write_read_ratio=1.0, seed=3)

    def run(use_pruning):
        trial = overlay.copy()
        started = time.perf_counter()
        stats = decide_dataflow(trial, frequencies, use_pruning=use_pruning)
        return time.perf_counter() - started, stats, trial

    pruned_time, pruned_stats, overlay_a = run(True)
    raw_time, _, overlay_b = run(False)
    emit_table(
        "ablation_pruning",
        "Ablation: decision time with vs without P1/P2 pruning",
        ["variant", "time (ms)", "maxflow nodes", "components"],
        [
            ["with pruning", f"{pruned_time * 1e3:.1f}", pruned_stats.nodes_after_pruning,
             pruned_stats.num_components],
            ["raw max-flow", f"{raw_time * 1e3:.1f}", pruned_stats.nodes_total, 1],
        ],
    )
    # Identical decisions (Theorem 4.2) ...
    assert overlay_a.decisions == overlay_b.decisions
    # ... at a fraction of the max-flow problem size.
    assert pruned_stats.nodes_after_pruning < 0.5 * pruned_stats.nodes_total

    benchmark.pedantic(lambda: run(True), rounds=2, iterations=1)


def test_ablation_shingle_ordering(benchmark):
    import repro.overlay.vnm as vnm_module

    _, ag = bench_ag("eu2005-small")
    with_shingles = build_vnm(ag, variant="vnm_a", iterations=8)

    original = vnm_module.shingle_order
    try:
        # Arbitrary (sorted-by-id) reader order instead of min-hash order.
        vnm_module.shingle_order = lambda transactions, **kw: sorted(transactions)
        without = build_vnm(ag, variant="vnm_a", iterations=8)
    finally:
        vnm_module.shingle_order = original

    si_with = with_shingles.overlay.sharing_index(ag)
    si_without = without.overlay.sharing_index(ag)
    emit_table(
        "ablation_shingles",
        "Ablation: shingle ordering vs arbitrary reader order (VNM_A, eu2005)",
        ["ordering", "sharing index"],
        [["min-hash shingles", f"{si_with * 100:.1f}%"],
         ["node-id order", f"{si_without * 100:.1f}%"]],
    )
    assert si_with > si_without

    benchmark.pedantic(
        lambda: shingle_order({r: list(ws) for r, ws in ag.reader_inputs.items()}),
        rounds=3, iterations=1,
    )


def test_ablation_iob_reuse(benchmark):
    from repro.core.overlay import Overlay
    from repro.overlay.iob import IOBState, build_iob

    _, ag = bench_ag("eu2005-small")
    with_reuse = build_iob(ag, iterations=1)

    # Strawman: same insertion order, but no candidate reuse (all direct).
    direct = Overlay.identity(ag)
    si_reuse = with_reuse.overlay.sharing_index(ag)
    si_direct = direct.sharing_index(ag)
    emit_table(
        "ablation_iob_reuse",
        "Ablation: IOB exact-cover reuse vs direct edges (eu2005)",
        ["variant", "edges", "sharing index"],
        [["IOB cover/split", with_reuse.overlay.num_edges, f"{si_reuse * 100:.1f}%"],
         ["direct edges", direct.num_edges, f"{si_direct * 100:.1f}%"]],
    )
    assert si_reuse > 0.3

    benchmark.pedantic(lambda: build_iob(ag, iterations=1), rounds=2, iterations=1)
