"""Resharding benchmark: partition quality and live-migration cost.

Two questions the elastic partitioning tier answers have a price,
measured here:

* **Partition quality.**  On seeded community graphs, the planned
  replication factor (mean shards per writer — the multicast write
  amplification of the hot path) for the balanced min-cut partitioner
  versus the BFS ``community_assignment`` heuristic it replaced and the
  stable-hash baseline, plus the min-cut's shard imbalance (max size
  over mean; the partitioner promises <= 1.25).
* **Live migration.**  An ``EAGrServer`` under a :class:`ZipfDriftSampler`
  workload whose hot set jumps mid-run: client-side throughput and
  write→notify p99 are sampled *before* the drift, *during* a live
  ``reshard()`` to the freshly re-optimized partition (the migration dip
  — writes keep flowing while shards checkpoint, splice and swap), and
  *after* it.  Final reads are verified against a never-resharded
  oracle before any number is accepted.

Results append to ``BENCH_reshard.json`` at the repo root so CI
accumulates the trajectory.  ``--smoke`` shrinks the workload and keeps
the acceptance assertions (min-cut strictly below both baselines,
balance bound, oracle-equal reads, server available through the
migration) as CI tripwires.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

try:
    from benchmarks._common import emit_table
except ImportError:  # script mode
    sys.path.insert(0, os.path.dirname(__file__))
    from _common import emit_table

from repro.core.aggregates import Sum
from repro.core.engine import EAGrEngine
from repro.core.partition import (
    mincut_partition,
    planned_replication_factor,
    shard_sizes,
)
from repro.core.partitioned import _stable_hash, community_assignment
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import community_graph
from repro.serve import EAGrServer
from repro.serve.reshard import plan_from_assignment
from repro.workload.zipf import ZipfDriftSampler

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_reshard.json")

#: Same seeded configurations tests/core/test_partition.py defends.
QUALITY_CONFIGS = (
    dict(name="12x30", num_communities=12, community_size=30,
         intra_probability=0.5, inter_edges=40, seed=101, num_shards=5),
    dict(name="20x30", num_communities=20, community_size=30,
         intra_probability=0.6, inter_edges=60, seed=102, num_shards=4),
    dict(name="8x24", num_communities=8, community_size=24,
         intra_probability=0.5, inter_edges=24, seed=103, num_shards=4),
)

MIGRATION_SHARDS = 3
BATCH_SIZE = 16


def build_query():
    return EgoQuery(aggregate=Sum(), window=TupleWindow(1))


def bench_partition_quality():
    rows, records = [], []
    for config in QUALITY_CONFIGS:
        config = dict(config)
        name = config.pop("name")
        num_shards = config.pop("num_shards")
        graph = community_graph(**config)
        query = build_query()
        readers = list(graph.nodes())

        mincut = mincut_partition(graph, query, num_shards)
        community = {
            node: community_assignment(graph, num_shards)(node) % num_shards
            for node in readers
        }
        hashed = {node: _stable_hash(node) % num_shards for node in readers}

        rf = {
            "mincut": planned_replication_factor(graph, query, mincut),
            "community": planned_replication_factor(graph, query, community),
            "hash": planned_replication_factor(graph, query, hashed),
        }
        sizes = shard_sizes(mincut, num_shards)
        imbalance = max(sizes) / (sum(sizes) / num_shards)
        record = {
            "config": name,
            "num_shards": num_shards,
            "rf_mincut": round(rf["mincut"], 4),
            "rf_community": round(rf["community"], 4),
            "rf_hash": round(rf["hash"], 4),
            "mincut_vs_community": round(rf["community"] / rf["mincut"], 3),
            "mincut_imbalance": round(imbalance, 4),
        }
        records.append(record)
        rows.append([
            name, num_shards,
            f"{rf['mincut']:.3f}", f"{rf['community']:.3f}",
            f"{rf['hash']:.3f}", f"{record['mincut_vs_community']}x",
            f"{imbalance:.3f}",
        ])
    emit_table(
        "reshard_quality",
        "Planned replication factor (shards/writer) by partitioner",
        ["graph", "shards", "mincut", "community", "hash",
         "community/mincut", "imbalance"],
        rows,
    )
    return records


def probe_window(server, sub, batches):
    """Pump ``batches``; per batch, sample client-side write→notify
    latency (submit to first delivered notice).  Returns (eps, p99_ms)."""
    latencies = []
    events = 0
    started = time.perf_counter()
    for batch in batches:
        t0 = time.perf_counter()
        server.write_batch(batch)
        events += len(batch)
        note = sub.get(timeout=30.0)
        if note is not None:
            latencies.append(time.perf_counter() - t0)
        while sub.poll():
            pass  # drain stragglers so the next sample is unambiguous
    elapsed = time.perf_counter() - started
    eps = events / elapsed if elapsed > 0 else 0.0
    p99 = (
        statistics.quantiles(latencies, n=100)[98]
        if len(latencies) >= 10
        else (max(latencies) if latencies else 0.0)
    )
    return round(eps), round(p99 * 1e3, 3)


def drift_batches(sampler, clock, count):
    """Seeded write batches from the sampler's current phase; values are
    fresh each write (TupleWindow(1) sums), so every batch notifies."""
    batches = []
    for _ in range(count):
        batch = []
        for _ in range(BATCH_SIZE):
            clock[0] += 1.0
            batch.append((sampler.sample(), clock[0]))
        batches.append(batch)
    return batches


def bench_live_migration(batches_per_leg: int):
    graph = community_graph(
        num_communities=6, community_size=15, intra_probability=0.5,
        inter_edges=20, seed=201,
    )
    query = build_query()
    nodes = sorted(graph.nodes())
    period = batches_per_leg * BATCH_SIZE
    sampler = ZipfDriftSampler(
        nodes, alpha=1.2, seed=202, period=period, schedule="step"
    )
    clock = [0.0]
    server = EAGrServer(
        graph, query, num_shards=MIGRATION_SHARDS, executor="inprocess",
        overlay_algorithm="identity", dataflow="all_push",
    )
    applied = []
    try:
        sub = server.subscribe("bench-watch", nodes)
        rf_before = server.replication_factor

        # Phase 0 hot set: steady state on the boot-time partition.
        before_batches = drift_batches(sampler, clock, batches_per_leg)
        applied.extend(before_batches)
        before = probe_window(server, sub, before_batches)

        # The hot set jumps (schedule="step").  Re-run the partitioner
        # against the *new* phase's expected write frequencies and apply
        # the delta live while traffic keeps flowing.
        target = mincut_partition(
            graph, query, MIGRATION_SHARDS,
            write_freq=sampler.expected_frequencies(
                float(period), phase=sampler.phase
            ),
        )
        plan = plan_from_assignment(server, target)
        summary = {}

        def migrate():
            summary.update(server.reshard(plan))

        during_batches = drift_batches(sampler, clock, batches_per_leg)
        applied.extend(during_batches)
        migrator = threading.Thread(target=migrate)
        migrator.start()
        during = probe_window(server, sub, during_batches)
        migrator.join(timeout=120)
        assert not migrator.is_alive(), "migration never finished"

        after_batches = drift_batches(sampler, clock, batches_per_leg)
        applied.extend(after_batches)
        after = probe_window(server, sub, after_batches)

        server.drain()
        oracle = EAGrEngine(
            graph, query, overlay_algorithm="identity", dataflow="all_push"
        )
        for batch in applied:
            oracle.write_batch(batch)
        assert server.read_batch(nodes) == oracle.read_batch(nodes), (
            "live migration lost or duplicated writes"
        )

        result = {
            "num_shards": MIGRATION_SHARDS,
            "batches_per_leg": batches_per_leg,
            "batch_size": BATCH_SIZE,
            "moved_readers": summary.get("moved", 0),
            "partition_epoch": server.partition_epoch,
            "rf_planned_before": round(rf_before, 4),
            "rf_planned_after": round(server.replication_factor, 4),
            "rf_observed_after": round(server.observed_replication_factor, 4),
            "before": {"eps": before[0], "p99_ms": before[1]},
            "during": {"eps": during[0], "p99_ms": during[1]},
            "after": {"eps": after[0], "p99_ms": after[1]},
        }
    finally:
        server.close()

    emit_table(
        "reshard_migration",
        "Live migration under Zipf hot-set drift "
        f"[{MIGRATION_SHARDS} shards, step schedule]",
        ["leg", "events/s", "write→notify p99 (ms)"],
        [
            ["before", f"{result['before']['eps']:,}", result["before"]["p99_ms"]],
            ["during", f"{result['during']['eps']:,}", result["during"]["p99_ms"]],
            ["after", f"{result['after']['eps']:,}", result["after"]["p99_ms"]],
        ],
    )
    return result


def persist(results) -> None:
    history = []
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH) as handle:
                history = json.load(handle)
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(
        {
            "bench": "reshard",
            "timestamp": time.time(),
            "cpus": os.cpu_count(),
            "results": results,
        }
    )
    with open(JSON_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def main(argv):
    smoke = "--smoke" in argv
    batches_per_leg = 25 if smoke else 120
    quality = bench_partition_quality()
    migration = bench_live_migration(batches_per_leg)
    results = {"partition_quality": quality, "migration": migration}
    persist(results)
    worst = min(q["mincut_vs_community"] for q in quality)
    print(
        f"min-cut vs community (worst config): {worst}x lower replication; "
        f"migration moved {migration['moved_readers']} readers, "
        f"during-dip {migration['during']['eps']:,} ev/s vs "
        f"before {migration['before']['eps']:,} ev/s; "
        f"JSON -> {JSON_PATH}"
    )
    if smoke:
        # Acceptance tripwires.  The quality numbers are seeded and
        # deterministic; the throughput floor is deliberately loose
        # (shared-runner noise), tripping only on a real stall.
        for q in quality:
            assert q["rf_mincut"] < q["rf_community"], (
                f"{q['config']}: min-cut ({q['rf_mincut']}) lost to "
                f"community assignment ({q['rf_community']})"
            )
            assert q["rf_mincut"] < q["rf_hash"], (
                f"{q['config']}: min-cut lost to stable hash"
            )
            assert q["mincut_imbalance"] <= 1.25 + 0.05, (
                f"{q['config']}: imbalance {q['mincut_imbalance']} "
                f"breaks the 1.25x balance bound"
            )
        assert migration["moved_readers"] > 0, "the drift plan moved nothing"
        assert migration["partition_epoch"] == 1
        assert migration["during"]["eps"] > 0.1 * migration["before"]["eps"], (
            "writes effectively stalled during the live migration"
        )
        assert migration["after"]["eps"] > 0.2 * migration["before"]["eps"], (
            "throughput never recovered after the migration"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
