"""Figure 13(a) — adapting dataflow decisions under workload drift.

Paper's series: processing time per segment of 25,000 queries on a packet
trace whose read frequencies shift halfway, for all-pull, all-push, static
dataflow, and adaptive dataflow.  Expected shape: static decisions go stale
after the shift while the adaptive scheme recovers to near its pre-shift
cost; both beat the all-push/all-pull extremes overall.

Work is reported in aggregate operations per segment (machine-independent)
— the paper's per-segment milliseconds are proportional to it.
"""

import pytest

from benchmarks._common import bench_graph, emit_table
from repro.core.adaptive import AdaptiveConfig
from repro.core.aggregates import Sum
from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.dataflow.frequencies import FrequencyModel
from repro.graph.neighborhoods import Neighborhood
from repro.graph.streams import WriteEvent
from repro.workload import DriftSpec, drifting_trace, phase_frequencies

NUM_EVENTS = 12_000
SEGMENTS = 8


def build(graph, phase1_freqs, dataflow="mincut", adaptive=False):
    query = EgoQuery(
        aggregate=Sum(), window=TupleWindow(1),
        neighborhood=Neighborhood.in_neighbors(),
    )
    reads, writes = phase1_freqs
    return EAGrEngine(
        graph, query, overlay_algorithm="vnm_a", dataflow=dataflow,
        frequencies=FrequencyModel(read=dict(reads), write=dict(writes)),
        adaptive=adaptive,
        adaptive_config=AdaptiveConfig(check_interval=300, min_observations=5),
    )


def segment_work(engine, events, segments=SEGMENTS):
    size = max(1, len(events) // segments)
    work = []
    for start in range(0, len(events), size):
        before = engine.counters.work
        for event in events[start : start + size]:
            if isinstance(event, WriteEvent):
                engine.write(event.node, event.value, event.timestamp)
            else:
                engine.read(event.node)
        work.append(engine.counters.work - before)
    return work[:segments]


def test_fig13a_adaptive_dataflow(benchmark):
    graph = bench_graph("livejournal-small", scale=0.25)
    nodes = list(graph.nodes())
    spec = DriftSpec(
        num_events=NUM_EVENTS, switch_point=0.5, drifting_fraction=0.3,
        base_write_read_ratio=5.0, drifted_write_read_ratio=0.1, seed=77,
    )
    events, _ = drifting_trace(nodes, spec)
    phase1 = phase_frequencies(events, num_phases=2)[0]

    variants = {
        "all-pull": build(graph, phase1, dataflow="all_pull"),
        "all-push": build(graph, phase1, dataflow="all_push"),
        "static": build(graph, phase1, dataflow="mincut"),
        "adaptive": build(graph, phase1, dataflow="mincut", adaptive=True),
    }
    work = {name: segment_work(engine, events) for name, engine in variants.items()}
    rows = [
        [name] + [f"{w:,}" for w in values] + [f"{sum(values):,}"]
        for name, values in work.items()
    ]
    emit_table(
        "fig13a_adaptive",
        "Figure 13(a): aggregate ops per trace segment (drift at segment 5)",
        ["variant"] + [f"seg{i}" for i in range(1, SEGMENTS + 1)] + ["total"],
        rows,
    )

    # Shape assertions: after the drift (second half), adaptive does less
    # work than static, and adaptive beats both extremes in total.
    half = SEGMENTS // 2
    static_tail = sum(work["static"][half:])
    adaptive_tail = sum(work["adaptive"][half:])
    assert adaptive_tail < static_tail
    assert sum(work["adaptive"]) < sum(work["all-pull"])
    assert sum(work["adaptive"]) < sum(work["all-push"])

    fresh = build(graph, phase1, dataflow="mincut", adaptive=True)
    benchmark.pedantic(
        lambda: segment_work(fresh, events[:2000], segments=2), rounds=1, iterations=1
    )
