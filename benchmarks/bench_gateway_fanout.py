"""Gateway fan-out: notification delivery over real TCP subscriptions.

The serving stack's other benches all drive :class:`EAGrServer` from
inside its own process.  This one measures the network edge end to end:
``S`` subscribers spread over TCP connections (10 streams per
connection), a writer client pushing waves of whole-graph write batches
through the same gateway, and the clock stopping only when **every**
subscriber has received **every** wave — so the events/s numbers are
sustained fan-out delivery, not enqueue rates.

Per subscriber-count row it records:

* ``fanout_eps`` — notifications delivered to clients per second
  (S x waves / wall time from the first write to the last delivery);
* ``write_eps``  — write events accepted through the gateway over the
  same wall clock (each wave writes every node once);
* write→notify latency percentiles from the metrics plane's
  ``write_notify_latency`` summary (the same trace the serve-scaling
  bench reports) — the *server-side* delivery delay under fan-out load;
* per-subscriber stamp contiguity (a silent gap or duplicate fails the
  bench, it is never averaged away).

Results append to ``BENCH_gateway.json`` at the repo root so CI
accumulates the trajectory.  ``--smoke`` shrinks the grid and asserts
the acceptance floors: every note delivered gap-free, latency samples
actually recorded, and throughput non-degenerate.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

try:
    from benchmarks._common import emit_table
except ImportError:  # script mode
    sys.path.insert(0, os.path.dirname(__file__))
    from _common import emit_table

from repro.core.aggregates import Sum
from repro.core.query import EgoQuery
from repro.core.windows import TupleWindow
from repro.graph.generators import random_graph
from repro.serve import EAGrClient, EAGrServer, GatewayServer

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_gateway.json")

STREAMS_PER_CONN = 10
GRAPH_NODES = 200
GRAPH_EDGES = 1200


def bench_fanout(subscribers: int, waves: int, graph, notifiable):
    query = EgoQuery(aggregate=Sum(), window=TupleWindow(1))
    server = EAGrServer(
        graph, query, num_shards=2, executor="inprocess",
        overlay_algorithm="vnm_a", journal_capacity=50_000,
    )
    gateway = GatewayServer(server, max_inflight_bytes=1 << 22)
    host, port = gateway.start()
    nodes = list(graph.nodes())
    clients = []
    streams = []
    try:
        for c in range(math.ceil(subscribers / STREAMS_PER_CONN)):
            client = EAGrClient(host, port, client_id=f"bench-conn{c}")
            clients.append(client)
            for j in range(STREAMS_PER_CONN):
                i = c * STREAMS_PER_CONN + j
                if i >= subscribers:
                    break
                streams.append(
                    client.subscribe(
                        [notifiable[i % len(notifiable)]],
                        subscriber=f"bench-sub{i}",
                    )
                )
        writer = EAGrClient(host, port, client_id="bench-writer")
        clients.append(writer)

        started = time.perf_counter()
        value = 0.0
        for _ in range(waves):
            value += 1.0
            writer.write_batch([(n, value, value) for n in nodes])
        # The clock runs until the *slowest* subscriber holds the last
        # wave: this is delivery throughput, not write acceptance.
        deadline = started + 120.0
        for stream in streams:
            got = 0
            while got < waves:
                note = stream.get(timeout=max(0.0, deadline - time.perf_counter()))
                if note is None:
                    raise AssertionError(
                        f"{stream.subscriber}: {got}/{waves} waves in 120s"
                    )
                if note.stamp != got + 1:
                    raise AssertionError(
                        f"{stream.subscriber}: stamp {note.stamp} after {got}"
                    )
                got = note.stamp
        elapsed = time.perf_counter() - started

        stats = server.server_stats()
        lat = stats.get("write_notify_latency", {})
        notes = subscribers * waves
        return {
            "subscribers": subscribers,
            "connections": len(clients),
            "waves": waves,
            "notes_delivered": notes,
            "fanout_eps": round(notes / elapsed) if elapsed else 0,
            "write_eps": round(waves * len(nodes) / elapsed) if elapsed else 0,
            "wall_seconds": round(elapsed, 3),
            "write_notify_p50_ms": round(lat.get("p50", 0.0) * 1e3, 3),
            "write_notify_p95_ms": round(lat.get("p95", 0.0) * 1e3, 3),
            "write_notify_p99_ms": round(lat.get("p99", 0.0) * 1e3, 3),
            "write_notify_samples": int(lat.get("count", 0)),
        }
    finally:
        for client in clients:
            try:
                client.close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        gateway.close()
        server.close()


def run_bench(subscriber_counts, waves: int):
    graph = random_graph(GRAPH_NODES, GRAPH_EDGES, seed=13)
    # Edges are directed: an ego with no in-edges never changes, so a
    # stream watching one would (correctly) receive nothing, forever.
    notifiable = [n for n in graph.nodes() if graph.in_degree(n) > 0]
    results = []
    for subscribers in subscriber_counts:
        results.append(bench_fanout(subscribers, waves, graph, notifiable))
    emit_table(
        "gateway_fanout",
        f"Gateway fan-out over TCP [SUM, vnm_a, {GRAPH_NODES} nodes, "
        f"{waves} waves, {STREAMS_PER_CONN} streams/conn]",
        ["subs", "conns", "notes/s", "writes/s", "p50 ms", "p99 ms"],
        [
            [
                row["subscribers"],
                row["connections"],
                f"{row['fanout_eps']:,}",
                f"{row['write_eps']:,}",
                row["write_notify_p50_ms"],
                row["write_notify_p99_ms"],
            ]
            for row in results
        ],
    )
    return results


def persist(results, waves: int) -> None:
    history = []
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH) as handle:
                history = json.load(handle)
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(
        {
            "bench": "gateway_fanout",
            "timestamp": time.time(),
            "waves": waves,
            "graph_nodes": GRAPH_NODES,
            "graph_edges": GRAPH_EDGES,
            "streams_per_conn": STREAMS_PER_CONN,
            "cpus": os.cpu_count(),
            "results": results,
        }
    )
    with open(JSON_PATH, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def main(argv):
    smoke = "--smoke" in argv
    subscriber_counts = (20,) if smoke else (50, 200, 500)
    waves = 3 if smoke else 10
    results = run_bench(subscriber_counts, waves)
    persist(results, waves)
    top = results[-1]
    print(
        f"gateway fan-out x{top['subscribers']} subs "
        f"({top['connections']} conns): {top['fanout_eps']:,} notes/s, "
        f"{top['write_eps']:,} writes/s, "
        f"write→notify p99 {top['write_notify_p99_ms']} ms; "
        f"JSON -> {JSON_PATH}"
    )
    if smoke:
        # CI tripwires: contiguity already failed hard above if violated;
        # here only guard that the bench measured something real.
        assert top["notes_delivered"] == top["subscribers"] * waves
        assert top["fanout_eps"] > 0, "no sustained delivery measured"
        assert top["write_notify_samples"] > 0, (
            "no write→notify latency samples recorded — the delivery "
            "trace is not wired through the gateway path"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
