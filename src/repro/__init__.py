"""repro — a from-scratch reproduction of EAGr (Mondal & Deshpande, SIGMOD 2014).

EAGr supports large numbers of continuous ego-centric aggregate queries over
large dynamic graphs through a pre-compiled *aggregation overlay graph* that
shares partial aggregates across queries, annotated with optimal push/pull
pre-computation decisions.

Quickstart::

    from repro import DynamicGraph, EgoQuery, EAGrEngine, Sum, TupleWindow, Neighborhood

    g = DynamicGraph()
    g.add_edge("alice", "bob")      # alice's writes feed bob's ego network
    g.add_edge("carol", "bob")
    query = EgoQuery(aggregate=Sum(), window=TupleWindow(1),
                     neighborhood=Neighborhood.in_neighbors())
    engine = EAGrEngine(g, query, overlay_algorithm="vnm_a")
    engine.write("alice", 3.0)
    engine.write("carol", 4.0)
    assert engine.read("bob") == 7.0
"""

from repro.core import (
    AdaptiveConfig,
    AdaptiveController,
    AggregateFunction,
    Count,
    CountDistinct,
    Decision,
    DistinctSet,
    EAGrEngine,
    EgoQuery,
    Max,
    Mean,
    Min,
    NodeKind,
    Overlay,
    QueryMode,
    Runtime,
    SimulatedExecutor,
    Sum,
    ThreadedEngine,
    TimeWindow,
    TopK,
    TupleWindow,
    UserDefinedAggregate,
    get_aggregate,
)
from repro.dataflow import (
    CostModel,
    FrequencyModel,
    decide_dataflow,
    greedy_dataflow,
    split_nodes,
)
from repro.graph import (
    BipartiteGraph,
    DynamicGraph,
    Neighborhood,
    ReadEvent,
    StreamPlayer,
    StructureEvent,
    StructureOp,
    WriteEvent,
    build_bipartite,
)
from repro.overlay import OverlayMaintainer, construct_overlay, summarize

__version__ = "1.0.0"

__all__ = [
    "AdaptiveConfig",
    "AdaptiveController",
    "AggregateFunction",
    "Count",
    "CountDistinct",
    "Decision",
    "DistinctSet",
    "EAGrEngine",
    "EgoQuery",
    "Max",
    "Mean",
    "Min",
    "NodeKind",
    "Overlay",
    "QueryMode",
    "Runtime",
    "SimulatedExecutor",
    "Sum",
    "ThreadedEngine",
    "TimeWindow",
    "TopK",
    "TupleWindow",
    "UserDefinedAggregate",
    "get_aggregate",
    "CostModel",
    "FrequencyModel",
    "decide_dataflow",
    "greedy_dataflow",
    "split_nodes",
    "BipartiteGraph",
    "DynamicGraph",
    "Neighborhood",
    "ReadEvent",
    "StreamPlayer",
    "StructureEvent",
    "StructureOp",
    "WriteEvent",
    "build_bipartite",
    "OverlayMaintainer",
    "construct_overlay",
    "summarize",
    "__version__",
]
