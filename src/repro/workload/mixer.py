"""Read/write workload synthesis.

The evaluation's central knob is the **write:read ratio** (Figures 12(b),
13, 14): a workload of ``n`` events where the fraction ``ratio/(1+ratio)``
are writes, targets drawn from (independently seeded) Zipf samplers so the
paper's "read frequency linear in write frequency" assumption holds, and
write values drawn from a small vocabulary so TOP-K has meaningful
frequencies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence

from repro.graph.streams import ReadEvent, WriteEvent
from repro.workload.zipf import ZipfSampler

NodeId = Hashable
Event = object


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a mixed read/write workload."""

    num_events: int = 10_000
    write_read_ratio: float = 1.0
    alpha: float = 1.0
    value_vocabulary: int = 20
    seed: int = 42

    @property
    def write_fraction(self) -> float:
        return self.write_read_ratio / (1.0 + self.write_read_ratio)


def generate_events(
    nodes: Sequence[NodeId],
    spec: Optional[WorkloadSpec] = None,
    value_factory: Optional[Callable[[random.Random], object]] = None,
    **overrides,
) -> List[Event]:
    """Produce a timestamp-ordered list of interleaved read/write events.

    Targets follow a Zipf law over ``nodes`` with the same rank permutation
    for reads and writes — a node popular to write is equally popular to
    read, the paper's linearity assumption.  Deterministic given the spec's
    seed.
    """
    if spec is None:
        spec = WorkloadSpec(**overrides)
    elif overrides:
        raise TypeError("pass either a spec or keyword overrides, not both")
    rng = random.Random(spec.seed)
    sampler = ZipfSampler(nodes, alpha=spec.alpha, seed=spec.seed + 1)
    if value_factory is None:
        vocabulary = spec.value_vocabulary

        def value_factory(r: random.Random) -> object:
            return float(r.randrange(vocabulary))

    events: List[Event] = []
    write_fraction = spec.write_fraction
    for tick in range(spec.num_events):
        node = sampler.sample()
        timestamp = float(tick + 1)
        if rng.random() < write_fraction:
            events.append(WriteEvent(node=node, value=value_factory(rng), timestamp=timestamp))
        else:
            events.append(ReadEvent(node=node, timestamp=timestamp))
    return events


def warmup_writes(
    nodes: Sequence[NodeId],
    per_node: int = 1,
    value_vocabulary: int = 20,
    seed: int = 7,
) -> List[Event]:
    """One (or more) initial write(s) per node so every window is non-empty."""
    rng = random.Random(seed)
    events: List[Event] = []
    tick = 0
    for _ in range(per_node):
        for node in nodes:
            tick += 1
            events.append(
                WriteEvent(
                    node=node,
                    value=float(rng.randrange(value_vocabulary)),
                    timestamp=float(-per_node * len(nodes) + tick),
                )
            )
    return events
