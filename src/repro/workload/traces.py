"""Synthetic activity traces with workload drift.

The paper drives its adaptive-dataflow experiment (Figure 13(a)) with the
EPA-HTTP packet trace, splitting trace IP activity over graph nodes and then
*changing* the read frequencies of a node subset halfway through, so the
statically-decided dataflow goes stale.  The real traces are unavailable
offline; :func:`drifting_trace` synthesizes the property that experiment
actually needs — Zipf-skewed, bursty activity whose read/write mix inverts
for a target node subset at a configurable switch point.  The latency
experiment (Figure 13(c)) reuses the same generator without drift.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.graph.streams import ReadEvent, WriteEvent
from repro.workload.zipf import ZipfSampler

NodeId = Hashable
Event = object


@dataclass(frozen=True)
class DriftSpec:
    """Parameters for a two-phase drifting trace."""

    num_events: int = 20_000
    #: Fraction of the trace after which the drift kicks in.
    switch_point: float = 0.5
    #: Fraction of nodes whose behaviour inverts at the switch.
    drifting_fraction: float = 0.2
    #: Phase-1 write:read ratio for every node.
    base_write_read_ratio: float = 1.0
    #: Phase-2 write:read ratio for the *drifting* nodes (others keep base).
    drifted_write_read_ratio: float = 0.1
    alpha: float = 1.0
    value_vocabulary: int = 20
    burst_length: int = 4
    seed: int = 99


def drifting_trace(
    nodes: Sequence[NodeId], spec: Optional[DriftSpec] = None, **overrides
) -> Tuple[List[Event], List[NodeId]]:
    """Generate a bursty two-phase trace; returns ``(events, drifting_nodes)``.

    In phase 1 every node follows ``base_write_read_ratio``.  At the switch
    point, the drifting subset (chosen among the *most active* nodes, where
    the change hurts most — mirroring the paper's "nodes with the highest
    read latencies") flips to ``drifted_write_read_ratio``.  Bursts model
    packet-trace clumpiness: each sampled node emits a short run of events.
    """
    if spec is None:
        spec = DriftSpec(**overrides)
    elif overrides:
        raise TypeError("pass either a spec or keyword overrides, not both")
    rng = random.Random(spec.seed)
    sampler = ZipfSampler(nodes, alpha=spec.alpha, seed=spec.seed + 1)

    expected = sampler.expected_frequencies(float(spec.num_events))
    by_activity = sorted(expected, key=lambda n: (-expected[n], repr(n)))
    num_drifting = max(1, int(len(nodes) * spec.drifting_fraction))
    drifting = by_activity[:num_drifting]
    drifting_set = set(drifting)

    switch_at = int(spec.num_events * spec.switch_point)
    events: List[Event] = []
    tick = 0
    while len(events) < spec.num_events:
        node = sampler.sample()
        burst = rng.randrange(1, spec.burst_length + 1)
        for _ in range(burst):
            if len(events) >= spec.num_events:
                break
            tick += 1
            phase2 = len(events) >= switch_at
            if phase2 and node in drifting_set:
                ratio = spec.drifted_write_read_ratio
            else:
                ratio = spec.base_write_read_ratio
            write_fraction = ratio / (1.0 + ratio)
            if rng.random() < write_fraction:
                events.append(
                    WriteEvent(
                        node=node,
                        value=float(rng.randrange(spec.value_vocabulary)),
                        timestamp=float(tick),
                    )
                )
            else:
                events.append(ReadEvent(node=node, timestamp=float(tick)))
    return events, drifting


def phase_frequencies(
    events: Sequence[Event], num_phases: int = 2
) -> List[Tuple[dict, dict]]:
    """Split a trace into phases and count (read, write) frequencies in each.

    Useful for feeding phase-1 statistics to the static decision procedure
    (the paper uses "average read/write frequencies ... to make static
    dataflow decisions").
    """
    if num_phases < 1:
        raise ValueError("num_phases must be >= 1")
    size = max(1, len(events) // num_phases)
    result: List[Tuple[dict, dict]] = []
    for phase in range(num_phases):
        chunk = events[phase * size : (phase + 1) * size if phase < num_phases - 1 else len(events)]
        reads: dict = {}
        writes: dict = {}
        for event in chunk:
            if isinstance(event, WriteEvent):
                writes[event.node] = writes.get(event.node, 0.0) + 1.0
            elif isinstance(event, ReadEvent):
                reads[event.node] = reads.get(event.node, 0.0) + 1.0
        result.append((reads, writes))
    return result
