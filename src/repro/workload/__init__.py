"""Workload generation: Zipf samplers, read/write mixers, drifting traces."""

from repro.workload.mixer import WorkloadSpec, generate_events, warmup_writes
from repro.workload.traces import DriftSpec, drifting_trace, phase_frequencies
from repro.workload.zipf import ZipfDriftSampler, ZipfSampler

__all__ = [
    "WorkloadSpec",
    "generate_events",
    "warmup_writes",
    "DriftSpec",
    "drifting_trace",
    "phase_frequencies",
    "ZipfSampler",
    "ZipfDriftSampler",
]
