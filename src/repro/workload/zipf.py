"""Zipfian activity distributions (paper Section 5.1).

User activity in the paper's target domains (tweets, page views) follows a
Zipf law, and — lacking public read/write traces — the paper generates
per-node activity synthetically from a Zipfian distribution with read
frequency linear in write frequency.  This module provides that generator,
deterministic under a seed, with the rank→node assignment shuffled so graph
structure and activity skew are independent.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Hashable, List, Sequence

NodeId = Hashable


class ZipfSampler:
    """Samples nodes with probability proportional to ``1 / rank^alpha``."""

    def __init__(self, nodes: Sequence[NodeId], alpha: float = 1.0, seed: int = 23) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.nodes: List[NodeId] = list(nodes)
        self.alpha = alpha
        self._rng = random.Random(seed)
        ranks = list(range(1, len(self.nodes) + 1))
        self._rng.shuffle(ranks)
        weights = [1.0 / (rank ** alpha) for rank in ranks]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def weight(self, index: int) -> float:
        prev = self._cumulative[index - 1] if index else 0.0
        return self._cumulative[index] - prev

    def sample(self) -> NodeId:
        probe = self._rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, probe)
        index = min(index, len(self.nodes) - 1)
        return self.nodes[index]

    def sample_many(self, count: int) -> List[NodeId]:
        return [self.sample() for _ in range(count)]

    def expected_frequencies(self, total_events: float) -> dict:
        """Exact expected per-node event counts (for decision inputs)."""
        return {
            node: total_events * self.weight(index) / self._total
            for index, node in enumerate(self.nodes)
        }
