"""Zipfian activity distributions (paper Section 5.1).

User activity in the paper's target domains (tweets, page views) follows a
Zipf law, and — lacking public read/write traces — the paper generates
per-node activity synthetically from a Zipfian distribution with read
frequency linear in write frequency.  This module provides that generator,
deterministic under a seed, with the rank→node assignment shuffled so graph
structure and activity skew are independent.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Hashable, List, Sequence

NodeId = Hashable


class ZipfSampler:
    """Samples nodes with probability proportional to ``1 / rank^alpha``."""

    def __init__(self, nodes: Sequence[NodeId], alpha: float = 1.0, seed: int = 23) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.nodes: List[NodeId] = list(nodes)
        self.alpha = alpha
        self._rng = random.Random(seed)
        ranks = list(range(1, len(self.nodes) + 1))
        self._rng.shuffle(ranks)
        weights = [1.0 / (rank ** alpha) for rank in ranks]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def weight(self, index: int) -> float:
        prev = self._cumulative[index - 1] if index else 0.0
        return self._cumulative[index] - prev

    def sample(self) -> NodeId:
        probe = self._rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, probe)
        index = min(index, len(self.nodes) - 1)
        return self.nodes[index]

    def sample_many(self, count: int) -> List[NodeId]:
        return [self.sample() for _ in range(count)]

    def expected_frequencies(self, total_events: float) -> dict:
        """Exact expected per-node event counts (for decision inputs)."""
        return {
            node: total_events * self.weight(index) / self._total
            for index, node in enumerate(self.nodes)
        }


class ZipfDriftSampler:
    """A Zipf sampler whose hot rank→node mapping migrates mid-run.

    The static :class:`ZipfSampler` fixes which nodes are hot for the
    whole trace; real feeds do not — trending entities churn, and a
    partition tuned to yesterday's hot set slowly rots.  This sampler
    keeps the Zipf *shape* fixed (weight ``1/rank^alpha`` over rank
    positions) but re-maps ranks to nodes every ``period`` events:

    * ``schedule="rotate"`` — the rank permutation shifts by ``stride``
      positions per phase, so the hot set *slides* across the node
      population (gradual drift; yesterday's #1 is today's #1+stride).
    * ``schedule="step"`` — each phase draws a fresh seeded shuffle, so
      the hot set *jumps* to an unrelated part of the graph (abrupt
      drift; the worst case for a stale partition).

    Everything is a pure function of ``(seed, event_index)``: two
    samplers with the same parameters produce the same trace, and
    :meth:`expected_frequencies` / :meth:`hot_nodes` answer questions
    about any phase without consuming the stream — what the rebalance
    policy and the reshard bench both need.
    """

    def __init__(
        self,
        nodes: Sequence[NodeId],
        alpha: float = 1.0,
        seed: int = 23,
        period: int = 1000,
        schedule: str = "rotate",
        stride: int | None = None,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if period < 1:
            raise ValueError("period must be >= 1")
        if schedule not in ("rotate", "step"):
            raise ValueError("schedule must be 'rotate' or 'step'")
        self.nodes = list(nodes)
        self.alpha = alpha
        self.seed = seed
        self.period = period
        self.schedule = schedule
        n = len(self.nodes)
        self.stride = max(1, n // 4) if stride is None else max(1, stride % n or 1)
        self._rng = random.Random(seed)
        self._events = 0
        # rank position j (0-based) carries weight 1/(j+1)^alpha; the
        # per-phase permutation maps rank position -> node index.
        weights = [1.0 / ((j + 1) ** alpha) for j in range(n)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]
        base = list(range(n))
        random.Random(f"{seed}:base").shuffle(base)
        self._base_perm = base
        self._phase_perm_cache: dict = {}

    @property
    def phase(self) -> int:
        """Phase of the *next* event to be sampled."""
        return self._events // self.period

    def _perm(self, phase: int) -> List[int]:
        perm = self._phase_perm_cache.get(phase)
        if perm is None:
            n = len(self.nodes)
            if self.schedule == "rotate":
                shift = (phase * self.stride) % n
                perm = self._base_perm[shift:] + self._base_perm[:shift]
            else:
                perm = list(self._base_perm)
                random.Random(f"{self.seed}:step:{phase}").shuffle(perm)
            self._phase_perm_cache = {phase: perm}
        return perm

    def sample(self) -> NodeId:
        perm = self._perm(self._events // self.period)
        self._events += 1
        probe = self._rng.random() * self._total
        rank = bisect.bisect_left(self._cumulative, probe)
        rank = min(rank, len(self.nodes) - 1)
        return self.nodes[perm[rank]]

    def sample_many(self, count: int) -> List[NodeId]:
        return [self.sample() for _ in range(count)]

    def hot_nodes(self, k: int, phase: int | None = None) -> List[NodeId]:
        """The ``k`` highest-weight nodes of ``phase`` (default: current)."""
        perm = self._perm(self.phase if phase is None else phase)
        return [self.nodes[perm[j]] for j in range(min(k, len(self.nodes)))]

    def expected_frequencies(self, total_events: float, phase: int | None = None) -> dict:
        """Expected per-node event counts within a single phase."""
        perm = self._perm(self.phase if phase is None else phase)
        freq = {}
        prev = 0.0
        for j, cum in enumerate(self._cumulative):
            freq[self.nodes[perm[j]]] = total_events * (cum - prev) / self._total
            prev = cum
        return freq
