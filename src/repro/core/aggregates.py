"""Aggregate functions and the partial-aggregate-object (PAO) API.

EAGr treats the aggregate function ``F`` as a black box implementing the
standard user-defined-aggregate API (paper Section 2.2.3):

* ``INITIALIZE`` — create an empty PAO (:meth:`AggregateFunction.identity`),
* ``UPDATE`` — incorporate the change of one input from an old PAO to a new
  one (realized here through the delta / fast-update protocols below),
* ``FINALIZE`` — produce the user-facing answer from a PAO,
* ``MERGE`` — combine two PAOs (required by EAGr to share partial
  aggregates across overlay nodes; optional in most UDA APIs).

Two optional properties drive overlay optimizations (Section 3.1):

* ``duplicate_insensitive`` (MAX, MIN, set-UNIQUE): the overlay may contain
  multiple writer→reader paths (:class:`~repro.overlay.vnm` ``VNM_D``);
* ``subtractable`` (SUM, COUNT, AVG, TOP-K): a PAO's contribution can be
  removed efficiently, enabling *negative edges* (``VNM_N``) and O(1)
  sliding-window eviction.

Implementation note — incremental execution families
-----------------------------------------------------
The execution engine (:mod:`repro.core.execution`) uses two propagation
strategies, chosen by ``subtractable``:

* **group aggregates** (subtractable): updates travel through the overlay as
  small *delta* PAOs (e.g. ``+3.0`` for SUM, ``{"x": +1, "y": -1}`` for
  TOP-K).  Applying a delta costs O(|delta|) regardless of fan-in, which is
  the paper's ``H(k) ∝ 1`` regime.
* **lattice aggregates** (MAX/MIN/set-UNIQUE): no deltas exist; updates
  travel as ``(old, new)`` value pairs and each push node keeps its inputs'
  last values, using :meth:`AggregateFunction.fast_update` when possible and
  recomputing otherwise (the paper's priority-queue ``H(k) ∝ log k``
  treatment, realized here as amortized fast-path + occasional O(k) rebuild).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Sentinel returned by :meth:`AggregateFunction.fast_update` when an O(1)
#: update is impossible and the caller must recompute from all inputs.
NEED_RECOMPUTE = object()

PAO = Any
Raw = Any


class AggregateError(Exception):
    """Raised on misuse of the aggregate API (e.g. subtracting a MAX)."""


# -- column pack/unpack kernels ---------------------------------------------
# Module-level named functions (not lambdas) so ColumnSpec instances — and
# everything holding one, e.g. a ColumnarStore travelling to a shard worker
# process — survive pickling.


def _pack_identity(pao: PAO) -> Tuple[Any, ...]:
    return (pao,)


def _unpack_identity(cols: Tuple[Any, ...]) -> PAO:
    return cols[0]


def _pack_float(pao: PAO) -> Tuple[float]:
    return (float(pao),)


def _unpack_float(cols: Tuple[Any, ...]) -> float:
    return float(cols[0])


def _pack_int(pao: PAO) -> Tuple[int]:
    return (int(pao),)


def _unpack_int(cols: Tuple[Any, ...]) -> int:
    return int(cols[0])


def _pack_float_int(pao: PAO) -> Tuple[float, int]:
    return (float(pao[0]), int(pao[1]))


def _unpack_float_int(cols: Tuple[Any, ...]) -> Tuple[float, int]:
    return (float(cols[0]), int(cols[1]))


def _pack_optional_float(pao: PAO) -> Tuple[float]:
    return (float("nan") if pao is None else float(pao),)


def _unpack_optional_float(cols: Tuple[Any, ...]) -> Optional[float]:
    # nan != nan encodes the lattice identity (empty window) as None.
    return None if cols[0] != cols[0] else float(cols[0])


@dataclass(frozen=True)
class ColumnSpec:
    """Declarative columnar layout of a PAO for the columnar value store.

    An aggregate that publishes a ``column_spec`` states that its PAOs are
    (tuples of) machine scalars, so the state layer may keep them in dense
    numpy arrays — one column per field — and the batched execution kernels
    may apply whole batches with ``np.add.at`` scatters and vectorized
    segment reductions instead of per-PAO Python calls.

    Fields
    ------
    dtypes / fills:
        Per-column numpy dtype name and identity fill value.  A freshly
        allocated column holds the aggregate's identity in every slot
        (``nan`` encodes the lattice identity ``None``).
    kind:
        ``"delta"`` — PAOs form a group under ``+`` (merge is columnwise
        addition, subtract is columnwise subtraction); propagation can be
        coalesced into signed additive scatters.  ``"lattice"`` — merge is
        an extremum ufunc; no subtraction exists.
    merge_ufunc:
        Name of the numpy ufunc realizing columnwise merge (``"add"``,
        ``"maximum"``, ``"minimum"``).  For ``delta`` specs the subtract
        kernel is derived by negating the operand.
    sources:
        ``delta`` only: what each column accumulates per raw stream value —
        ``"value"`` (``float(raw)``, as :meth:`AggregateFunction.lift`
        would) or ``"count"`` (``1`` per raw).  This is what lets a batched
        writer step fold a whole added/evicted run into per-column deltas
        without constructing intermediate PAOs.
    scalar_raws:
        True when every raw stream value this aggregate accepts is itself a
        number, so per-writer window buffers may store raws in numpy ring
        buffers (COUNT accepts arbitrary payloads and must keep object
        buffers).
    pack / unpack:
        Convert one PAO to/from its tuple of column scalars.  ``unpack``
        must return genuine Python scalars so reads are byte-identical to
        the object backend.
    """

    dtypes: Tuple[str, ...]
    fills: Tuple[Any, ...]
    kind: str  # "delta" | "lattice"
    merge_ufunc: str  # "add" | "maximum" | "minimum"
    sources: Optional[Tuple[str, ...]] = None
    scalar_raws: bool = True
    pack: Callable[[PAO], Tuple[Any, ...]] = _pack_identity
    unpack: Callable[[Tuple[Any, ...]], PAO] = _unpack_identity

    def __post_init__(self) -> None:
        if self.kind not in ("delta", "lattice"):
            raise ValueError("column spec kind must be 'delta' or 'lattice'")
        if len(self.dtypes) != len(self.fills):
            raise ValueError("dtypes and fills must align")
        if self.kind == "delta":
            if self.sources is None or len(self.sources) != len(self.dtypes):
                raise ValueError("delta specs must give one source per column")
            if any(source not in ("value", "count") for source in self.sources):
                raise ValueError("column sources must be 'value' or 'count'")

    @property
    def num_columns(self) -> int:
        return len(self.dtypes)


class AggregateFunction(ABC):
    """Base class for EAGr aggregate functions.

    Subclasses must provide :meth:`identity`, :meth:`lift`, :meth:`merge`
    and :meth:`finalize`; ``subtractable`` subclasses must also provide
    :meth:`subtract`.  PAOs are treated as immutable values by the engine —
    ``merge``/``subtract`` must not mutate their arguments.
    """

    #: Human-readable name, also the registry key.
    name: str = "abstract"
    #: MAX-like: tolerant of the same writer contributing via multiple paths.
    duplicate_insensitive: bool = False
    #: SUM-like: supports efficient removal of a contribution.
    subtractable: bool = False
    #: PAOs and deltas are plain numbers with ``merge == +`` and
    #: ``negate == -`` (SUM, COUNT): enables the compiled push plans'
    #: scalar kernel (``values[dst] += sign * delta``).
    scalar_delta: bool = False
    #: Declarative columnar layout (:class:`ColumnSpec`) enabling the dense
    #: numpy value store and vectorized batch kernels; ``None`` means PAOs
    #: are opaque objects and the state layer keeps them in the object store.
    column_spec: Optional[ColumnSpec] = None

    # -- core PAO algebra ------------------------------------------------

    @abstractmethod
    def identity(self) -> PAO:
        """The PAO of an empty input set (paper: INITIALIZE)."""

    @abstractmethod
    def lift(self, raw: Raw) -> PAO:
        """The PAO of a single raw stream value."""

    @abstractmethod
    def merge(self, a: PAO, b: PAO) -> PAO:
        """Combine two PAOs (pure; associative and commutative)."""

    @abstractmethod
    def finalize(self, pao: PAO) -> Any:
        """Produce the user-facing result from a PAO (paper: FINALIZE)."""

    def subtract(self, a: PAO, b: PAO) -> PAO:
        """Remove ``b``'s contribution from ``a`` (subtractable only)."""
        raise AggregateError(f"{self.name} does not support subtraction")

    # -- derived helpers ---------------------------------------------------

    def combine(self, paos: Iterable[PAO]) -> PAO:
        """Fold :meth:`merge` over ``paos`` starting from :meth:`identity`."""
        acc = self.identity()
        for pao in paos:
            acc = self.merge(acc, pao)
        return acc

    def combine_raw(self, raws: Iterable[Raw]) -> PAO:
        """Aggregate raw values directly (brute-force evaluation path)."""
        return self.combine(self.lift(raw) for raw in raws)

    def negate(self, pao: PAO) -> PAO:
        """The inverse element: ``merge(x, negate(x)) == identity``."""
        return self.subtract(self.identity(), pao)

    def delta(self, old: PAO, new: PAO) -> PAO:
        """The delta PAO ``d`` with ``merge(old, d) == new`` (group only)."""
        return self.subtract(new, old)

    def fast_update(self, current: PAO, old: PAO, new: PAO) -> PAO:
        """O(1) update of ``current`` when input changes ``old`` → ``new``.

        Lattice aggregates override this; returning :data:`NEED_RECOMPUTE`
        tells the engine to rebuild the PAO from all stored inputs.
        """
        return NEED_RECOMPUTE

    # -- cost model hints (Section 4.2) -----------------------------------

    def default_push_cost(self, k: int) -> float:
        """``H(k)``: average cost of one incremental (push) update."""
        return 1.0

    def default_pull_cost(self, k: int) -> float:
        """``L(k)``: average cost of one on-demand (pull) evaluation."""
        return float(max(k, 1))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------------
# Group (subtractable) aggregates
# ---------------------------------------------------------------------------


class Sum(AggregateFunction):
    """SUM over the window contents of the neighborhood's writers."""

    name = "sum"
    subtractable = True
    scalar_delta = True
    column_spec = ColumnSpec(
        dtypes=("float64",),
        fills=(0.0,),
        kind="delta",
        merge_ufunc="add",
        sources=("value",),
        pack=_pack_float,
        unpack=_unpack_float,
    )

    def identity(self) -> float:
        return 0.0

    def lift(self, raw: Raw) -> float:
        return float(raw)

    def merge(self, a: float, b: float) -> float:
        return a + b

    def subtract(self, a: float, b: float) -> float:
        return a - b

    def finalize(self, pao: float) -> float:
        return pao


class Count(AggregateFunction):
    """COUNT of window entries across the neighborhood (event volume)."""

    name = "count"
    subtractable = True
    scalar_delta = True
    # COUNT accepts arbitrary payloads (only their number matters), so raws
    # must stay in object window buffers: scalar_raws=False.
    column_spec = ColumnSpec(
        dtypes=("int64",),
        fills=(0,),
        kind="delta",
        merge_ufunc="add",
        sources=("count",),
        scalar_raws=False,
        pack=_pack_int,
        unpack=_unpack_int,
    )

    def identity(self) -> int:
        return 0

    def lift(self, raw: Raw) -> int:
        return 1

    def merge(self, a: int, b: int) -> int:
        return a + b

    def subtract(self, a: int, b: int) -> int:
        return a - b

    def finalize(self, pao: int) -> int:
        return pao


class Mean(AggregateFunction):
    """Arithmetic mean; PAO is the algebraic pair ``(sum, count)``.

    As a group (subtractable) aggregate MEAN never takes the lattice
    propagation path, so the inherited :meth:`AggregateFunction.fast_update`
    (which would return :data:`NEED_RECOMPUTE`) is unreachable from compiled
    plans; its batched fast path is instead the two-column spec below, which
    lets the columnar kernel carry ``(Δsum, Δcount)`` through one pair of
    additive scatters.
    """

    name = "mean"
    subtractable = True
    column_spec = ColumnSpec(
        dtypes=("float64", "int64"),
        fills=(0.0, 0),
        kind="delta",
        merge_ufunc="add",
        sources=("value", "count"),
        pack=_pack_float_int,
        unpack=_unpack_float_int,
    )

    def identity(self) -> Tuple[float, int]:
        return (0.0, 0)

    def lift(self, raw: Raw) -> Tuple[float, int]:
        return (float(raw), 1)

    def merge(self, a: Tuple[float, int], b: Tuple[float, int]) -> Tuple[float, int]:
        return (a[0] + b[0], a[1] + b[1])

    def subtract(self, a: Tuple[float, int], b: Tuple[float, int]) -> Tuple[float, int]:
        return (a[0] - b[0], a[1] - b[1])

    def finalize(self, pao: Tuple[float, int]) -> Optional[float]:
        total, count = pao
        return total / count if count else None


class TopK(AggregateFunction):
    """TOP-K: the ``k`` most frequent values in the neighborhood's windows.

    The paper's holistic aggregate (a generalization of *mode*, not of max).
    The PAO is a value→count table; counts may be transiently negative inside
    pull accumulation (a negative edge applied before its matching positive
    contribution) and cancel by the time a result is finalized.
    """

    name = "topk"
    subtractable = True

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def identity(self) -> Dict[Any, int]:
        return {}

    def lift(self, raw: Raw) -> Dict[Any, int]:
        return {raw: 1}

    def merge(self, a: Dict[Any, int], b: Dict[Any, int]) -> Dict[Any, int]:
        if len(a) < len(b):
            a, b = b, a
        out = dict(a)
        for value, count in b.items():
            total = out.get(value, 0) + count
            if total:
                out[value] = total
            else:
                out.pop(value, None)
        return out

    def subtract(self, a: Dict[Any, int], b: Dict[Any, int]) -> Dict[Any, int]:
        out = dict(a)
        for value, count in b.items():
            total = out.get(value, 0) - count
            if total:
                out[value] = total
            else:
                out.pop(value, None)
        return out

    def finalize(self, pao: Dict[Any, int]) -> List[Tuple[Any, int]]:
        positive = [(v, c) for v, c in pao.items() if c > 0]
        positive.sort(key=lambda item: (-item[1], repr(item[0])))
        return positive[: self.k]

    def default_push_cost(self, k: int) -> float:
        return 2.0  # hash-table delta application, independent of fan-in

    def default_pull_cost(self, k: int) -> float:
        return 4.0 * max(k, 1)  # merging k counter tables

    def __repr__(self) -> str:
        return f"TopK(k={self.k})"


class CountDistinct(AggregateFunction):
    """Exact distinct-value count, counter-backed so windows subtract cleanly."""

    name = "count_distinct"
    subtractable = True

    def identity(self) -> Dict[Any, int]:
        return {}

    def lift(self, raw: Raw) -> Dict[Any, int]:
        return {raw: 1}

    def merge(self, a: Dict[Any, int], b: Dict[Any, int]) -> Dict[Any, int]:
        if len(a) < len(b):
            a, b = b, a
        out = dict(a)
        for value, count in b.items():
            total = out.get(value, 0) + count
            if total:
                out[value] = total
            else:
                out.pop(value, None)
        return out

    def subtract(self, a: Dict[Any, int], b: Dict[Any, int]) -> Dict[Any, int]:
        out = dict(a)
        for value, count in b.items():
            total = out.get(value, 0) - count
            if total:
                out[value] = total
            else:
                out.pop(value, None)
        return out

    def finalize(self, pao: Dict[Any, int]) -> int:
        return sum(1 for count in pao.values() if count > 0)

    def default_push_cost(self, k: int) -> float:
        return 2.0

    def default_pull_cost(self, k: int) -> float:
        return 3.0 * max(k, 1)


# ---------------------------------------------------------------------------
# Lattice (duplicate-insensitive, non-subtractable) aggregates
# ---------------------------------------------------------------------------


class Max(AggregateFunction):
    """MAX; PAO is the extremum (``None`` for an empty window)."""

    name = "max"
    duplicate_insensitive = True
    # Lattice-scalar: one float column with nan encoding the empty extremum.
    column_spec = ColumnSpec(
        dtypes=("float64",),
        fills=(float("nan"),),
        kind="lattice",
        merge_ufunc="maximum",
        pack=_pack_optional_float,
        unpack=_unpack_optional_float,
    )

    def identity(self) -> Optional[float]:
        return None

    def lift(self, raw: Raw) -> float:
        return float(raw)

    def merge(self, a: Optional[float], b: Optional[float]) -> Optional[float]:
        if a is None:
            return b
        if b is None:
            return a
        return a if a >= b else b

    def finalize(self, pao: Optional[float]) -> Optional[float]:
        return pao

    def fast_update(self, current: PAO, old: PAO, new: PAO) -> PAO:
        grown = self.merge(current, new)
        if new is not None and (current is None or new >= current):
            return grown  # new value (weakly) dominates: it is the max
        if old is None or (current is not None and old < current):
            return current  # a non-maximal input changed: max unaffected
        return NEED_RECOMPUTE  # the maximal input shrank or vanished

    def default_push_cost(self, k: int) -> float:
        return math.log2(k) + 1.0 if k > 1 else 1.0

    def default_pull_cost(self, k: int) -> float:
        return float(max(k, 1))


class Min(AggregateFunction):
    """MIN; mirror image of :class:`Max`."""

    name = "min"
    duplicate_insensitive = True
    column_spec = ColumnSpec(
        dtypes=("float64",),
        fills=(float("nan"),),
        kind="lattice",
        merge_ufunc="minimum",
        pack=_pack_optional_float,
        unpack=_unpack_optional_float,
    )

    def identity(self) -> Optional[float]:
        return None

    def lift(self, raw: Raw) -> float:
        return float(raw)

    def merge(self, a: Optional[float], b: Optional[float]) -> Optional[float]:
        if a is None:
            return b
        if b is None:
            return a
        return a if a <= b else b

    def finalize(self, pao: Optional[float]) -> Optional[float]:
        return pao

    def fast_update(self, current: PAO, old: PAO, new: PAO) -> PAO:
        grown = self.merge(current, new)
        if new is not None and (current is None or new <= current):
            return grown
        if old is None or (current is not None and old > current):
            return current
        return NEED_RECOMPUTE

    def default_push_cost(self, k: int) -> float:
        return math.log2(k) + 1.0 if k > 1 else 1.0


class DistinctSet(AggregateFunction):
    """UNIQUE as a *set union* — duplicate-insensitive but not subtractable.

    The PAO is a frozenset of values seen in the neighborhood's windows.
    This is the variant the paper lists with MAX/MIN as duplicate-insensitive
    (the counter-backed :class:`CountDistinct` is the subtractable twin).
    """

    name = "distinct_set"
    duplicate_insensitive = True

    def identity(self) -> frozenset:
        return frozenset()

    def lift(self, raw: Raw) -> frozenset:
        return frozenset((raw,))

    def merge(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def finalize(self, pao: frozenset) -> frozenset:
        return pao

    def fast_update(self, current: PAO, old: PAO, new: PAO) -> PAO:
        if old <= new:  # inputs only grew: union grows monotonically
            return current | new
        return NEED_RECOMPUTE

    def default_push_cost(self, k: int) -> float:
        return 2.0

    def default_pull_cost(self, k: int) -> float:
        return 3.0 * max(k, 1)


# ---------------------------------------------------------------------------
# User-defined aggregates (paper Section 2.2.3)
# ---------------------------------------------------------------------------


class UserDefinedAggregate(AggregateFunction):
    """Adapter wrapping plain functions into the EAGr aggregate API.

    Mirrors the paper's API: the user supplies ``initialize`` (INITIALIZE),
    ``merge`` (the PAO-merge EAGr requires for sharing), ``finalize``
    (FINALIZE), and optionally ``lift``, ``subtract`` and cost functions.
    ``UPDATE(PAO, PAO_old, PAO_new)`` is derived: for subtractable
    aggregates as ``merge(subtract(PAO, PAO_old), PAO_new)``, otherwise by
    recomputation.
    """

    def __init__(
        self,
        name: str,
        initialize: Callable[[], PAO],
        merge: Callable[[PAO, PAO], PAO],
        finalize: Callable[[PAO], Any],
        lift: Optional[Callable[[Raw], PAO]] = None,
        subtract: Optional[Callable[[PAO, PAO], PAO]] = None,
        duplicate_insensitive: bool = False,
        push_cost: Optional[Callable[[int], float]] = None,
        pull_cost: Optional[Callable[[int], float]] = None,
    ) -> None:
        self.name = name
        self._initialize = initialize
        self._merge = merge
        self._finalize = finalize
        self._lift = lift
        self._subtract = subtract
        self.duplicate_insensitive = duplicate_insensitive
        self.subtractable = subtract is not None
        self._push_cost = push_cost
        self._pull_cost = pull_cost

    def identity(self) -> PAO:
        return self._initialize()

    def lift(self, raw: Raw) -> PAO:
        if self._lift is not None:
            return self._lift(raw)
        return self.merge(self.identity(), raw)

    def merge(self, a: PAO, b: PAO) -> PAO:
        return self._merge(a, b)

    def subtract(self, a: PAO, b: PAO) -> PAO:
        if self._subtract is None:
            raise AggregateError(f"{self.name} does not support subtraction")
        return self._subtract(a, b)

    def finalize(self, pao: PAO) -> Any:
        return self._finalize(pao)

    def default_push_cost(self, k: int) -> float:
        if self._push_cost is not None:
            return self._push_cost(k)
        return super().default_push_cost(k)

    def default_pull_cost(self, k: int) -> float:
        if self._pull_cost is not None:
            return self._pull_cost(k)
        return super().default_pull_cost(k)

    def __repr__(self) -> str:
        return f"UserDefinedAggregate({self.name!r})"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BUILTINS: Dict[str, Callable[[], AggregateFunction]] = {
    "sum": Sum,
    "count": Count,
    "mean": Mean,
    "avg": Mean,
    "max": Max,
    "min": Min,
    "topk": TopK,
    "top-k": TopK,
    "count_distinct": CountDistinct,
    "distinct_set": DistinctSet,
}


def get_aggregate(name: str, **kwargs) -> AggregateFunction:
    """Instantiate a built-in aggregate by name (``sum``, ``max``, ``topk``…)."""
    try:
        factory = _BUILTINS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown aggregate {name!r}; options: {sorted(set(_BUILTINS))}"
        ) from None
    return factory(**kwargs)
