"""Partitioned (multi-machine style) deployment — the paper's Conclusions.

"Our approach is also naturally parallelizable through use of standard
graph partitioning-based techniques.  The readers can be partitioned in a
disjoint fashion over a set of machines, and for each machine, an overlay
can be constructed for the readers assigned to that machine; the writes for
each writer would be sent to all the machines where they are needed."

:class:`PartitionedEngine` implements exactly that composition over
in-process shards (each shard is a full :class:`EAGrEngine` with its own
overlay): readers are hashed (or custom-assigned) to shards, each shard
compiles an overlay for its readers only, and a write is *multicast* to the
shards whose reader set needs that writer.  Reads route to the owning shard.

This keeps per-shard state fully independent — the single-machine engine's
correctness transfers shard-by-shard — and exposes the deployment's real
cost: the **write replication factor** (average number of shards a write
must reach), which the bench reports.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.core.engine import EAGrEngine
from repro.core.query import EgoQuery
from repro.graph.dynamic_graph import DynamicGraph

NodeId = Hashable


class PartitionedEngine:
    """EAGr sharded over K reader partitions.

    Parameters
    ----------
    graph / query:
        As for :class:`EAGrEngine`.
    num_shards:
        Number of shards (the paper's "machines").
    assign:
        Optional reader→shard assignment function; defaults to a stable
        hash.  Graph-partitioning-aware assignments (communities to the
        same shard) reduce the write replication factor.
    value_store:
        Aggregate-state backend for every shard (``auto`` / ``object`` /
        ``columnar``); shards resolve it independently but identically,
        so the deployment stays homogeneous.
    engine_kwargs:
        Forwarded to every shard's :class:`EAGrEngine` (overlay algorithm,
        dataflow mode, frequencies, ...).
    """

    def __init__(
        self,
        graph: DynamicGraph,
        query: EgoQuery,
        num_shards: int = 4,
        assign: Optional[Callable[[NodeId], int]] = None,
        value_store: str = "auto",
        **engine_kwargs: Any,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.graph = graph
        self.query = query
        self.num_shards = num_shards
        self.value_store = value_store
        self.reader_shard = partition_readers(graph, query, num_shards, assign)

        base_predicate = query.predicate
        self.shards: List[EAGrEngine] = []
        for shard_id in range(num_shards):
            shard_query = EgoQuery(
                aggregate=query.aggregate,
                window=query.window,
                neighborhood=query.neighborhood,
                predicate=_ShardPredicate(self.reader_shard, shard_id, base_predicate),
                mode=query.mode,
            )
            self.shards.append(
                EAGrEngine(graph, shard_query, value_store=value_store, **engine_kwargs)
            )

        # Multicast routing table: writer -> shards that consume it.
        self.writer_shards: Dict[NodeId, List[int]] = {}
        for shard_id, shard in enumerate(self.shards):
            for writer in shard.ag.writers:
                self.writer_shards.setdefault(writer, []).append(shard_id)
        self.writes_sent = 0
        self.writes_delivered = 0

    # ------------------------------------------------------------------

    def write(self, node: NodeId, value: Any, timestamp: Optional[float] = None) -> None:
        """Multicast a write to every shard whose readers observe ``node``."""
        self.writes_sent += 1
        for shard_id in self.writer_shards.get(node, ()):
            self.writes_delivered += 1
            self.shards[shard_id].write(node, value, timestamp)

    def write_batch(self, writes) -> int:
        """Multicast a write batch: one sub-batch per shard.

        Each shard receives its slice in stream order and coalesces it
        through its own compiled plans, so the multicast costs one batched
        ingestion per shard instead of one engine call per (write, shard).
        """
        from repro.core.execution import normalize_write

        per_shard: Dict[int, List] = {}
        count = 0
        for item in writes:
            node, value, timestamp = normalize_write(item)
            count += 1
            self.writes_sent += 1
            for shard_id in self.writer_shards.get(node, ()):
                self.writes_delivered += 1
                per_shard.setdefault(shard_id, []).append((node, value, timestamp))
        for shard_id, items in per_shard.items():
            self.shards[shard_id].write_batch(items)
        return count

    def read(self, node: NodeId) -> Any:
        """Route a read to the shard owning ``node``'s query."""
        shard_id = self.reader_shard.get(node)
        if shard_id is None:
            aggregate = self.query.aggregate
            return aggregate.finalize(aggregate.identity())
        return self.shards[shard_id].read(node)

    def read_batch(self, nodes) -> List[Any]:
        """Route a batch of reads shard-by-shard, preserving input order."""
        nodes = list(nodes)
        results: List[Any] = [None] * len(nodes)
        per_shard: Dict[int, List[int]] = {}
        for position, node in enumerate(nodes):
            shard_id = self.reader_shard.get(node)
            if shard_id is None:
                aggregate = self.query.aggregate
                results[position] = aggregate.finalize(aggregate.identity())
            else:
                per_shard.setdefault(shard_id, []).append(position)
        for shard_id, positions in per_shard.items():
            values = self.shards[shard_id].read_batch([nodes[p] for p in positions])
            for position, value in zip(positions, values):
                results[position] = value
        return results

    # ------------------------------------------------------------------
    # shard-execution protocol (repro.core.shards.ShardExecution)
    # ------------------------------------------------------------------

    def changed_readers(self) -> List[NodeId]:
        """Union of every shard's changed-reader report, shard order.

        Reader partitions are disjoint, so no cross-shard deduplication is
        needed; each shard consumes its own runtime report.
        """
        changed: List[NodeId] = []
        for shard in self.shards:
            changed.extend(shard.changed_readers())
        return changed

    def changed_report(self):
        """``(stamp, readers)`` — the stamped protocol extension.

        The stamp is the maximum of the shard runtimes' global write
        stamps: every shard receives only its slice of each batch, so the
        busiest shard's stamp is the tightest monotone cover of "how much
        ingestion this report reflects".
        """
        readers = self.changed_readers()
        stamp = max((shard.runtime.stamp for shard in self.shards), default=0)
        return stamp, readers

    def drain(self) -> None:
        """In-process shards apply writes synchronously; nothing pends."""
        for shard in self.shards:
            shard.drain()

    def close(self) -> None:
        """Close every shard (synchronous engines: a no-op flush)."""
        for shard in self.shards:
            shard.close()

    # ------------------------------------------------------------------

    @property
    def replication_factor(self) -> float:
        """Average shards per delivered write (the deployment's overhead)."""
        if self.writes_sent == 0:
            total = sum(len(s) for s in self.writer_shards.values())
            return total / max(1, len(self.writer_shards))
        return self.writes_delivered / self.writes_sent

    def shard_sizes(self) -> List[int]:
        """Number of materialized readers per shard."""
        return [len(shard.overlay.reader_of) for shard in self.shards]

    def total_overlay_edges(self) -> int:
        """Sum of all shards' overlay edges (deployment-wide state)."""
        return sum(shard.overlay.num_edges for shard in self.shards)

    def describe(self) -> str:
        """One-line summary: shard sizes, replication factor, edges."""
        sizes = self.shard_sizes()
        return (
            f"PartitionedEngine(shards={self.num_shards}, readers={sizes}, "
            f"replication={self.replication_factor:.2f}, "
            f"edges={self.total_overlay_edges()})"
        )


class _ShardPredicate:
    """Picklable-ish shard membership predicate (composes with user pred)."""

    def __init__(
        self,
        reader_shard: Dict[NodeId, int],
        shard_id: int,
        base: Optional[Callable[[NodeId], bool]],
    ) -> None:
        self._reader_shard = reader_shard
        self._shard_id = shard_id
        self._base = base

    def __call__(self, node: NodeId) -> bool:
        if self._reader_shard.get(node) != self._shard_id:
            return False
        return self._base(node) if self._base is not None else True


def _stable_hash(node: NodeId) -> int:
    """Process-independent hash (``hash()`` is salted for strings)."""
    import zlib

    return zlib.crc32(repr(node).encode())


def partition_readers(
    graph: DynamicGraph,
    query: EgoQuery,
    num_shards: int,
    assign: Optional[Callable[[NodeId], int]] = None,
) -> Dict[NodeId, int]:
    """Reader node → owning shard for every pred-selected graph node.

    The single source of the reader partition, shared by
    :class:`PartitionedEngine` and the serving layer's ``EAGrServer`` so
    the predicate/assignment semantics cannot drift apart.  ``assign``
    defaults to the process-independent stable hash.
    """
    assign = assign or (lambda node: _stable_hash(node) % num_shards)
    reader_shard: Dict[NodeId, int] = {}
    for node in graph.nodes():
        if query.predicate is None or query.predicate(node):
            reader_shard[node] = assign(node) % num_shards
    return reader_shard


def community_assignment(
    graph: DynamicGraph, num_shards: int, seed: int = 0
) -> Callable[[NodeId], int]:
    """A cheap locality-aware assignment: BFS-grown balanced partitions.

    Stands in for the "standard graph partitioning-based techniques" the
    paper alludes to; co-locating neighborhoods cuts the write replication
    factor versus hash assignment (asserted by the partitioning tests).
    """
    import collections

    nodes = sorted(graph.nodes(), key=repr)
    capacity = max(1, (len(nodes) + num_shards - 1) // num_shards)
    assignment: Dict[NodeId, int] = {}
    shard_id = 0
    filled = 0
    for start in nodes:
        if start in assignment:
            continue
        queue = collections.deque([start])
        while queue:
            node = queue.popleft()
            if node in assignment:
                continue
            assignment[node] = shard_id
            filled += 1
            if filled >= capacity:
                shard_id = min(shard_id + 1, num_shards - 1)
                filled = 0
            for neighbor in sorted(graph.neighbors(node), key=repr):
                if neighbor not in assignment:
                    queue.append(neighbor)
    return lambda node: assignment.get(node, 0)
