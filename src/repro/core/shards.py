"""The shard-execution protocol: one interface for every shard backend.

A *shard* is anything that can stand behind a slice of the reader space and
absorb the serving layer's traffic: the single-process
:class:`~repro.core.engine.EAGrEngine`, the thread-pool
:class:`~repro.core.concurrency.ThreadedEngine`, the in-process multi-shard
:class:`~repro.core.partitioned.PartitionedEngine`, and the serve layer's
in-process and worker-process shard hosts (:mod:`repro.serve.shard`) all
implement this protocol, so routing and subscription code is written once
against it.

The contract:

* ``write_batch(writes) -> int`` — absorb a batch of content updates (the
  usual ``(node, value[, timestamp])`` tuples or WriteEvent-like objects)
  and return how many were accepted.  Asynchronous backends may defer the
  actual application; ``drain()`` is the barrier.
* ``read_batch(nodes) -> list`` — evaluate the standing query at each node,
  observing every write the backend has *accepted* before this call (an
  asynchronous backend drains first).
* ``changed_readers() -> list`` — reader nodes whose aggregate value may
  have changed since the previous call (a superset is allowed — consumers
  diff values before acting; an empty list means "nothing changed").  This
  is the signal continuous subscriptions are built on.
* ``changed_report() -> (stamp, readers)`` — the stamped variant:
  ``readers`` as above plus the backend's **global write stamp**, a
  monotone count of ingestion calls that survives overlay rebuilds and —
  for backends restored from checkpointed window buffers, like the serve
  layer's shard hosts — process restarts.  Consumers use it to version
  change reports durably (the serve layer's notification replay filter
  keys on it).
* ``drain()`` — block until every accepted write is applied.
* ``close()`` — flush pending work, then release resources.  ``close`` on
  an already-closed shard is a no-op.  Closing **flushes rather than
  drops**: writes accepted before ``close`` are visible to a final read.

The contract is deliberately *transport-free*: a backend may absorb
writes from an in-process call, a bounded ``mp.Queue``, or the serve
layer's shared-memory ingress rings (:mod:`repro.serve.shm`), and may
answer ``read_batch`` itself or expose its value columns for the caller
to gather zero-copy — as long as the visibility rules above hold.  The
shm transport meets them with a published *applied watermark* (the
highest absorbed batch number plus the global write stamp) instead of
per-request acknowledgements; consumers treat "watermark covers every
batch I routed" as equivalent to a ``drain()`` barrier for reads.

It is also deliberately *durability-free*: ``write_batch`` returning
means accepted, not persisted.  Callers that need "acked ⇒ on stable
storage" layer it outside the protocol — the serve front-end logs every
batch to a write-ahead log (:mod:`repro.serve.wal`) *before* routing it
to shards, which is what lets any conforming backend be rebuilt
batch-exact after a crash: the stamp advances once per applied batch
regardless of coalescing, so replaying the logged batch sequence through
a fresh shard reproduces both the values and the stamps.  Backends
should preserve that batch-lockstep stamp discipline (see
``changed_report``) or recovered streams will renumber across restarts.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Protocol, Sequence, Tuple, runtime_checkable

NodeId = Hashable


@runtime_checkable
class ShardExecution(Protocol):
    """Structural interface every shard backend satisfies (see module doc)."""

    def write_batch(self, writes: Sequence) -> int:
        """Accept a batch of writes; returns the number accepted."""
        ...

    def read_batch(self, nodes: Sequence[NodeId]) -> List[Any]:
        """Evaluate the query at each node (after draining pending writes)."""
        ...

    def changed_readers(self) -> List[NodeId]:
        """Reader nodes possibly changed since the last call (consumed)."""
        ...

    def changed_report(self) -> Tuple[int, List[NodeId]]:
        """``(global write stamp, changed readers)`` — stamped variant."""
        ...

    def drain(self) -> None:
        """Block until every accepted write has been applied."""
        ...

    def close(self) -> None:
        """Flush pending writes, then release resources (idempotent)."""
        ...
