"""EAGrEngine: the top-level compile-and-run pipeline.

This ties the whole paper together.  Given a data graph and an ego-centric
query, the engine:

1. compiles the bipartite writer/reader graph ``AG`` (Section 3.1),
2. constructs an aggregation overlay with the chosen algorithm —
   ``identity`` (no sharing; the two industry baselines), ``vnm``,
   ``vnm_a``, ``vnm_n``, ``vnm_d``, or ``iob`` (Section 3.2),
3. optionally applies the node-splitting optimization (Section 4.7),
4. annotates dataflow decisions — optimal ``mincut``, linear-time
   ``greedy``, or the forced ``all_push`` / ``all_pull`` baselines
   (Sections 4.3–4.6); continuous-mode queries force readers to push,
5. instantiates the :class:`~repro.core.execution.Runtime`, and optionally
6. attaches the incremental overlay maintainer (Section 3.3) and the
   adaptive decision controller (Section 4.8).

The two baselines of Section 5.1 are spelled::

    all-pull  = EAGrEngine(g, q, overlay_algorithm="identity", dataflow="all_pull")
    all-push  = EAGrEngine(g, q, overlay_algorithm="identity", dataflow="all_push")
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.adaptive import AdaptiveConfig, AdaptiveController
from repro.core.execution import Runtime
from repro.core.overlay import Decision, Overlay
from repro.core.query import EgoQuery
from repro.dataflow.costs import CostModel
from repro.dataflow.frequencies import FrequencyModel
from repro.dataflow.greedy import greedy_dataflow
from repro.dataflow.mincut import DataflowStats, decide_dataflow
from repro.dataflow.splitting import split_nodes
from repro.graph.bipartite import build_bipartite
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.streams import StructureEvent, StructureOp
from repro.overlay import construct_overlay
from repro.overlay.dynamic import OverlayMaintainer

NodeId = Hashable

DATAFLOW_MODES = ("mincut", "greedy", "all_push", "all_pull")


class EAGrEngine:
    """Compile an ego-centric aggregate query and serve reads/writes.

    Parameters
    ----------
    graph:
        The data graph (kept live; structure changes flow through
        :meth:`apply_structure_event` or direct graph mutation when a
        maintainer is attached).
    query:
        The ``⟨F, w, N, pred⟩`` specification.
    overlay_algorithm:
        One of ``identity | vnm | vnm_a | vnm_n | vnm_d | iob``.
    dataflow:
        One of ``mincut | greedy | all_push | all_pull``.
    frequencies:
        Expected workload (defaults to uniform 1:1); used for decisions and
        splitting only — execution is workload-agnostic.
    enable_splitting:
        Apply Section 4.7's partial pre-computation before decisions.
    maintain:
        Attach the Section 3.3 incremental overlay maintainer to the graph's
        structure stream.
    adaptive:
        Attach the Section 4.8 adaptive decision controller.
    value_store:
        Aggregate-state backend: ``auto`` (columnar numpy columns when the
        aggregate declares a column spec and numpy imports, object lists
        otherwise), or force ``object`` / ``columnar`` / ``shared``
        (shared-memory columns other processes can attach by name — the
        serving layer's zero-copy read path).  Invisible to callers —
        reads are byte-identical between backends for integer streams.
    shm_name:
        Segment name for the ``shared`` backend (created, or adopted when
        a compatible segment already exists); ignored otherwise.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        query: EgoQuery,
        overlay_algorithm: str = "vnm_a",
        dataflow: str = "mincut",
        frequencies: Optional[FrequencyModel] = None,
        cost_model: Optional[CostModel] = None,
        enable_splitting: bool = False,
        maintain: bool = False,
        adaptive: bool = False,
        adaptive_config: Optional[AdaptiveConfig] = None,
        auto_redecide: bool = True,
        collect_trace: bool = False,
        overlay_params: Optional[Dict[str, Any]] = None,
        value_store: str = "auto",
        shm_name: Optional[str] = None,
    ) -> None:
        if dataflow not in DATAFLOW_MODES:
            raise ValueError(f"dataflow must be one of {DATAFLOW_MODES}")
        self.graph = graph
        self.query = query
        self.dataflow = dataflow
        self.overlay_algorithm = overlay_algorithm
        self.value_store = value_store
        self.shm_name = shm_name
        self.frequencies = frequencies or FrequencyModel.uniform(graph.nodes())
        self.cost_model = cost_model or CostModel.for_aggregate(query.aggregate)
        self.auto_redecide = auto_redecide
        self._collect_trace = collect_trace
        self._needs_recompile = False
        # reference_read orders oracle members deterministically; the sort
        # is cached per node and refreshed only when the membership changes.
        self._oracle_members: Dict[NodeId, Tuple[frozenset, List[NodeId]]] = {}

        self.ag = build_bipartite(graph, query.neighborhood, query.predicate)
        self.construction = construct_overlay(
            self.ag,
            overlay_algorithm,
            aggregate=query.aggregate,
            **(overlay_params or {}),
        )
        self.overlay: Overlay = self.construction.overlay

        self.split_handles = []
        if enable_splitting:
            self.split_handles = split_nodes(
                self.overlay, self.frequencies, self.cost_model
            )

        self.decision_stats = self._decide()
        self.runtime = Runtime(
            self.overlay,
            query,
            collect_trace=collect_trace,
            value_store=value_store,
            shm_name=shm_name,
        )

        self.maintainer: Optional[OverlayMaintainer] = None
        self._seen_version = 0
        if maintain:
            self.maintainer = OverlayMaintainer(
                graph, query.neighborhood, self.overlay, predicate=query.predicate
            ).attach()

        self.controller: Optional[AdaptiveController] = None
        if adaptive:
            self.controller = AdaptiveController(
                self.runtime, self.cost_model, adaptive_config
            )

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def _decide(self) -> Optional[DataflowStats]:
        window_size = self.query.window.expected_size()
        if self.dataflow == "all_push":
            self.overlay.set_all_decisions(Decision.PUSH)
            return None
        if self.dataflow == "all_pull":
            self.overlay.set_all_decisions(Decision.PULL)
            return None
        if self.dataflow == "greedy":
            return greedy_dataflow(
                self.overlay,
                self.frequencies,
                self.cost_model,
                window_size=window_size,
                force_push_readers=self.query.continuous,
            )
        return decide_dataflow(
            self.overlay,
            self.frequencies,
            self.cost_model,
            window_size=window_size,
            force_push_readers=self.query.continuous,
        )

    def redecide(self, frequencies: Optional[FrequencyModel] = None) -> None:
        """Re-run dataflow decisions (e.g. after a workload shift) and
        rebuild the runtime state accordingly."""
        if frequencies is not None:
            self.frequencies = frequencies
        self.decision_stats = self._decide()
        # Re-deciding only dirties the handles whose decision flipped;
        # untouched writers/readers keep their compiled plans.
        self.runtime.rebuild(dirty=self.overlay.pop_dirty())
        if self.controller is not None:
            self.controller._snapshot()

    # ------------------------------------------------------------------
    # event API
    # ------------------------------------------------------------------

    def write(self, node: NodeId, value: Any, timestamp: Optional[float] = None) -> None:
        """Process a content update ("write on ``node``")."""
        self._sync()
        self.runtime.write(node, value, timestamp)
        if self.controller is not None:
            self.controller.tick()

    def write_batch(self, writes: Sequence) -> int:
        """Process a batch of writes, coalescing same-writer deltas.

        ``writes`` holds ``(node, value)`` / ``(node, value, timestamp)``
        tuples or WriteEvent-like objects, in stream order.  The runtime
        runs one compiled-plan propagation per touched writer instead of
        one overlay traversal per event; final state matches the
        equivalent per-event loop.  Returns the number of writes applied.
        """
        self._sync()
        count = self.runtime.write_batch(writes)
        if self.controller is not None:
            self.controller.tick(count)
        return count

    def read(self, node: NodeId) -> Any:
        """Evaluate the query at ``node``: the current ``F(N(node))``."""
        self._sync()
        result = self.runtime.read(node)
        if self.controller is not None:
            self.controller.tick()
        return result

    def read_batch(self, nodes: Sequence[NodeId]) -> List[Any]:
        """Evaluate the query at each of ``nodes`` (one structural sync,
        compiled pull plans shared across the batch)."""
        self._sync()
        results = self.runtime.read_batch(nodes)
        if self.controller is not None:
            self.controller.tick(len(results))
        return results

    # ------------------------------------------------------------------
    # shard-execution protocol (repro.core.shards.ShardExecution)
    # ------------------------------------------------------------------

    def changed_readers(self) -> List[NodeId]:
        """Reader nodes whose value changed since the last call.

        Consumes the runtime's changed-writer report and maps it through
        the compiled per-writer reader closures — O(affected readers).
        The serve layer's subscription diffing is built on this.
        """
        self._sync()
        return self.runtime.changed_readers()

    def changed_report(self):
        """``(stamp, readers)``: the changed-reader set plus the global
        write stamp (see :meth:`repro.core.execution.Runtime.changed_report`).

        The stamp is stable across overlay rebuilds and — when the engine
        is restored from checkpointed window buffers, as the serve layer's
        shard restart does — across process restarts, so it can version
        change notifications durably.
        """
        self._sync()
        return self.runtime.changed_report()

    def drain(self) -> None:
        """Synchronous engine: every accepted write is already applied."""

    def close(self) -> None:
        """Synchronous engine: nothing to flush or release."""

    def apply_structure_event(self, event: StructureEvent) -> None:
        """Apply one structure-stream event to the data graph.

        With a maintainer attached the overlay absorbs the change
        incrementally; otherwise the engine recompiles lazily on the next
        read/write.
        """
        op = event.op
        if op is StructureOp.ADD_EDGE:
            self.graph.add_edge(event.u, event.v)
        elif op is StructureOp.REMOVE_EDGE:
            self.graph.remove_edge(event.u, event.v)
        elif op is StructureOp.ADD_NODE:
            self.graph.add_node(event.u)
        elif op is StructureOp.REMOVE_NODE:
            self.graph.remove_node(event.u)
        else:  # pragma: no cover - enum exhaustive
            raise ValueError(f"unknown structure op: {op}")
        self._oracle_members.clear()
        if self.maintainer is None:
            self._needs_recompile = True

    # ------------------------------------------------------------------
    # synchronization after structural changes
    # ------------------------------------------------------------------

    def _sync(self) -> None:
        if self.maintainer is not None:
            if self.maintainer.version != self._seen_version:
                self._seen_version = self.maintainer.version
                if self.auto_redecide and self.dataflow in ("mincut", "greedy"):
                    self.decision_stats = self._decide()
                elif self.dataflow == "all_push":
                    self.overlay.set_all_decisions(Decision.PUSH)
                else:
                    self.overlay.set_all_decisions(Decision.PULL)
                self._oracle_members.clear()
                # Incremental surgery dirties a bounded neighborhood of the
                # overlay; only plans touching it are recompiled.
                self.runtime.rebuild(dirty=self.maintainer.consume_plan_dirty())
        elif self._needs_recompile:
            self._recompile()
            self._needs_recompile = False

    def _recompile(self) -> None:
        """Full re-compilation (no maintainer): rebuild AG, overlay,
        decisions and runtime, preserving writer window buffers and the
        pending changed-writer report (both keyed by graph node id)."""
        buffers = self.runtime.buffers
        pending_changes = self.runtime._changed_writers
        stamp = self.runtime.stamp
        self._oracle_members.clear()
        close_store = getattr(self.runtime.values, "close", None)
        if close_store is not None:
            # A shared store must drop its mapping before the replacement
            # runtime adopts (or regrows) the named segment.
            close_store()
        self.ag = build_bipartite(
            self.graph, self.query.neighborhood, self.query.predicate
        )
        self.construction = construct_overlay(
            self.ag, self.overlay_algorithm, aggregate=self.query.aggregate
        )
        self.overlay = self.construction.overlay
        self.decision_stats = self._decide()
        self.runtime = Runtime(
            self.overlay,
            self.query,
            buffers=buffers,
            collect_trace=self._collect_trace,
            value_store=self.value_store,
            stamp=stamp,
            shm_name=self.shm_name,
        )
        self.runtime._changed_writers.update(pending_changes)
        if self.controller is not None:
            self.controller = AdaptiveController(
                self.runtime, self.cost_model, self.controller.config
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def reference_read(self, node: NodeId) -> Any:
        """Brute-force oracle: evaluate ``F(N(node))`` from the live graph."""
        members = self.query.neighborhood(self.graph, node)
        cached = self._oracle_members.get(node)
        if cached is not None and cached[0] == members:
            ordered = cached[1]
        else:
            ordered = sorted(members, key=repr)
            self._oracle_members[node] = (frozenset(members), ordered)
        return self.runtime.reference_read(ordered)

    @property
    def counters(self):
        """Operation counters (writes/reads/push/pull) of the runtime."""
        return self.runtime.counters

    @property
    def value_store_backend(self) -> str:
        """The backend the ``value_store`` mode resolved to (``object`` /
        ``columnar``) for this engine's aggregate on this host."""
        return self.runtime.values.backend

    def sharing_index(self) -> float:
        """``1 − |overlay edges| / |AG edges|`` for the compiled overlay."""
        return self.overlay.sharing_index(self.ag)

    def describe(self) -> str:
        """One-line human-readable summary of the compiled pipeline."""
        return (
            f"EAGrEngine(query={self.query.describe()}, "
            f"overlay={self.overlay_algorithm}, dataflow={self.dataflow}, "
            f"SI={self.sharing_index():.3f}, edges={self.overlay.num_edges})"
        )
