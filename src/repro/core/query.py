"""Ego-centric aggregate query specification (paper Section 2.1).

A query is the 4-tuple ``⟨F, w, N, pred⟩``: the aggregate function, the
sliding window, the neighborhood selection function, and the predicate
selecting which graph nodes have a materialized query.  The query also
carries its *mode*:

* ``CONTINUOUS`` — results must be kept up to date as writes arrive
  (anomaly/event detection).  The engine forces push decisions on readers.
* ``QUASI_CONTINUOUS`` — results are only needed on a read (trend feeds);
  the dataflow optimizer freely mixes push and pull.

The distinction is one of the paper's framing contributions; everything else
in the system is shared between the two modes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

from repro.core.aggregates import AggregateFunction
from repro.core.windows import TupleWindow, Window
from repro.graph.neighborhoods import Neighborhood

NodeId = Hashable


class QueryMode(enum.Enum):
    CONTINUOUS = "continuous"
    QUASI_CONTINUOUS = "quasi_continuous"


@dataclass(frozen=True)
class EgoQuery:
    """``⟨F, w, N, pred⟩`` plus the continuous / quasi-continuous mode flag.

    Examples
    --------
    The paper's running example (Figure 1) — most recent value of each
    in-neighbor, summed, for every node::

        EgoQuery(aggregate=Sum(), window=TupleWindow(1),
                 neighborhood=Neighborhood.in_neighbors())

    Ego-centric trending topics over friends' last 20 posts::

        EgoQuery(aggregate=TopK(5), window=TupleWindow(20),
                 neighborhood=Neighborhood.undirected())
    """

    aggregate: AggregateFunction
    window: Window = field(default_factory=lambda: TupleWindow(1))
    neighborhood: Neighborhood = field(default_factory=Neighborhood.in_neighbors)
    predicate: Optional[Callable[[NodeId], bool]] = None
    mode: QueryMode = QueryMode.QUASI_CONTINUOUS

    def __post_init__(self) -> None:
        if not isinstance(self.aggregate, AggregateFunction):
            raise TypeError("aggregate must be an AggregateFunction instance")
        if not isinstance(self.window, Window):
            raise TypeError("window must be a Window instance")
        if not isinstance(self.neighborhood, Neighborhood):
            raise TypeError("neighborhood must be a Neighborhood instance")

    @property
    def continuous(self) -> bool:
        return self.mode is QueryMode.CONTINUOUS

    def describe(self) -> str:
        pred = "all nodes" if self.predicate is None else "pred-selected nodes"
        return (
            f"⟨{self.aggregate!r}, {self.window}, {self.neighborhood!r}, {pred}⟩"
            f" [{self.mode.value}]"
        )
