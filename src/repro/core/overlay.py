"""The aggregation overlay graph (paper Section 2.2.1).

An overlay ``OG(V'', E'')`` is a DAG with three node kinds:

* **writer** nodes — one per data-graph node producing content,
* **reader** nodes — one per query node (``pred``-selected),
* **partial aggregation** nodes — introduced by the construction algorithms
  to share partial aggregates across readers.

Edges carry a *sign*: ``+1`` for ordinary contribution, ``-1`` for the
*negative edges* of Section 3.1 that subtract a duplicate contribution
("quasi-biclique" overlays, ``VNM_N``).  Correctness requires the **net
signed path count** from any writer to any reader to be exactly 1 for
``N(r)`` members and 0 otherwise — except for duplicate-insensitive
aggregates, where any positive path count is acceptable and negative edges
are forbidden.  :meth:`Overlay.validate` checks exactly this invariant and is
used throughout the test suite.

Every node additionally carries a dataflow *decision* (push or pull,
Section 2.2.1): push nodes keep their PAO up to date on every update; pull
nodes compute on demand.  Decisions must be *consistent*: no edge may run
from a pull node into a push node.  Decisions default to pull (writers to
push) until :mod:`repro.dataflow` assigns them.
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.bipartite import BipartiteGraph

try:  # numpy is optional: CSR snapshots degrade to plain lists without it
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

NodeId = Hashable


class NodeKind(enum.Enum):
    WRITER = "writer"
    READER = "reader"
    PARTIAL = "partial"


class Decision(enum.Enum):
    PUSH = "push"
    PULL = "pull"


class OverlayError(Exception):
    """Raised on structurally invalid overlay mutations."""


class Overlay:
    """Mutable aggregation overlay graph.

    Node handles are dense integers.  ``inputs[v]`` maps source handle →
    sign; ``outputs[v]`` is the (insertion-ordered) set of destinations.
    A data-graph node that both writes and reads appears as *two* overlay
    nodes (the bipartite split of Section 3.1).
    """

    def __init__(self) -> None:
        self.kinds: List[NodeKind] = []
        self.labels: List[Optional[NodeId]] = []
        self.inputs: List[Dict[int, int]] = []
        self.outputs: List[Dict[int, None]] = []
        self.decisions: List[Decision] = []
        self.writer_of: Dict[NodeId, int] = {}
        self.reader_of: Dict[NodeId, int] = {}
        self._num_edges = 0
        #: Bumped on every structural mutation (nodes/edges); compiled
        #: propagation plans and CSR snapshots key their validity off this.
        self.version = 0
        #: Bumped whenever any node's push/pull decision actually changes.
        self.decision_version = 0
        self._dirty: Set[int] = set()

    # ------------------------------------------------------------------
    # plan-cache dirty tracking
    # ------------------------------------------------------------------

    def mark_dirty(self, handle: int) -> None:
        """Record that ``handle``'s structure or decision changed.

        Consumers (the runtime's plan cache) take the accumulated set via
        :meth:`pop_dirty` and invalidate only the plans touching it.
        """
        self._dirty.add(handle)

    def pop_dirty(self) -> Set[int]:
        """Return and clear the set of handles touched since the last call."""
        dirty = self._dirty
        self._dirty = set()
        return dirty

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------

    def _new_node(self, kind: NodeKind, label: Optional[NodeId]) -> int:
        handle = len(self.kinds)
        self.kinds.append(kind)
        self.labels.append(label)
        self.inputs.append({})
        self.outputs.append({})
        # Writers are always annotated push (Section 2.2.1); everything else
        # starts pull (safe: nothing is precomputed until decisions run).
        self.decisions.append(Decision.PUSH if kind is NodeKind.WRITER else Decision.PULL)
        self.version += 1
        self._dirty.add(handle)
        return handle

    def add_writer(self, node: NodeId) -> int:
        """Add (or fetch) the writer node for data-graph node ``node``."""
        existing = self.writer_of.get(node)
        if existing is not None:
            return existing
        handle = self._new_node(NodeKind.WRITER, node)
        self.writer_of[node] = handle
        return handle

    def add_reader(self, node: NodeId) -> int:
        """Add (or fetch) the reader node for data-graph node ``node``."""
        existing = self.reader_of.get(node)
        if existing is not None:
            return existing
        handle = self._new_node(NodeKind.READER, node)
        self.reader_of[node] = handle
        return handle

    def add_partial(self) -> int:
        """Add a fresh partial-aggregation (intermediate) node."""
        return self._new_node(NodeKind.PARTIAL, None)

    @property
    def num_nodes(self) -> int:
        return len(self.kinds)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def writer_handles(self) -> Iterator[int]:
        return iter(self.writer_of.values())

    def reader_handles(self) -> Iterator[int]:
        return iter(self.reader_of.values())

    def partial_handles(self) -> Iterator[int]:
        for handle, kind in enumerate(self.kinds):
            if kind is NodeKind.PARTIAL:
                yield handle

    @property
    def num_partials(self) -> int:
        return sum(1 for kind in self.kinds if kind is NodeKind.PARTIAL)

    def is_writer(self, handle: int) -> bool:
        return self.kinds[handle] is NodeKind.WRITER

    def is_reader(self, handle: int) -> bool:
        return self.kinds[handle] is NodeKind.READER

    def fan_in(self, handle: int) -> int:
        return len(self.inputs[handle])

    # ------------------------------------------------------------------
    # edge management
    # ------------------------------------------------------------------

    def add_edge(self, src: int, dst: int, sign: int = 1) -> None:
        """Add the edge ``src -> dst`` with the given sign.

        Guards the paper's structural rules: readers never feed other nodes
        ("we do not allow a reader node to directly form an input to an
        aggregator node"), writers never receive input, and at most one edge
        exists per (src, dst) pair — multiple writer→reader *paths* (for
        duplicate-insensitive aggregates) always run through distinct
        intermediate nodes.
        """
        if sign not in (1, -1):
            raise OverlayError("edge sign must be +1 or -1")
        if self.kinds[src] is NodeKind.READER:
            raise OverlayError("reader nodes cannot feed other overlay nodes")
        if self.kinds[dst] is NodeKind.WRITER:
            raise OverlayError("writer nodes cannot receive overlay edges")
        if src == dst:
            raise OverlayError("self loops are not allowed")
        if dst in self.outputs[src]:
            raise OverlayError(f"duplicate edge {src}->{dst}")
        self.inputs[dst][src] = sign
        self.outputs[src][dst] = None
        self._num_edges += 1
        self.version += 1
        self._dirty.add(src)
        self._dirty.add(dst)

    def remove_edge(self, src: int, dst: int) -> int:
        """Remove ``src -> dst``; returns the sign it carried."""
        try:
            sign = self.inputs[dst].pop(src)
        except KeyError:
            raise OverlayError(f"edge {src}->{dst} not present") from None
        del self.outputs[src][dst]
        self._num_edges -= 1
        self.version += 1
        self._dirty.add(src)
        self._dirty.add(dst)
        return sign

    def has_edge(self, src: int, dst: int) -> bool:
        return dst in self.outputs[src]

    def edge_sign(self, src: int, dst: int) -> int:
        return self.inputs[dst][src]

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(src, dst, sign)`` for every edge."""
        for dst, srcs in enumerate(self.inputs):
            for src, sign in srcs.items():
                yield (src, dst, sign)

    @property
    def num_negative_edges(self) -> int:
        return sum(1 for _, _, sign in self.edges() if sign < 0)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def set_decision(self, handle: int, decision: Decision) -> None:
        if self.kinds[handle] is NodeKind.WRITER and decision is not Decision.PUSH:
            raise OverlayError("writer nodes are always push")
        if self.decisions[handle] is decision:
            return
        self.decisions[handle] = decision
        self.decision_version += 1
        self._dirty.add(handle)

    def set_all_decisions(self, decision: Decision) -> None:
        """Annotate every non-writer node (all-push / all-pull baselines)."""
        changed = False
        for handle in range(self.num_nodes):
            if self.kinds[handle] is not NodeKind.WRITER:
                if self.decisions[handle] is not decision:
                    self.decisions[handle] = decision
                    self._dirty.add(handle)
                    changed = True
        if changed:
            self.decision_version += 1

    def decisions_consistent(self) -> bool:
        """True iff no edge runs from a pull node into a push node."""
        for src, dst, _ in self.edges():
            if (
                self.decisions[src] is Decision.PULL
                and self.decisions[dst] is Decision.PUSH
            ):
                return False
        return True

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------

    def topological_order(self) -> List[int]:
        """Writers-first topological order; raises if the overlay has a cycle."""
        indegree = [len(self.inputs[h]) for h in range(self.num_nodes)]
        frontier = [h for h in range(self.num_nodes) if indegree[h] == 0]
        order: List[int] = []
        while frontier:
            handle = frontier.pop()
            order.append(handle)
            for dst in self.outputs[handle]:
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    frontier.append(dst)
        if len(order) != self.num_nodes:
            raise OverlayError("overlay contains a cycle")
        return order

    def upstream(self, handle: int) -> Set[int]:
        """All nodes with a directed path to ``handle`` (exclusive)."""
        seen: Set[int] = set()
        stack = list(self.inputs[handle])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.inputs[node])
        return seen

    def downstream(self, handle: int) -> Set[int]:
        """All nodes reachable from ``handle`` (exclusive)."""
        seen: Set[int] = set()
        stack = list(self.outputs[handle])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.outputs[node])
        return seen

    # ------------------------------------------------------------------
    # semantics: coverage and validation
    # ------------------------------------------------------------------

    def coverage(self, handle: int) -> Dict[int, int]:
        """Net signed multiplicity of each writer reaching ``handle``.

        ``coverage(r)[w] == 2`` means writer ``w`` reaches reader ``r`` along
        two (net) positive paths; a correct duplicate-sensitive overlay has
        every multiplicity equal to 1.
        """
        memo: Dict[int, Dict[int, int]] = {}

        def rec(node: int) -> Dict[int, int]:
            cached = memo.get(node)
            if cached is not None:
                return cached
            if self.kinds[node] is NodeKind.WRITER:
                result = {node: 1}
            else:
                result = {}
                for src, sign in self.inputs[node].items():
                    for writer, mult in rec(src).items():
                        total = result.get(writer, 0) + sign * mult
                        if total:
                            result[writer] = total
                        else:
                            result.pop(writer, None)
            memo[node] = result
            return result

        return dict(rec(handle))

    def validate(
        self,
        ag: BipartiteGraph,
        duplicate_insensitive: bool = False,
    ) -> None:
        """Check the overlay computes exactly the query encoded by ``ag``.

        Raises :class:`OverlayError` on the first violated invariant.  For
        duplicate-sensitive aggregates every writer in ``N(r)`` must reach
        ``r`` with net multiplicity exactly 1 (negative edges may be used to
        cancel extra paths); for duplicate-insensitive aggregates any
        multiplicity >= 1 is fine but negative edges are forbidden.
        """
        self.topological_order()  # raises on cycles
        if duplicate_insensitive and self.num_negative_edges:
            raise OverlayError(
                "duplicate-insensitive overlays must not contain negative edges"
            )
        for reader_node, expected in ag.reader_inputs.items():
            handle = self.reader_of.get(reader_node)
            if handle is None:
                raise OverlayError(f"reader {reader_node!r} missing from overlay")
            cover = self.coverage(handle)
            covered_nodes = {self.labels[w]: mult for w, mult in cover.items()}
            expected_set = set(expected)
            for writer_node in expected_set:
                mult = covered_nodes.pop(writer_node, 0)
                if duplicate_insensitive:
                    if mult < 1:
                        raise OverlayError(
                            f"reader {reader_node!r} misses writer {writer_node!r}"
                        )
                elif mult != 1:
                    raise OverlayError(
                        f"reader {reader_node!r} receives writer {writer_node!r} "
                        f"with net multiplicity {mult} (expected 1)"
                    )
            if covered_nodes:
                extra = sorted(map(repr, covered_nodes))
                raise OverlayError(
                    f"reader {reader_node!r} receives spurious writers: {extra}"
                )

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def sharing_index(self, ag: BipartiteGraph) -> float:
        """``1 - |E''| / |E'|`` (Section 3.1); positive when sharing helps."""
        ag_edges = ag.num_edges
        if ag_edges == 0:
            return 0.0
        return 1.0 - self.num_edges / ag_edges

    def reader_depths(self) -> Dict[int, int]:
        """Longest writer→reader path length per reader (Section 5.2)."""
        depth = [0] * self.num_nodes
        for handle in self.topological_order():
            for src in self.inputs[handle]:
                if depth[src] + 1 > depth[handle]:
                    depth[handle] = depth[src] + 1
        return {h: depth[h] for h in self.reader_of.values()}

    def memory_estimate(self) -> int:
        """Rough resident-size estimate in bytes (Figure 10(b) metric)."""
        per_node = 120  # kind + label + dict headers
        per_edge = 100  # two dict entries
        return self.num_nodes * per_node + self.num_edges * per_edge

    # ------------------------------------------------------------------
    # compiled representation
    # ------------------------------------------------------------------

    def to_csr(self) -> "OverlayCSR":
        """Freeze the overlay into a CSR (compressed sparse row) snapshot.

        Edge order within each row preserves the dicts' insertion order, so
        anything compiled from the snapshot (propagation plans) replays the
        exact merge order of the dict-based interpreter — important because
        float merges are not associative.
        """
        n = self.num_nodes
        in_indptr: List[int] = [0]
        in_indices: List[int] = []
        in_signs: List[int] = []
        for dst in range(n):
            for src, sign in self.inputs[dst].items():
                in_indices.append(src)
                in_signs.append(sign)
            in_indptr.append(len(in_indices))
        out_indptr: List[int] = [0]
        out_indices: List[int] = []
        out_signs: List[int] = []
        for src in range(n):
            for dst in self.outputs[src]:
                out_indices.append(dst)
                out_signs.append(self.inputs[dst][src])
            out_indptr.append(len(out_indices))
        push = [1 if d is Decision.PUSH else 0 for d in self.decisions]
        kinds = [_KIND_CODES[k] for k in self.kinds]
        fan_in = [in_indptr[h + 1] - in_indptr[h] for h in range(n)]
        return OverlayCSR(
            num_nodes=n,
            in_indptr=in_indptr,
            in_indices=in_indices,
            in_signs=in_signs,
            out_indptr=out_indptr,
            out_indices=out_indices,
            out_signs=out_signs,
            push=push,
            kinds=kinds,
            fan_in=fan_in,
            version=self.version,
            decision_version=self.decision_version,
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def identity(cls, ag: BipartiteGraph) -> "Overlay":
        """The trivial no-sharing overlay: direct writer→reader edges.

        This is the structure both industry baselines of Section 5.1 run on
        (all-pull: social-network style on-demand; all-push: CEP style
        materialization); they differ only in dataflow decisions.
        """
        overlay = cls()
        for writer in sorted(ag.writers, key=lambda n: (type(n).__name__, repr(n))):
            overlay.add_writer(writer)
        for reader, writers in ag.reader_inputs.items():
            r = overlay.add_reader(reader)
            for writer in writers:
                overlay.add_edge(overlay.writer_of[writer], r)
        return overlay

    def copy(self) -> "Overlay":
        clone = Overlay()
        clone.kinds = list(self.kinds)
        clone.labels = list(self.labels)
        clone.inputs = [dict(d) for d in self.inputs]
        clone.outputs = [dict(d) for d in self.outputs]
        clone.decisions = list(self.decisions)
        clone.writer_of = dict(self.writer_of)
        clone.reader_of = dict(self.reader_of)
        clone._num_edges = self._num_edges
        clone.version = self.version
        clone.decision_version = self.decision_version
        clone._dirty = set()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Overlay(writers={len(self.writer_of)}, readers={len(self.reader_of)}, "
            f"partials={self.num_partials}, edges={self.num_edges})"
        )


#: Integer codes for :class:`NodeKind` in CSR snapshots.
KIND_WRITER, KIND_READER, KIND_PARTIAL = 0, 1, 2
_KIND_CODES = {
    NodeKind.WRITER: KIND_WRITER,
    NodeKind.READER: KIND_READER,
    NodeKind.PARTIAL: KIND_PARTIAL,
}


class OverlayCSR:
    """Immutable CSR snapshot of an overlay at a fixed (version, decisions).

    ``in_indptr[v]:in_indptr[v+1]`` slices ``in_indices``/``in_signs`` to
    give node ``v``'s inputs (and symmetrically for outputs); ``push`` and
    ``kinds`` are dense bitmaps.  The plan compiler in
    :mod:`repro.core.execution` walks these flat arrays instead of the
    dict-of-dict representation; :meth:`numpy_arrays` exposes the same data
    as numpy ``int32``/``uint8`` arrays for vectorized consumers.
    """

    __slots__ = (
        "num_nodes", "in_indptr", "in_indices", "in_signs",
        "out_indptr", "out_indices", "out_signs",
        "push", "kinds", "fan_in", "version", "decision_version", "_np_cache",
    )

    def __init__(
        self,
        num_nodes: int,
        in_indptr: Sequence[int],
        in_indices: Sequence[int],
        in_signs: Sequence[int],
        out_indptr: Sequence[int],
        out_indices: Sequence[int],
        out_signs: Sequence[int],
        push: Sequence[int],
        kinds: Sequence[int],
        fan_in: Sequence[int],
        version: int = 0,
        decision_version: int = 0,
    ) -> None:
        self.num_nodes = num_nodes
        self.in_indptr = list(in_indptr)
        self.in_indices = list(in_indices)
        self.in_signs = list(in_signs)
        self.out_indptr = list(out_indptr)
        self.out_indices = list(out_indices)
        self.out_signs = list(out_signs)
        self.push = list(push)
        self.kinds = list(kinds)
        self.fan_in = list(fan_in)
        self.version = version
        self.decision_version = decision_version
        self._np_cache = None

    @property
    def num_edges(self) -> int:
        return len(self.in_indices)

    def numpy_arrays(self):
        """The snapshot as numpy arrays (``None`` when numpy is missing)."""
        if _np is None:  # pragma: no cover - the image ships numpy
            return None
        if self._np_cache is None:
            self._np_cache = {
                "in_indptr": _np.asarray(self.in_indptr, dtype=_np.int32),
                "in_indices": _np.asarray(self.in_indices, dtype=_np.int32),
                "in_signs": _np.asarray(self.in_signs, dtype=_np.int8),
                "out_indptr": _np.asarray(self.out_indptr, dtype=_np.int32),
                "out_indices": _np.asarray(self.out_indices, dtype=_np.int32),
                "out_signs": _np.asarray(self.out_signs, dtype=_np.int8),
                "push": _np.asarray(self.push, dtype=_np.uint8),
                "kinds": _np.asarray(self.kinds, dtype=_np.uint8),
                "fan_in": _np.asarray(self.fan_in, dtype=_np.int32),
            }
        return self._np_cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OverlayCSR(nodes={self.num_nodes}, edges={self.num_edges})"
