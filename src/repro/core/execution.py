"""Overlay execution: processing writes and reads (paper Section 2.2.2).

The runtime holds a partial aggregate object (PAO) for every node annotated
*push* and nothing for *pull* nodes.  A write enters at its writer node,
updates the writer's sliding window and PAO, and propagates through
consecutive push nodes; propagation stops at the push/pull frontier.  A read
at a push reader returns its PAO immediately; at a pull reader it pulls PAOs
from upstream, merging (or subtracting, across negative edges) as it goes.

Two propagation strategies, selected by the aggregate's family
(see :mod:`repro.core.aggregates`):

* **group** (subtractable) — updates travel as small *delta* PAOs; applying
  one is O(|delta|), the ``H(k) ∝ 1`` regime;
* **lattice** (MAX-like) — updates travel as ``(old, new)`` pairs; each push
  node keeps its inputs' last values, applies an O(1) fast path when the
  change cannot lower the extremum, and recomputes otherwise.

Compiled propagation plans
--------------------------
The hot path no longer traverses the dict-of-dict overlay per event.  Once
dataflow decisions are fixed, the runtime freezes the overlay into CSR
arrays (:meth:`repro.core.overlay.Overlay.to_csr`) and compiles, lazily and
per entry point:

* a **push plan** per writer — for group aggregates, the exact ``(dst,
  cumulative_sign, is_push)`` application sequence the interpreter's DFS
  would perform (group propagation never short-circuits, so the sequence is
  static); for Sum/Count a further scalar specialization applies the delta
  with ``values[dst] += sign * delta``;
* a **pull plan** per pull reader — a flat three-op stack program (LEAF /
  ENTER / EXIT) replaying the recursive pull's merge order exactly, so
  reads run without recursion or dict lookups;
* for lattice aggregates, a per-node **compiled adjacency** (propagation is
  data-dependent, so the DFS survives, but over flat tuples instead of
  dicts).

Plans are cached and invalidated precisely: every plan registers the
handles it touches in a dependency index, and structural or decision
changes (overlay dirty set, :meth:`Runtime.set_decision`, rebuilds) drop
only the plans touching the changed handles.  A ``(version,
decision_version)`` stamp check guards against out-of-band overlay
mutation.

The batched entry points :meth:`Runtime.write_batch` /
:meth:`Runtime.read_batch` coalesce same-writer deltas so a batch performs
one plan execution per touched writer instead of one graph traversal per
event.

Columnar value store
--------------------
Aggregate state lives behind a pluggable value store
(:mod:`repro.core.statestore`).  Aggregates that declare a
:class:`~repro.core.aggregates.ColumnSpec` (SUM, COUNT, MEAN as a
``(sum, count)`` column pair, MAX/MIN) keep their PAOs in dense numpy
columns indexed by overlay handle; everything else keeps the seed's
object-list semantics.  On the columnar backend:

* a write batch folds each touched writer's added/evicted run into
  per-column scalar deltas during ingestion, then applies the whole
  batch through a precompiled **scatter table** — one ``np.add.at`` per
  column over ragged per-writer frontier rows — instead of a Python loop
  per plan step;
* pull reads evaluate per-node **pull segments**: the node's direct push
  inputs reduce as one vectorized gather-sum (or ``fmax``/``fmin`` for
  the lattice extrema), nested pull inputs recurse, and
  :meth:`Runtime.read_batch` memoizes evaluated segments keyed by
  ``(node, plan stamp)`` so overlapping readers share subtree work.

Backend choice is invisible: reads are byte-identical between backends
for integer streams (asserted by ``tests/core/test_statestore.py``), and
both the scatter table and the segments ride the existing dependency
-indexed invalidation, so overlay surgery resizes and remaps columns
through the same dirty-set machinery as the plans.

Changed-reader reporting
------------------------
Every write path records the writers whose value actually moved;
:meth:`Runtime.changed_readers` maps that pending set through compiled
per-writer **reader closures** (the full downstream reader set, push and
pull alike, cached and invalidated through the same dependency index as
the plans) and returns the reader nodes whose aggregates may have
changed.  The serving layer (:mod:`repro.serve`) diffs exactly these
candidates after each batch, which keeps continuous-subscription
notification work O(affected readers) instead of O(subscribers).

The runtime also counts *observed* push and pull frequencies per node —
including would-be pushes blocked at the frontier — which the adaptive
controller (Section 4.8) consumes, and can record a micro-operation trace
for the simulated multi-core executor.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import monotonic as _monotonic
from operator import attrgetter, itemgetter
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core import statestore as _statestore
from repro.core.aggregates import NEED_RECOMPUTE
from repro.core.overlay import (
    Decision,
    KIND_READER,
    KIND_WRITER,
    NodeKind,
    Overlay,
    OverlayCSR,
    OverlayError,
)
from repro.core.query import EgoQuery
from repro.core.statestore import WriteFrame, make_value_store
from repro.core.windows import NO_VALUE, TimeWindow, TupleWindow, WindowBuffer

NodeId = Hashable
PAO = Any

#: Pull-plan opcodes: merge a push source, enter a pull node, merge a
#: finished pull node's accumulator into its parent.
_OP_LEAF, _OP_ENTER, _OP_EXIT = 0, 1, 2

#: Plan-kind codes for the dependency-indexed invalidation registry.
_PLAN_PUSH, _PLAN_PULL, _PLAN_SEGMENT, _PLAN_READERS = 0, 1, 2, 3

#: Distinguishes "memo maps this key to None" from "no memo entry".
_MISS = object()

#: C-level batch extraction of WriteEvent-shaped items.
_EVENT_FIELDS = attrgetter("node", "value", "timestamp")
_TRIPLE_NV = itemgetter(0, 1)
_TRIPLE_TS = itemgetter(2)


def normalize_write(item) -> Tuple[NodeId, Any, Optional[float]]:
    """Coerce one batch item into ``(node, value, timestamp)``.

    Accepts ``(node, value)`` / ``(node, value, timestamp)`` tuples and
    WriteEvent-like objects with ``node`` / ``value`` / ``timestamp``
    attributes.
    """
    if isinstance(item, tuple):
        if len(item) == 3:
            return item
        node, value = item
        return (node, value, None)
    return (item.node, item.value, getattr(item, "timestamp", None))


@dataclass
class RuntimeCounters:
    """Operation counters for throughput accounting.

    ``write_seconds`` / ``read_seconds`` accumulate wall time inside the
    batched entry points — but only while ``Runtime.op_timing`` is on
    (the serve layer's metrics plane flips it); they stay 0.0 otherwise
    so the unmetered engine pays nothing for them.
    """

    writes: int = 0
    reads: int = 0
    push_ops: int = 0
    pull_ops: int = 0
    write_seconds: float = 0.0
    read_seconds: float = 0.0

    @property
    def events(self) -> int:
        return self.writes + self.reads

    @property
    def work(self) -> int:
        return self.push_ops + self.pull_ops


@dataclass
class TraceOp:
    """One micro-operation for the simulated executor (Figure 13(d))."""

    handle: int
    kind: str  # "write" | "push" | "pull" | "read"
    fan_in: int


class PushPlan:
    """Compiled propagation of one writer's delta (group aggregates).

    ``steps`` is the exact application sequence of the interpreter's DFS:
    ``(dst, cumulative_sign, is_push, fan_in)``.  ``observe`` lists every
    destination (for observed-push accounting), ``scalar_steps`` is the
    push-only ``(dst, sign)`` specialization for scalar deltas (Sum/Count),
    and ``touched`` indexes the plan into the invalidation registry.
    """

    __slots__ = ("steps", "observe", "scalar_steps", "push_count", "touched")

    def __init__(
        self,
        steps: Tuple[Tuple[int, int, bool, int], ...],
        scalar: bool,
        touched: FrozenSet[int],
    ) -> None:
        self.steps = steps
        self.observe = tuple(step[0] for step in steps)
        self.push_count = sum(1 for step in steps if step[2])
        self.scalar_steps = (
            tuple((dst, sign) for dst, sign, is_push, _ in steps if is_push)
            if scalar
            else None
        )
        self.touched = touched


class PullPlan:
    """Compiled on-demand evaluation of one pull reader.

    ``program`` is a flat list of ``(op, a, b)`` instructions for a tiny
    accumulator-stack machine that replays the recursive pull's exact
    merge order (LEAF: merge a push source, ENTER: start a nested pull
    node's accumulator, EXIT: fold it into the parent with the edge sign).

    For batch-aware memoization the plan also indexes its own nesting:
    ``spans`` maps the program index of each nested ENTER to ``(matching
    exit index, entered node, handles observed inside the span)`` so a
    memo hit can skip the whole sub-program while still crediting the
    observed-pull frequencies; ``exit_nodes`` names the node each EXIT
    completes (the memo store point); ``observe_all`` is every handle the
    full program observes (credited on a whole-plan hit).
    """

    __slots__ = ("program", "pull_ops", "touched", "spans", "exit_nodes", "observe_all")

    def __init__(
        self, program: Tuple[Tuple[int, int, int], ...], touched: FrozenSet[int]
    ) -> None:
        self.program = program
        self.pull_ops = sum(1 for op, _, _ in program if op != _OP_ENTER)
        self.touched = touched
        spans: Dict[int, Tuple[int, int, Tuple[int, ...]]] = {}
        exit_nodes: Dict[int, int] = {}
        enter_stack: List[Tuple[int, int]] = []
        for index, (op, a, _b) in enumerate(program):
            if op == _OP_ENTER:
                enter_stack.append((index, a))
            elif op == _OP_EXIT:
                start, node = enter_stack.pop()
                exit_nodes[index] = node
                spans[start] = (
                    index,
                    node,
                    tuple(
                        sa for so, sa, _ in program[start:index] if so != _OP_EXIT
                    ),
                )
        self.spans = spans
        self.exit_nodes = exit_nodes
        self.observe_all = tuple(a for op, a, _ in program if op != _OP_EXIT)


class PullSegment:
    """One pull node's direct frontier, compiled for vectorized reads.

    ``leaf_idx``/``leaf_sign`` gather the node's *direct* push inputs (in
    input order) for a single vectorized reduction; ``children`` are the
    nested pull inputs, evaluated recursively (and shared through the
    per-batch memo).  ``observe`` credits the handles this segment itself
    observes, ``observe_deep`` the whole subtree (credited on a memo hit
    so the adaptive controller's frequency estimates match unmemoized
    execution); ``ops`` is the merge count a non-memoized evaluation of
    the segment performs.
    """

    __slots__ = (
        "node", "leaf_idx", "leaf_sign", "children",
        "observe", "observe_deep", "ops", "touched",
    )

    def __init__(self, node, leaf_idx, leaf_sign, children, observe, observe_deep, ops, touched):
        self.node = node
        self.leaf_idx = leaf_idx
        self.leaf_sign = leaf_sign
        self.children = children
        self.observe = observe
        self.observe_deep = observe_deep
        self.ops = ops
        self.touched = touched


class ReaderClosure:
    """One writer's downstream reader set, compiled for change reporting.

    ``readers`` holds the *data-graph node ids* of every reader reachable
    from the writer in the overlay — regardless of push/pull decisions,
    because a pull reader's value changes just as much when an upstream
    writer moves (it is merely computed on demand).  ``touched`` indexes
    the closure into the same dependency-indexed invalidation registry as
    the propagation plans, so overlay surgery drops exactly the closures
    it reroutes.
    """

    __slots__ = ("readers", "touched")

    def __init__(self, readers: Tuple[NodeId, ...], touched: FrozenSet[int]) -> None:
        self.readers = readers
        self.touched = touched


class _ScatterTable:
    """Ragged per-writer frontiers, frozen for whole-batch scatters.

    ``indptr[w]:indptr[w+1]`` slices ``dst``/``coeff`` to every
    destination writer ``w``'s compiled propagation observes, in the exact
    order the per-writer plan would visit them.  ``coeff`` carries the
    cumulative edge sign for push destinations and **0** for would-be
    pushes stopping at the pull frontier — so one ragged expansion serves
    both scatters of a batch: ``np.add.at(column, dst, coeff * delta)``
    applies the value updates (pull-frontier rows contribute exact zeros)
    and ``np.add.at(observed, dst, events)`` credits the observed-push
    frequencies.  ``push_counts[w]`` is the number of real push
    applications in ``w``'s row (the work-counter credit).
    """

    __slots__ = ("indptr", "dst", "coeff", "push_counts", "has_push")

    def __init__(self, indptr, dst, coeff, push_counts):
        self.indptr = indptr
        self.dst = dst
        self.coeff = coeff
        self.push_counts = push_counts
        # All-pull frontier right at the writers (pure on-demand systems):
        # batches then skip the per-batch push-count gather entirely.
        self.has_push = bool(push_counts.any())

    def expand(self, np, w_arr):
        """Ragged expansion of ``w_arr``'s frontier rows.

        Returns ``(idx, counts)`` where ``idx`` indexes ``dst``/``coeff``
        with every row of every writer in ``w_arr``, writers in input
        order and steps in row order, or ``None`` when the rows are all
        empty.
        """
        starts = self.indptr[w_arr]
        counts = self.indptr[w_arr + 1] - starts
        total = int(counts.sum())
        if not total:
            return None
        prefix = np.cumsum(counts) - counts
        idx = np.repeat(starts - prefix, counts) + np.arange(
            total, dtype=np.int64
        )
        return idx, counts


class Runtime:
    """Executes one compiled query over an annotated overlay."""

    def __init__(
        self,
        overlay: Overlay,
        query: EgoQuery,
        buffers: Optional[Dict[NodeId, WindowBuffer]] = None,
        collect_trace: bool = False,
        value_store: str = "auto",
        stamp: int = 0,
        shm_name: Optional[str] = None,
    ) -> None:
        self.overlay = overlay
        self.query = query
        self.aggregate = query.aggregate
        self.group = self.aggregate.subtractable
        if not self.group and overlay.num_negative_edges:
            raise OverlayError(
                f"overlay has negative edges but {self.aggregate.name} "
                "does not support subtraction"
            )
        if not overlay.decisions_consistent():
            raise OverlayError("overlay decisions are inconsistent (pull feeds push)")
        self._time_window = isinstance(query.window, TimeWindow)
        # ``ROWS 1`` (latest value per writer): a batch's net effect per
        # writer telescopes to (last value - previous slot), unlocking the
        # grouped columnar ingestion path.
        self._unit_window = (
            isinstance(query.window, TupleWindow) and query.window.size == 1
        )
        # Per-writer sliding windows, keyed by *graph node id* so they can
        # survive overlay rebuilds.
        self.buffers: Dict[NodeId, WindowBuffer] = buffers if buffers is not None else {}
        # Global write stamp: bumped once per ingestion call (write /
        # write_batch), never reset by rebuild() — seedable at construction
        # so a runtime restored from checkpointed buffers continues the
        # sequence of the instance it replaces.  Changed-reader reports are
        # tagged with it (:meth:`changed_report`), giving downstream
        # consumers (the serve layer's notifications) a version that is
        # stable across overlay rebuilds and shard restarts.
        self.stamp = stamp
        # -- pluggable value store ------------------------------------
        self.value_store_mode = value_store
        self.values = make_value_store(
            self.aggregate, overlay.num_nodes, value_store, shm_name=shm_name
        )
        # "shared" is columnar state in a shared-memory mapping: every
        # columnar kernel applies unchanged (the columns are numpy views).
        self._columnar = self.values.backend in ("columnar", "shared")
        self._spec = self.aggregate.column_spec if self._columnar else None
        self._columnar_delta = self._columnar and self._spec.kind == "delta"
        self._scalar_buffers = self._columnar and self._spec.scalar_raws
        if self._columnar and self._spec.kind == "lattice":
            self._seg_fold = (
                _statestore._np.fmax
                if self._spec.merge_ufunc == "maximum"
                else _statestore._np.fmin
            )
        else:
            self._seg_fold = None
        self.snapshots: List[Optional[Dict[int, PAO]]] = []
        self._observed_push_store = []
        self.observed_pull = []
        # Deferred observed-push credits from columnar batches: (writer,
        # events) pairs expanded through the scatter table only when the
        # counters are actually read (or before the table is invalidated).
        # Tuple-window batches defer at batch granularity instead: the
        # extracted event triples are retained whole (O(1) per batch) and
        # counted per writer only at flush time.
        self._obs_pending_handles: List[int] = []
        self._obs_pending_events: List[int] = []
        self._obs_raw_batches: List[List] = []
        self.counters = RuntimeCounters()
        # Engine-op wall-time accounting for the observability plane:
        # off by default; the serve layer's ShardHost re-syncs it onto
        # whatever runtime the engine currently holds (recompiles swap
        # the instance) before each batch.
        self.op_timing = False
        self.clock = 0.0
        self._expiry_heap: List[Tuple[float, int]] = []
        self.trace: Optional[List[TraceOp]] = [] if collect_trace else None
        # Columnar lattice execution (MAX/MIN over columns): per-input
        # snapshots are redundant — a push node's snapshot of input ``src``
        # always equals ``values[src]`` (every emitted message updates all
        # consumers before propagation descends), so recomputes gather the
        # inputs' columns directly and batches of grow-only updates apply
        # as one ``fmax.at``/``fmin.at`` scatter.  Trace collection keeps
        # the snapshot-based interpreter (micro-op parity with the seed).
        self._lattice_columns = (
            self._columnar and self._spec.kind == "lattice" and self.trace is None
        )
        # The identity PAO is immutable by the aggregate API contract
        # (merge/subtract never mutate arguments), so one instance serves
        # every identity use instead of reconstructing it per operation.
        self._identity = self.aggregate.identity()
        self._scalar_group = self.group and getattr(
            self.aggregate, "scalar_delta", False
        )
        # -- compiled-plan caches -------------------------------------
        self._push_plans: Dict[int, PushPlan] = {}
        self._pull_plans: Dict[int, PullPlan] = {}
        self._pull_segments: Dict[int, PullSegment] = {}
        self._reader_closures: Dict[int, ReaderClosure] = {}
        # Writers whose value changed since the last pop_changed_writers()
        # (dict-as-ordered-set: first-touch order), keyed by *graph node
        # id* — like the window buffers — so the pending report survives
        # overlay rebuilds that remap the handle space.  The serve layer
        # turns this into the set of egos to diff for subscription
        # notifications, which is what keeps notification work O(affected
        # readers) instead of O(subscribers).
        self._changed_writers: Dict[NodeId, None] = {}
        self._plan_deps: Dict[int, Set[Tuple[int, int]]] = {}
        self._out_cache: Dict[int, List[Tuple[int, int, bool, int]]] = {}
        self._csr: Optional[OverlayCSR] = None
        self._scatter: Optional[_ScatterTable] = None
        self._plan_stamp = (overlay.version, overlay.decision_version)
        self.plan_compiles = 0
        self.plan_invalidations = 0
        self.scatter_builds = 0
        self.pull_memo_hits = 0
        # Construction-time dirt predates any compiled plan; absorb it so
        # later pops only carry genuinely new mutations.
        overlay.pop_dirty()
        self._materialize()

    # ------------------------------------------------------------------
    # state materialization
    # ------------------------------------------------------------------

    def _materialize(self) -> None:
        overlay = self.overlay
        agg = self.aggregate
        n = overlay.num_nodes
        # Overlay surgery may have changed the handle space: the store
        # remaps its columns (or object slots) to the new ids and the loop
        # below re-derives every live PAO.
        self.values.resize(n)
        self.snapshots = [None] * n
        if self._columnar:
            np = _statestore._np
            self._observed_push_store = np.zeros(n, dtype=np.int64)
            self.observed_pull = np.zeros(n, dtype=np.int64)
        else:
            self._observed_push_store = [0] * n
            self.observed_pull = [0] * n
        self._obs_pending_handles = []
        self._obs_pending_events = []
        self._obs_raw_batches = []
        for node, handle in overlay.writer_of.items():
            if node not in self.buffers:
                self.buffers[node] = self.query.window.make_buffer(
                    scalar=self._scalar_buffers
                )
        # Drop buffers of writers no longer present (after node removals).
        live = set(overlay.writer_of)
        for node in [n_ for n_ in self.buffers if n_ not in live]:
            del self.buffers[node]
        # Fused node -> [handle, bound push, entry, batch-marker, buffer]
        # routing for the columnar batch ingestion loop: one dict probe
        # per event resolves the writer handle, the buffer's append fast
        # path and the batch's per-writer accumulator slot in one go.
        self._ingest = {
            node: [handle, self.buffers[node].push, None, None, self.buffers[node]]
            for node, handle in overlay.writer_of.items()
            if node in self.buffers
        }
        self._ingest_by_handle = {
            route[0]: route for route in self._ingest.values()
        }
        for handle in overlay.topological_order():
            kind = overlay.kinds[handle]
            if kind is NodeKind.WRITER:
                buffer = self.buffers.get(overlay.labels[handle])
                if buffer is None:
                    # Tombstoned writer (its graph node was removed): it has
                    # no edges and never receives writes; keep it inert.
                    self.values[handle] = self._identity
                    continue
                self.values[handle] = agg.combine_raw(buffer.values())
                if self._time_window:
                    expiry = buffer.next_expiry()
                    if expiry is not None:
                        heapq.heappush(self._expiry_heap, (expiry, handle))
                continue
            if overlay.decisions[handle] is Decision.PUSH:
                self._initialize_push_node(handle)

    def _initialize_push_node(self, handle: int) -> None:
        """Compute a push node's PAO from its (push, by consistency) inputs."""
        agg = self.aggregate
        acc = self._identity
        snaps: Dict[int, PAO] = {}
        for src, sign in self.overlay.inputs[handle].items():
            value = self.values[src]
            snaps[src] = value
            acc = agg.merge(acc, value) if sign > 0 else agg.subtract(acc, value)
        self.values[handle] = acc
        if not self.group and not self._lattice_columns:
            # Columnar lattice recomputes gather the input columns directly
            # (see __init__), so no per-node snapshot dict is kept.
            self.snapshots[handle] = snaps

    # ------------------------------------------------------------------
    # observed-push accounting
    # ------------------------------------------------------------------

    @property
    def observed_push(self):
        """Observed push frequencies per handle (adaptive signal).

        Columnar batches defer their credits — as ``(writer, events)``
        pairs, or for tuple windows as whole retained event batches — and
        expand them through the scatter table on first read, so the
        batched hot path never pays for bookkeeping nobody is looking at.
        One deliberate nuance: batch-granular deferral credits a writer's
        stream traffic even when its batch delta sums to exactly zero —
        the closer reading of the paper's ``f_h`` write-frequency
        estimate.  Both the object kernel and the per-event
        ``write()`` path skip identity-delta writers instead, so on the
        columnar backend a zero-net-delta workload (e.g. COUNT over a
        full tuple window) reports higher — stream-accurate — frequencies
        through ``write_batch`` than through ``write``.
        """
        if self._obs_pending_handles or self._obs_raw_batches:
            self._flush_observed()
        return self._observed_push_store

    def _flush_observed(self) -> None:
        """Materialize deferred observed-push credits into the counters."""
        raw = self._obs_raw_batches
        if raw:
            self._obs_raw_batches = []
            ingest_get = self._ingest.get
            tally: Dict[int, int] = {}
            for batch in raw:
                if batch.__class__ is tuple:
                    # ``("nodes", [...])`` from the WriteFrame fast path:
                    # only the node column was retained (triples batches
                    # are lists, so the tag is unambiguous).
                    for node in batch[1]:
                        route = ingest_get(node)
                        if route is not None:
                            handle = route[0]
                            tally[handle] = tally.get(handle, 0) + 1
                    continue
                for node, _value, _timestamp in batch:
                    route = ingest_get(node)
                    if route is not None:
                        handle = route[0]
                        tally[handle] = tally.get(handle, 0) + 1
            self._obs_pending_handles.extend(tally.keys())
            self._obs_pending_events.extend(tally.values())
        handles = self._obs_pending_handles
        if not handles:
            return
        events = self._obs_pending_events
        self._obs_pending_handles = []
        self._obs_pending_events = []
        np = _statestore._np
        table = self._scatter
        if table is None:
            table = self._build_scatter_table()
        w_arr = np.asarray(handles, dtype=np.int64)
        expanded = table.expand(np, w_arr)
        if expanded is None:
            return
        idx, counts = expanded
        np.add.at(
            self._observed_push_store,
            table.dst[idx],
            np.repeat(np.asarray(events, dtype=np.int64), counts),
        )

    # ------------------------------------------------------------------
    # plan compilation and invalidation
    # ------------------------------------------------------------------

    def _check_plans(self) -> None:
        """Drop every cached plan if the overlay mutated out-of-band."""
        stamp = (self.overlay.version, self.overlay.decision_version)
        if stamp != self._plan_stamp:
            self.invalidate_plans()
            self._plan_stamp = stamp

    def invalidate_plans(self, handles: Optional[Iterable[int]] = None) -> None:
        """Invalidate compiled plans.

        With ``handles`` given, only plans whose traversal touches one of
        those handles are dropped (precise invalidation); without, the
        whole cache is cleared.  The CSR snapshot, compiled adjacencies and
        the batch scatter table are cheap to rebuild lazily and are always
        dropped (any structural or decision change can reroute a frontier).
        """
        # Deferred observed-push credits belong to the *outgoing* scatter
        # table's frontier rows; settle them before dropping it.
        if self._obs_pending_handles or self._obs_raw_batches:
            self._flush_observed()
        self._csr = None
        self._scatter = None
        self._out_cache.clear()
        if handles is None:
            self.plan_invalidations += (
                len(self._push_plans)
                + len(self._pull_plans)
                + len(self._pull_segments)
                + len(self._reader_closures)
            )
            self._push_plans.clear()
            self._pull_plans.clear()
            self._pull_segments.clear()
            self._reader_closures.clear()
            self._plan_deps.clear()
            return
        deps = self._plan_deps
        for handle in handles:
            bucket = deps.get(handle)
            if bucket:
                for key in list(bucket):
                    self._drop_plan(key)

    def _plan_store(self, kind: int) -> Dict[int, Any]:
        if kind == _PLAN_PUSH:
            return self._push_plans
        if kind == _PLAN_PULL:
            return self._pull_plans
        if kind == _PLAN_SEGMENT:
            return self._pull_segments
        return self._reader_closures

    def _drop_plan(self, key: Tuple[int, int]) -> None:
        kind, root = key
        plan = self._plan_store(kind).pop(root, None)
        if plan is None:
            return
        self.plan_invalidations += 1
        deps = self._plan_deps
        for handle in plan.touched:
            bucket = deps.get(handle)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del deps[handle]

    def _register_plan(self, kind: int, root: int, touched: FrozenSet[int]) -> None:
        key = (kind, root)
        deps = self._plan_deps
        for handle in touched:
            bucket = deps.get(handle)
            if bucket is None:
                bucket = deps[handle] = set()
            bucket.add(key)
        self.plan_compiles += 1

    def _ensure_csr(self) -> OverlayCSR:
        csr = self._csr
        if csr is None:
            csr = self._csr = self.overlay.to_csr()
        return csr

    def _compile_push_plan(self, handle: int) -> PushPlan:
        """Freeze the DFS a group delta from ``handle`` would perform.

        Group propagation never short-circuits (``apply_push`` always
        forwards the signed delta from a push node), so the interpreter's
        stack traversal is fully determined by the structure: simulate it
        over the CSR arrays once, recording every application in order.
        """
        csr = self._ensure_csr()
        out_indptr = csr.out_indptr
        out_indices = csr.out_indices
        out_signs = csr.out_signs
        push = csr.push
        fan_in = csr.fan_in
        steps: List[Tuple[int, int, bool, int]] = []
        touched = {handle}
        stack: List[Tuple[int, int]] = [(handle, 1)]
        while stack:
            node, carried = stack.pop()
            for i in range(out_indptr[node], out_indptr[node + 1]):
                dst = out_indices[i]
                sign = carried * out_signs[i]
                is_push = bool(push[dst])
                steps.append((dst, sign, is_push, fan_in[dst]))
                touched.add(dst)
                if is_push:
                    stack.append((dst, sign))
        plan = PushPlan(tuple(steps), self._scalar_group, frozenset(touched))
        self._push_plans[handle] = plan
        self._register_plan(_PLAN_PUSH, handle, plan.touched)
        return plan

    def _compile_pull_plan(self, root: int) -> PullPlan:
        """Flatten the recursive pull of ``root`` into a stack program."""
        csr = self._ensure_csr()
        in_indptr = csr.in_indptr
        in_indices = csr.in_indices
        in_signs = csr.in_signs
        push = csr.push
        fan_in = csr.fan_in
        program: List[Tuple[int, int, int]] = []
        touched = {root}
        # Work items mirror the recursion: ENTER emits the node then
        # schedules its children in input order (LEAF for push sources,
        # ENTER+EXIT for nested pull nodes); EXIT folds a finished child
        # into its parent with the edge sign.
        stack: List[Tuple[int, int, int]] = [(_OP_ENTER, root, 0)]
        while stack:
            op, a, b = stack.pop()
            if op == _OP_LEAF:
                program.append((_OP_LEAF, a, b))
                continue
            if op == _OP_EXIT:
                program.append((_OP_EXIT, b, 0))
                continue
            node = a
            program.append((_OP_ENTER, node, fan_in[node]))
            # Children are pushed reversed so they run in input order.
            for i in range(in_indptr[node + 1] - 1, in_indptr[node] - 1, -1):
                src = in_indices[i]
                sign = in_signs[i]
                touched.add(src)
                if push[src]:
                    stack.append((_OP_LEAF, src, sign))
                else:
                    stack.append((_OP_EXIT, src, sign))
                    stack.append((_OP_ENTER, src, 0))
        plan = PullPlan(tuple(program), frozenset(touched))
        self._pull_plans[root] = plan
        self._register_plan(_PLAN_PULL, root, plan.touched)
        return plan

    def _compile_pull_segment(self, node: int) -> PullSegment:
        """Compile one pull node's direct frontier for vectorized reads.

        Children (nested pull inputs) are compiled recursively first so the
        segment's deep observation list and dependency registration cover
        the whole subtree — precise invalidation then matches the
        monolithic pull plans exactly.
        """
        existing = self._pull_segments.get(node)
        if existing is not None:
            return existing
        np = _statestore._np
        overlay = self.overlay
        decisions = overlay.decisions
        leaves: List[int] = []
        signs: List[int] = []
        children: List[Tuple[int, int]] = []
        touched = {node}
        observe: List[int] = [node]
        observe_deep: List[int] = [node]
        for src, sign in overlay.inputs[node].items():
            touched.add(src)
            if decisions[src] is Decision.PUSH:
                leaves.append(src)
                signs.append(sign)
                observe.append(src)
                observe_deep.append(src)
            else:
                child = self._compile_pull_segment(src)
                children.append((src, sign))
                touched |= child.touched
                observe_deep.extend(child.observe_deep.tolist())
        segment = PullSegment(
            node=node,
            leaf_idx=np.asarray(leaves, dtype=np.int64),
            leaf_sign=(
                None
                if all(sign > 0 for sign in signs)
                else np.asarray(signs, dtype=np.int8)
            ),
            children=tuple(children),
            observe=np.asarray(observe, dtype=np.int64),
            observe_deep=np.asarray(observe_deep, dtype=np.int64),
            ops=len(overlay.inputs[node]),
            touched=frozenset(touched),
        )
        self._pull_segments[node] = segment
        self._register_plan(_PLAN_SEGMENT, node, segment.touched)
        return segment

    def _compile_reader_closure(self, writer: int) -> ReaderClosure:
        """Freeze the set of reader nodes downstream of ``writer``.

        The traversal follows *every* overlay edge (not just push edges):
        a changed writer affects each reachable reader's value whether that
        reader materializes it eagerly or computes it on demand.  Reader
        node ids are collected in visit order and deduplicated.
        """
        csr = self._ensure_csr()
        out_indptr = csr.out_indptr
        out_indices = csr.out_indices
        kinds = csr.kinds
        labels = self.overlay.labels
        touched = {writer}
        readers: Dict[NodeId, None] = {}
        stack = [writer]
        while stack:
            node = stack.pop()
            for i in range(out_indptr[node], out_indptr[node + 1]):
                dst = out_indices[i]
                if dst in touched:
                    continue
                touched.add(dst)
                if kinds[dst] == KIND_READER:
                    readers[labels[dst]] = None
                else:
                    stack.append(dst)
        closure = ReaderClosure(tuple(readers), frozenset(touched))
        self._reader_closures[writer] = closure
        self._register_plan(_PLAN_READERS, writer, closure.touched)
        return closure

    # ------------------------------------------------------------------
    # changed-reader reporting (continuous subscriptions)
    # ------------------------------------------------------------------

    def pop_changed_writers(self) -> List[int]:
        """Writer handles whose value changed since the last pop.

        Every write path records the writers it actually moved (zero-delta
        writers are skipped exactly where propagation skips them).  The
        pending set is keyed by graph node id, so it survives overlay
        rebuilds: stale entries map to the writer's *current* handle, and
        writers removed from the overlay drop out silently.
        """
        if not self._changed_writers:
            return []
        writer_of = self.overlay.writer_of
        changed = [
            writer_of[node]
            for node in self._changed_writers
            if node in writer_of
        ]
        self._changed_writers.clear()
        return changed

    def changed_readers(self, writers: Optional[Iterable[int]] = None) -> List[NodeId]:
        """Reader nodes whose aggregate may have changed.

        Maps ``writers`` (default: :meth:`pop_changed_writers`) through the
        compiled per-writer reader closures and deduplicates, so the cost is
        O(affected readers), not O(all readers).  The result is a *candidate*
        set: a reader is included when an upstream writer moved, even if
        cancellation (e.g. a MAX that did not grow) leaves its final value
        unchanged — consumers diff actual values before notifying.
        """
        if writers is None:
            writers = self.pop_changed_writers()
        self._check_plans()
        closures = self._reader_closures
        result: Dict[NodeId, None] = {}
        for writer in writers:
            closure = closures.get(writer)
            if closure is None:
                closure = self._compile_reader_closure(writer)
            for reader in closure.readers:
                result[reader] = None
        return list(result)

    def changed_report(self) -> Tuple[int, List[NodeId]]:
        """``(stamp, readers)``: the changed-reader set with its version.

        ``stamp`` is the global write stamp — the number of ingestion
        calls absorbed over this runtime's whole lineage.  Unlike overlay
        versions or plan stamps it survives overlay rebuilds (the
        attribute is never reset) and shard restarts (a restored runtime
        is seeded with the checkpointed value), so consumers can use it
        to order and correlate change reports across those boundaries.
        """
        return self.stamp, self.changed_readers()

    def _build_scatter_table(self) -> _ScatterTable:
        """Freeze every writer's compiled push frontier into ragged rows.

        Rows replay the exact ``(dst, cumulative_sign)`` application order
        of :meth:`_compile_push_plan`, so a whole-batch ``np.add.at`` over
        concatenated rows performs the same additions, in the same order,
        as the per-writer Python loop.
        """
        np = _statestore._np
        csr = self._ensure_csr()
        out_indptr = csr.out_indptr
        out_indices = csr.out_indices
        out_signs = csr.out_signs
        push = csr.push
        kinds = csr.kinds
        n = self.overlay.num_nodes
        indptr = [0] * (n + 1)
        dsts: List[int] = []
        coeffs: List[int] = []
        push_counts = [0] * n
        for handle in range(n):
            if kinds[handle] == KIND_WRITER:
                pushes = 0
                stack: List[Tuple[int, int]] = [(handle, 1)]
                while stack:
                    node, carried = stack.pop()
                    for i in range(out_indptr[node], out_indptr[node + 1]):
                        dst = out_indices[i]
                        sign = carried * out_signs[i]
                        dsts.append(dst)
                        if push[dst]:
                            coeffs.append(sign)
                            pushes += 1
                            stack.append((dst, sign))
                        else:
                            coeffs.append(0)
                push_counts[handle] = pushes
            indptr[handle + 1] = len(dsts)
        table = _ScatterTable(
            indptr=np.asarray(indptr, dtype=np.int64),
            dst=np.asarray(dsts, dtype=np.int64),
            coeff=np.asarray(coeffs, dtype=np.int8),
            push_counts=np.asarray(push_counts, dtype=np.int64),
        )
        self._scatter = table
        self.scatter_builds += 1
        return table

    def _compile_out(self, node: int) -> List[Tuple[int, int, bool, int]]:
        """Per-node compiled adjacency for data-dependent (lattice) DFS."""
        overlay = self.overlay
        decisions = overlay.decisions
        inputs = overlay.inputs
        out = [
            (dst, inputs[dst][node], decisions[dst] is Decision.PUSH, len(inputs[dst]))
            for dst in overlay.outputs[node]
        ]
        self._out_cache[node] = out
        return out

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def write(self, node: NodeId, value: Any, timestamp: Optional[float] = None) -> None:
        """Process one content update ("write on v")."""
        self.counters.writes += 1
        self.stamp += 1
        if timestamp is None:
            timestamp = self.clock + 1.0
        self.clock = max(self.clock, timestamp)
        if self._time_window:
            self._advance_time(self.clock)
        handle = self.overlay.writer_of.get(node)
        if handle is None:
            return  # no reader observes this node; the write is dropped
        buffer = self.buffers[node]
        evicted = buffer.append(value, timestamp)
        if self._time_window:
            heapq.heappush(
                self._expiry_heap, (timestamp + self.query.window.duration, handle)
            )
        if self.trace is not None:
            self.trace.append(TraceOp(handle, "write", 1))
        message = self.writer_step(handle, [value], evicted)
        if message is not None:
            self._changed_writers[node] = None
            self._propagate(handle, message)

    def write_batch(self, writes: Sequence) -> int:
        """Process many writes, coalescing same-writer deltas.

        ``writes`` holds ``(node, value)`` / ``(node, value, timestamp)``
        tuples or WriteEvent-like objects, in stream order.  Window buffers
        are advanced per event (so eviction semantics match the per-event
        loop exactly), but propagation runs once per touched writer: the
        writer-local step sees the batch's full added/evicted lists and a
        single compiled-plan execution carries the combined delta.  Returns
        the number of writes processed.
        """
        if not self.op_timing:
            return self._write_batch_impl(writes)
        t0 = _monotonic()
        try:
            return self._write_batch_impl(writes)
        finally:
            self.counters.write_seconds += _monotonic() - t0

    def _write_batch_impl(self, writes: Sequence) -> int:
        self._check_plans()
        self.stamp += 1
        if writes.__class__ is WriteFrame:
            # Packed binary batch (serve ingress / WAL replay): the ROWS-1
            # columnar path scatters straight from the record columns; any
            # other configuration falls back to plain triples.
            if (
                self._columnar_delta
                and self.trace is None
                and self._unit_window
                and not self._time_window
            ):
                result = self._write_frame_unit(writes)
                if result is not None:
                    return result
            writes = writes.tolist()
        if self._columnar_delta and self.trace is None:
            return self._write_batch_columnar(writes)
        overlay = self.overlay
        writer_of = overlay.writer_of
        buffers = self.buffers
        trace = self.trace
        time_window = self._time_window
        duration = self.query.window.duration if time_window else 0.0
        clock = self.clock
        # dict preserves insertion order: propagation runs in first-touch order
        pending: Dict[int, Tuple[List[Any], List[Any]]] = {}
        count = 0
        try:
            for item in writes:
                # inlined normalize_write: this loop is the ingestion hot path
                if item.__class__ is tuple:
                    if len(item) == 3:
                        node, value, timestamp = item
                    else:
                        node, value = item
                        timestamp = None
                else:
                    node = item.node
                    value = item.value
                    timestamp = getattr(item, "timestamp", None)
                count += 1
                if timestamp is None:
                    timestamp = clock + 1.0
                if timestamp > clock:
                    clock = timestamp
                if time_window:
                    self.clock = clock
                    self._advance_time_deferred(clock, pending)
                handle = writer_of.get(node)
                if handle is None:
                    continue
                evicted = buffers[node].append(value, timestamp)
                if time_window:
                    heapq.heappush(self._expiry_heap, (timestamp + duration, handle))
                entry = pending.get(handle)
                if entry is None:
                    entry = pending[handle] = ([], [])
                entry[0].append(value)
                if evicted:
                    entry[1].extend(evicted)
                if trace is not None:
                    trace.append(TraceOp(handle, "write", 1))
        finally:
            # Even when an item raises (e.g. a non-monotone timestamp),
            # values already absorbed into buffers must propagate so push
            # state stays consistent with the windows.
            self.clock = clock
            self.counters.writes += count
            self._apply_pending(pending, trace)
        return count

    def _apply_pending(
        self,
        pending: Dict[int, Tuple[List[Any], List[Any]]],
        trace: Optional[List[TraceOp]],
    ) -> None:
        """Propagation phase of a batch: one plan execution per writer."""
        if self._lattice_columns and trace is None:
            self._apply_pending_lattice(pending)
            return
        if self._scalar_group and trace is None:
            # Scalar kernel: coalesced delta per writer, applied through the
            # compiled plan with plain arithmetic (matches writer_step +
            # merge exactly: both are sequential ``+``/``-`` folds).
            agg = self.aggregate
            lift = agg.lift
            identity = self._identity
            plans = self._push_plans
            observed = self.observed_push
            values = self.values.data
            changed = self._changed_writers
            labels = self.overlay.labels
            push_ops = 0
            for handle, (added, evicted) in pending.items():
                delta = identity
                for raw in added:
                    delta = delta + lift(raw)
                for raw in evicted:
                    delta = delta - lift(raw)
                if delta == identity:
                    continue
                changed[labels[handle]] = None
                values[handle] = values[handle] + delta
                plan = plans.get(handle)
                if plan is None:
                    plan = self._compile_push_plan(handle)
                events = len(added) or 1  # eviction-only: one expiry sweep
                for dst in plan.observe:
                    observed[dst] += events
                for dst, sign in plan.scalar_steps:
                    values[dst] += sign * delta
                push_ops += plan.push_count
            self.counters.push_ops += push_ops
            return
        labels = self.overlay.labels
        for handle, (added, evicted) in pending.items():
            message = self.writer_step(handle, added, evicted)
            if message is not None:
                self._changed_writers[labels[handle]] = None
                self._propagate(handle, message, len(added) or 1)

    # ------------------------------------------------------------------
    # columnar lattice batches (MAX/MIN scatters)
    # ------------------------------------------------------------------

    def _apply_pending_lattice(self, pending) -> None:
        """Columnar MAX/MIN propagation: grow-only writers scatter as one
        ``fmax.at``/``fmin.at``, the rest take the column-based DFS.

        A writer whose batch run evicted nothing can only *raise* the
        extremum (lattice merges are monotone), so its whole downstream
        frontier applies as an idempotent extremum scatter over the same
        ragged rows the delta kernels use — pull-frontier rows (coefficient
        0 in the scatter table) are masked out, and lattice overlays carry
        no negative edges, so every surviving coefficient is +1.  Writers
        that saw an eviction (the extremum may shrink) recompute from their
        window buffer and propagate through the data-dependent DFS, which
        gathers input columns directly instead of per-node snapshots.

        Observed-push accounting: scattered writers defer full-closure
        credits through the scatter table (the stream-frequency semantics
        of the delta kernels); DFS writers credit per visited node like
        the interpreter.  Both feed the same adaptive estimates.
        """
        np = _statestore._np
        is_max = self._spec.merge_ufunc == "maximum"
        fold_at = np.fmax.at if is_max else np.fmin.at
        store = self.values
        column = store.columns[0]
        cleared = store._cleared
        changed = self._changed_writers
        labels = self.overlay.labels
        grow_handles: List[int] = []
        grow_values: List[float] = []
        grow_events: List[int] = []
        slow: List[Tuple[int, Tuple[List[Any], List[Any]]]] = []
        for handle, entry in pending.items():
            added, evicted = entry
            if evicted or not added:
                slow.append((handle, entry))
                continue
            extremum = float(max(added) if is_max else min(added))
            if not cleared[handle]:
                old = column[handle]
                if (extremum <= old) if is_max else (extremum >= old):
                    continue  # the writer's value did not move: no-op batch
            grow_handles.append(handle)
            grow_values.append(extremum)
            grow_events.append(len(added))
            changed[labels[handle]] = None
        if grow_handles:
            table = self._scatter
            if table is None:
                table = self._build_scatter_table()
            count = len(grow_handles)
            w_arr = np.fromiter(grow_handles, dtype=np.int64, count=count)
            v_arr = np.fromiter(grow_values, dtype=np.float64, count=count)
            column[w_arr] = v_arr
            cleared[w_arr] = False
            expanded = table.expand(np, w_arr)
            if expanded is not None:
                idx, counts = expanded
                live = table.coeff[idx] != 0  # drop pull-frontier rows
                if live.any():
                    dsts = table.dst[idx][live]
                    fold_at(column, dsts, np.repeat(v_arr, counts)[live])
                    cleared[dsts] = False
            self.counters.push_ops += int(table.push_counts[w_arr].sum())
            self._obs_pending_handles.extend(grow_handles)
            self._obs_pending_events.extend(grow_events)
        for handle, (added, evicted) in slow:
            message = self.writer_step(handle, added, evicted)
            if message is not None:
                changed[labels[handle]] = None
                self._propagate_lattice_columns(
                    handle, message[0], message[1], len(added) or 1
                )

    def _propagate_lattice_columns(
        self, source: int, old: PAO, new: PAO, events: int = 1
    ) -> None:
        """Lattice DFS over compiled adjacencies, state in columns.

        Identical control flow to :meth:`_propagate_lattice`, but node
        values come from the columnar store's element accessors and a
        :data:`NEED_RECOMPUTE` gathers the destination's *input columns*
        instead of a snapshot dict — valid because a push node's snapshot
        of input ``src`` always mirrors ``values[src]`` (see __init__).
        """
        agg = self.aggregate
        store = self.values
        inputs = self.overlay.inputs
        observed = self.observed_push
        counters = self.counters
        out_cache = self._out_cache
        stack: List[Tuple[int, PAO, PAO]] = [(source, old, new)]
        while stack:
            node, node_old, node_new = stack.pop()
            out = out_cache.get(node)
            if out is None:
                out = self._compile_out(node)
            for dst, _sign, is_push, _fan_in in out:
                observed[dst] += events
                if not is_push:
                    continue
                current = store[dst]
                updated = agg.fast_update(current, node_old, node_new)
                if updated is NEED_RECOMPUTE:
                    updated = agg.combine(store[src] for src in inputs[dst])
                counters.push_ops += 1
                if updated != current:
                    store[dst] = updated
                    stack.append((dst, current, updated))

    # ------------------------------------------------------------------
    # columnar batched writes
    # ------------------------------------------------------------------

    def _write_batch_columnar(self, writes: Sequence) -> int:
        """Columnar-backend write batch: fold-then-scatter.

        Ingestion mirrors the generic loop event for event (same clock,
        window and expiry semantics), but instead of materializing
        added/evicted lists it folds each writer's run directly into a
        running ``[value delta, count delta, coalesced events]``
        accumulator on the writer's ingest route — exactly the sufficient
        statistics for every delta column source — and the propagation
        phase applies the whole batch through the scatter table in a
        handful of numpy calls.  Tuple windows additionally take the
        buffers' allocation-free
        :meth:`~repro.core.windows.WindowBuffer.push` path, fusing the
        steady-state (window full) event into a single ``+= value - old``.
        """
        time_window = self._time_window
        use_value = "value" in self._spec.sources
        clock = self.clock
        if writes.__class__ is not list and not isinstance(writes, tuple):
            # The fast paths re-iterate on extraction fallback; a one-shot
            # iterator would silently lose the already-consumed prefix.
            writes = list(writes)
        if self._unit_window:
            result = self._write_batch_unit(writes, clock, use_value)
            if result is not None:
                return result
            # (fell through: heterogeneous items or None timestamps)
        marker = object()  # tags routes touched by *this* batch
        touched: List[List] = []  # touched routes, in first-touch order
        touched_append = touched.append
        ingest_get = self._ingest.get
        count = 0
        try:
            if not time_window:
                # Tuple windows never consult timestamps, so events can be
                # unpacked in one C-level pass (uniform WriteEvent-shaped
                # items; anything else falls back to per-item dispatch).
                try:
                    triples = list(map(_EVENT_FIELDS, writes))
                except AttributeError:
                    triples = [
                        (
                            (item[0], item[1], item[2])
                            if item.__class__ is tuple and len(item) == 3
                            else (item[0], item[1], None)
                            if item.__class__ is tuple
                            else (
                                item.node,
                                item.value,
                                getattr(item, "timestamp", None),
                            )
                        )
                        for item in writes
                    ]
                count = len(triples)
                # Observed-push credits for the whole batch are deferred
                # by retaining the extracted triples (O(1)); per-writer
                # add counts are tallied only at flush time.  The cap
                # bounds retained memory on read-free streams.
                self._obs_raw_batches.append(triples)
                if len(self._obs_raw_batches) >= 256:
                    self._flush_observed()
                if use_value:
                    # Hyper path: SUM/MEAN-style value folding; the
                    # steady-state event is one fused ``+= value - old``.
                    for node, value, timestamp in triples:
                        if timestamp is None:
                            timestamp = clock = clock + 1.0
                        elif timestamp > clock:
                            clock = timestamp
                        route = ingest_get(node)
                        if route is None:
                            continue  # no reader observes this node
                        old = route[1](value, timestamp)
                        if route[3] is marker:
                            entry = route[2]
                        else:
                            entry = route[2] = [0.0, 0, 0]
                            route[3] = marker
                            touched_append(route)
                        if old is NO_VALUE:
                            entry[0] += value
                            entry[1] += 1
                        else:
                            entry[0] += value - old
                else:
                    # COUNT-style: payloads are opaque, only arrivals fold.
                    for node, value, timestamp in triples:
                        if timestamp is None:
                            timestamp = clock = clock + 1.0
                        elif timestamp > clock:
                            clock = timestamp
                        route = ingest_get(node)
                        if route is None:
                            continue
                        old = route[1](value, timestamp)
                        if route[3] is marker:
                            entry = route[2]
                        else:
                            entry = route[2] = [0.0, 0, 0]
                            route[3] = marker
                            touched_append(route)
                        if old is NO_VALUE:
                            entry[1] += 1
            else:
                duration = self.query.window.duration
                heap = self._expiry_heap
                for item in writes:
                    if item.__class__ is tuple:
                        if len(item) == 3:
                            node, value, timestamp = item
                        else:
                            node, value = item
                            timestamp = None
                    else:
                        node = item.node
                        value = item.value
                        timestamp = getattr(item, "timestamp", None)
                    count += 1
                    if timestamp is None:
                        timestamp = clock = clock + 1.0
                    elif timestamp > clock:
                        clock = timestamp
                    self.clock = clock
                    self._advance_time_deferred_scalar(
                        clock, marker, touched, use_value
                    )
                    route = ingest_get(node)
                    if route is None:
                        continue
                    evicted = route[4].append(value, timestamp)
                    heapq.heappush(heap, (timestamp + duration, route[0]))
                    if route[3] is marker:
                        entry = route[2]
                    else:
                        entry = route[2] = [0.0, 0, 0]
                        route[3] = marker
                        touched_append(route)
                    if use_value:
                        entry[0] += value
                    entry[1] += 1
                    entry[2] += 1
                    if evicted:
                        if use_value:
                            for raw in evicted:
                                entry[0] -= raw
                        entry[1] -= len(evicted)
        finally:
            # Mirror the generic batch loop: values already absorbed into
            # buffers must propagate even when an item raises.
            self.clock = clock
            self.counters.writes += count
            self._apply_pending_columnar(touched, raw_observed=not time_window)
        return count

    def _write_batch_unit(
        self, writes: Sequence, clock: float, use_value: bool
    ) -> Optional[int]:
        """Grouped columnar ingestion for ``ROWS 1`` windows.

        With a one-slot window a batch's net effect per writer telescopes:
        only the *last* value matters (``delta = last - previous slot``),
        every intermediate write cancels.  The batch is therefore grouped
        with a C-level ``dict(map(...))`` — keeping each writer's last
        value — and the Python loop runs once per unique writer instead of
        once per event.  Returns ``None`` (caller falls back to the
        per-event loop) for heterogeneous items or ``None`` timestamps,
        whose clock semantics need sequential treatment.
        """
        try:
            triples = list(map(_EVENT_FIELDS, writes))
        except AttributeError:
            return None
        count = len(triples)
        if not count:
            return 0
        try:
            ts_max = max(map(_TRIPLE_TS, triples))
            if ts_max > clock:
                clock = ts_max
        except TypeError:  # a None timestamp: needs the sequential loop
            return None
        # Whole-batch observed-push deferral (tallied per writer at flush).
        self._obs_raw_batches.append(triples)
        if len(self._obs_raw_batches) >= 256:
            self._flush_observed()
        # C-level grouping: keep each writer's LAST value, in first-touch
        # key order (matching the per-event loop's coalescing order).
        last = dict(map(_TRIPLE_NV, triples))
        ingest_get = self._ingest.get
        use_count = "count" in self._spec.sources
        writers: List[int] = []
        value_deltas: List[float] = []
        count_deltas: List[int] = []
        try:
            if use_value:  # SUM / MEAN
                for node, value in last.items():
                    route = ingest_get(node)
                    if route is None:
                        continue
                    old = route[1](value, clock)
                    if old is NO_VALUE:
                        dv = value
                        dc = 1
                    else:
                        dv = value - old
                        dc = 0
                    if dv or (dc and use_count):
                        writers.append(route[0])
                        value_deltas.append(dv)
                        count_deltas.append(dc)
            else:  # COUNT: only first-fill changes the count
                for node, value in last.items():
                    route = ingest_get(node)
                    if route is None:
                        continue
                    if route[1](value, clock) is NO_VALUE:
                        writers.append(route[0])
                        count_deltas.append(1)
        finally:
            self.clock = clock
            self.counters.writes += count
            self._scatter_deltas(writers, value_deltas, count_deltas, None)
        return count

    def _write_frame_unit(self, frame: WriteFrame) -> Optional[int]:
        """:meth:`_write_batch_unit` fed straight from a packed frame.

        Mirrors the grouped ROWS-1 path exactly — same last-per-writer
        grouping in first-touch order, same per-unique-writer route loop,
        same scatter — but extracts the batch from the frame's record
        columns in three C-level ``tolist()`` calls instead of a
        per-item unpack, and defers observed-push credits as the node
        column alone.  Frames never carry ``None`` timestamps (they are
        packed ``f8``), so the sequential-clock fallback of the triple
        path cannot trigger here.
        """
        count = len(frame)
        if not count:
            return 0
        clock = self.clock
        records = frame.records
        ts_max = float(records["timestamp"].max())
        if ts_max > clock:
            clock = ts_max
        nodes = records["node"].tolist()
        # Whole-batch observed-push deferral: only the node column is
        # needed for the per-writer tally (see _flush_observed).
        self._obs_raw_batches.append(("nodes", nodes))
        if len(self._obs_raw_batches) >= 256:
            self._flush_observed()
        last = dict(zip(nodes, records["value"].tolist()))
        ingest_get = self._ingest.get
        use_value = "value" in self._spec.sources
        use_count = "count" in self._spec.sources
        writers: List[int] = []
        value_deltas: List[float] = []
        count_deltas: List[int] = []
        try:
            if use_value:  # SUM / MEAN
                for node, value in last.items():
                    route = ingest_get(node)
                    if route is None:
                        continue
                    old = route[1](value, clock)
                    if old is NO_VALUE:
                        dv = value
                        dc = 1
                    else:
                        dv = value - old
                        dc = 0
                    if dv or (dc and use_count):
                        writers.append(route[0])
                        value_deltas.append(dv)
                        count_deltas.append(dc)
            else:  # COUNT: only first-fill changes the count
                for node, value in last.items():
                    route = ingest_get(node)
                    if route is None:
                        continue
                    if route[1](value, clock) is NO_VALUE:
                        writers.append(route[0])
                        count_deltas.append(1)
        finally:
            self.clock = clock
            self.counters.writes += count
            self._scatter_deltas(writers, value_deltas, count_deltas, None)
        return count

    def _advance_time_deferred_scalar(
        self, now: float, marker: Any, touched: List[List], use_value: bool
    ) -> None:
        """Batch-mode expiry for the columnar path: evictions fold into the
        touched routes' running delta accumulators."""
        heap = self._expiry_heap
        by_handle = self._ingest_by_handle
        while heap and heap[0][0] <= now:
            _, handle = heapq.heappop(heap)
            route = by_handle.get(handle)
            if route is None:
                continue
            evicted = route[4].evict_until(now)
            if evicted:
                if route[3] is marker:
                    entry = route[2]
                else:
                    entry = route[2] = [0.0, 0, 0]
                    route[3] = marker
                    touched.append(route)
                if use_value:
                    for raw in evicted:
                        entry[0] -= raw
                entry[1] -= len(evicted)

    def _apply_pending_columnar(
        self, touched: List[List], raw_observed: bool = False
    ) -> None:
        """Propagation phase of a columnar batch: one scatter per column.

        Per-writer column deltas come straight off the touched routes'
        accumulators (``value`` columns from the folded value delta,
        ``count`` columns from the count delta); zero-delta writers'
        *state* is skipped exactly as the object kernel skips identity
        deltas.  The concatenated ragged rows apply with ``np.add.at`` in
        (writer, step) order — the same addition sequence as the
        per-writer loop, so results match bit for bit.  With
        ``raw_observed`` the observed-push credits were already deferred
        at batch granularity by the ingestion loop; otherwise they are
        recorded here as (writer, events) pairs.
        """
        if not touched:
            return
        sources = self._spec.sources
        use_value = "value" in sources
        use_count = "count" in sources
        writers: List[int] = []
        events_list: List[int] = []
        value_deltas: List[float] = []
        count_deltas: List[int] = []
        if use_value and not use_count:  # SUM: single value column
            if raw_observed:
                for route in touched:
                    dv = route[2][0]
                    if not dv:
                        continue
                    writers.append(route[0])
                    value_deltas.append(dv)
            else:
                for route in touched:
                    entry = route[2]
                    dv = entry[0]
                    if not dv:
                        continue
                    writers.append(route[0])
                    events_list.append(entry[2] or 1)  # eviction-only sweep
                    value_deltas.append(dv)
        else:
            for route in touched:
                entry = route[2]
                dv = entry[0] if use_value else 0
                dc = entry[1] if use_count else 0
                if not dv and not dc:
                    continue
                writers.append(route[0])
                if not raw_observed:
                    events_list.append(entry[2] or 1)
                if use_value:
                    value_deltas.append(dv)
                if use_count:
                    count_deltas.append(dc)
        self._scatter_deltas(
            writers,
            value_deltas,
            count_deltas,
            None if raw_observed else events_list,
        )

    def _scatter_deltas(
        self,
        writers: List[int],
        value_deltas: List[float],
        count_deltas: List[int],
        events_list: Optional[List[int]],
    ) -> None:
        """Apply per-writer column deltas through the scatter table.

        ``events_list`` of ``None`` means the observed-push credits for
        these writers were already deferred at batch granularity.
        """
        if not writers:
            return
        changed = self._changed_writers
        labels = self.overlay.labels
        for writer in writers:
            changed[labels[writer]] = None
        np = _statestore._np
        table = self._scatter
        if table is None:
            table = self._build_scatter_table()
        sources = self._spec.sources
        columns = self.values.columns
        num_writers = len(writers)
        w_arr = np.fromiter(writers, dtype=np.int64, count=num_writers)
        deltas = tuple(
            np.fromiter(
                value_deltas if source == "value" else count_deltas,
                dtype=column.dtype,
                count=num_writers,
            )
            for source, column in zip(sources, columns)
        )
        push_total = (
            int(table.push_counts[w_arr].sum()) if table.has_push else 0
        )
        if push_total:
            # Pull-frontier rows carry coefficient 0 (see _ScatterTable).
            idx, counts = table.expand(np, w_arr)
            dsts = table.dst[idx]
            coeff = table.coeff[idx]
            reps = np.repeat(
                np.arange(num_writers, dtype=np.int64), counts
            )
            for column, delta in zip(columns, deltas):
                np.add.at(column, dsts, coeff * delta[reps])
        # Writer-local state (writers never receive edges, so these slots
        # are disjoint from every scatter destination).
        for column, delta in zip(columns, deltas):
            column[w_arr] += delta
        # Observed-push credits are deferred (see the observed_push
        # property); batch-granular deferral already retained its events.
        if events_list is not None:
            self._obs_pending_handles.extend(writers)
            self._obs_pending_events.extend(events_list)
        self.counters.push_ops += push_total

    def writer_step(
        self, handle: int, added: List[Any], evicted: List[Any]
    ) -> Optional[PAO]:
        """Writer-local part of a write: update the window PAO.

        Returns the propagation message for the writer's consumers (a delta
        PAO for group aggregates, an ``(old, new)`` pair for lattice ones)
        or ``None`` when nothing downstream can change.  Exposed as a
        micro-task so the multi-threaded *queueing model* can run it under
        a single node lock.
        """
        agg = self.aggregate
        identity = self._identity
        old = self.values[handle]
        if self.group:
            delta = identity
            for raw in added:
                delta = agg.merge(delta, agg.lift(raw))
            for raw in evicted:
                delta = agg.subtract(delta, agg.lift(raw))
            if delta == identity:
                return None
            self.values[handle] = agg.merge(old, delta)
            return delta
        if evicted:
            buffer = self.buffers[self.overlay.labels[handle]]
            new = agg.combine_raw(buffer.values())
        else:
            new = old
            for raw in added:
                new = agg.merge(new, agg.lift(raw))
        if new == old:
            return None
        self.values[handle] = new
        return (old, new)

    def apply_push(self, src: int, dst: int, message: PAO) -> Optional[PAO]:
        """One micro-task of the queueing model: apply ``src``'s change at
        ``dst``; returns ``dst``'s own outgoing message (or ``None`` when
        propagation stops — at the frontier or on a no-op update)."""
        agg = self.aggregate
        overlay = self.overlay
        self.observed_push[dst] += 1
        if overlay.decisions[dst] is Decision.PULL:
            return None
        if self.group:
            sign = overlay.inputs[dst][src]
            outgoing = message if sign > 0 else agg.negate(message)
            self.values[dst] = agg.merge(self.values[dst], outgoing)
            self.counters.push_ops += 1
            if self.trace is not None:
                self.trace.append(TraceOp(dst, "push", overlay.fan_in(dst)))
            return outgoing
        old, new = message
        snaps = self.snapshots[dst]
        current = self.values[dst]
        if snaps is None:
            # Columnar lattice mode keeps no snapshots: the message's own
            # ``old`` *is* src's previous value, and a recompute gathers
            # the inputs' current column values (identical by the
            # snapshot-mirrors-values invariant, see __init__).
            updated = agg.fast_update(current, old, new)
            if updated is NEED_RECOMPUTE:
                updated = agg.combine(
                    self.values[source] for source in overlay.inputs[dst]
                )
        else:
            previous = snaps.get(src, old)
            snaps[src] = new
            updated = agg.fast_update(current, previous, new)
            if updated is NEED_RECOMPUTE:
                updated = agg.combine(snaps.values())
        self.counters.push_ops += 1
        if self.trace is not None:
            self.trace.append(TraceOp(dst, "push", overlay.fan_in(dst)))
        if updated == current:
            return None
        self.values[dst] = updated
        return (current, updated)

    def _propagate(self, source: int, message: PAO, events: int = 1) -> None:
        """Dispatch a writer's message through the compiled hot path.

        ``events`` is how many stream events the message coalesces: the
        *work* counters reflect the single propagation actually performed,
        but ``observed_push`` — the adaptive controller's estimate of
        stream frequencies — is credited per coalesced event so batched
        and per-event execution see the same traffic.
        """
        self._check_plans()
        if self.group:
            self._run_push_plan(source, message, events)
        elif self._lattice_columns:
            self._propagate_lattice_columns(source, message[0], message[1], events)
        else:
            self._propagate_lattice(source, message, events)

    def _run_push_plan(self, source: int, message: PAO, events: int = 1) -> None:
        """Execute a compiled group push plan (zero per-event traversal)."""
        plan = self._push_plans.get(source)
        if plan is None:
            plan = self._compile_push_plan(source)
        observed = self.observed_push
        values = self.values.data
        trace = self.trace
        scalar = plan.scalar_steps
        if scalar is not None and trace is None:
            for dst in plan.observe:
                observed[dst] += events
            if self._columnar:
                column = self.values.columns[0]
                for dst, sign in scalar:
                    column[dst] += sign * message
            else:
                for dst, sign in scalar:
                    values[dst] += sign * message
            self.counters.push_ops += plan.push_count
            return
        agg = self.aggregate
        merge = agg.merge
        negative = None
        for dst, sign, is_push, fan_in in plan.steps:
            observed[dst] += events
            if not is_push:
                continue
            if sign > 0:
                msg = message
            else:
                if negative is None:
                    negative = agg.negate(message)
                msg = negative
            values[dst] = merge(values[dst], msg)
            if trace is not None:
                trace.append(TraceOp(dst, "push", fan_in))
        self.counters.push_ops += plan.push_count

    def _propagate_lattice(self, source: int, message: PAO, events: int = 1) -> None:
        """Lattice DFS over compiled adjacencies (data-dependent stops)."""
        agg = self.aggregate
        values = self.values.data
        snapshots = self.snapshots
        observed = self.observed_push
        counters = self.counters
        trace = self.trace
        out_cache = self._out_cache
        stack: List[Tuple[int, PAO]] = [(source, message)]
        while stack:
            node, msg = stack.pop()
            out = out_cache.get(node)
            if out is None:
                out = self._compile_out(node)
            old, new = msg
            for dst, _sign, is_push, fan_in in out:
                observed[dst] += events
                if not is_push:
                    continue
                snaps = snapshots[dst]
                previous = snaps.get(node, old)
                snaps[node] = new
                current = values[dst]
                updated = agg.fast_update(current, previous, new)
                if updated is NEED_RECOMPUTE:
                    updated = agg.combine(snaps.values())
                counters.push_ops += 1
                if trace is not None:
                    trace.append(TraceOp(dst, "push", fan_in))
                if updated != current:
                    values[dst] = updated
                    stack.append((dst, (current, updated)))

    def propagate_from(self, source: int, message: PAO) -> None:
        """Uncompiled reference propagation using the micro-steps.

        Kept as the semantic baseline the compiled plans are tested
        against, and for callers (the threaded queueing model) that work
        at micro-task granularity.
        """
        stack: List[Tuple[int, PAO]] = [(source, message)]
        while stack:
            node, msg = stack.pop()
            for dst in self.overlay.outputs[node]:
                outgoing = self.apply_push(node, dst, msg)
                if outgoing is not None:
                    stack.append((dst, outgoing))

    def _writer_updated(
        self, handle: int, added: List[Any], evicted: List[Any]
    ) -> None:
        message = self.writer_step(handle, added, evicted)
        if message is not None:
            self._changed_writers[self.overlay.labels[handle]] = None
            self._propagate(handle, message)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read(self, node: NodeId, _memo: Optional[Dict] = None) -> Any:
        """Process one read: the current value of ``F(N(node))``.

        ``_memo`` is the per-batch pull cache :meth:`read_batch` threads
        through its reads: evaluated pull subtrees are stored under
        ``(overlay handle, plan stamp)`` so overlapping readers in the
        same batch do not re-reduce shared subtrees.
        """
        self.counters.reads += 1
        if self._time_window:
            self._advance_time(self.clock)
        agg = self.aggregate
        handle = self.overlay.reader_of.get(node)
        if handle is None:
            return agg.finalize(self._identity)
        if self.overlay.decisions[handle] is Decision.PUSH:
            self.observed_pull[handle] += 1
            if self.trace is not None:
                self.trace.append(TraceOp(handle, "read", 1))
            return agg.finalize(self.values[handle])
        self._check_plans()
        if self._columnar and self.trace is None:
            return agg.finalize(
                self._spec.unpack(self._pull_segment_eval(handle, _memo))
            )
        plan = self._pull_plans.get(handle)
        if plan is None:
            plan = self._compile_pull_plan(handle)
        if _memo is None:
            return agg.finalize(self._run_pull_plan(plan))
        return agg.finalize(self._run_pull_plan_memo(plan, handle, _memo))

    def read_batch(self, nodes: Sequence[NodeId]) -> List[Any]:
        """Process many reads, memoizing shared pull subtrees.

        One memo dict spans the batch: every completed pull node's
        accumulator is cached under ``(handle, plan stamp)``, so readers
        whose pull plans overlap evaluate each shared subtree once.  The
        saving shows up in ``counters.pull_ops`` (work actually performed)
        while ``observed_pull`` — the adaptive controller's traffic signal
        — is still credited as if every reader evaluated alone.
        """
        if not self.op_timing:
            return self._read_batch_impl(nodes)
        t0 = _monotonic()
        try:
            return self._read_batch_impl(nodes)
        finally:
            self.counters.read_seconds += _monotonic() - t0

    def _read_batch_impl(self, nodes: Sequence[NodeId]) -> List[Any]:
        memo: Dict = {}
        read = self.read
        return [read(node, _memo=memo) for node in nodes]

    def _pull_segment_eval(self, node: int, memo: Optional[Dict]) -> Tuple:
        """Columnar pull: vectorized per-segment reduction with sharing.

        Returns the node's accumulator as a tuple of column scalars.  The
        node's direct push inputs reduce in one gather (signed sum for
        delta columns, nan-ignoring ``fmax``/``fmin`` for the lattice
        extremum); nested pull inputs recurse through the same memo.
        """
        np = _statestore._np
        if memo is not None:
            key = (node, self._plan_stamp)
            cached = memo.get(key, _MISS)
            if cached is not _MISS:
                segment = self._pull_segments.get(node)
                if segment is None:
                    segment = self._compile_pull_segment(node)
                np.add.at(self.observed_pull, segment.observe_deep, 1)
                self.pull_memo_hits += 1
                return cached
        segment = self._pull_segments.get(node)
        if segment is None:
            segment = self._compile_pull_segment(node)
        np.add.at(self.observed_pull, segment.observe, 1)
        self.counters.pull_ops += segment.ops
        columns = self.values.columns
        leaf_idx = segment.leaf_idx
        if self._seg_fold is None:  # delta columns: signed sums
            totals = []
            for column in columns:
                if leaf_idx.size:
                    gathered = column[leaf_idx]
                    if segment.leaf_sign is not None:
                        gathered = gathered * segment.leaf_sign
                    totals.append(gathered.sum())
                else:
                    totals.append(column.dtype.type(0))
            for child, sign in segment.children:
                child_cols = self._pull_segment_eval(child, memo)
                if sign > 0:
                    totals = [t + c for t, c in zip(totals, child_cols)]
                else:
                    totals = [t - c for t, c in zip(totals, child_cols)]
            result = tuple(totals)
        else:  # lattice extremum: nan encodes the empty identity
            fold = self._seg_fold
            best = (
                fold.reduce(columns[0][leaf_idx])
                if leaf_idx.size
                else float("nan")
            )
            for child, _sign in segment.children:
                best = fold(best, self._pull_segment_eval(child, memo)[0])
            result = (best,)
        if memo is not None:
            memo[(node, self._plan_stamp)] = result
        return result

    def _run_pull_plan_memo(self, plan: PullPlan, root: int, memo: Dict) -> PAO:
        """Interpreted pull with per-batch subtree memoization.

        Identical merge order to :meth:`_run_pull_plan`, except that a
        nested span whose node is already in the memo folds the cached
        accumulator and skips its sub-program (crediting the skipped
        handles' observed-pull frequencies), and every completed span
        stores its accumulator for later readers in the batch.
        """
        stamp = self._plan_stamp
        observed = self.observed_pull
        cached = memo.get((root, stamp), _MISS)
        if cached is not _MISS:
            for h in plan.observe_all:
                observed[h] += 1
            self.pull_memo_hits += 1
            return cached
        agg = self.aggregate
        merge = agg.merge
        subtract = agg.subtract
        values = self.values.data
        trace = self.trace
        spans = plan.spans
        exit_nodes = plan.exit_nodes
        program = plan.program
        length = len(program)
        acc: PAO = None
        acc_stack: List[PAO] = []
        ops = 0
        index = 0
        while index < length:
            op, a, b = program[index]
            if op == _OP_LEAF:
                observed[a] += 1
                value = values[a]
                acc = merge(acc, value) if b > 0 else subtract(acc, value)
                ops += 1
            elif op == _OP_ENTER:
                span = spans.get(index)
                if span is not None:
                    exit_index, span_node, span_observe = span
                    hit = memo.get((span_node, stamp), _MISS)
                    if hit is not _MISS:
                        for h in span_observe:
                            observed[h] += 1
                        sign = program[exit_index][1]
                        acc = merge(acc, hit) if sign > 0 else subtract(acc, hit)
                        ops += 1
                        self.pull_memo_hits += 1
                        index = exit_index + 1
                        continue
                observed[a] += 1
                if trace is not None:
                    trace.append(TraceOp(a, "pull", b))
                acc_stack.append(acc)
                acc = self._identity
            else:  # _OP_EXIT
                child = acc
                memo[(exit_nodes[index], stamp)] = child
                acc = acc_stack.pop()
                acc = merge(acc, child) if a > 0 else subtract(acc, child)
                ops += 1
            index += 1
        self.counters.pull_ops += ops
        memo[(root, stamp)] = acc
        return acc

    def _run_pull_plan(self, plan: PullPlan) -> PAO:
        """Run a compiled pull program: no recursion, no dict lookups."""
        agg = self.aggregate
        merge = agg.merge
        subtract = agg.subtract
        values = self.values.data
        observed = self.observed_pull
        trace = self.trace
        acc: PAO = None
        acc_stack: List[PAO] = []
        for op, a, b in plan.program:
            if op == _OP_LEAF:
                observed[a] += 1
                value = values[a]
                acc = merge(acc, value) if b > 0 else subtract(acc, value)
            elif op == _OP_ENTER:
                observed[a] += 1
                if trace is not None:
                    trace.append(TraceOp(a, "pull", b))
                acc_stack.append(acc)
                acc = self._identity
            else:  # _OP_EXIT: fold the finished child into its parent
                child = acc
                acc = acc_stack.pop()
                acc = merge(acc, child) if a > 0 else subtract(acc, child)
        self.counters.pull_ops += plan.pull_ops
        return acc

    def _pull(self, handle: int) -> PAO:
        """Uncompiled recursive pull (reference implementation)."""
        agg = self.aggregate
        overlay = self.overlay
        self.observed_pull[handle] += 1
        if self.trace is not None:
            self.trace.append(TraceOp(handle, "pull", overlay.fan_in(handle)))
        acc = self._identity
        for src, sign in overlay.inputs[handle].items():
            if overlay.decisions[src] is Decision.PUSH:
                self.observed_pull[src] += 1
                value = self.values[src]
            else:
                value = self._pull(src)
            acc = agg.merge(acc, value) if sign > 0 else agg.subtract(acc, value)
            self.counters.pull_ops += 1
        return acc

    # ------------------------------------------------------------------
    # sliding-window expiry
    # ------------------------------------------------------------------

    def _advance_time(self, now: float) -> None:
        while self._expiry_heap and self._expiry_heap[0][0] <= now:
            _, handle = heapq.heappop(self._expiry_heap)
            node = self.overlay.labels[handle]
            buffer = self.buffers.get(node)
            if buffer is None:
                continue
            evicted = buffer.evict_until(now)
            if evicted:
                self._writer_updated(handle, [], evicted)

    def _advance_time_deferred(
        self, now: float, pending: Dict[int, Tuple[List[Any], List[Any]]]
    ) -> None:
        """Batch-mode expiry: buffers advance now, propagation is deferred
        into ``pending`` so it coalesces with the batch's writes."""
        heap = self._expiry_heap
        while heap and heap[0][0] <= now:
            _, handle = heapq.heappop(heap)
            node = self.overlay.labels[handle]
            buffer = self.buffers.get(node)
            if buffer is None:
                continue
            evicted = buffer.evict_until(now)
            if evicted:
                entry = pending.get(handle)
                if entry is None:
                    entry = pending[handle] = ([], [])
                entry[1].extend(evicted)

    # ------------------------------------------------------------------
    # decision changes (adaptive execution, Section 4.8)
    # ------------------------------------------------------------------

    def set_decision(self, handle: int, decision: Decision) -> None:
        """Flip one node's dataflow decision, materializing state as needed.

        The caller must preserve consistency (the adaptive controller only
        flips push/pull *frontier* nodes, which is always safe).  Only the
        compiled plans whose traversal touches ``handle`` are invalidated.
        """
        if self.overlay.decisions[handle] is decision:
            return
        self._check_plans()
        if decision is Decision.PUSH:
            for src in self.overlay.inputs[handle]:
                if self.overlay.decisions[src] is not Decision.PUSH:
                    raise OverlayError(
                        "cannot flip to push: an input is not push (not a frontier node)"
                    )
            self.overlay.set_decision(handle, decision)
            self._initialize_push_node(handle)
        else:
            for dst in self.overlay.outputs[handle]:
                if self.overlay.decisions[dst] is Decision.PUSH:
                    raise OverlayError(
                        "cannot flip to pull: a consumer is push (not a frontier node)"
                    )
            self.overlay.set_decision(handle, decision)
            self.values[handle] = None
            self.snapshots[handle] = None
        self.invalidate_plans((handle,))
        self.overlay.pop_dirty()
        self._plan_stamp = (self.overlay.version, self.overlay.decision_version)

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------

    def reference_read(self, input_nodes) -> Any:
        """Brute-force evaluation straight from the window buffers.

        This bypasses the overlay entirely and is the oracle the test suite
        compares engine reads against.
        """
        agg = self.aggregate
        acc = self._identity
        for node in input_nodes:
            buffer = self.buffers.get(node)
            if buffer is None:
                continue
            if self._time_window:
                buffer.evict_until(self.clock)
            for raw in buffer.values():
                acc = agg.merge(acc, agg.lift(raw))
        return agg.finalize(acc)

    def rebuild(self, dirty: Optional[Iterable[int]] = None) -> "Runtime":
        """Re-derive all runtime state from the (possibly mutated) overlay.

        Window buffers are preserved by graph-node id; everything else is
        recomputed.  With ``dirty`` (the overlay handles touched since the
        last rebuild, e.g. from :meth:`Overlay.pop_dirty`), only the
        compiled plans reaching those handles are invalidated; otherwise
        the whole plan cache is dropped.  Returns ``self`` for chaining.
        """
        self._expiry_heap.clear()
        if dirty is None:
            self.invalidate_plans()
        else:
            self.invalidate_plans(dirty)
        self._plan_stamp = (self.overlay.version, self.overlay.decision_version)
        self._materialize()
        return self
