"""Overlay execution: processing writes and reads (paper Section 2.2.2).

The runtime holds a partial aggregate object (PAO) for every node annotated
*push* and nothing for *pull* nodes.  A write enters at its writer node,
updates the writer's sliding window and PAO, and propagates through
consecutive push nodes; propagation stops at the push/pull frontier.  A read
at a push reader returns its PAO immediately; at a pull reader it pulls PAOs
from upstream, merging (or subtracting, across negative edges) as it goes.

Two propagation strategies, selected by the aggregate's family
(see :mod:`repro.core.aggregates`):

* **group** (subtractable) — updates travel as small *delta* PAOs; applying
  one is O(|delta|), the ``H(k) ∝ 1`` regime;
* **lattice** (MAX-like) — updates travel as ``(old, new)`` pairs; each push
  node keeps its inputs' last values, applies an O(1) fast path when the
  change cannot lower the extremum, and recomputes otherwise.

Compiled propagation plans
--------------------------
The hot path no longer traverses the dict-of-dict overlay per event.  Once
dataflow decisions are fixed, the runtime freezes the overlay into CSR
arrays (:meth:`repro.core.overlay.Overlay.to_csr`) and compiles, lazily and
per entry point:

* a **push plan** per writer — for group aggregates, the exact ``(dst,
  cumulative_sign, is_push)`` application sequence the interpreter's DFS
  would perform (group propagation never short-circuits, so the sequence is
  static); for Sum/Count a further scalar specialization applies the delta
  with ``values[dst] += sign * delta``;
* a **pull plan** per pull reader — a flat three-op stack program (LEAF /
  ENTER / EXIT) replaying the recursive pull's merge order exactly, so
  reads run without recursion or dict lookups;
* for lattice aggregates, a per-node **compiled adjacency** (propagation is
  data-dependent, so the DFS survives, but over flat tuples instead of
  dicts).

Plans are cached and invalidated precisely: every plan registers the
handles it touches in a dependency index, and structural or decision
changes (overlay dirty set, :meth:`Runtime.set_decision`, rebuilds) drop
only the plans touching the changed handles.  A ``(version,
decision_version)`` stamp check guards against out-of-band overlay
mutation.

The batched entry points :meth:`Runtime.write_batch` /
:meth:`Runtime.read_batch` coalesce same-writer deltas so a batch performs
one plan execution per touched writer instead of one graph traversal per
event.

The runtime also counts *observed* push and pull frequencies per node —
including would-be pushes blocked at the frontier — which the adaptive
controller (Section 4.8) consumes, and can record a micro-operation trace
for the simulated multi-core executor.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.aggregates import NEED_RECOMPUTE
from repro.core.overlay import Decision, NodeKind, Overlay, OverlayCSR, OverlayError
from repro.core.query import EgoQuery
from repro.core.windows import TimeWindow, WindowBuffer

NodeId = Hashable
PAO = Any

#: Pull-plan opcodes: merge a push source, enter a pull node, merge a
#: finished pull node's accumulator into its parent.
_OP_LEAF, _OP_ENTER, _OP_EXIT = 0, 1, 2


def normalize_write(item) -> Tuple[NodeId, Any, Optional[float]]:
    """Coerce one batch item into ``(node, value, timestamp)``.

    Accepts ``(node, value)`` / ``(node, value, timestamp)`` tuples and
    WriteEvent-like objects with ``node`` / ``value`` / ``timestamp``
    attributes.
    """
    if isinstance(item, tuple):
        if len(item) == 3:
            return item
        node, value = item
        return (node, value, None)
    return (item.node, item.value, getattr(item, "timestamp", None))


@dataclass
class RuntimeCounters:
    """Operation counters for throughput accounting."""

    writes: int = 0
    reads: int = 0
    push_ops: int = 0
    pull_ops: int = 0

    @property
    def events(self) -> int:
        return self.writes + self.reads

    @property
    def work(self) -> int:
        return self.push_ops + self.pull_ops


@dataclass
class TraceOp:
    """One micro-operation for the simulated executor (Figure 13(d))."""

    handle: int
    kind: str  # "write" | "push" | "pull" | "read"
    fan_in: int


class PushPlan:
    """Compiled propagation of one writer's delta (group aggregates).

    ``steps`` is the exact application sequence of the interpreter's DFS:
    ``(dst, cumulative_sign, is_push, fan_in)``.  ``observe`` lists every
    destination (for observed-push accounting), ``scalar_steps`` is the
    push-only ``(dst, sign)`` specialization for scalar deltas (Sum/Count),
    and ``touched`` indexes the plan into the invalidation registry.
    """

    __slots__ = ("steps", "observe", "scalar_steps", "push_count", "touched")

    def __init__(
        self,
        steps: Tuple[Tuple[int, int, bool, int], ...],
        scalar: bool,
        touched: FrozenSet[int],
    ) -> None:
        self.steps = steps
        self.observe = tuple(step[0] for step in steps)
        self.push_count = sum(1 for step in steps if step[2])
        self.scalar_steps = (
            tuple((dst, sign) for dst, sign, is_push, _ in steps if is_push)
            if scalar
            else None
        )
        self.touched = touched


class PullPlan:
    """Compiled on-demand evaluation of one pull reader.

    ``program`` is a flat list of ``(op, a, b)`` instructions for a tiny
    accumulator-stack machine that replays the recursive pull's exact
    merge order (LEAF: merge a push source, ENTER: start a nested pull
    node's accumulator, EXIT: fold it into the parent with the edge sign).
    """

    __slots__ = ("program", "pull_ops", "touched")

    def __init__(
        self, program: Tuple[Tuple[int, int, int], ...], touched: FrozenSet[int]
    ) -> None:
        self.program = program
        self.pull_ops = sum(1 for op, _, _ in program if op != _OP_ENTER)
        self.touched = touched


class Runtime:
    """Executes one compiled query over an annotated overlay."""

    def __init__(
        self,
        overlay: Overlay,
        query: EgoQuery,
        buffers: Optional[Dict[NodeId, WindowBuffer]] = None,
        collect_trace: bool = False,
    ) -> None:
        self.overlay = overlay
        self.query = query
        self.aggregate = query.aggregate
        self.group = self.aggregate.subtractable
        if not self.group and overlay.num_negative_edges:
            raise OverlayError(
                f"overlay has negative edges but {self.aggregate.name} "
                "does not support subtraction"
            )
        if not overlay.decisions_consistent():
            raise OverlayError("overlay decisions are inconsistent (pull feeds push)")
        self._time_window = isinstance(query.window, TimeWindow)
        # Per-writer sliding windows, keyed by *graph node id* so they can
        # survive overlay rebuilds.
        self.buffers: Dict[NodeId, WindowBuffer] = buffers if buffers is not None else {}
        self.values: List[Optional[PAO]] = []
        self.snapshots: List[Optional[Dict[int, PAO]]] = []
        self.observed_push: List[int] = []
        self.observed_pull: List[int] = []
        self.counters = RuntimeCounters()
        self.clock = 0.0
        self._expiry_heap: List[Tuple[float, int]] = []
        self.trace: Optional[List[TraceOp]] = [] if collect_trace else None
        # The identity PAO is immutable by the aggregate API contract
        # (merge/subtract never mutate arguments), so one instance serves
        # every identity use instead of reconstructing it per operation.
        self._identity = self.aggregate.identity()
        self._scalar_group = self.group and getattr(
            self.aggregate, "scalar_delta", False
        )
        # -- compiled-plan caches -------------------------------------
        self._push_plans: Dict[int, PushPlan] = {}
        self._pull_plans: Dict[int, PullPlan] = {}
        self._plan_deps: Dict[int, Set[Tuple[bool, int]]] = {}
        self._out_cache: Dict[int, List[Tuple[int, int, bool, int]]] = {}
        self._csr: Optional[OverlayCSR] = None
        self._plan_stamp = (overlay.version, overlay.decision_version)
        self.plan_compiles = 0
        self.plan_invalidations = 0
        # Construction-time dirt predates any compiled plan; absorb it so
        # later pops only carry genuinely new mutations.
        overlay.pop_dirty()
        self._materialize()

    # ------------------------------------------------------------------
    # state materialization
    # ------------------------------------------------------------------

    def _materialize(self) -> None:
        overlay = self.overlay
        agg = self.aggregate
        n = overlay.num_nodes
        self.values = [None] * n
        self.snapshots = [None] * n
        self.observed_push = [0] * n
        self.observed_pull = [0] * n
        for node, handle in overlay.writer_of.items():
            if node not in self.buffers:
                self.buffers[node] = self.query.window.make_buffer()
        # Drop buffers of writers no longer present (after node removals).
        live = set(overlay.writer_of)
        for node in [n_ for n_ in self.buffers if n_ not in live]:
            del self.buffers[node]
        for handle in overlay.topological_order():
            kind = overlay.kinds[handle]
            if kind is NodeKind.WRITER:
                buffer = self.buffers.get(overlay.labels[handle])
                if buffer is None:
                    # Tombstoned writer (its graph node was removed): it has
                    # no edges and never receives writes; keep it inert.
                    self.values[handle] = self._identity
                    continue
                self.values[handle] = agg.combine_raw(buffer.values())
                if self._time_window:
                    expiry = buffer.next_expiry()
                    if expiry is not None:
                        heapq.heappush(self._expiry_heap, (expiry, handle))
                continue
            if overlay.decisions[handle] is Decision.PUSH:
                self._initialize_push_node(handle)

    def _initialize_push_node(self, handle: int) -> None:
        """Compute a push node's PAO from its (push, by consistency) inputs."""
        agg = self.aggregate
        acc = self._identity
        snaps: Dict[int, PAO] = {}
        for src, sign in self.overlay.inputs[handle].items():
            value = self.values[src]
            snaps[src] = value
            acc = agg.merge(acc, value) if sign > 0 else agg.subtract(acc, value)
        self.values[handle] = acc
        if not self.group:
            self.snapshots[handle] = snaps

    # ------------------------------------------------------------------
    # plan compilation and invalidation
    # ------------------------------------------------------------------

    def _check_plans(self) -> None:
        """Drop every cached plan if the overlay mutated out-of-band."""
        stamp = (self.overlay.version, self.overlay.decision_version)
        if stamp != self._plan_stamp:
            self.invalidate_plans()
            self._plan_stamp = stamp

    def invalidate_plans(self, handles: Optional[Iterable[int]] = None) -> None:
        """Invalidate compiled plans.

        With ``handles`` given, only plans whose traversal touches one of
        those handles are dropped (precise invalidation); without, the
        whole cache is cleared.  The CSR snapshot and compiled adjacencies
        are cheap to rebuild lazily and are always dropped.
        """
        self._csr = None
        self._out_cache.clear()
        if handles is None:
            self.plan_invalidations += len(self._push_plans) + len(self._pull_plans)
            self._push_plans.clear()
            self._pull_plans.clear()
            self._plan_deps.clear()
            return
        deps = self._plan_deps
        for handle in handles:
            bucket = deps.get(handle)
            if bucket:
                for key in list(bucket):
                    self._drop_plan(key)

    def _drop_plan(self, key: Tuple[bool, int]) -> None:
        is_push, root = key
        store = self._push_plans if is_push else self._pull_plans
        plan = store.pop(root, None)
        if plan is None:
            return
        self.plan_invalidations += 1
        deps = self._plan_deps
        for handle in plan.touched:
            bucket = deps.get(handle)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del deps[handle]

    def _register_plan(self, is_push: bool, root: int, touched: FrozenSet[int]) -> None:
        key = (is_push, root)
        deps = self._plan_deps
        for handle in touched:
            bucket = deps.get(handle)
            if bucket is None:
                bucket = deps[handle] = set()
            bucket.add(key)
        self.plan_compiles += 1

    def _ensure_csr(self) -> OverlayCSR:
        csr = self._csr
        if csr is None:
            csr = self._csr = self.overlay.to_csr()
        return csr

    def _compile_push_plan(self, handle: int) -> PushPlan:
        """Freeze the DFS a group delta from ``handle`` would perform.

        Group propagation never short-circuits (``apply_push`` always
        forwards the signed delta from a push node), so the interpreter's
        stack traversal is fully determined by the structure: simulate it
        over the CSR arrays once, recording every application in order.
        """
        csr = self._ensure_csr()
        out_indptr = csr.out_indptr
        out_indices = csr.out_indices
        out_signs = csr.out_signs
        push = csr.push
        fan_in = csr.fan_in
        steps: List[Tuple[int, int, bool, int]] = []
        touched = {handle}
        stack: List[Tuple[int, int]] = [(handle, 1)]
        while stack:
            node, carried = stack.pop()
            for i in range(out_indptr[node], out_indptr[node + 1]):
                dst = out_indices[i]
                sign = carried * out_signs[i]
                is_push = bool(push[dst])
                steps.append((dst, sign, is_push, fan_in[dst]))
                touched.add(dst)
                if is_push:
                    stack.append((dst, sign))
        plan = PushPlan(tuple(steps), self._scalar_group, frozenset(touched))
        self._push_plans[handle] = plan
        self._register_plan(True, handle, plan.touched)
        return plan

    def _compile_pull_plan(self, root: int) -> PullPlan:
        """Flatten the recursive pull of ``root`` into a stack program."""
        csr = self._ensure_csr()
        in_indptr = csr.in_indptr
        in_indices = csr.in_indices
        in_signs = csr.in_signs
        push = csr.push
        fan_in = csr.fan_in
        program: List[Tuple[int, int, int]] = []
        touched = {root}
        # Work items mirror the recursion: ENTER emits the node then
        # schedules its children in input order (LEAF for push sources,
        # ENTER+EXIT for nested pull nodes); EXIT folds a finished child
        # into its parent with the edge sign.
        stack: List[Tuple[int, int, int]] = [(_OP_ENTER, root, 0)]
        while stack:
            op, a, b = stack.pop()
            if op == _OP_LEAF:
                program.append((_OP_LEAF, a, b))
                continue
            if op == _OP_EXIT:
                program.append((_OP_EXIT, b, 0))
                continue
            node = a
            program.append((_OP_ENTER, node, fan_in[node]))
            # Children are pushed reversed so they run in input order.
            for i in range(in_indptr[node + 1] - 1, in_indptr[node] - 1, -1):
                src = in_indices[i]
                sign = in_signs[i]
                touched.add(src)
                if push[src]:
                    stack.append((_OP_LEAF, src, sign))
                else:
                    stack.append((_OP_EXIT, src, sign))
                    stack.append((_OP_ENTER, src, 0))
        plan = PullPlan(tuple(program), frozenset(touched))
        self._pull_plans[root] = plan
        self._register_plan(False, root, plan.touched)
        return plan

    def _compile_out(self, node: int) -> List[Tuple[int, int, bool, int]]:
        """Per-node compiled adjacency for data-dependent (lattice) DFS."""
        overlay = self.overlay
        decisions = overlay.decisions
        inputs = overlay.inputs
        out = [
            (dst, inputs[dst][node], decisions[dst] is Decision.PUSH, len(inputs[dst]))
            for dst in overlay.outputs[node]
        ]
        self._out_cache[node] = out
        return out

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def write(self, node: NodeId, value: Any, timestamp: Optional[float] = None) -> None:
        """Process one content update ("write on v")."""
        self.counters.writes += 1
        if timestamp is None:
            timestamp = self.clock + 1.0
        self.clock = max(self.clock, timestamp)
        if self._time_window:
            self._advance_time(self.clock)
        handle = self.overlay.writer_of.get(node)
        if handle is None:
            return  # no reader observes this node; the write is dropped
        buffer = self.buffers[node]
        evicted = buffer.append(value, timestamp)
        if self._time_window:
            heapq.heappush(
                self._expiry_heap, (timestamp + self.query.window.duration, handle)
            )
        if self.trace is not None:
            self.trace.append(TraceOp(handle, "write", 1))
        message = self.writer_step(handle, [value], evicted)
        if message is not None:
            self._propagate(handle, message)

    def write_batch(self, writes: Sequence) -> int:
        """Process many writes, coalescing same-writer deltas.

        ``writes`` holds ``(node, value)`` / ``(node, value, timestamp)``
        tuples or WriteEvent-like objects, in stream order.  Window buffers
        are advanced per event (so eviction semantics match the per-event
        loop exactly), but propagation runs once per touched writer: the
        writer-local step sees the batch's full added/evicted lists and a
        single compiled-plan execution carries the combined delta.  Returns
        the number of writes processed.
        """
        self._check_plans()
        overlay = self.overlay
        writer_of = overlay.writer_of
        buffers = self.buffers
        trace = self.trace
        time_window = self._time_window
        duration = self.query.window.duration if time_window else 0.0
        clock = self.clock
        # dict preserves insertion order: propagation runs in first-touch order
        pending: Dict[int, Tuple[List[Any], List[Any]]] = {}
        count = 0
        try:
            for item in writes:
                # inlined normalize_write: this loop is the ingestion hot path
                if item.__class__ is tuple:
                    if len(item) == 3:
                        node, value, timestamp = item
                    else:
                        node, value = item
                        timestamp = None
                else:
                    node = item.node
                    value = item.value
                    timestamp = getattr(item, "timestamp", None)
                count += 1
                if timestamp is None:
                    timestamp = clock + 1.0
                if timestamp > clock:
                    clock = timestamp
                if time_window:
                    self.clock = clock
                    self._advance_time_deferred(clock, pending)
                handle = writer_of.get(node)
                if handle is None:
                    continue
                evicted = buffers[node].append(value, timestamp)
                if time_window:
                    heapq.heappush(self._expiry_heap, (timestamp + duration, handle))
                entry = pending.get(handle)
                if entry is None:
                    entry = pending[handle] = ([], [])
                entry[0].append(value)
                if evicted:
                    entry[1].extend(evicted)
                if trace is not None:
                    trace.append(TraceOp(handle, "write", 1))
        finally:
            # Even when an item raises (e.g. a non-monotone timestamp),
            # values already absorbed into buffers must propagate so push
            # state stays consistent with the windows.
            self.clock = clock
            self.counters.writes += count
            self._apply_pending(pending, trace)
        return count

    def _apply_pending(
        self,
        pending: Dict[int, Tuple[List[Any], List[Any]]],
        trace: Optional[List[TraceOp]],
    ) -> None:
        """Propagation phase of a batch: one plan execution per writer."""
        if self._scalar_group and trace is None:
            # Scalar kernel: coalesced delta per writer, applied through the
            # compiled plan with plain arithmetic (matches writer_step +
            # merge exactly: both are sequential ``+``/``-`` folds).
            agg = self.aggregate
            lift = agg.lift
            identity = self._identity
            plans = self._push_plans
            observed = self.observed_push
            values = self.values
            push_ops = 0
            for handle, (added, evicted) in pending.items():
                delta = identity
                for raw in added:
                    delta = delta + lift(raw)
                for raw in evicted:
                    delta = delta - lift(raw)
                if delta == identity:
                    continue
                values[handle] = values[handle] + delta
                plan = plans.get(handle)
                if plan is None:
                    plan = self._compile_push_plan(handle)
                events = len(added) or 1  # eviction-only: one expiry sweep
                for dst in plan.observe:
                    observed[dst] += events
                for dst, sign in plan.scalar_steps:
                    values[dst] += sign * delta
                push_ops += plan.push_count
            self.counters.push_ops += push_ops
            return
        for handle, (added, evicted) in pending.items():
            message = self.writer_step(handle, added, evicted)
            if message is not None:
                self._propagate(handle, message, len(added) or 1)

    def writer_step(
        self, handle: int, added: List[Any], evicted: List[Any]
    ) -> Optional[PAO]:
        """Writer-local part of a write: update the window PAO.

        Returns the propagation message for the writer's consumers (a delta
        PAO for group aggregates, an ``(old, new)`` pair for lattice ones)
        or ``None`` when nothing downstream can change.  Exposed as a
        micro-task so the multi-threaded *queueing model* can run it under
        a single node lock.
        """
        agg = self.aggregate
        identity = self._identity
        old = self.values[handle]
        if self.group:
            delta = identity
            for raw in added:
                delta = agg.merge(delta, agg.lift(raw))
            for raw in evicted:
                delta = agg.subtract(delta, agg.lift(raw))
            if delta == identity:
                return None
            self.values[handle] = agg.merge(old, delta)
            return delta
        if evicted:
            buffer = self.buffers[self.overlay.labels[handle]]
            new = agg.combine_raw(buffer.values())
        else:
            new = old
            for raw in added:
                new = agg.merge(new, agg.lift(raw))
        if new == old:
            return None
        self.values[handle] = new
        return (old, new)

    def apply_push(self, src: int, dst: int, message: PAO) -> Optional[PAO]:
        """One micro-task of the queueing model: apply ``src``'s change at
        ``dst``; returns ``dst``'s own outgoing message (or ``None`` when
        propagation stops — at the frontier or on a no-op update)."""
        agg = self.aggregate
        overlay = self.overlay
        self.observed_push[dst] += 1
        if overlay.decisions[dst] is Decision.PULL:
            return None
        if self.group:
            sign = overlay.inputs[dst][src]
            outgoing = message if sign > 0 else agg.negate(message)
            self.values[dst] = agg.merge(self.values[dst], outgoing)
            self.counters.push_ops += 1
            if self.trace is not None:
                self.trace.append(TraceOp(dst, "push", overlay.fan_in(dst)))
            return outgoing
        old, new = message
        snaps = self.snapshots[dst]
        previous = snaps.get(src, old)
        snaps[src] = new
        current = self.values[dst]
        updated = agg.fast_update(current, previous, new)
        if updated is NEED_RECOMPUTE:
            updated = agg.combine(snaps.values())
        self.counters.push_ops += 1
        if self.trace is not None:
            self.trace.append(TraceOp(dst, "push", overlay.fan_in(dst)))
        if updated == current:
            return None
        self.values[dst] = updated
        return (current, updated)

    def _propagate(self, source: int, message: PAO, events: int = 1) -> None:
        """Dispatch a writer's message through the compiled hot path.

        ``events`` is how many stream events the message coalesces: the
        *work* counters reflect the single propagation actually performed,
        but ``observed_push`` — the adaptive controller's estimate of
        stream frequencies — is credited per coalesced event so batched
        and per-event execution see the same traffic.
        """
        self._check_plans()
        if self.group:
            self._run_push_plan(source, message, events)
        else:
            self._propagate_lattice(source, message, events)

    def _run_push_plan(self, source: int, message: PAO, events: int = 1) -> None:
        """Execute a compiled group push plan (zero per-event traversal)."""
        plan = self._push_plans.get(source)
        if plan is None:
            plan = self._compile_push_plan(source)
        observed = self.observed_push
        values = self.values
        trace = self.trace
        scalar = plan.scalar_steps
        if scalar is not None and trace is None:
            for dst in plan.observe:
                observed[dst] += events
            for dst, sign in scalar:
                values[dst] += sign * message
            self.counters.push_ops += plan.push_count
            return
        agg = self.aggregate
        merge = agg.merge
        negative = None
        for dst, sign, is_push, fan_in in plan.steps:
            observed[dst] += events
            if not is_push:
                continue
            if sign > 0:
                msg = message
            else:
                if negative is None:
                    negative = agg.negate(message)
                msg = negative
            values[dst] = merge(values[dst], msg)
            if trace is not None:
                trace.append(TraceOp(dst, "push", fan_in))
        self.counters.push_ops += plan.push_count

    def _propagate_lattice(self, source: int, message: PAO, events: int = 1) -> None:
        """Lattice DFS over compiled adjacencies (data-dependent stops)."""
        agg = self.aggregate
        values = self.values
        snapshots = self.snapshots
        observed = self.observed_push
        counters = self.counters
        trace = self.trace
        out_cache = self._out_cache
        stack: List[Tuple[int, PAO]] = [(source, message)]
        while stack:
            node, msg = stack.pop()
            out = out_cache.get(node)
            if out is None:
                out = self._compile_out(node)
            old, new = msg
            for dst, _sign, is_push, fan_in in out:
                observed[dst] += events
                if not is_push:
                    continue
                snaps = snapshots[dst]
                previous = snaps.get(node, old)
                snaps[node] = new
                current = values[dst]
                updated = agg.fast_update(current, previous, new)
                if updated is NEED_RECOMPUTE:
                    updated = agg.combine(snaps.values())
                counters.push_ops += 1
                if trace is not None:
                    trace.append(TraceOp(dst, "push", fan_in))
                if updated != current:
                    values[dst] = updated
                    stack.append((dst, (current, updated)))

    def propagate_from(self, source: int, message: PAO) -> None:
        """Uncompiled reference propagation using the micro-steps.

        Kept as the semantic baseline the compiled plans are tested
        against, and for callers (the threaded queueing model) that work
        at micro-task granularity.
        """
        stack: List[Tuple[int, PAO]] = [(source, message)]
        while stack:
            node, msg = stack.pop()
            for dst in self.overlay.outputs[node]:
                outgoing = self.apply_push(node, dst, msg)
                if outgoing is not None:
                    stack.append((dst, outgoing))

    def _writer_updated(
        self, handle: int, added: List[Any], evicted: List[Any]
    ) -> None:
        message = self.writer_step(handle, added, evicted)
        if message is not None:
            self._propagate(handle, message)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read(self, node: NodeId) -> Any:
        """Process one read: the current value of ``F(N(node))``."""
        self.counters.reads += 1
        if self._time_window:
            self._advance_time(self.clock)
        agg = self.aggregate
        handle = self.overlay.reader_of.get(node)
        if handle is None:
            return agg.finalize(self._identity)
        if self.overlay.decisions[handle] is Decision.PUSH:
            self.observed_pull[handle] += 1
            if self.trace is not None:
                self.trace.append(TraceOp(handle, "read", 1))
            return agg.finalize(self.values[handle])
        self._check_plans()
        plan = self._pull_plans.get(handle)
        if plan is None:
            plan = self._compile_pull_plan(handle)
        return agg.finalize(self._run_pull_plan(plan))

    def read_batch(self, nodes: Sequence[NodeId]) -> List[Any]:
        """Process many reads; exactly a per-node :meth:`read` loop (the
        batching win is upstream: one engine sync, warm pull plans)."""
        return [self.read(node) for node in nodes]

    def _run_pull_plan(self, plan: PullPlan) -> PAO:
        """Run a compiled pull program: no recursion, no dict lookups."""
        agg = self.aggregate
        merge = agg.merge
        subtract = agg.subtract
        values = self.values
        observed = self.observed_pull
        trace = self.trace
        acc: PAO = None
        acc_stack: List[PAO] = []
        for op, a, b in plan.program:
            if op == _OP_LEAF:
                observed[a] += 1
                value = values[a]
                acc = merge(acc, value) if b > 0 else subtract(acc, value)
            elif op == _OP_ENTER:
                observed[a] += 1
                if trace is not None:
                    trace.append(TraceOp(a, "pull", b))
                acc_stack.append(acc)
                acc = self._identity
            else:  # _OP_EXIT: fold the finished child into its parent
                child = acc
                acc = acc_stack.pop()
                acc = merge(acc, child) if a > 0 else subtract(acc, child)
        self.counters.pull_ops += plan.pull_ops
        return acc

    def _pull(self, handle: int) -> PAO:
        """Uncompiled recursive pull (reference implementation)."""
        agg = self.aggregate
        overlay = self.overlay
        self.observed_pull[handle] += 1
        if self.trace is not None:
            self.trace.append(TraceOp(handle, "pull", overlay.fan_in(handle)))
        acc = self._identity
        for src, sign in overlay.inputs[handle].items():
            if overlay.decisions[src] is Decision.PUSH:
                self.observed_pull[src] += 1
                value = self.values[src]
            else:
                value = self._pull(src)
            acc = agg.merge(acc, value) if sign > 0 else agg.subtract(acc, value)
            self.counters.pull_ops += 1
        return acc

    # ------------------------------------------------------------------
    # sliding-window expiry
    # ------------------------------------------------------------------

    def _advance_time(self, now: float) -> None:
        while self._expiry_heap and self._expiry_heap[0][0] <= now:
            _, handle = heapq.heappop(self._expiry_heap)
            node = self.overlay.labels[handle]
            buffer = self.buffers.get(node)
            if buffer is None:
                continue
            evicted = buffer.evict_until(now)
            if evicted:
                self._writer_updated(handle, [], evicted)

    def _advance_time_deferred(
        self, now: float, pending: Dict[int, Tuple[List[Any], List[Any]]]
    ) -> None:
        """Batch-mode expiry: buffers advance now, propagation is deferred
        into ``pending`` so it coalesces with the batch's writes."""
        heap = self._expiry_heap
        while heap and heap[0][0] <= now:
            _, handle = heapq.heappop(heap)
            node = self.overlay.labels[handle]
            buffer = self.buffers.get(node)
            if buffer is None:
                continue
            evicted = buffer.evict_until(now)
            if evicted:
                entry = pending.get(handle)
                if entry is None:
                    entry = pending[handle] = ([], [])
                entry[1].extend(evicted)

    # ------------------------------------------------------------------
    # decision changes (adaptive execution, Section 4.8)
    # ------------------------------------------------------------------

    def set_decision(self, handle: int, decision: Decision) -> None:
        """Flip one node's dataflow decision, materializing state as needed.

        The caller must preserve consistency (the adaptive controller only
        flips push/pull *frontier* nodes, which is always safe).  Only the
        compiled plans whose traversal touches ``handle`` are invalidated.
        """
        if self.overlay.decisions[handle] is decision:
            return
        self._check_plans()
        if decision is Decision.PUSH:
            for src in self.overlay.inputs[handle]:
                if self.overlay.decisions[src] is not Decision.PUSH:
                    raise OverlayError(
                        "cannot flip to push: an input is not push (not a frontier node)"
                    )
            self.overlay.set_decision(handle, decision)
            self._initialize_push_node(handle)
        else:
            for dst in self.overlay.outputs[handle]:
                if self.overlay.decisions[dst] is Decision.PUSH:
                    raise OverlayError(
                        "cannot flip to pull: a consumer is push (not a frontier node)"
                    )
            self.overlay.set_decision(handle, decision)
            self.values[handle] = None
            self.snapshots[handle] = None
        self.invalidate_plans((handle,))
        self.overlay.pop_dirty()
        self._plan_stamp = (self.overlay.version, self.overlay.decision_version)

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------

    def reference_read(self, input_nodes) -> Any:
        """Brute-force evaluation straight from the window buffers.

        This bypasses the overlay entirely and is the oracle the test suite
        compares engine reads against.
        """
        agg = self.aggregate
        acc = self._identity
        for node in input_nodes:
            buffer = self.buffers.get(node)
            if buffer is None:
                continue
            if self._time_window:
                buffer.evict_until(self.clock)
            for raw in buffer.values():
                acc = agg.merge(acc, agg.lift(raw))
        return agg.finalize(acc)

    def rebuild(self, dirty: Optional[Iterable[int]] = None) -> "Runtime":
        """Re-derive all runtime state from the (possibly mutated) overlay.

        Window buffers are preserved by graph-node id; everything else is
        recomputed.  With ``dirty`` (the overlay handles touched since the
        last rebuild, e.g. from :meth:`Overlay.pop_dirty`), only the
        compiled plans reaching those handles are invalidated; otherwise
        the whole plan cache is dropped.  Returns ``self`` for chaining.
        """
        self._expiry_heap.clear()
        if dirty is None:
            self.invalidate_plans()
        else:
            self.invalidate_plans(dirty)
        self._plan_stamp = (self.overlay.version, self.overlay.decision_version)
        self._materialize()
        return self
