"""Overlay execution: processing writes and reads (paper Section 2.2.2).

The runtime holds a partial aggregate object (PAO) for every node annotated
*push* and nothing for *pull* nodes.  A write enters at its writer node,
updates the writer's sliding window and PAO, and propagates through
consecutive push nodes; propagation stops at the push/pull frontier.  A read
at a push reader returns its PAO immediately; at a pull reader it recursively
pulls PAOs from upstream, merging (or subtracting, across negative edges) as
it goes.

Two propagation strategies, selected by the aggregate's family
(see :mod:`repro.core.aggregates`):

* **group** (subtractable) — updates travel as small *delta* PAOs; applying
  one is O(|delta|), the ``H(k) ∝ 1`` regime;
* **lattice** (MAX-like) — updates travel as ``(old, new)`` pairs; each push
  node keeps its inputs' last values, applies an O(1) fast path when the
  change cannot lower the extremum, and recomputes otherwise.

The runtime also counts *observed* push and pull frequencies per node —
including would-be pushes blocked at the frontier — which the adaptive
controller (Section 4.8) consumes, and can record a micro-operation trace
for the simulated multi-core executor.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.aggregates import NEED_RECOMPUTE
from repro.core.overlay import Decision, NodeKind, Overlay, OverlayError
from repro.core.query import EgoQuery
from repro.core.windows import TimeWindow, WindowBuffer

NodeId = Hashable
PAO = Any


@dataclass
class RuntimeCounters:
    """Operation counters for throughput accounting."""

    writes: int = 0
    reads: int = 0
    push_ops: int = 0
    pull_ops: int = 0

    @property
    def events(self) -> int:
        return self.writes + self.reads

    @property
    def work(self) -> int:
        return self.push_ops + self.pull_ops


@dataclass
class TraceOp:
    """One micro-operation for the simulated executor (Figure 13(d))."""

    handle: int
    kind: str  # "write" | "push" | "pull" | "read"
    fan_in: int


class Runtime:
    """Executes one compiled query over an annotated overlay."""

    def __init__(
        self,
        overlay: Overlay,
        query: EgoQuery,
        buffers: Optional[Dict[NodeId, WindowBuffer]] = None,
        collect_trace: bool = False,
    ) -> None:
        self.overlay = overlay
        self.query = query
        self.aggregate = query.aggregate
        self.group = self.aggregate.subtractable
        if not self.group and overlay.num_negative_edges:
            raise OverlayError(
                f"overlay has negative edges but {self.aggregate.name} "
                "does not support subtraction"
            )
        if not overlay.decisions_consistent():
            raise OverlayError("overlay decisions are inconsistent (pull feeds push)")
        self._time_window = isinstance(query.window, TimeWindow)
        # Per-writer sliding windows, keyed by *graph node id* so they can
        # survive overlay rebuilds.
        self.buffers: Dict[NodeId, WindowBuffer] = buffers if buffers is not None else {}
        self.values: List[Optional[PAO]] = []
        self.snapshots: List[Optional[Dict[int, PAO]]] = []
        self.observed_push: List[int] = []
        self.observed_pull: List[int] = []
        self.counters = RuntimeCounters()
        self.clock = 0.0
        self._expiry_heap: List[Tuple[float, int]] = []
        self.trace: Optional[List[TraceOp]] = [] if collect_trace else None
        self._materialize()

    # ------------------------------------------------------------------
    # state materialization
    # ------------------------------------------------------------------

    def _materialize(self) -> None:
        overlay = self.overlay
        agg = self.aggregate
        n = overlay.num_nodes
        self.values = [None] * n
        self.snapshots = [None] * n
        self.observed_push = [0] * n
        self.observed_pull = [0] * n
        for node, handle in overlay.writer_of.items():
            if node not in self.buffers:
                self.buffers[node] = self.query.window.make_buffer()
        # Drop buffers of writers no longer present (after node removals).
        live = set(overlay.writer_of)
        for node in [n_ for n_ in self.buffers if n_ not in live]:
            del self.buffers[node]
        for handle in overlay.topological_order():
            kind = overlay.kinds[handle]
            if kind is NodeKind.WRITER:
                buffer = self.buffers.get(overlay.labels[handle])
                if buffer is None:
                    # Tombstoned writer (its graph node was removed): it has
                    # no edges and never receives writes; keep it inert.
                    self.values[handle] = agg.identity()
                    continue
                self.values[handle] = agg.combine_raw(buffer.values())
                if self._time_window:
                    expiry = buffer.next_expiry()
                    if expiry is not None:
                        heapq.heappush(self._expiry_heap, (expiry, handle))
                continue
            if overlay.decisions[handle] is Decision.PUSH:
                self._initialize_push_node(handle)

    def _initialize_push_node(self, handle: int) -> None:
        """Compute a push node's PAO from its (push, by consistency) inputs."""
        agg = self.aggregate
        acc = agg.identity()
        snaps: Dict[int, PAO] = {}
        for src, sign in self.overlay.inputs[handle].items():
            value = self.values[src]
            snaps[src] = value
            acc = agg.merge(acc, value) if sign > 0 else agg.subtract(acc, value)
        self.values[handle] = acc
        if not self.group:
            self.snapshots[handle] = snaps

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def write(self, node: NodeId, value: Any, timestamp: Optional[float] = None) -> None:
        """Process one content update ("write on v")."""
        self.counters.writes += 1
        if timestamp is None:
            timestamp = self.clock + 1.0
        self.clock = max(self.clock, timestamp)
        if self._time_window:
            self._advance_time(self.clock)
        handle = self.overlay.writer_of.get(node)
        if handle is None:
            return  # no reader observes this node; the write is dropped
        buffer = self.buffers[node]
        evicted = buffer.append(value, timestamp)
        if self._time_window:
            heapq.heappush(
                self._expiry_heap, (timestamp + self.query.window.duration, handle)
            )
        if self.trace is not None:
            self.trace.append(TraceOp(handle, "write", 1))
        message = self.writer_step(handle, [value], evicted)
        if message is not None:
            self.propagate_from(handle, message)

    def writer_step(
        self, handle: int, added: List[Any], evicted: List[Any]
    ) -> Optional[PAO]:
        """Writer-local part of a write: update the window PAO.

        Returns the propagation message for the writer's consumers (a delta
        PAO for group aggregates, an ``(old, new)`` pair for lattice ones)
        or ``None`` when nothing downstream can change.  Exposed as a
        micro-task so the multi-threaded *queueing model* can run it under
        a single node lock.
        """
        agg = self.aggregate
        old = self.values[handle]
        if self.group:
            delta = agg.identity()
            for raw in added:
                delta = agg.merge(delta, agg.lift(raw))
            for raw in evicted:
                delta = agg.subtract(delta, agg.lift(raw))
            if delta == agg.identity():
                return None
            self.values[handle] = agg.merge(old, delta)
            return delta
        if evicted:
            buffer = self.buffers[self.overlay.labels[handle]]
            new = agg.combine_raw(buffer.values())
        else:
            new = old
            for raw in added:
                new = agg.merge(new, agg.lift(raw))
        if new == old:
            return None
        self.values[handle] = new
        return (old, new)

    def apply_push(self, src: int, dst: int, message: PAO) -> Optional[PAO]:
        """One micro-task of the queueing model: apply ``src``'s change at
        ``dst``; returns ``dst``'s own outgoing message (or ``None`` when
        propagation stops — at the frontier or on a no-op update)."""
        agg = self.aggregate
        overlay = self.overlay
        self.observed_push[dst] += 1
        if overlay.decisions[dst] is Decision.PULL:
            return None
        if self.group:
            sign = overlay.inputs[dst][src]
            outgoing = message if sign > 0 else agg.negate(message)
            self.values[dst] = agg.merge(self.values[dst], outgoing)
            self.counters.push_ops += 1
            if self.trace is not None:
                self.trace.append(TraceOp(dst, "push", overlay.fan_in(dst)))
            return outgoing
        old, new = message
        snaps = self.snapshots[dst]
        previous = snaps.get(src, old)
        snaps[src] = new
        current = self.values[dst]
        updated = agg.fast_update(current, previous, new)
        if updated is NEED_RECOMPUTE:
            updated = agg.combine(snaps.values())
        self.counters.push_ops += 1
        if self.trace is not None:
            self.trace.append(TraceOp(dst, "push", overlay.fan_in(dst)))
        if updated == current:
            return None
        self.values[dst] = updated
        return (current, updated)

    def propagate_from(self, source: int, message: PAO) -> None:
        """Depth-first single-threaded propagation using the micro-steps."""
        stack: List[Tuple[int, PAO]] = [(source, message)]
        while stack:
            node, msg = stack.pop()
            for dst in self.overlay.outputs[node]:
                outgoing = self.apply_push(node, dst, msg)
                if outgoing is not None:
                    stack.append((dst, outgoing))

    def _writer_updated(
        self, handle: int, added: List[Any], evicted: List[Any]
    ) -> None:
        message = self.writer_step(handle, added, evicted)
        if message is not None:
            self.propagate_from(handle, message)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read(self, node: NodeId) -> Any:
        """Process one read: the current value of ``F(N(node))``."""
        self.counters.reads += 1
        if self._time_window:
            self._advance_time(self.clock)
        agg = self.aggregate
        handle = self.overlay.reader_of.get(node)
        if handle is None:
            return agg.finalize(agg.identity())
        if self.overlay.decisions[handle] is Decision.PUSH:
            self.observed_pull[handle] += 1
            if self.trace is not None:
                self.trace.append(TraceOp(handle, "read", 1))
            return agg.finalize(self.values[handle])
        return agg.finalize(self._pull(handle))

    def _pull(self, handle: int) -> PAO:
        agg = self.aggregate
        overlay = self.overlay
        self.observed_pull[handle] += 1
        if self.trace is not None:
            self.trace.append(TraceOp(handle, "pull", overlay.fan_in(handle)))
        acc = agg.identity()
        for src, sign in overlay.inputs[handle].items():
            if overlay.decisions[src] is Decision.PUSH:
                self.observed_pull[src] += 1
                value = self.values[src]
            else:
                value = self._pull(src)
            acc = agg.merge(acc, value) if sign > 0 else agg.subtract(acc, value)
            self.counters.pull_ops += 1
        return acc

    # ------------------------------------------------------------------
    # sliding-window expiry
    # ------------------------------------------------------------------

    def _advance_time(self, now: float) -> None:
        while self._expiry_heap and self._expiry_heap[0][0] <= now:
            _, handle = heapq.heappop(self._expiry_heap)
            node = self.overlay.labels[handle]
            buffer = self.buffers.get(node)
            if buffer is None:
                continue
            evicted = buffer.evict_until(now)
            if evicted:
                self._writer_updated(handle, [], evicted)

    # ------------------------------------------------------------------
    # decision changes (adaptive execution, Section 4.8)
    # ------------------------------------------------------------------

    def set_decision(self, handle: int, decision: Decision) -> None:
        """Flip one node's dataflow decision, materializing state as needed.

        The caller must preserve consistency (the adaptive controller only
        flips push/pull *frontier* nodes, which is always safe).
        """
        if self.overlay.decisions[handle] is decision:
            return
        if decision is Decision.PUSH:
            for src in self.overlay.inputs[handle]:
                if self.overlay.decisions[src] is not Decision.PUSH:
                    raise OverlayError(
                        "cannot flip to push: an input is not push (not a frontier node)"
                    )
            self.overlay.set_decision(handle, decision)
            self._initialize_push_node(handle)
        else:
            for dst in self.overlay.outputs[handle]:
                if self.overlay.decisions[dst] is Decision.PUSH:
                    raise OverlayError(
                        "cannot flip to pull: a consumer is push (not a frontier node)"
                    )
            self.overlay.set_decision(handle, decision)
            self.values[handle] = None
            self.snapshots[handle] = None

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------

    def reference_read(self, input_nodes) -> Any:
        """Brute-force evaluation straight from the window buffers.

        This bypasses the overlay entirely and is the oracle the test suite
        compares engine reads against.
        """
        agg = self.aggregate
        acc = agg.identity()
        for node in input_nodes:
            buffer = self.buffers.get(node)
            if buffer is None:
                continue
            if self._time_window:
                buffer.evict_until(self.clock)
            for raw in buffer.values():
                acc = agg.merge(acc, agg.lift(raw))
        return agg.finalize(acc)

    def rebuild(self) -> "Runtime":
        """Re-derive all runtime state from the (possibly mutated) overlay.

        Window buffers are preserved by graph-node id; everything else is
        recomputed.  Returns ``self`` for chaining.
        """
        self._expiry_heap.clear()
        self._materialize()
        return self
