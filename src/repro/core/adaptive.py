"""Adaptive dataflow decisions (paper Section 4.8).

Static push/pull decisions are computed from *expected* read/write
frequencies; real workloads drift.  The paper's adaptive scheme monitors the
**push/pull frontier** — the only nodes whose decision can be flipped
unilaterally without breaking consistency:

* pull nodes all of whose inputs are push (may flip to push), and
* push nodes all of whose consumers are pull, including consumer-less push
  readers (may flip to pull).

For each frontier node, the controller compares the observed push traffic
(``f_h`` estimates; the runtime counts would-be pushes even when they stop
at the frontier) against the observed pull traffic over a sliding window of
events, and flips the decision when the other side would have been cheaper
by a hysteresis factor.  Flipping to push materializes the node's PAO from
its (push) inputs; flipping to pull discards state.

Flips go through :meth:`Runtime.set_decision`, which invalidates only the
compiled propagation plans whose traversal touches the flipped node — an
adaptive adjustment never forces a full plan-cache rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.execution import Runtime
from repro.core.overlay import Decision, NodeKind
from repro.dataflow.costs import CostModel


@dataclass
class AdaptiveConfig:
    """Tuning knobs for the adaptive controller."""

    #: Re-evaluate the frontier every this many processed events.
    check_interval: int = 500
    #: Required cost advantage before flipping (guards against flapping).
    hysteresis: float = 1.3
    #: Minimum observations in the window before a flip is considered.
    min_observations: int = 8


class AdaptiveController:
    """Monitors a runtime and re-decides frontier nodes as traffic drifts."""

    def __init__(
        self,
        runtime: Runtime,
        cost_model: Optional[CostModel] = None,
        config: Optional[AdaptiveConfig] = None,
    ) -> None:
        self.runtime = runtime
        self.cost_model = cost_model or CostModel.constant_linear()
        self.config = config or AdaptiveConfig()
        self._events_since_check = 0
        self.flips = 0
        self._snapshot()

    def _snapshot(self) -> None:
        self._push_base: List[int] = list(self.runtime.observed_push)
        self._pull_base: List[int] = list(self.runtime.observed_pull)

    # ------------------------------------------------------------------

    def tick(self, events: int = 1) -> None:
        """Notify the controller that events were processed.

        Batched entry points tick once with the batch size, so a batch
        crosses the check interval exactly as the per-event loop would.
        """
        self._events_since_check += events
        if self._events_since_check >= self.config.check_interval:
            self.evaluate()

    @property
    def plan_stats(self) -> "tuple[int, int]":
        """``(compiles, invalidations)`` of the runtime's plan cache —
        the cost side of adaptive flipping under compiled execution."""
        return (self.runtime.plan_compiles, self.runtime.plan_invalidations)

    def frontier(self) -> List[int]:
        """Handles whose decision may be flipped unilaterally."""
        overlay = self.runtime.overlay
        result: List[int] = []
        for handle in range(overlay.num_nodes):
            if overlay.kinds[handle] is NodeKind.WRITER:
                continue
            decision = overlay.decisions[handle]
            if decision is Decision.PULL:
                if all(
                    overlay.decisions[src] is Decision.PUSH
                    for src in overlay.inputs[handle]
                ):
                    result.append(handle)
            else:
                if all(
                    overlay.decisions[dst] is Decision.PULL
                    for dst in overlay.outputs[handle]
                ):
                    result.append(handle)
        return result

    def evaluate(self) -> int:
        """Re-decide every frontier node from windowed observations.

        Returns the number of flips performed.  The frontier is recomputed
        as flips occur (a flip may expose new frontier nodes only in the
        next evaluation round, matching the paper's incremental scheme).
        """
        self._events_since_check = 0
        runtime = self.runtime
        overlay = runtime.overlay
        config = self.config
        flipped = 0
        # Grow baselines if the overlay gained nodes since the last check.
        while len(self._push_base) < overlay.num_nodes:
            self._push_base.append(0)
            self._pull_base.append(0)
        for handle in self.frontier():
            pushes = runtime.observed_push[handle] - self._push_base[handle]
            pulls = runtime.observed_pull[handle] - self._pull_base[handle]
            if pushes + pulls < config.min_observations:
                continue
            fan_in = max(1, overlay.fan_in(handle))
            push_cost = pushes * self.cost_model.push_cost(fan_in)
            pull_cost = pulls * self.cost_model.pull_cost(fan_in)
            decision = overlay.decisions[handle]
            # An earlier flip in this sweep may have moved this node off the
            # frontier; re-check the structural condition before flipping.
            if decision is Decision.PULL and push_cost * config.hysteresis < pull_cost:
                if all(
                    overlay.decisions[src] is Decision.PUSH
                    for src in overlay.inputs[handle]
                ):
                    runtime.set_decision(handle, Decision.PUSH)
                    flipped += 1
            elif decision is Decision.PUSH and pull_cost * config.hysteresis < push_cost:
                if all(
                    overlay.decisions[dst] is Decision.PULL
                    for dst in overlay.outputs[handle]
                ):
                    runtime.set_decision(handle, Decision.PULL)
                    flipped += 1
        self.flips += flipped
        self._snapshot()
        return flipped
