"""Sliding windows over content streams (paper Section 2.1).

A query's window parameter ``w`` is either *tuple-based* (the last ``c``
writes of each writer are live) or *time-based* (writes within the last ``T``
time units are live).  Window semantics are per-writer: each writer node in
the overlay owns a :class:`WindowBuffer` holding its live values; evicted
values generate "removal" updates that flow through the overlay exactly like
insertions (Section 2.2.2: "...or if the sliding windows shift and values
drop out of the window").
"""

from __future__ import annotations

import collections
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Deque, List, Optional, Tuple


class Window(ABC):
    """Specification of a sliding window (shared by all writers of a query)."""

    @abstractmethod
    def make_buffer(self) -> "WindowBuffer":
        """Create a fresh per-writer buffer implementing this policy."""

    @abstractmethod
    def expected_size(self, write_rate: float = 1.0) -> float:
        """Average number of live values per writer, used by the cost model
        (Section 4.2 assigns writer nodes ``H(w)``/``L(w)`` for window size
        ``w``)."""


@dataclass(frozen=True)
class TupleWindow(Window):
    """Keep the last ``size`` values of each writer (``ROWS c``)."""

    size: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("window size must be >= 1")

    def make_buffer(self) -> "WindowBuffer":
        return _TupleBuffer(self.size)

    def expected_size(self, write_rate: float = 1.0) -> float:
        return float(self.size)


@dataclass(frozen=True)
class TimeWindow(Window):
    """Keep values written within the trailing ``duration`` time units."""

    duration: float = 10.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("window duration must be positive")

    def make_buffer(self) -> "WindowBuffer":
        return _TimeBuffer(self.duration)

    def expected_size(self, write_rate: float = 1.0) -> float:
        return max(1.0, self.duration * write_rate)


class WindowBuffer(ABC):
    """Per-writer live-value store.

    ``append`` returns the values evicted *by this insertion*;
    ``evict_until`` returns values whose lifetime ended at or before the
    given timestamp (time-based windows only — tuple windows never expire on
    the clock).
    """

    @abstractmethod
    def append(self, value: Any, timestamp: float) -> List[Any]:
        ...

    @abstractmethod
    def evict_until(self, timestamp: float) -> List[Any]:
        ...

    @abstractmethod
    def values(self) -> List[Any]:
        """Current live values, oldest first."""

    @abstractmethod
    def next_expiry(self) -> Optional[float]:
        """Timestamp at which the oldest live value expires, if any."""

    def __len__(self) -> int:
        return len(self.values())


class _TupleBuffer(WindowBuffer):
    def __init__(self, size: int) -> None:
        self._size = size
        self._items: Deque[Any] = collections.deque()

    def append(self, value: Any, timestamp: float) -> List[Any]:
        evicted: List[Any] = []
        self._items.append(value)
        while len(self._items) > self._size:
            evicted.append(self._items.popleft())
        return evicted

    def evict_until(self, timestamp: float) -> List[Any]:
        return []

    def values(self) -> List[Any]:
        return list(self._items)

    def next_expiry(self) -> Optional[float]:
        return None


class _TimeBuffer(WindowBuffer):
    def __init__(self, duration: float) -> None:
        self._duration = duration
        self._items: Deque[Tuple[float, Any]] = collections.deque()

    def append(self, value: Any, timestamp: float) -> List[Any]:
        if self._items and timestamp < self._items[-1][0]:
            raise ValueError(
                "timestamps must be non-decreasing within a writer's stream"
            )
        evicted = self.evict_until(timestamp)
        self._items.append((timestamp, value))
        return evicted

    def evict_until(self, timestamp: float) -> List[Any]:
        cutoff = timestamp - self._duration
        evicted: List[Any] = []
        while self._items and self._items[0][0] <= cutoff:
            evicted.append(self._items.popleft()[1])
        return evicted

    def values(self) -> List[Any]:
        return [value for _, value in self._items]

    def next_expiry(self) -> Optional[float]:
        if not self._items:
            return None
        return self._items[0][0] + self._duration

    def __len__(self) -> int:
        return len(self._items)
