"""Sliding windows over content streams (paper Section 2.1).

A query's window parameter ``w`` is either *tuple-based* (the last ``c``
writes of each writer are live) or *time-based* (writes within the last ``T``
time units are live).  Window semantics are per-writer: each writer node in
the overlay owns a :class:`WindowBuffer` holding its live values; evicted
values generate "removal" updates that flow through the overlay exactly like
insertions (Section 2.2.2: "...or if the sliding windows shift and values
drop out of the window").

Buffers come in two flavors per policy: the deque-backed object buffers
(any payload) and preallocated **ring buffers** for scalar raws
(``make_buffer(scalar=True)``), which the columnar runtime requests for
aggregates whose column spec declares numeric streams.  Ring buffers keep
their live values in fixed slots that are overwritten in place, expose the
allocation-free :meth:`WindowBuffer.push` fast path (evicted value or the
:data:`NO_VALUE` sentinel, no per-event list), and so compute eviction
deltas without any per-event container churn.
"""

from __future__ import annotations

import collections
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Deque, List, Optional, Tuple

class _NoValueType:
    """Singleton sentinel type with pickle-stable identity.

    Buffers are pickled whole in shard checkpoints; a plain ``object()``
    sentinel would come back as a *different* object, breaking every
    ``is NO_VALUE`` identity check on the restored state.  ``__reduce__``
    returning the global's name makes unpickling resolve to this module's
    one instance instead.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "NO_VALUE"

    def __reduce__(self):
        return "NO_VALUE"


#: Sentinel returned by :meth:`WindowBuffer.push` when nothing was evicted
#: (distinguishable from a legitimately stored ``None`` payload).
NO_VALUE = _NoValueType()


class Window(ABC):
    """Specification of a sliding window (shared by all writers of a query)."""

    @abstractmethod
    def make_buffer(self, scalar: bool = False) -> "WindowBuffer":
        """Create a fresh per-writer buffer implementing this policy.

        ``scalar=True`` requests ring-buffer storage for numeric raws;
        callers should only pass it when every stream value is a number
        (the columnar runtime keys this off the aggregate's
        ``column_spec.scalar_raws``).
        """

    @abstractmethod
    def expected_size(self, write_rate: float = 1.0) -> float:
        """Average number of live values per writer, used by the cost model
        (Section 4.2 assigns writer nodes ``H(w)``/``L(w)`` for window size
        ``w``)."""


@dataclass(frozen=True)
class TupleWindow(Window):
    """Keep the last ``size`` values of each writer (``ROWS c``)."""

    size: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("window size must be >= 1")

    def make_buffer(self, scalar: bool = False) -> "WindowBuffer":
        if scalar:
            if self.size == 1:
                return _ScalarUnitBuffer()
            return _ScalarTupleBuffer(self.size)
        return _TupleBuffer(self.size)

    def expected_size(self, write_rate: float = 1.0) -> float:
        return float(self.size)


@dataclass(frozen=True)
class TimeWindow(Window):
    """Keep values written within the trailing ``duration`` time units."""

    duration: float = 10.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("window duration must be positive")

    def make_buffer(self, scalar: bool = False) -> "WindowBuffer":
        if scalar:
            return _ScalarTimeBuffer(self.duration)
        return _TimeBuffer(self.duration)

    def expected_size(self, write_rate: float = 1.0) -> float:
        return max(1.0, self.duration * write_rate)


class WindowBuffer(ABC):
    """Per-writer live-value store.

    ``append`` returns the values evicted *by this insertion*;
    ``evict_until`` returns values whose lifetime ended at or before the
    given timestamp (time-based windows only — tuple windows never expire on
    the clock).
    """

    @abstractmethod
    def append(self, value: Any, timestamp: float) -> List[Any]:
        ...

    @abstractmethod
    def evict_until(self, timestamp: float) -> List[Any]:
        ...

    @abstractmethod
    def values(self) -> List[Any]:
        """Current live values, oldest first."""

    @abstractmethod
    def next_expiry(self) -> Optional[float]:
        """Timestamp at which the oldest live value expires, if any."""

    def push(self, value: Any, timestamp: float) -> Any:
        """Allocation-free append for tuple-window buffers.

        Returns the single evicted value, or :data:`NO_VALUE` when the
        insertion evicted nothing.  Only valid for policies that evict at
        most one value per insertion (tuple windows); time-window callers
        must use :meth:`append`.  Ring buffers override this with a
        zero-allocation implementation.
        """
        evicted = self.append(value, timestamp)
        return evicted[0] if evicted else NO_VALUE

    def __len__(self) -> int:
        return len(self.values())


class _TupleBuffer(WindowBuffer):
    def __init__(self, size: int) -> None:
        self._size = size
        self._items: Deque[Any] = collections.deque()

    def append(self, value: Any, timestamp: float) -> List[Any]:
        evicted: List[Any] = []
        self._items.append(value)
        while len(self._items) > self._size:
            evicted.append(self._items.popleft())
        return evicted

    def evict_until(self, timestamp: float) -> List[Any]:
        return []

    def values(self) -> List[Any]:
        return list(self._items)

    def next_expiry(self) -> Optional[float]:
        return None


class _TimeBuffer(WindowBuffer):
    def __init__(self, duration: float) -> None:
        self._duration = duration
        self._items: Deque[Tuple[float, Any]] = collections.deque()

    def append(self, value: Any, timestamp: float) -> List[Any]:
        if self._items and timestamp < self._items[-1][0]:
            raise ValueError(
                "timestamps must be non-decreasing within a writer's stream"
            )
        evicted = self.evict_until(timestamp)
        self._items.append((timestamp, value))
        return evicted

    def evict_until(self, timestamp: float) -> List[Any]:
        cutoff = timestamp - self._duration
        evicted: List[Any] = []
        while self._items and self._items[0][0] <= cutoff:
            evicted.append(self._items.popleft()[1])
        return evicted

    def values(self) -> List[Any]:
        return [value for _, value in self._items]

    def next_expiry(self) -> Optional[float]:
        if not self._items:
            return None
        return self._items[0][0] + self._duration

    def __len__(self) -> int:
        return len(self._items)


class _ScalarUnitBuffer(WindowBuffer):
    """``ROWS 1`` (latest value per writer): a one-slot swap.

    The degenerate but very common tuple window — every insertion simply
    replaces the previous value, so :meth:`push` is a two-operation swap.
    """

    __slots__ = ("_slot",)

    def __init__(self) -> None:
        self._slot: Any = NO_VALUE

    def push(self, value: Any, timestamp: float) -> Any:
        old = self._slot
        self._slot = value
        return old

    def append(self, value: Any, timestamp: float) -> List[Any]:
        old = self.push(value, timestamp)
        return [] if old is NO_VALUE else [old]

    def evict_until(self, timestamp: float) -> List[Any]:
        return []

    def values(self) -> List[Any]:
        return [] if self._slot is NO_VALUE else [self._slot]

    def next_expiry(self) -> Optional[float]:
        return None

    def __len__(self) -> int:
        return 0 if self._slot is NO_VALUE else 1


class _ScalarTupleBuffer(WindowBuffer):
    """Tuple window over scalar raws: a fixed-capacity slot ring.

    Live values occupy preallocated slots overwritten in place, so the
    :meth:`push` fast path performs zero container allocation per event —
    the win over the deque buffer is no eviction-list construction and no
    deque block management on the ingestion hot path.
    """

    __slots__ = ("_size", "_slots", "_start", "_count")

    def __init__(self, size: int) -> None:
        self._size = size
        self._slots: List[Any] = [None] * size
        self._start = 0
        self._count = 0

    def push(self, value: Any, timestamp: float) -> Any:
        if self._count == self._size:
            start = self._start
            slots = self._slots
            old = slots[start]
            slots[start] = value
            start += 1
            self._start = 0 if start == self._size else start
            return old
        self._slots[(self._start + self._count) % self._size] = value
        self._count += 1
        return NO_VALUE

    def append(self, value: Any, timestamp: float) -> List[Any]:
        evicted = self.push(value, timestamp)
        return [] if evicted is NO_VALUE else [evicted]

    def evict_until(self, timestamp: float) -> List[Any]:
        return []

    def values(self) -> List[Any]:
        slots = self._slots
        size = self._size
        start = self._start
        return [slots[(start + i) % size] for i in range(self._count)]

    def next_expiry(self) -> Optional[float]:
        return None

    def __len__(self) -> int:
        return self._count


class _ScalarTimeBuffer(WindowBuffer):
    """Time window over scalar raws: a growable slot ring of (ts, value).

    Semantics mirror :class:`_TimeBuffer` exactly — non-decreasing
    timestamps enforced, an append first evicts everything at or past the
    cutoff — but entries live in amortized-doubling preallocated slots
    instead of per-entry deque tuples.
    """

    __slots__ = ("_duration", "_ts", "_vals", "_start", "_count")

    def __init__(self, duration: float) -> None:
        self._duration = duration
        self._ts: List[float] = [0.0] * 16
        self._vals: List[Any] = [None] * 16
        self._start = 0
        self._count = 0

    def _grow(self) -> None:
        capacity = len(self._ts)
        start = self._start
        order = [(start + i) % capacity for i in range(self._count)]
        self._ts = [self._ts[i] for i in order] + [0.0] * capacity
        self._vals = [self._vals[i] for i in order] + [None] * capacity
        self._start = 0

    def append(self, value: Any, timestamp: float) -> List[Any]:
        count = self._count
        if count:
            last = self._ts[(self._start + count - 1) % len(self._ts)]
            if timestamp < last:
                raise ValueError(
                    "timestamps must be non-decreasing within a writer's stream"
                )
        evicted = self.evict_until(timestamp)
        if self._count == len(self._ts):
            self._grow()
        slot = (self._start + self._count) % len(self._ts)
        self._ts[slot] = timestamp
        self._vals[slot] = value
        self._count += 1
        return evicted

    def evict_until(self, timestamp: float) -> List[Any]:
        cutoff = timestamp - self._duration
        evicted: List[Any] = []
        ts = self._ts
        vals = self._vals
        capacity = len(ts)
        start = self._start
        count = self._count
        while count and ts[start] <= cutoff:
            evicted.append(vals[start])
            start = (start + 1) % capacity
            count -= 1
        self._start = start
        self._count = count
        return evicted

    def values(self) -> List[Any]:
        vals = self._vals
        capacity = len(vals)
        start = self._start
        return [vals[(start + i) % capacity] for i in range(self._count)]

    def next_expiry(self) -> Optional[float]:
        if not self._count:
            return None
        return self._ts[self._start] + self._duration

    def __len__(self) -> int:
        return self._count
