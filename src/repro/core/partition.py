"""Balanced min-cut reader partitioning (paper Section 4's cut machinery,
pointed at placement).

The serve tier multicasts every write to all shards whose readers
aggregate that writer, so the *replication factor* — the mean number of
shards per writer — is the write amplification of the hot path.
:func:`~repro.core.partitioned.community_assignment` reduces it with a
BFS-grown locality heuristic; this module solves the placement problem
the way the paper solves dataflow decisions: as a minimum cut.

The model is the standard hypergraph net cut.  Each writer ``w`` is one
hyperedge spanning its reader set ``R(w)`` (the overlay's compiled reader
closure), weighted by ``w``'s write frequency.  A partition pays ``f(w)``
once for every *extra* shard the hyperedge touches — exactly the
multicast fan-out beyond the first copy.  For a 2-way split this is a
plain s-t cut over a gadget network:

* for each writer: ``w_in -> w_out`` with capacity ``f(w)``,
* for each reader ``r`` of ``w``: ``r -> w_in`` and ``w_out -> r`` with
  infinite capacity,

so a finite s-t cut severs ``w_in -> w_out`` iff ``w``'s readers land on
both sides, and :class:`~repro.dataflow.maxflow.FlowNetwork` (Dinic)
finds the minimum.  K-way partitions come from **recursive bisection**
with seed sets pinned at the bipartite graph's periphery, followed by a
greedy balance repair that moves the cheapest boundary readers until the
split respects the global per-shard capacity.  Everything is seeded and
iteration-order-free, so a given (graph, query, num_shards) always
yields the same partition — the serve tier's WAL recovery depends on
that only loosely (the partition is persisted), but the benchmarks and
regression tests depend on it hard.
"""

from __future__ import annotations

import collections
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.dataflow.maxflow import INF, FlowNetwork

NodeId = Hashable

#: Above this many readers, recursive bisection (which re-runs Dinic per
#: level) is not worth the boot-time tax; fall back to the BFS heuristic.
DEFAULT_MAX_NODES = 50_000


def _reader_closures(
    graph, query, readers: Sequence[NodeId]
) -> Dict[NodeId, Tuple[float, Set[int]]]:
    """writer -> (frequency placeholder 1.0, set of reader *indices*)."""
    closures: Dict[NodeId, Set[int]] = {}
    for index, reader in enumerate(readers):
        for writer in query.neighborhood(graph, reader):
            closures.setdefault(writer, set()).add(index)
    return {w: (1.0, members) for w, members in closures.items()}


def _bfs_far(
    start: int, adjacency: Dict[int, List[int]], allowed: Set[int]
) -> Tuple[int, Dict[int, int]]:
    """Farthest reader from ``start`` within ``allowed`` plus distances."""
    dist = {start: 0}
    queue = collections.deque([start])
    far = start
    while queue:
        node = queue.popleft()
        for neighbor in adjacency.get(node, ()):
            if neighbor in allowed and neighbor not in dist:
                dist[neighbor] = dist[node] + 1
                if dist[neighbor] > dist[far]:
                    far = neighbor
                queue.append(neighbor)
    return far, dist


def _grow_seed(
    root: int,
    adjacency: Dict[int, List[int]],
    allowed: Set[int],
    forbidden: Set[int],
    size: int,
) -> List[int]:
    """BFS-grow a connected seed set of ``size`` readers around ``root``."""
    seed = [root]
    seen = {root}
    queue = collections.deque([root])
    while queue and len(seed) < size:
        node = queue.popleft()
        for neighbor in adjacency.get(node, ()):
            if (
                neighbor in allowed
                and neighbor not in seen
                and neighbor not in forbidden
            ):
                seen.add(neighbor)
                seed.append(neighbor)
                if len(seed) >= size:
                    break
                queue.append(neighbor)
    return seed


def _bisect(
    members: List[int],
    writer_freq: List[float],
    writer_readers: List[Set[int]],
    reader_writers: Dict[int, List[int]],
    k_left: int,
    k_right: int,
    cap: int,
) -> Tuple[List[int], List[int]]:
    """Split ``members`` into (left, right) minimizing the writer cut,
    with ``len(left) <= k_left * cap`` and ``len(right) <= k_right * cap``."""
    member_set = set(members)
    n = len(members)
    if n <= 1 or k_left == 0 or k_right == 0:
        return (list(members), []) if k_right == 0 else ([], list(members))

    # Reader-reader adjacency *through shared writers*, restricted to the
    # subproblem — used only for seeding, so a sampled/truncated view is
    # fine and keeps this O(edges).
    adjacency: Dict[int, List[int]] = collections.defaultdict(list)
    for w_id, readers_of_w in enumerate(writer_readers):
        local = [r for r in readers_of_w if r in member_set]
        for i in range(len(local) - 1):
            adjacency[local[i]].append(local[i + 1])
            adjacency[local[i + 1]].append(local[i])

    # Pseudo-peripheral seed pair: farthest-from-farthest BFS, then grow
    # small connected seed sets so the cut has something to bite on.
    start = members[0]
    far_a, _ = _bfs_far(start, adjacency, member_set)
    far_b, _ = _bfs_far(far_a, adjacency, member_set)
    if far_a == far_b:
        far_b = members[-1] if members[-1] != far_a else members[0]
        if far_a == far_b:
            mid = max(1, n // 2)
            return members[:mid], members[mid:]
    seed_size = max(1, n // 8)
    seed_a = _grow_seed(far_a, adjacency, member_set, {far_b}, seed_size)
    seed_b = _grow_seed(far_b, adjacency, member_set, set(seed_a), seed_size)

    # Gadget network: 0=s, 1=t, then one node per local reader, then
    # (w_in, w_out) per writer active in this subproblem.
    reader_node = {r: 2 + i for i, r in enumerate(members)}
    active = [
        w_id
        for w_id, readers_of_w in enumerate(writer_readers)
        if len(readers_of_w & member_set) >= 2
    ]
    base = 2 + n
    net = FlowNetwork(base + 2 * len(active))
    for slot, w_id in enumerate(active):
        w_in = base + 2 * slot
        w_out = w_in + 1
        net.add_edge(w_in, w_out, writer_freq[w_id])
        for r in writer_readers[w_id]:
            if r in member_set:
                net.add_edge(reader_node[r], w_in, INF)
                net.add_edge(w_out, reader_node[r], INF)
    for r in seed_a:
        net.add_edge(0, reader_node[r], INF)
    for r in seed_b:
        net.add_edge(reader_node[r], 1, INF)
    net.max_flow(0, 1)
    source_side = net.residual_reachable(0)
    left = [r for r in members if reader_node[r] in source_side]
    right = [r for r in members if reader_node[r] not in source_side]

    # Balance repair: move the cheapest readers (by cut delta) from the
    # oversized side until both sides fit their capacity.  Counts are per
    # writer per side, so a delta is O(deg(reader)).
    left_set = set(left)
    left_count: Dict[int, int] = collections.defaultdict(int)
    for r in left:
        for w_id in reader_writers.get(r, ()):
            left_count[w_id] += 1

    def move_cheapest(from_left: bool) -> None:
        pool = left if from_left else right
        best_r, best_delta = None, None
        for r in pool:
            delta = 0.0
            for w_id in reader_writers.get(r, ()):
                total = len(writer_readers[w_id] & member_set)
                on_left = left_count[w_id]
                on_right = total - on_left
                if from_left:
                    was_cut = 0 < on_left < total
                    now_cut = 0 < on_left - 1 < total
                else:
                    was_cut = 0 < on_right < total
                    now_cut = 0 < on_right - 1 < total
                delta += writer_freq[w_id] * (int(now_cut) - int(was_cut))
            if best_delta is None or delta < best_delta:
                best_r, best_delta = r, delta
        assert best_r is not None
        pool.remove(best_r)
        if from_left:
            right.append(best_r)
            left_set.discard(best_r)
            for w_id in reader_writers.get(best_r, ()):
                left_count[w_id] -= 1
        else:
            left.append(best_r)
            left_set.add(best_r)
            for w_id in reader_writers.get(best_r, ()):
                left_count[w_id] += 1

    min_left = n - k_right * cap
    max_left = k_left * cap
    while len(left) > max_left:
        move_cheapest(from_left=True)
    while len(left) < min_left:
        move_cheapest(from_left=False)
    return left, right


def mincut_partition(
    graph,
    query,
    num_shards: int,
    *,
    write_freq: Optional[Mapping[NodeId, float]] = None,
    balance: float = 1.25,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> Dict[NodeId, int]:
    """Reader -> shard via balanced recursive min-cut bisection.

    ``write_freq`` weights each writer's hyperedge (defaults to uniform);
    ``balance`` bounds every shard at ``balance *`` the mean shard size.
    Falls back to :func:`community_assignment` beyond ``max_nodes``
    readers (Dinic per bisection level stops paying for itself).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    predicate = query.predicate
    readers = [
        node for node in graph.nodes() if predicate is None or predicate(node)
    ]
    readers.sort(key=lambda node: (repr(type(node)), repr(node)))
    if num_shards == 1 or len(readers) <= 1:
        return {node: 0 for node in readers}
    if len(readers) > max_nodes:
        from repro.core.partitioned import community_assignment

        assign = community_assignment(graph, num_shards)
        return {node: assign(node) % num_shards for node in readers}

    closures = _reader_closures(graph, query, readers)
    writer_keys = sorted(closures, key=lambda w: (repr(type(w)), repr(w)))
    writer_readers = [closures[w][1] for w in writer_keys]
    writer_freq = [1.0] * len(writer_keys)
    if write_freq is not None:
        for i, w in enumerate(writer_keys):
            writer_freq[i] = max(0.0, float(write_freq.get(w, 0.0))) or 1e-9
    reader_writers: Dict[int, List[int]] = collections.defaultdict(list)
    for w_id, readers_of_w in enumerate(writer_readers):
        for r in readers_of_w:
            reader_writers[r].append(w_id)

    n = len(readers)
    mean = n / num_shards
    cap = max(-(-n // num_shards), int(balance * mean))

    assignment: Dict[NodeId, int] = {}
    # Work queue of (reader-index subsets, shard-slot ranges).
    stack: List[Tuple[List[int], int, int]] = [(list(range(n)), 0, num_shards)]
    while stack:
        members, first_slot, k = stack.pop()
        if k == 1 or len(members) <= 1:
            for r in members:
                assignment[readers[r]] = first_slot
            continue
        k_left = k // 2
        k_right = k - k_left
        left, right = _bisect(
            members,
            writer_freq,
            writer_readers,
            reader_writers,
            k_left,
            k_right,
            cap,
        )
        stack.append((left, first_slot, k_left))
        stack.append((right, first_slot + k_left, k_right))
    return assignment


class TableAssignment:
    """A reader -> shard table usable both ways the serve tier needs it.

    *Callable* (``EAGrServer(assign=...)``, drop-in for
    :func:`~repro.core.partitioned.community_assignment`): unknown nodes
    resolve to ``default``.  *Dict-style* ``.get(node, fallback)``
    (:func:`~repro.serve.reshard.plan_from_assignment`): unknown nodes
    resolve to the caller's fallback — i.e. "leave that reader where it
    is", not ``default``.
    """

    __slots__ = ("table", "default")

    def __init__(self, table: Mapping[NodeId, int], default: int = 0):
        self.table = dict(table)
        self.default = default

    def __call__(self, node: NodeId) -> int:
        return self.table.get(node, self.default)

    def get(self, node: NodeId, default: Optional[int] = None) -> Optional[int]:
        return self.table.get(node, default)

    def __len__(self) -> int:
        return len(self.table)


def mincut_assignment(
    graph,
    query,
    num_shards: int,
    *,
    write_freq: Optional[Mapping[NodeId, float]] = None,
    balance: float = 1.25,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> "TableAssignment":
    """Drop-in for :func:`community_assignment`: the reader->shard
    :class:`TableAssignment` computed by :func:`mincut_partition`
    (called with an unknown node it answers shard 0; its ``.get`` also
    feeds :func:`~repro.serve.reshard.plan_from_assignment` directly)."""
    table = mincut_partition(
        graph,
        query,
        num_shards,
        write_freq=write_freq,
        balance=balance,
        max_nodes=max_nodes,
    )
    return TableAssignment(table)


def planned_replication_factor(
    graph,
    query,
    assignment: Mapping[NodeId, int],
    *,
    write_freq: Optional[Mapping[NodeId, float]] = None,
) -> float:
    """Mean shards-per-writer under ``assignment`` — the multicast write
    amplification the routing table implies, optionally weighted by each
    writer's write frequency (amplification *of the actual traffic*)."""
    shards_of: Dict[NodeId, Set[int]] = {}
    for reader, shard_id in assignment.items():
        for writer in query.neighborhood(graph, reader):
            shards_of.setdefault(writer, set()).add(shard_id)
    if not shards_of:
        return 1.0
    if write_freq is None:
        return sum(len(s) for s in shards_of.values()) / len(shards_of)
    total_w = 0.0
    total = 0.0
    for writer, shards in shards_of.items():
        weight = max(0.0, float(write_freq.get(writer, 0.0)))
        total_w += weight
        total += weight * len(shards)
    if total_w <= 0:
        return sum(len(s) for s in shards_of.values()) / len(shards_of)
    return total / total_w


def shard_sizes(assignment: Mapping[NodeId, int], num_shards: int) -> List[int]:
    """Readers per shard under ``assignment`` (imbalance checks)."""
    sizes = [0] * num_shards
    for shard_id in assignment.values():
        sizes[shard_id] += 1
    return sizes
