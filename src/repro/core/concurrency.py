"""Multi-threaded and simulated parallel execution (Sections 2.2.2, 5.4).

Two executors:

* :class:`ThreadedEngine` implements the paper's hybrid threading model on
  real OS threads: writes use the **queueing model** (micro-tasks at overlay
  node granularity, drained by a write pool under per-node locks), reads use
  the **uni-thread model** (the full pull executes in one thread).  It is
  correct — quiesced state matches single-threaded execution — but, this
  being CPython, the GIL prevents actual CPU scaling.
* :class:`SimulatedExecutor` is the documented substitution for the paper's
  24-core Java measurements (Figure 13(d)): a discrete-event simulation that
  schedules the *same* micro-operation trace the runtime produces onto M
  virtual workers with per-node mutual exclusion and a serial dispatch
  overhead.  Throughput rises near-linearly while work is available and
  plateaus when dispatch and lock contention dominate — the published shape.
"""

from __future__ import annotations

import heapq
import queue
import threading
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.core.engine import EAGrEngine
from repro.core.execution import Runtime, TraceOp, normalize_write
from repro.dataflow.costs import CostModel

NodeId = Hashable


class ThreadedEngine:
    """Thread-pool execution wrapper around an :class:`EAGrEngine`.

    Writes are asynchronous: :meth:`submit_write` enqueues the writer-local
    micro-task and returns; pool workers propagate through the overlay one
    node at a time, locking only the node they touch.  Reads run
    synchronously in the calling thread (the paper's uni-thread read model),
    locking one node at a time — like the paper, we accept the resulting
    mild read-write races ("we ignore the potential for such inconsistencies
    in this work").

    The wrapped engine's value store carries over unchanged: micro-tasks
    read and write PAOs through the store's element protocol, which is
    backend-agnostic (numpy columns or object lists), so a ThreadedEngine
    composes with either backend — the global batch scatter is *not* used
    here because per-node locking requires node-granular application.

    Call :meth:`drain` to quiesce before asserting on state, and
    :meth:`shutdown` when done.
    """

    def __init__(self, engine: EAGrEngine, write_threads: int = 2) -> None:
        if write_threads < 1:
            raise ValueError("write_threads must be >= 1")
        self.engine = engine
        self.runtime: Runtime = engine.runtime
        self._locks = [threading.Lock() for _ in range(self.runtime.overlay.num_nodes)]
        self._tasks: "queue.Queue[Optional[Tuple]]" = queue.Queue()
        self._clock_lock = threading.Lock()
        self._closed = False
        # Serializes the closed-check + enqueue against shutdown's flag
        # flip: without it a submission racing close() could land behind
        # the worker sentinels — silently dropped, and a later drain()
        # would block forever on its unfinished-task count.
        self._submit_lock = threading.Lock()
        # Writer handles touched by accepted submissions; changed_readers()
        # maps them through the runtime's compiled reader closures.
        self._touched_writers: Dict[int, None] = {}
        self._touched_lock = threading.Lock()
        self._workers = [
            threading.Thread(target=self._worker, daemon=True)
            for _ in range(write_threads)
        ]
        for worker in self._workers:
            worker.start()

    @property
    def value_store_backend(self) -> str:
        """Backend of the wrapped runtime's value store (same name and
        meaning as :attr:`EAGrEngine.value_store_backend`)."""
        return self.runtime.values.backend

    # -- write path (queueing model) -------------------------------------

    def submit_write(
        self, node: NodeId, value: Any, timestamp: Optional[float] = None
    ) -> None:
        """Enqueue a write; pool workers process it asynchronously."""
        self._track_writer(node)
        with self._submit_lock:
            self._check_open()
            self._tasks.put(("write", node, value, timestamp))

    def submit_write_batch(self, writes: Sequence) -> None:
        """Enqueue a batch of writes as one micro-task.

        The worker coalesces same-writer deltas (one ``writer_step`` per
        touched writer under its node lock) before fanning the combined
        messages out as ordinary per-edge push micro-tasks, so a batch
        costs one queue round-trip and one writer-lock acquisition per
        writer instead of per event.
        """
        items = list(writes)
        writer_of = self.runtime.overlay.writer_of
        with self._touched_lock:
            touched = self._touched_writers
            for item in items:
                node = item[0] if item.__class__ is tuple else item.node
                handle = writer_of.get(node)
                if handle is not None:
                    touched[handle] = None
        with self._submit_lock:
            self._check_open()
            self._tasks.put(("write_batch", items))

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ThreadedEngine is closed")

    def _track_writer(self, node: NodeId) -> None:
        handle = self.runtime.overlay.writer_of.get(node)
        if handle is not None:
            with self._touched_lock:
                self._touched_writers[handle] = None

    def write_batch(self, writes: Sequence) -> int:
        """Shard-protocol batch write: accept asynchronously, return count."""
        items = list(writes)
        self.submit_write_batch(items)
        return len(items)

    def _worker(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                self._tasks.task_done()
                return
            try:
                if task[0] == "write":
                    self._do_write(task[1], task[2], task[3])
                elif task[0] == "write_batch":
                    self._do_write_batch(task[1])
                else:
                    self._do_push(task[1], task[2], task[3])
            finally:
                self._tasks.task_done()

    def _do_write(self, node: NodeId, value: Any, timestamp: Optional[float]) -> None:
        runtime = self.runtime
        overlay = runtime.overlay
        with self._clock_lock:
            runtime.counters.writes += 1
            runtime.stamp += 1
            if timestamp is None:
                timestamp = runtime.clock + 1.0
            runtime.clock = max(runtime.clock, timestamp)
        handle = overlay.writer_of.get(node)
        if handle is None:
            return
        with self._locks[handle]:
            buffer = runtime.buffers[node]
            evicted = buffer.append(value, timestamp)
            message = runtime.writer_step(handle, [value], evicted)
        if message is None:
            return
        for dst in overlay.outputs[handle]:
            self._tasks.put(("push", handle, dst, message))

    def _do_write_batch(self, writes: Sequence) -> None:
        runtime = self.runtime
        overlay = runtime.overlay
        normalized = []
        with self._clock_lock:
            runtime.stamp += 1  # one ingestion tick per batch task
            for item in writes:
                node, value, timestamp = normalize_write(item)
                runtime.counters.writes += 1
                if timestamp is None:
                    timestamp = runtime.clock + 1.0
                runtime.clock = max(runtime.clock, timestamp)
                normalized.append((node, value, timestamp))
        pending: Dict[int, Any] = {}
        for node, value, timestamp in normalized:
            handle = overlay.writer_of.get(node)
            if handle is None:
                continue
            with self._locks[handle]:
                evicted = runtime.buffers[node].append(value, timestamp)
            entry = pending.get(handle)
            if entry is None:
                entry = pending[handle] = ([], [])
            entry[0].append(value)
            entry[1].extend(evicted)
        for handle, (added, evicted) in pending.items():
            with self._locks[handle]:
                message = runtime.writer_step(handle, added, evicted)
            if message is None:
                continue
            for dst in overlay.outputs[handle]:
                self._tasks.put(("push", handle, dst, message))

    def _do_push(self, src: int, dst: int, message: Any) -> None:
        runtime = self.runtime
        with self._locks[dst]:
            outgoing = runtime.apply_push(src, dst, message)
        if outgoing is None:
            return
        for nxt in runtime.overlay.outputs[dst]:
            self._tasks.put(("push", dst, nxt, outgoing))

    # -- read path (uni-thread model) -------------------------------------

    def read(self, node: NodeId) -> Any:
        """Synchronous read (uni-thread model) under per-node locks."""
        runtime = self.runtime
        overlay = runtime.overlay
        agg = runtime.aggregate
        with self._clock_lock:
            runtime.counters.reads += 1
        handle = overlay.reader_of.get(node)
        if handle is None:
            return agg.finalize(agg.identity())
        from repro.core.overlay import Decision

        if overlay.decisions[handle] is Decision.PUSH:
            with self._locks[handle]:
                return agg.finalize(runtime.values[handle])
        return agg.finalize(self._locked_pull(handle))

    def _locked_pull(self, handle: int) -> Any:
        from repro.core.overlay import Decision

        runtime = self.runtime
        overlay = runtime.overlay
        agg = runtime.aggregate
        acc = agg.identity()
        for src, sign in list(overlay.inputs[handle].items()):
            if overlay.decisions[src] is Decision.PUSH:
                with self._locks[src]:
                    value = runtime.values[src]
            else:
                value = self._locked_pull(src)
            acc = agg.merge(acc, value) if sign > 0 else agg.subtract(acc, value)
            runtime.counters.pull_ops += 1
        return acc

    def read_batch(self, nodes: Sequence[NodeId]) -> List[Any]:
        """Shard-protocol batch read: drain pending writes, then read.

        The protocol requires reads to observe every *accepted* write, so
        the queue quiesces first; individual reads then run under the
        usual per-node locks.
        """
        self.drain()
        read = self.read
        return [read(node) for node in nodes]

    def changed_readers(self) -> List[NodeId]:
        """Readers downstream of any writer touched since the last call.

        A *candidate* set (as the shard protocol allows): submission-time
        tracking cannot see which micro-tasks were value no-ops, so every
        reader downstream of a touched writer is reported; consumers diff
        values before acting.  Drains first so reported readers reflect
        fully-applied state.
        """
        self.drain()
        with self._touched_lock:
            touched = list(self._touched_writers)
            self._touched_writers.clear()
        # The runtime's own report (fed by per-event paths) is superseded
        # by submission tracking here; drop it so it cannot grow unbounded.
        self.runtime.pop_changed_writers()
        return self.runtime.changed_readers(touched)

    def changed_report(self):
        """``(stamp, readers)`` — the stamped protocol extension.

        The stamp is the runtime's global write stamp (ingestion tasks
        bump it under the clock lock), monotone for the engine's
        lifetime.  Drains first (via :meth:`changed_readers`) so the
        stamp covers every reader in the report.
        """
        readers = self.changed_readers()
        return self.runtime.stamp, readers

    # -- lifecycle ---------------------------------------------------------

    def drain(self) -> None:
        """Block until every queued write micro-task has completed."""
        self._tasks.join()

    def shutdown(self) -> None:
        """Drain outstanding writes and stop the worker threads.

        Flushes rather than drops: every write accepted before the call is
        applied before the workers exit.  Idempotent.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
        # Every submission either enqueued before the flag flipped (the
        # drain below applies it) or observes the flag and raises.
        self.drain()
        for _ in self._workers:
            self._tasks.put(None)
        for worker in self._workers:
            worker.join(timeout=5)

    def close(self) -> None:
        """Shard-protocol alias for :meth:`shutdown` (flush, then stop)."""
        self.shutdown()


# ---------------------------------------------------------------------------
# Simulated multi-core execution (Figure 13(d) substitution)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated run."""

    workers: int
    tasks: int
    makespan: float
    throughput: float
    total_work: float

    @property
    def utilization(self) -> float:
        """Fraction of worker-time spent doing useful work."""
        if self.makespan <= 0 or self.workers == 0:
            return 0.0
        return self.total_work / (self.makespan * self.workers)


def op_cost(op: TraceOp, cost_model: CostModel) -> float:
    """Cost of one micro-operation under the query's cost model."""
    if op.kind == "push":
        return cost_model.push_cost(op.fan_in)
    if op.kind == "pull":
        return cost_model.pull_cost(op.fan_in)
    if op.kind == "write":
        return 1.0
    return 0.5  # "read" on a push node: finalize only


def collect_tasks(engine: EAGrEngine, events: Sequence) -> List[List[TraceOp]]:
    """Execute ``events`` on a trace-collecting engine, one task per event.

    The engine must have been built with ``collect_trace=True``.  Returns the
    per-event micro-operation lists the simulator schedules.
    """
    from repro.graph.streams import ReadEvent, WriteEvent

    if engine.runtime.trace is None:
        raise ValueError("engine was not built with collect_trace=True")
    tasks: List[List[TraceOp]] = []
    for event in events:
        # A lazy recompile would replace engine.runtime (and its trace)
        # inside the event call; settle it first so the slice below reads
        # the trace list the event actually appends to.
        engine._sync()
        runtime = engine.runtime
        before = len(runtime.trace)
        if isinstance(event, WriteEvent):
            engine.write(event.node, event.value, event.timestamp)
        elif isinstance(event, ReadEvent):
            engine.read(event.node)
        else:
            raise TypeError("collect_tasks handles read/write events only")
        tasks.append(list(runtime.trace[before:]))
    return tasks


def collect_batch_tasks(
    engine: EAGrEngine, events: Sequence, batch_size: int = 64
) -> List[List[TraceOp]]:
    """Like :func:`collect_tasks`, but writes are grouped into batches.

    Consecutive writes (up to ``batch_size``) become ONE task whose
    micro-operations come from a single compiled-plan execution per
    coalesced writer; a read flushes the pending batch first (it must
    observe every prior write) and forms its own task.  This is the task
    granularity a batched ingestion deployment would hand the scheduler.
    """
    from repro.graph.streams import ReadEvent, WriteEvent

    if engine.runtime.trace is None:
        raise ValueError("engine was not built with collect_trace=True")
    tasks: List[List[TraceOp]] = []
    buffered: List = []

    def run_task(action) -> None:
        # Settle any pending lazy recompile first: it would replace
        # engine.runtime (and its trace list) mid-call, making the slice
        # below read the dead trace.
        engine._sync()
        runtime = engine.runtime
        before = len(runtime.trace)
        action()
        tasks.append(list(runtime.trace[before:]))

    def flush() -> None:
        if not buffered:
            return
        run_task(lambda: engine.write_batch(buffered))
        buffered.clear()

    for event in events:
        if isinstance(event, WriteEvent):
            buffered.append(event)
            if len(buffered) >= batch_size:
                flush()
        elif isinstance(event, ReadEvent):
            flush()
            run_task(lambda: engine.read(event.node))
        else:
            raise TypeError("collect_batch_tasks handles read/write events only")
    flush()
    return tasks


class SimulatedExecutor:
    """Discrete-event scheduler of micro-op tasks over M virtual workers.

    Model: a serial dispatcher hands each task to the earliest-free worker
    (``dispatch_overhead`` time units each — the synchronization cost that
    caps scaling); within a task, micro-ops run in order, each requiring
    exclusive access to its overlay node (per-node lock serialization, so
    hot aggregation nodes become contention points exactly as in the real
    system).
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        dispatch_overhead: float = 0.05,
    ) -> None:
        self.cost_model = cost_model or CostModel.constant_linear()
        self.dispatch_overhead = dispatch_overhead

    def run(self, tasks: Sequence[Sequence[TraceOp]], workers: int) -> SimulationResult:
        """Schedule ``tasks`` on ``workers`` virtual cores; returns metrics."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        worker_free = [0.0] * workers
        node_free: Dict[int, float] = {}
        dispatch_clock = 0.0
        total_work = 0.0
        heap = [(0.0, w) for w in range(workers)]
        heapq.heapify(heap)
        for task in tasks:
            dispatch_clock += self.dispatch_overhead
            free_at, worker = heapq.heappop(heap)
            t = max(free_at, dispatch_clock)
            for op in task:
                duration = op_cost(op, self.cost_model)
                start = max(t, node_free.get(op.handle, 0.0))
                t = start + duration
                node_free[op.handle] = t
                total_work += duration
            worker_free[worker] = t
            heapq.heappush(heap, (t, worker))
        makespan = max(max(worker_free), dispatch_clock) if tasks else 0.0
        throughput = len(tasks) / makespan if makespan > 0 else 0.0
        return SimulationResult(
            workers=workers,
            tasks=len(tasks),
            makespan=makespan,
            throughput=throughput,
            total_work=total_work,
        )

    def sweep(
        self, tasks: Sequence[Sequence[TraceOp]], worker_counts: Sequence[int]
    ) -> List[SimulationResult]:
        """Run the same task trace at several worker counts (Figure 13(d))."""
        return [self.run(tasks, workers) for workers in worker_counts]
